package m2td

// Integration tests exercising flows that cross module boundaries:
// pipeline → store → reload, CP vs Tucker on real ensemble tensors, and
// HOOI refinement of conventionally sampled ensembles.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cp"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/store"
	"repro/internal/tucker"
)

func TestPipelinePersistsAndReloads(t *testing.T) {
	// Run the pipeline, persist the join tensor and its decomposition in
	// the block store, reload both, and verify the reconstruction is
	// unchanged.
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSparse("join", report.Decomposition.Join); err != nil {
		t.Fatal(err)
	}
	dec := tucker.Decomposition{
		Core:    report.Decomposition.Core,
		Factors: report.Decomposition.Factors,
		Ranks:   make([]int, len(report.Decomposition.Factors)),
	}
	for i, f := range dec.Factors {
		dec.Ranks[i] = f.Cols
	}
	if err := st.SaveDecomposition("dec", dec); err != nil {
		t.Fatal(err)
	}

	join, err := st.LoadSparse("join")
	if err != nil {
		t.Fatal(err)
	}
	if join.NNZ() != report.JoinCells {
		t.Fatalf("reloaded join NNZ %d != %d", join.NNZ(), report.JoinCells)
	}
	reloaded, err := st.LoadDecomposition("dec")
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.Reconstruct().Equal(report.Decomposition.Reconstruct(), 1e-12) {
		t.Fatal("reconstruction changed across store roundtrip")
	}
}

func TestCPOnEnsembleTensor(t *testing.T) {
	// CP-ALS on a real (conventionally sampled) ensemble tensor: the fit
	// must improve with rank and the reconstruction must correlate with
	// the sampled cells.
	space, err := eval.SpaceFor("double-pendulum", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	se := ensemble.Encode(space, ensemble.RandomSample(space, 60, rng))

	var prevFit = math.Inf(-1)
	for _, r := range []int{1, 3} {
		dec, err := cp.ALS(se.Tensor, cp.Options{Rank: r, MaxIterations: 60})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Fit < prevFit-0.05 {
			t.Fatalf("CP fit degraded with rank: %v -> %v", prevFit, dec.Fit)
		}
		prevFit = dec.Fit
	}
	if prevFit <= 0 {
		t.Fatalf("CP fit %v on ensemble tensor", prevFit)
	}
}

func TestHOOIRefinesEnsembleDecomposition(t *testing.T) {
	// HOOI must never be worse than HOSVD on the sampled ensemble itself
	// (measured against the sampled tensor, where the fit identity holds).
	space, err := eval.SpaceFor("lorenz", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	se := ensemble.Encode(space, ensemble.RandomSample(space, 80, rng))
	ranks := tucker.UniformRanks(space.Order(), 2)

	hosvd := tucker.HOSVD(se.Tensor, ranks)
	hooi := tucker.HOOI(se.Tensor, ranks, tucker.HOOIOptions{MaxIterations: 8})
	fitHOSVD, err := tucker.FitOf(hosvd, se.Tensor)
	if err != nil {
		t.Fatal(err)
	}
	fitHOOI, err := tucker.FitOf(hooi, se.Tensor)
	if err != nil {
		t.Fatal(err)
	}
	if fitHOOI < fitHOSVD-1e-9 {
		t.Fatalf("HOOI fit %v worse than HOSVD %v", fitHOOI, fitHOSVD)
	}
}

func TestFacadeMatchesEvalComparison(t *testing.T) {
	// The facade's Run/Baseline must agree with the eval harness's
	// RunComparison on the same configuration and seeds.
	cfg := smallConfig()
	evalCfg := eval.Config{
		System:      string(cfg.System),
		Res:         cfg.Resolution,
		TimeSamples: cfg.TimeSamples,
		Rank:        cfg.Rank,
		Pivot:       4,
		PivotFrac:   1,
		FreeFrac:    1,
		Seed:        cfg.Seed,
	}
	cmp, err := eval.RunComparison(evalCfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := cmp.Get(eval.SchemeSELECT)
	if math.Abs(report.Accuracy-want.Accuracy) > 1e-9 {
		t.Fatalf("facade accuracy %v != eval harness %v", report.Accuracy, want.Accuracy)
	}
	if report.NumSims != want.NumSims {
		t.Fatalf("facade sims %d != eval %d", report.NumSims, want.NumSims)
	}
}
