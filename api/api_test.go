package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	in := &Error{Code: CodeQuotaExceeded, Message: "tenant a at quota"}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Error
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != CodeQuotaExceeded || out.Message != in.Message {
		t.Fatalf("round trip = %+v", out)
	}
	if out.Error() == "" {
		t.Fatal("empty Error() text")
	}
}

// TestErrorCodeStatusMapping pins the full code→status table and proves
// every registered code round-trips through the JSON envelope onto its
// mapped status. Ranging over ErrorCodes (which wirecompat keeps in sync
// with the constant block) means a future code cannot ship without a row
// here failing.
func TestErrorCodeStatusMapping(t *testing.T) {
	want := map[ErrorCode]int{
		CodeInvalidRequest: http.StatusBadRequest,
		CodeNotFound:       http.StatusNotFound,
		CodeQuotaExceeded:  http.StatusTooManyRequests,
		CodeQueueFull:      http.StatusServiceUnavailable,
		CodeShuttingDown:   http.StatusServiceUnavailable,
		CodeJobFailed:      http.StatusInternalServerError,
		CodeNotDone:        http.StatusConflict,
		CodeInternal:       http.StatusInternalServerError,
	}
	if len(want) != len(ErrorCodes) {
		t.Fatalf("golden table covers %d codes, ErrorCodes registers %d", len(want), len(ErrorCodes))
	}
	seen := map[ErrorCode]bool{}
	for _, code := range ErrorCodes {
		if seen[code] {
			t.Errorf("ErrorCodes lists %s twice", code)
		}
		seen[code] = true

		wantStatus, ok := want[code]
		if !ok {
			t.Errorf("code %s has no row in the golden status table", code)
			continue
		}
		if got := HTTPStatus(code); got != wantStatus {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, wantStatus)
		}

		// Round-trip the code through the wire envelope and re-map: the
		// status must survive serialization, not just the in-process value.
		data, err := json.Marshal(&Error{Code: code, Message: "x"})
		if err != nil {
			t.Fatalf("marshal %s: %v", code, err)
		}
		var out Error
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", code, err)
		}
		if out.Code != code || HTTPStatus(out.Code) != wantStatus {
			t.Errorf("round trip of %s: code=%s status=%d", code, out.Code, HTTPStatus(out.Code))
		}
	}
	// Version skew: a code outside the vocabulary degrades to 500, never 0.
	if got := HTTPStatus(ErrorCode("from_the_future")); got != http.StatusInternalServerError {
		t.Errorf("unknown code maps to %d, want 500", got)
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, want := range map[JobState]bool{
		StateQueued:  false,
		StateRunning: false,
		StateDone:    true,
		StateFailed:  true,
	} {
		if state.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", state, state.Terminal(), want)
		}
	}
}

// TestClientTypedError verifies non-2xx responses surface as *Error with
// the machine-readable code intact.
func TestClientTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(Error{Code: CodeQuotaExceeded, Message: "no"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	_, err := c.Submit(context.Background(), SubmitRequest{})
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not *api.Error", err, err)
	}
	if apiErr.Code != CodeQuotaExceeded {
		t.Fatalf("code = %s", apiErr.Code)
	}
}

// TestClientNonEnvelopeError verifies a non-JSON error body still comes
// back as a typed *Error (internal) rather than a decode failure.
func TestClientNonEnvelopeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusBadGateway)
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Stats(context.Background())
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not *api.Error", err, err)
	}
	if apiErr.Code != CodeInternal {
		t.Fatalf("code = %s", apiErr.Code)
	}
}

// TestClientRoutesAndHeaders verifies the client hits the versioned paths
// with the tenant header and decodes typed responses.
func TestClientRoutesAndHeaders(t *testing.T) {
	var gotPath, gotTenant string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.Method + " " + r.URL.Path
		gotTenant = r.Header.Get(TenantHeader)
		switch {
		case r.URL.Path == PathPrefix+"campaigns":
			json.NewEncoder(w).Encode(SubmitResponse{JobID: "j1", State: StateQueued, Fingerprint: "fp"})
		case r.URL.Path == PathPrefix+"jobs/j1/result":
			json.NewEncoder(w).Encode(ResultResponse{Job: JobStatus{ID: "j1", State: StateDone}})
		case r.URL.Path == PathPrefix+"jobs/j1/predict":
			var req PredictRequest
			json.NewDecoder(r.Body).Decode(&req)
			json.NewEncoder(w).Encode(PredictResponse{JobID: "j1", Values: req.Params})
		default:
			json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateDone})
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL + "/") // trailing slash must not double up
	c.Tenant = "team-a"
	ctx := context.Background()

	sub, err := c.Submit(ctx, SubmitRequest{Campaign: CampaignSpec{System: "lorenz"}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.JobID != "j1" || gotPath != "POST "+PathPrefix+"campaigns" || gotTenant != "team-a" {
		t.Fatalf("submit: %+v path=%q tenant=%q", sub, gotPath, gotTenant)
	}

	if _, err := c.Status(ctx, "j1", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if gotPath != "GET "+PathPrefix+"jobs/j1" {
		t.Fatalf("status path = %q", gotPath)
	}

	res, err := c.Result(ctx, "j1")
	if err != nil || res.Job.ID != "j1" {
		t.Fatalf("result: %+v, %v", res, err)
	}

	pred, err := c.Predict(ctx, "j1", []float64{1, 2})
	if err != nil || len(pred.Values) != 2 {
		t.Fatalf("predict: %+v, %v", pred, err)
	}

	st, err := c.Wait(ctx, "j1", time.Second)
	if err != nil || !st.State.Terminal() {
		t.Fatalf("wait: %+v, %v", st, err)
	}
}
