package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is a typed client for the campaign server. The zero value is not
// usable; construct with NewClient. All methods are safe for concurrent
// use (the underlying *http.Client is).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". The
	// client appends the versioned paths itself.
	BaseURL string
	// Tenant, when non-empty, is sent as the TenantHeader on every
	// request (a SubmitRequest.Tenant field still wins on submit).
	Tenant string
	// HTTPClient is the transport; nil uses a client with a 5-minute
	// overall timeout (long-poll waits stay under it).
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// do issues one request and decodes the response into out (ignored when
// nil). Non-2xx responses are decoded as the typed error envelope and
// returned as *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("api: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var envelope Error
		if jsonErr := json.Unmarshal(data, &envelope); jsonErr == nil && envelope.Code != "" {
			return &envelope
		}
		return &Error{Code: CodeInternal, Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decode response: %w", err)
	}
	return nil
}

// Submit submits a campaign.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, PathPrefix+"campaigns", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches a job's status. A wait > 0 long-polls: the server holds
// the request until the job reaches a terminal state or the wait elapses,
// whichever is first.
func (c *Client) Status(ctx context.Context, jobID string, wait time.Duration) (*JobStatus, error) {
	path := PathPrefix + "jobs/" + url.PathEscape(jobID)
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	var out JobStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the server's jobs, most recent first.
func (c *Client) Jobs(ctx context.Context) (*JobsResponse, error) {
	var out JobsResponse
	if err := c.do(ctx, http.MethodGet, PathPrefix+"jobs", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Result fetches a finished job's decomposition summary. A job that is
// not yet terminal returns *Error with CodeNotDone.
func (c *Client) Result(ctx context.Context, jobID string) (*ResultResponse, error) {
	var out ResultResponse
	if err := c.do(ctx, http.MethodGet, PathPrefix+"jobs/"+url.PathEscape(jobID)+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Predict evaluates a finished campaign's decomposition at physical
// parameter values.
func (c *Client) Predict(ctx context.Context, jobID string, params []float64) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.do(ctx, http.MethodPost, PathPrefix+"jobs/"+url.PathEscape(jobID)+"/predict", PredictRequest{Params: params}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's serving counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, PathPrefix+"stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes the health endpoint.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, PathPrefix+"healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait long-polls a job until it reaches a terminal state or ctx is
// cancelled, and returns the terminal status. Waits are issued in
// poll-sized slices (default 30s) so intermediaries with shorter request
// timeouts don't kill the poll.
func (c *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 30 * time.Second
	}
	for {
		st, err := c.Status(ctx, jobID, poll)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, fmt.Errorf("api: waiting for job %s: %w", jobID, err)
		}
	}
}
