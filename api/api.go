// Package api is the versioned, typed wire contract of the tensorstore
// campaign server (internal/serve): every client-visible payload —
// campaign submission, job status, decomposition results, predictions,
// server statistics, and the error envelope — is a struct in this
// package, shared verbatim by the server, the api.Client, cmd/tensorstore
// and cmd/loadgen. There are no map[string]interface{} payloads anywhere:
// a field that is not in this package is not part of the API.
//
// Versioning policy: every route lives under the PathPrefix ("/v1/").
// Additive changes (new optional request fields, new response fields) stay
// in v1; any change that would alter the meaning of an existing field or
// remove one gets a new prefix, and v1 keeps serving with its old
// semantics until retired. The JSON encoding is the contract — field
// names are frozen by their json tags, and unknown fields are ignored by
// both sides so old clients keep working against newer servers.
//
// The package is deliberately dependency-free (stdlib only): importing it
// pulls in the wire types and nothing of the engine.
package api

import (
	"fmt"
	"net/http"
)

// Version is the served API version.
const Version = "v1"

// PathPrefix is the route prefix every endpoint lives under.
const PathPrefix = "/" + Version + "/"

// Route patterns (http.ServeMux method+wildcard syntax, Go ≥ 1.22).
const (
	RouteSubmit  = "POST " + PathPrefix + "campaigns"
	RouteJobs    = "GET " + PathPrefix + "jobs"
	RouteStatus  = "GET " + PathPrefix + "jobs/{id}"
	RouteResult  = "GET " + PathPrefix + "jobs/{id}/result"
	RoutePredict = "POST " + PathPrefix + "jobs/{id}/predict"
	RouteStats   = "GET " + PathPrefix + "stats"
	RouteHealth  = "GET " + PathPrefix + "healthz"
)

// TenantHeader optionally carries the tenant identity; the
// SubmitRequest.Tenant field wins when both are present.
const TenantHeader = "X-M2TD-Tenant"

// ErrorCode is a machine-readable error class. Clients dispatch on the
// code, never on message text.
type ErrorCode string

// The error codes the server emits.
const (
	// CodeInvalidRequest: the request body or parameters failed
	// validation (malformed JSON, unknown system/method, bad ranges).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeNotFound: the named job (or its result) does not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeQuotaExceeded: the tenant already has its quota of queued or
	// running campaigns; retry after one finishes.
	CodeQuotaExceeded ErrorCode = "quota_exceeded"
	// CodeQueueFull: the server-wide submission queue is at capacity.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeShuttingDown: the server is draining and accepts no new work.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeJobFailed: the campaign ran and failed; JobStatus.Error carries
	// the cause.
	CodeJobFailed ErrorCode = "job_failed"
	// CodeNotDone: the job exists but has not finished, so it has no
	// result yet.
	CodeNotDone ErrorCode = "not_done"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// ErrorCodes enumerates every code the server emits, in declaration
// order. Tests range over it to prove each code round-trips through the
// envelope and lands on its mapped status; the wirecompat analyzer
// keeps it in sync with the constant block above.
var ErrorCodes = []ErrorCode{
	CodeInvalidRequest,
	CodeNotFound,
	CodeQuotaExceeded,
	CodeQueueFull,
	CodeShuttingDown,
	CodeJobFailed,
	CodeNotDone,
	CodeInternal,
}

// HTTPStatus is the canonical, exhaustive code→status mapping — the
// single source of truth shared by the server's error writer and the
// client's expectations. Both capacity conditions (queue_full,
// shutting_down) map to 503: in each case the request is well-formed
// and retryable once the server's state changes. A code outside the
// vocabulary (possible only across version skew, ErrorCode being an
// open string type) degrades to 500.
func HTTPStatus(code ErrorCode) int {
	switch code {
	case CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQuotaExceeded:
		return http.StatusTooManyRequests
	case CodeQueueFull:
		return http.StatusServiceUnavailable
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeJobFailed:
		return http.StatusInternalServerError
	case CodeNotDone:
		return http.StatusConflict
	case CodeInternal:
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// Error is the typed error envelope. Every non-2xx response body is
// exactly this struct.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface, so an *Error returned by the
// client can be matched with errors.As and dispatched on Code.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// SketchSpec configures the randomized sketch fast path for a campaign
// (m2td.Config.Sketch): KeepFrac in (0, 1] keeps that expected fraction
// of stored cells; 0 disables sketching. Seed 0 defaults to the
// campaign's Seed.
type SketchSpec struct {
	KeepFrac float64 `json:"keep_frac,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// DistSpec requests the multi-process D-M2TD engine for a campaign
// (m2td.Config.Distributed). Workers is the worker-process count; Shards
// fixes the determinism unit (0 defaults to Workers). The server may also
// dispatch large campaigns onto the distributed engine on its own — see
// JobStatus.Distributed for what actually ran.
type DistSpec struct {
	Workers int `json:"workers"`
	Shards  int `json:"shards,omitempty"`
}

// CampaignSpec describes one M2TD campaign: the ensemble to simulate and
// the decomposition to serve. Zero fields take the engine defaults
// (system double-pendulum, resolution 12, rank 4, method select, pivot t,
// full densities, seed 1).
type CampaignSpec struct {
	System             string     `json:"system,omitempty"`
	Resolution         int        `json:"resolution,omitempty"`
	TimeSamples        int        `json:"time_samples,omitempty"`
	Rank               int        `json:"rank,omitempty"`
	Method             string     `json:"method,omitempty"`
	Pivot              string     `json:"pivot,omitempty"`
	PivotDensity       float64    `json:"pivot_density,omitempty"`
	SubEnsembleDensity float64    `json:"sub_density,omitempty"`
	ZeroJoin           bool       `json:"zero_join,omitempty"`
	Seed               int64      `json:"seed,omitempty"`
	Sketch             SketchSpec `json:"sketch,omitempty"`
	Distributed        *DistSpec  `json:"distributed,omitempty"`
	// SkipAccuracy skips ground-truth accuracy evaluation (the default
	// posture for serving; the full metric simulates the entire space).
	SkipAccuracy bool `json:"skip_accuracy,omitempty"`
	// AccuracySampleSims > 0 estimates accuracy from that many sampled
	// ground-truth fibers instead of the full tensor.
	AccuracySampleSims int `json:"accuracy_sample_sims,omitempty"`
	// TimeoutMS bounds the campaign's wall clock; 0 uses the server
	// default. On expiry the campaign checkpoints completed simulations
	// and fails with CodeJobFailed; resubmitting the same spec resumes
	// from the checkpoint.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SubmitRequest submits one campaign.
type SubmitRequest struct {
	// Tenant identifies the submitting tenant for quota accounting and
	// per-tenant metrics ("" means "anonymous").
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the campaign queue: higher runs first; equal
	// priorities run in submission order.
	Priority int `json:"priority,omitempty"`
	// Campaign is the work.
	Campaign CampaignSpec `json:"campaign"`
}

// JobState is the lifecycle state of a submitted campaign.
type JobState string

// The job lifecycle: queued → running → done | failed.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// SubmitResponse acknowledges a submission. Coalesced submissions and
// cache hits return immediately with the shared job's identity.
type SubmitResponse struct {
	// JobID names the job for the status/result/predict endpoints.
	JobID string `json:"job_id"`
	// State is the job's state at submit time (StateDone for cache and
	// store hits).
	State JobState `json:"state"`
	// Fingerprint is the campaign's config fingerprint — the coalescing
	// and cache key.
	Fingerprint string `json:"fingerprint"`
	// Coalesced reports that an identical campaign was already in flight
	// and this submission attached to it instead of enqueueing new work.
	Coalesced bool `json:"coalesced,omitempty"`
	// CacheHit reports the result was served from the LRU decomposition
	// cache; StoreHit reports it was reloaded from the durable store.
	CacheHit bool `json:"cache_hit,omitempty"`
	StoreHit bool `json:"store_hit,omitempty"`
}

// JobStatus describes a job's lifecycle state.
type JobStatus struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// Fingerprint is the campaign's coalescing/cache key.
	Fingerprint string `json:"fingerprint"`
	// QueuePosition is the 1-based position among queued jobs (0 once
	// running or terminal).
	QueuePosition int `json:"queue_position,omitempty"`
	// Waiters counts submissions coalesced onto this job (1 = just the
	// original submitter).
	Waiters int `json:"waiters,omitempty"`
	// Distributed reports the campaign ran (or will run) on the
	// multi-process engine.
	Distributed bool `json:"distributed,omitempty"`
	// SubmittedAtMS/StartedAtMS/FinishedAtMS are Unix milliseconds (0 =
	// not yet reached).
	SubmittedAtMS int64 `json:"submitted_at_ms"`
	StartedAtMS   int64 `json:"started_at_ms,omitempty"`
	FinishedAtMS  int64 `json:"finished_at_ms,omitempty"`
	// Error is set when State is StateFailed.
	Error *Error `json:"error,omitempty"`
}

// DecompositionInfo summarises a finished campaign's decomposition.
type DecompositionInfo struct {
	// Accuracy is the paper's 1 − ‖X̃−Y‖F/‖Y‖F metric; NaN is encoded as
	// the AccuracyValid=false pair since JSON has no NaN.
	Accuracy      float64 `json:"accuracy,omitempty"`
	AccuracyValid bool    `json:"accuracy_valid"`
	NumSims       int     `json:"num_sims"`
	JoinCells     int     `json:"join_cells"`
	CoreShape     []int   `json:"core_shape"`
	Ranks         []int   `json:"ranks"`
	// SimMS and DecompMS are the stage wall-clock times in milliseconds.
	SimMS    int64 `json:"sim_ms"`
	DecompMS int64 `json:"decomp_ms"`
	// RestoredSims counts simulations restored from a checkpoint instead
	// of re-executed (the resume path).
	RestoredSims int `json:"restored_sims,omitempty"`
	// Distributed reports the multi-process engine ran the campaign.
	Distributed bool `json:"distributed,omitempty"`
	// Sketched reports the randomized sketch fast path was used.
	Sketched bool `json:"sketched,omitempty"`
	// StoreName is the durable store object holding the decomposition
	// (load it with tensorstore info/dump or store.LoadDecomposition).
	StoreName string `json:"store_name,omitempty"`
}

// ResultResponse is the terminal-state response of the result endpoint.
type ResultResponse struct {
	Job           JobStatus          `json:"job"`
	Decomposition *DecompositionInfo `json:"decomposition,omitempty"`
}

// JobsResponse lists jobs (most recent first).
type JobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// PredictRequest asks a finished campaign's decomposition for the
// predicted per-timestamp cell values at physical parameter values
// (between grid points included; out-of-range values are clamped).
type PredictRequest struct {
	Params []float64 `json:"params"`
}

// PredictResponse carries the predicted time fiber.
type PredictResponse struct {
	JobID  string    `json:"job_id"`
	Values []float64 `json:"values"`
}

// StatsResponse is a typed snapshot of the server's serving counters —
// the same values the Prometheus endpoint exposes, for clients (loadgen)
// that want exact numbers without text parsing.
type StatsResponse struct {
	Submits       int64 `json:"submits"`
	Coalesced     int64 `json:"coalesced"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	StoreHits     int64 `json:"store_hits"`
	QuotaRejected int64 `json:"quota_rejected"`
	QueueRejected int64 `json:"queue_rejected"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	QueueDepth    int64 `json:"queue_depth"`
	Running       int64 `json:"running"`
	Draining      bool  `json:"draining"`
}

// HealthResponse is the health endpoint's body.
type HealthResponse struct {
	OK       bool   `json:"ok"`
	Version  string `json:"version"`
	Draining bool   `json:"draining,omitempty"`
}
