package m2td_test

import (
	"fmt"

	m2td "repro"
)

// ExampleRun demonstrates the one-call pipeline: PF-partition the
// double-pendulum parameter space, simulate both sub-ensembles, stitch,
// decompose with M2TD-SELECT, and evaluate against the full simulation
// space. Accuracies are floating-point and platform-sensitive, so this
// example prints structural facts only.
func ExampleRun() {
	report, err := m2td.Run(m2td.Config{
		System:      "double-pendulum",
		Resolution:  5,
		TimeSamples: 4,
		Rank:        2,
		Method:      "select",
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("simulations:", report.NumSims)
	fmt.Println("join cells:", report.JoinCells)
	fmt.Println("factor matrices:", len(report.Decomposition.Factors))
	fmt.Println("accuracy in (0,1):", report.Accuracy > 0 && report.Accuracy < 1)
	// Output:
	// simulations: 50
	// join cells: 2500
	// factor matrices: 5
	// accuracy in (0,1): true
}

// ExampleBaseline compares a conventional sampling scheme at the same
// budget — the paper's equal-budget comparison in two calls.
func ExampleBaseline() {
	cfg := m2td.Config{
		System:      "double-pendulum",
		Resolution:  5,
		TimeSamples: 4,
		Rank:        2,
		Seed:        7,
	}
	report, err := m2td.Run(cfg)
	if err != nil {
		panic(err)
	}
	baseline, err := m2td.Baseline(cfg, "random", report.NumSims)
	if err != nil {
		panic(err)
	}
	fmt.Println("equal budgets:", baseline.NumSims == report.NumSims)
	fmt.Println("M2TD wins:", report.Accuracy > baseline.Accuracy)
	// Output:
	// equal budgets: true
	// M2TD wins: true
}
