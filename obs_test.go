package m2td

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceConfig is smallConfig with tracing on and accuracy skipped (the
// evaluate stage's span still appears, marked skipped=1).
func traceConfig() Config {
	cfg := smallConfig()
	cfg.Trace = true
	cfg.SkipAccuracy = true
	return cfg
}

// TestTraceGoldenStructure is the determinism contract of the span tree:
// the skeleton — names, hierarchy, counter values — must be byte-identical
// at any Parallel value; only durations and gauges may differ.
func TestTraceGoldenStructure(t *testing.T) {
	skeletons := make(map[int]string)
	for _, workers := range []int{1, 8} {
		cfg := traceConfig()
		cfg.Parallel = workers
		report, err := Run(cfg)
		if err != nil {
			t.Fatalf("Parallel=%d: %v", workers, err)
		}
		if report.Trace == nil {
			t.Fatalf("Parallel=%d: Trace requested but Report.Trace is nil", workers)
		}
		skeletons[workers] = report.Trace.Root().Skeleton()

		// Root counters mirror the deterministic Report fields.
		root := report.Trace.Root()
		for _, c := range []struct {
			name string
			want int
		}{
			{"sims", report.NumSims},
			{"join_cells", report.JoinCells},
			{"sims_executed", report.ExecutedSims},
			{"sims_restored", report.RestoredSims},
			{"sims_retried", report.RetriedSims},
			{"sims_failed", report.FailedSims},
			{"cells_quarantined", report.QuarantinedCells},
		} {
			if got := root.Counter(c.name); got != int64(c.want) {
				t.Errorf("Parallel=%d: root counter %s = %d, want %d (Report)", workers, c.name, got, c.want)
			}
		}
	}
	if skeletons[1] != skeletons[8] {
		t.Errorf("skeleton differs between Parallel=1 and Parallel=8:\n--- Parallel=1\n%s\n--- Parallel=8\n%s",
			skeletons[1], skeletons[8])
	}
}

// TestTraceSpanTaxonomy asserts the documented stage hierarchy exists:
// run → {partition → sub1/sub2, decompose → factors/stitch/core, evaluate}
// with per-mode children under factors.
func TestTraceSpanTaxonomy(t *testing.T) {
	report, err := Run(traceConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := report.Trace.Root()
	if root.Name() != "run" {
		t.Errorf("root = %q, want run", root.Name())
	}
	for _, path := range [][]string{
		{"partition"},
		{"partition", "sub1"},
		{"partition", "sub2"},
		{"decompose"},
		{"decompose", "factors"},
		{"decompose", "stitch"},
		{"decompose", "core"},
		{"evaluate"},
	} {
		if root.Find(path...) == nil {
			t.Errorf("span %v missing:\n%s", path, root.Skeleton())
		}
	}
	// Every mode of the 5-way tensor gets a factor span; exactly one is
	// the pivot (double-pendulum with pivot "t" → mode4), decomposed as
	// concurrent x1/x2 sub-spans.
	factors := root.Find("decompose", "factors")
	modes := factors.Children()
	if len(modes) != 5 {
		t.Fatalf("factors has %d mode spans, want 5:\n%s", len(modes), factors.Skeleton())
	}
	pivots := 0
	for _, m := range modes {
		if m.Counter("pivot") == 1 {
			pivots++
			if m.Find("x1") == nil || m.Find("x2") == nil {
				t.Errorf("pivot span %s missing x1/x2 children", m.Name())
			}
		}
	}
	if pivots != 1 {
		t.Errorf("found %d pivot mode spans, want 1", pivots)
	}
	if got := root.Find("evaluate").Counter("skipped"); got != 1 {
		t.Errorf("evaluate skipped counter = %d, want 1", got)
	}
}

// TestTraceDisabledByDefault: no Trace flag, no trace — and the pipeline
// must tolerate the resulting nil spans everywhere.
func TestTraceDisabledByDefault(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace != nil {
		t.Fatal("Report.Trace set without Config.Trace")
	}
}

// TestBaselineTrace checks the baseline pipeline's span taxonomy.
func TestBaselineTrace(t *testing.T) {
	cfg := traceConfig()
	report, err := Baseline(cfg, "random", 60)
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace == nil {
		t.Fatal("baseline trace missing")
	}
	root := report.Trace.Root()
	if root.Name() != "baseline" {
		t.Errorf("root = %q, want baseline", root.Name())
	}
	for _, path := range [][]string{{"simulate"}, {"decompose"}, {"evaluate"}} {
		if root.Find(path...) == nil {
			t.Errorf("span %v missing:\n%s", path, root.Skeleton())
		}
	}
	if got := root.Counter("sims_executed"); got != int64(report.ExecutedSims) {
		t.Errorf("root sims_executed = %d, want %d", got, report.ExecutedSims)
	}
}

// TestWriteTraceRoundTrip serializes a real run's trace and replays it,
// asserting the skeleton survives JSONL serialization bit-for-bit.
func TestWriteTraceRoundTrip(t *testing.T) {
	report, err := Run(traceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, report.Trace); err != nil {
		t.Fatal(err)
	}
	root, snapshot, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := root.Skeleton(), report.Trace.Root().Skeleton(); got != want {
		t.Errorf("replayed skeleton:\n%s\nwant:\n%s", got, want)
	}
	if snapshot == nil {
		t.Fatal("trace log carries no metrics snapshot")
	}
	if _, ok := snapshot["m2td_sims_executed_total"]; !ok {
		t.Error("snapshot missing m2td_sims_executed_total")
	}

	if err := WriteTrace(io.Discard, nil); err == nil {
		t.Error("WriteTrace on nil trace should error")
	}
}

// TestMetricsEndpoint runs the pipeline while the metrics listener is up
// and asserts the scrape deltas match the Report exactly, plus the expvar
// and pprof surfaces behind the same listener.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	value := func(expo, name string) int64 {
		t.Helper()
		for _, line := range strings.Split(expo, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 && fields[0] == name {
				v, err := strconv.ParseInt(fields[1], 10, 64)
				if err != nil {
					t.Fatalf("metric %s: bad value %q", name, fields[1])
				}
				return v
			}
		}
		return 0
	}

	before := value(scrape(), "m2td_sims_executed_total")
	runsBefore := value(scrape(), "m2td_runs_total")
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := scrape()
	if got := value(after, "m2td_sims_executed_total") - before; got != int64(report.ExecutedSims) {
		t.Errorf("m2td_sims_executed_total delta = %d, want %d", got, report.ExecutedSims)
	}
	if got := value(after, "m2td_runs_total") - runsBefore; got != 1 {
		t.Errorf("m2td_runs_total delta = %d, want 1", got)
	}

	// The in-process snapshot agrees with the exposition.
	snap := MetricsSnapshot()
	if got := snap["m2td_sims_executed_total"]; got != int64(value(after, "m2td_sims_executed_total")) {
		t.Errorf("MetricsSnapshot sims_executed = %v, scrape says %d", got, value(after, "m2td_sims_executed_total"))
	}

	// expvar and pprof share the listener.
	resp, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["m2td"]; !ok {
		t.Error("/debug/vars missing the m2td metrics map")
	}
	resp, err = http.Get("http://" + srv.Addr + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine status = %d", resp.StatusCode)
	}
}
