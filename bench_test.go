package m2td

// Benchmark harness: one testing.B benchmark per evaluation table of the
// paper (Tables II–VIII of Section VII), plus ablation micro-benchmarks
// for the design choices called out in DESIGN.md.
//
// Each table benchmark executes the same experiment code path the
// cmd/m2tdbench CLI uses to print the paper-style rows, and reports the
// headline accuracies as custom metrics. Benchmarks run at a reduced
// default scale (resolution 10) so `go test -bench=.` completes quickly;
// set M2TD_BENCH_RES (e.g. 16) to scale up. Ground truths are cached per
// process, so b.N iterations measure the decomposition pipeline, not the
// simulators.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/increment"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// benchRes returns the benchmark resolution (default 10, override with
// M2TD_BENCH_RES).
func benchRes() int {
	if s := os.Getenv("M2TD_BENCH_RES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 1 {
			return v
		}
	}
	return 10
}

// benchBase returns the shared base experiment configuration.
func benchBase() eval.Config {
	cfg := eval.DefaultConfig("double-pendulum")
	cfg.Res = benchRes()
	cfg.TimeSamples = benchRes()
	cfg.Rank = 3
	return cfg
}

// reportAccuracies attaches headline accuracies as custom metrics.
func reportAccuracies(b *testing.B, cmp *eval.Comparison) {
	b.Helper()
	if r, ok := cmp.Get(eval.SchemeSELECT); ok {
		b.ReportMetric(r.Accuracy, "select-acc")
	}
	if r, ok := cmp.Get(eval.SchemeRandom); ok {
		b.ReportMetric(r.Accuracy, "random-acc")
	}
}

// BenchmarkTable2 regenerates Table II: the six-scheme accuracy/time grid
// over resolutions and ranks for the double pendulum.
func BenchmarkTable2(b *testing.B) {
	base := benchBase()
	resolutions := []int{benchRes()}
	ranks := []int{2, 4}
	var last []*eval.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmps, err := eval.Table2(base, resolutions, ranks)
		if err != nil {
			b.Fatal(err)
		}
		last = cmps
	}
	b.StopTimer()
	if len(last) > 0 {
		reportAccuracies(b, last[len(last)-1])
	}
}

// BenchmarkTable3 regenerates Table III: the D-M2TD phase-time split by
// server count.
func BenchmarkTable3(b *testing.B) {
	base := benchBase()
	workers := []int{1, 2, 4, 8}
	var last []eval.Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table3(base, workers)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.StopTimer()
	if len(last) > 0 {
		final := last[len(last)-1]
		b.ReportMetric(float64(final.Phase3.Microseconds())/1000, "phase3-ms")
	}
}

// BenchmarkTable4 regenerates Table IV: the six-scheme comparison on the
// triple pendulum and Lorenz systems.
func BenchmarkTable4(b *testing.B) {
	base := benchBase()
	var last []*eval.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmps, err := eval.Table4(base, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = cmps
	}
	b.StopTimer()
	if len(last) > 0 {
		reportAccuracies(b, last[0])
	}
}

// BenchmarkTable5 regenerates Table V: reduced budgets with join vs
// zero-join stitching.
func BenchmarkTable5(b *testing.B) {
	base := benchBase()
	var last []eval.Table5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table5(base, []float64{1.0, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.StopTimer()
	for _, row := range last {
		if row.BudgetFrac < 1 && row.ZeroJoin {
			if r, ok := row.Comparison.Get(eval.SchemeSELECT); ok {
				b.ReportMetric(r.Accuracy, "zerojoin-acc")
			}
		}
	}
}

// BenchmarkTable6 regenerates Table VI: the pivot-density (P) sweep.
func BenchmarkTable6(b *testing.B) {
	base := benchBase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table6(base, []float64{1.0, 0.5, 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 regenerates Table VII: the sub-ensemble-density (E)
// sweep.
func BenchmarkTable7(b *testing.B) {
	base := benchBase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table7(base, []float64{1.0, 0.5, 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8 regenerates Table VIII: the pivot-parameter sweep over
// all five modes.
func BenchmarkTable8(b *testing.B) {
	base := benchBase()
	var last []eval.PivotRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table8(base, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.StopTimer()
	if len(last) > 0 {
		if r, ok := last[0].Comparison.Get(eval.SchemeSELECT); ok {
			b.ReportMetric(r.Accuracy, "pivot-t-acc")
		}
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

// benchPartition builds one PF-partitioned pair at bench scale.
func benchPartition(b *testing.B) (*partition.Result, []int) {
	b.Helper()
	space, err := eval.SpaceFor("double-pendulum", benchRes(), benchRes())
	if err != nil {
		b.Fatal(err)
	}
	part, err := Partition(space, space.TimeMode(), 1, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return part, tucker.UniformRanks(space.Order(), 3)
}

// BenchmarkM2TDVariants measures the three fusion strategies in isolation
// on a shared partition (the AVG/CONCAT/SELECT ablation).
func BenchmarkM2TDVariants(b *testing.B) {
	part, ranks := benchPartition(b)
	for _, m := range core.Methods() {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(part, core.Options{Method: m, Ranks: ranks}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStitching measures join vs zero-join JE-stitching at a reduced
// sub-ensemble density (where they differ).
func BenchmarkStitching(b *testing.B) {
	space, err := eval.SpaceFor("double-pendulum", benchRes(), benchRes())
	if err != nil {
		b.Fatal(err)
	}
	part, err := Partition(space, space.TimeMode(), 1, 0.3, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stitch.Join(part)
		}
	})
	b.Run("zero-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stitch.ZeroJoin(part)
		}
	})
}

// BenchmarkDistributedWorkers measures D-M2TD end-to-end at different
// worker counts (the scaling ablation behind Table III).
func BenchmarkDistributedWorkers(b *testing.B) {
	part, ranks := benchPartition(b)
	for _, w := range []int{1, 4, 16} {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := dist.Decompose(part, dist.Options{
					Options: core.Options{Method: core.SELECT, Ranks: ranks},
					Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConventionalHOSVD measures the baseline pipeline: HOSVD of a
// conventionally sampled sparse ensemble.
func BenchmarkConventionalHOSVD(b *testing.B) {
	cfg := Config{Resolution: benchRes(), Rank: 3, SkipAccuracy: true}
	report, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	budget := report.NumSims
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Baseline(Config{Resolution: benchRes(), Rank: 3, SkipAccuracy: true}, "random", budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the Table I configuration summary.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1([]string{"double-pendulum"}, []int{benchRes()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the Figure 6 density-boost report.
func BenchmarkFig6(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig6(base, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnionBaseline measures the paper's naive union alternative
// (Section I-C) against which JE-stitching is motivated.
func BenchmarkUnionBaseline(b *testing.B) {
	part, _ := benchPartition(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := eval.UnionResult(part, 3)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Accuracy
	}
	b.StopTimer()
	b.ReportMetric(acc, "union-acc")
}

// BenchmarkNoiseSweep measures the robustness ablation.
func BenchmarkNoiseSweep(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		if _, err := eval.NoiseSweep(base, []float64{0, 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchedJoin measures the randomized-sketch fast path over the
// stitched join at decreasing keep fractions (the MACH/PARCUBE-style
// ablation), under the same transient-tensor protocol as internal/tucker's
// BenchmarkSketchedHOSVD: each iteration decomposes a fresh plan-less view
// of the join, as every pipeline decomposition does.
func BenchmarkSketchedJoin(b *testing.B) {
	part, ranks := benchPartition(b)
	j := stitch.Join(part)
	for _, frac := range []float64{1.0, 0.5, 0.1} {
		b.Run(fmt.Sprintf("keep=%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := tucker.SketchedHOSVD(j.PlanlessView(), ranks, tucker.SketchOptions{
					KeepFrac: frac,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalAppend measures streaming Gram maintenance per
// appended cell.
func BenchmarkIncrementalAppend(b *testing.B) {
	part, _ := benchPartition(b)
	tr := increment.New(part)
	shape := part.Sub1.Tensor.Shape
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range idx {
			idx[k] = rng.Intn(shape[k])
		}
		if err := tr.AppendCell(1, idx, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Shared-memory worker-pool benchmarks (internal/parallel) ---

// benchWorkerCounts returns the worker counts to sweep: serial, a couple
// of fixed fan-outs, and the machine's logical CPU count (deduplicated),
// so every run includes the "all cores" point regardless of hardware.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.NumCPU(); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// benchSparseTensor builds a deterministic sparse tensor large enough to
// cross the parallel kernels' serial-fallback thresholds.
func benchSparseTensor(shape tensor.Shape, nnz int, seed int64) *tensor.Sparse {
	rng := rand.New(rand.NewSource(seed))
	s := tensor.NewSparse(shape)
	idx := make([]int, shape.Order())
	for e := 0; e < nnz; e++ {
		for k, d := range shape {
			idx[k] = rng.Intn(d)
		}
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

// BenchmarkParallelTTM measures the sparse mode-0 TTM kernel — the hot
// inner product of every HOSVD/HOOI sweep — at increasing worker-pool
// sizes. Output is bit-identical across all sub-benchmarks; only
// wall-clock changes.
func BenchmarkParallelTTM(b *testing.B) {
	s := benchSparseTensor(tensor.Shape{64, 48, 48, 16}, 200000, 1)
	rng := rand.New(rand.NewSource(2))
	m := mat.New(8, 64)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	for _, w := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.TTMSparseWorkers(s, 0, m, w)
			}
		})
	}
}

// BenchmarkParallelHOSVD measures the full truncated HOSVD of a sparse
// ensemble-scale tensor at increasing worker-pool sizes (per-mode factor
// extraction fans out via parallel.Do; Gram/TTM kernels fan out inside).
func BenchmarkParallelHOSVD(b *testing.B) {
	s := benchSparseTensor(tensor.Shape{40, 32, 32, 12}, 120000, 3)
	ranks := []int{6, 6, 6, 4}
	for _, w := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tucker.HOSVDWorkers(s, ranks, w)
			}
		})
	}

	// Strips-vs-workers sweep: expose the reduction-grid axis separately
	// from the worker axis. More strips mean finer load balancing but more
	// partial-matrix merges; the default grid (gramMaxStrips) should sit on
	// the flat part of this surface for every worker count. Results across
	// strip settings agree only at tolerance level (the merge tree
	// reassociates), so these sub-benchmarks track time, not bits.
	stripWorkers := []int{1}
	if p := runtime.NumCPU(); p > 1 {
		stripWorkers = append(stripWorkers, p)
	}
	for _, ms := range []int{1, 4, 32} {
		for _, w := range stripWorkers {
			b.Run(fmt.Sprintf("strips=%d/workers=%d", ms, w), func(b *testing.B) {
				prev := tensor.SetGramMaxStrips(ms)
				s.InvalidatePlans()
				b.Cleanup(func() {
					tensor.SetGramMaxStrips(prev)
					s.InvalidatePlans()
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tucker.HOSVDWorkers(s, ranks, w)
				}
			})
		}
	}
}

// BenchmarkCPvsTucker compares CP-ALS against HOSVD on the same join
// tensor (the decomposition-family ablation).
func BenchmarkCPvsTucker(b *testing.B) {
	part, ranks := benchPartition(b)
	j := stitch.Join(part)
	b.Run("HOSVD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tucker.HOSVD(j, ranks)
		}
	})
	b.Run("CP-ALS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cp.ALS(j, cp.Options{Rank: 3, MaxIterations: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
