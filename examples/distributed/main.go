// Distributed M2TD (D-M2TD): run the 3-phase MapReduce decomposition at
// increasing worker counts and print the Table III-style phase-time split.
// Phase 3 (core recovery) dominates, and adding workers shows diminishing
// returns — the same shape the paper measured on its 18-node Hadoop
// cluster.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/eval"
)

func main() {
	fmt.Println("D-M2TD phase times by worker count (double pendulum, res 12, rank 4)")
	fmt.Println()

	base := eval.DefaultConfig("double-pendulum")
	base.Res = 12
	base.TimeSamples = 12

	rows, err := eval.Table3(base, []int{1, 2, 4, 8, 16})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 8, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workers\tPhase1(sub-decomp)\tPhase2(stitch)\tPhase3(core)\tTotal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\n",
			r.Workers,
			r.Phase1.Round(1e6), r.Phase2.Round(1e6), r.Phase3.Round(1e6), r.Total().Round(1e6))
	}
	tw.Flush()

	fmt.Println("\nPhase 3 (tensor-matrix multiplication to recover the dense core) is")
	fmt.Println("the costliest step; more workers help with diminishing returns.")
}
