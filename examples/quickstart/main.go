// Quickstart: run the full M2TD pipeline on the double pendulum and
// compare its reconstruction accuracy against a conventionally sampled
// ensemble with the same simulation budget — the paper's headline
// comparison in miniature.
package main

import (
	"fmt"
	"log"

	m2td "repro"
)

func main() {
	cfg := m2td.Config{
		System:     "double-pendulum",
		Resolution: 10, // grid values per simulation parameter
		Rank:       3,  // uniform Tucker target rank
		Method:     "select",
	}

	report, err := m2td.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M2TD-SELECT: accuracy %.4f with %d simulations (%d join cells, decomposition %v)\n",
		report.Accuracy, report.NumSims, report.JoinCells, report.DecompTime.Round(1e6))

	baseline, err := m2td.Baseline(cfg, "random", report.NumSims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Random:      accuracy %.2e with %d simulations\n",
		baseline.Accuracy, baseline.NumSims)

	fmt.Printf("\nPartition-stitch sampling is %.0fx more accurate at the same budget.\n",
		report.Accuracy/baseline.Accuracy)
}
