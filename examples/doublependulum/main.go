// Double pendulum, the paper's running example (Figure 2): evaluate all
// six ensemble-construction schemes — the three M2TD variants against
// Random, Grid, and Slice sampling — at an equal simulation budget, and
// print a Table II-style accuracy/time comparison across target ranks.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/eval"
)

func main() {
	fmt.Println("Double pendulum: 5-mode ensemble (phi1, phi2, m1, m2, t), pivot = t")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 6, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Rank\tScheme\tAccuracy\tDecomp\tSims\tCells")
	for _, rank := range []int{2, 4, 6} {
		cfg := eval.Config{
			System:      "double-pendulum",
			Res:         12,
			TimeSamples: 12,
			Rank:        rank,
			Pivot:       4, // time mode
			PivotFrac:   1,
			FreeFrac:    1,
			Seed:        1,
		}
		cmp, err := eval.RunComparison(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range cmp.Results {
			fmt.Fprintf(tw, "%d\t%s\t%.4g\t%v\t%d\t%d\n",
				rank, r.Scheme, r.Accuracy, r.DecompTime.Round(1e6), r.NumSims, r.EnsembleNNZ)
		}
		fmt.Fprintln(tw, "\t\t\t\t\t")
	}
	tw.Flush()

	fmt.Println("Note the paper's Table II shape: every M2TD variant beats every")
	fmt.Println("conventional scheme by orders of magnitude, and SELECT's advantage")
	fmt.Println("grows with the target rank.")
}
