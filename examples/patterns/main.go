// Pattern analysis: the paper's motivating use case is interpreting a
// simulation ensemble — discovering which parameter settings dominate the
// system's behaviour. This example decomposes a double-pendulum ensemble
// with M2TD-SELECT and reads the patterns off the factor matrices: the
// top-loading grid values per mode and the per-component strengths from
// the core tensor.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	m2td "repro"
)

func main() {
	report, err := m2td.Run(m2td.Config{
		System:     "double-pendulum",
		Resolution: 10,
		Rank:       3,
		Method:     "select",
	})
	if err != nil {
		log.Fatal(err)
	}
	space := report.Space
	dec := report.Decomposition

	fmt.Printf("Ensemble decomposed: accuracy %.4f, %d simulations\n\n", report.Accuracy, report.NumSims)

	fmt.Println("Top-loading grid values per mode (leading component):")
	tw := tabwriter.NewWriter(os.Stdout, 6, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tTop grid indices (by |loading|)")
	for mode := 0; mode < space.Order(); mode++ {
		loadings, err := dec.ModeLoadings(mode, 0)
		if err != nil {
			log.Fatal(err)
		}
		top := loadings
		if len(top) > 4 {
			top = top[:4]
		}
		row := ""
		for _, l := range top {
			row += fmt.Sprintf("%d (%.2f)  ", l.Index, l.Weight)
		}
		fmt.Fprintf(tw, "%s\t%s\n", space.ModeName(mode), row)
	}
	tw.Flush()

	fmt.Println("\nComponent strengths along the time mode (core energies):")
	strengths, err := dec.ComponentStrengths(space.TimeMode())
	if err != nil {
		log.Fatal(err)
	}
	for c, s := range strengths {
		fmt.Printf("  component %d: %.4g\n", c, s)
	}
	fmt.Println("\nThe leading component concentrates most of the core energy; its")
	fmt.Println("top-loading parameter values identify the regime that dominates the")
	fmt.Println("ensemble's deviation from the observed system.")
}
