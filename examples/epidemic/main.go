// Epidemic ensemble analysis: the paper's introduction motivates the whole
// framework with simulation-based epidemic decision making (STEM-style
// models, intervention assessment under limited simulation budgets). This
// example builds an SEIR ensemble — transmission, incubation, recovery
// rates and initial infections as tensor modes — runs partition-stitch
// sampling with M2TD-SELECT, and asks the decomposition which parameters
// drive the deviation from the observed outbreak.
package main

import (
	"fmt"
	"log"

	m2td "repro"
)

func main() {
	cfg := m2td.Config{
		System:     "seir",
		Resolution: 10,
		Rank:       3,
		Method:     "select",
	}
	report, err := m2td.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEIR ensemble: accuracy %.4f with %d simulations (join %d cells)\n",
		report.Accuracy, report.NumSims, report.JoinCells)

	baseline, err := m2td.Baseline(cfg, "random", report.NumSims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Random sampling at the same budget: accuracy %.2e\n\n", baseline.Accuracy)

	// Rank parameters by how much representation energy their mode carries:
	// the modes whose entities vary most across the leading patterns are
	// the levers an intervention should target.
	space := report.Space
	fmt.Println("Per-parameter pattern energy (spread of entity energies):")
	for mode := 0; mode < space.NumParams(); mode++ {
		energies, err := report.Decomposition.EntityEnergy(mode)
		if err != nil {
			log.Fatal(err)
		}
		min, max := energies[0], energies[0]
		for _, e := range energies {
			if e < min {
				min = e
			}
			if e > max {
				max = e
			}
		}
		fmt.Printf("  %-6s spread %.3f (min %.3f, max %.3f)\n", space.ModeName(mode), max-min, min, max)
	}
	fmt.Println("\nLarger spreads mark parameters whose value changes the outbreak")
	fmt.Println("trajectory most — the intervention levers the paper's motivating")
	fmt.Println("scenario needs to identify.")
}
