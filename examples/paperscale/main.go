// Paper-scale run: the evaluation in the paper uses per-mode resolutions
// of 60–80, where the full simulation-space tensor holds 10⁸–10⁹ cells
// (25–105 GB) and the join tensor over a billion cells — the reason the
// authors needed an 18-node Hadoop cluster and the reason this
// reproduction's default tables run scaled down.
//
// Two exact/consistent reformulations remove both gates on a laptop:
//
//   - the factored core G = ½(G₁⊗s₂ + G₂⊗s₁) (core.DecomposeFactored)
//     projects the sub-tensors instead of materialising the join, and
//   - sampled-fiber accuracy estimation (eval.EstimateAccuracy) replaces
//     the full ground-truth tensor.
//
// This example runs the paper's exact configuration — double pendulum,
// resolution 70, rank 10, pivot t — end to end.
package main

import (
	"fmt"
	"log"
	"time"

	m2td "repro"
)

func main() {
	const res = 70 // the paper's Table II middle resolution
	cfg := m2td.Config{
		System:             "double-pendulum",
		Resolution:         res,
		Rank:               10, // the paper's middle rank
		Method:             "select",
		Factored:           true,
		AccuracySampleSims: 3000,
	}

	fmt.Printf("Running M2TD-SELECT at paper scale: resolution %d (full space %d cells)\n",
		res, res*res*res*res*res)
	start := time.Now()
	report, err := m2td.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulations run:        %d (2·%d²)\n", report.NumSims, res)
	fmt.Printf("  simulation time:        %v\n", report.SimTime.Round(time.Millisecond))
	fmt.Printf("  decomposition time:     %v\n", report.DecompTime.Round(time.Millisecond))
	fmt.Printf("  estimated accuracy:     %.4f (from %d sampled fibers)\n",
		report.Accuracy, cfg.AccuracySampleSims)
	fmt.Printf("  total wall clock:       %v\n", time.Since(start).Round(time.Millisecond))

	baseline, err := m2td.Baseline(m2td.Config{
		System:             "double-pendulum",
		Resolution:         res,
		Rank:               10,
		AccuracySampleSims: 3000,
	}, "random", report.NumSims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRandom sampling, same %d-simulation budget: estimated accuracy %.2e\n",
		baseline.NumSims, baseline.Accuracy)
	fmt.Println("\nThe join tensor this run avoided materialising would have held")
	fmt.Printf("%d cells (~%.0f GB in COO form).\n",
		res*res*res*res*res, float64(res*res*res*res*res)*48/1e9)
}
