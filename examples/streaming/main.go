// Streaming ensemble growth: simulation budgets are often allocated
// incrementally (the "single-run replication" strategy from the
// simulation-design literature the paper discusses) — run a few
// simulations, look at the analysis, decide whether to fund more. This
// example starts from a 25%-density PF-partitioned ensemble and grows it
// in stages; the incremental tracker maintains the factor Gram matrices
// exactly under each appended cell, so each refresh pays only for core
// recovery. The fully grown tracker matches a from-scratch batch run.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/increment"
	"repro/internal/partition"
	"repro/internal/tucker"
)

type cell struct {
	idx []int
	val float64
}

// missingCells lists the cells of full that seed lacks, in storage order.
func missingCells(seed, full *partition.SubEnsemble) []cell {
	have := map[int]bool{}
	seed.Tensor.Each(func(idx []int, v float64) {
		have[seed.Tensor.Shape.LinearIndex(idx)] = true
	})
	var out []cell
	full.Tensor.Each(func(idx []int, v float64) {
		if !have[full.Tensor.Shape.LinearIndex(idx)] {
			out = append(out, cell{idx: append([]int(nil), idx...), val: v})
		}
	})
	return out
}

func main() {
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 10, 10)
	pcfg := partition.DefaultConfig(space.Order(), space.TimeMode(), eval.PairsFor("double-pendulum"))
	pcfg.FreeFrac = 0.25
	seed, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fullCfg := pcfg
	fullCfg.FreeFrac = 1
	full, err := partition.Generate(space, fullCfg, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	tracker := increment.New(seed)
	missing1 := missingCells(seed.Sub1, full.Sub1)
	missing2 := missingCells(seed.Sub2, full.Sub2)

	ranks := tucker.UniformRanks(space.Order(), 3)
	truth := space.GroundTruth()

	fmt.Println("Growing a PF-partitioned double-pendulum ensemble in stages:")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 8, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grown\tCells(sub1+sub2)\tAccuracy")
	pos1, pos2 := 0, 0
	for _, stage := range []float64{0, 0.33, 0.66, 1.0} {
		for ; pos1 < int(stage*float64(len(missing1))); pos1++ {
			if err := tracker.AppendCell(1, missing1[pos1].idx, missing1[pos1].val); err != nil {
				log.Fatal(err)
			}
		}
		for ; pos2 < int(stage*float64(len(missing2))); pos2++ {
			if err := tracker.AppendCell(2, missing2[pos2].idx, missing2[pos2].val); err != nil {
				log.Fatal(err)
			}
		}
		res, err := tracker.Decompose(core.Options{Method: core.SELECT, Ranks: ranks})
		if err != nil {
			log.Fatal(err)
		}
		c1, c2 := tracker.CellCounts()
		fmt.Fprintf(tw, "%.0f%%\t%d+%d\t%.4f\n",
			stage*100, c1, c2, eval.Accuracy(res.Reconstruct(), truth))
	}
	tw.Flush()

	// Confirm the grown tracker matches a from-scratch batch decomposition.
	batch, err := core.Decompose(full, core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	grown, err := tracker.Decompose(core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGrown tracker matches batch decomposition: %v\n",
		grown.Core.Equal(batch.Core, 1e-8))
}
