// Lorenz system: sweep the pivot parameter across all five tensor modes
// (z0, sigma, beta, rho, t) — the Table VIII experiment on a chaotic
// system. The punchline matches the paper: pivot choice shifts accuracy
// modestly, but every pivot beats conventional sampling by orders of
// magnitude, so precise a-priori knowledge of the system is not needed.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	m2td "repro"
	"repro/internal/eval"
)

func main() {
	fmt.Println("Lorenz system: pivot sweep (resolution 10, rank 3)")
	fmt.Println()

	space, err := eval.SpaceFor("lorenz", 10, 10)
	if err != nil {
		log.Fatal(err)
	}

	cfg := m2td.Config{
		System:     "lorenz",
		Resolution: 10,
		Rank:       3,
		Method:     "select",
	}

	tw := tabwriter.NewWriter(os.Stdout, 6, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Pivot\tAccuracy\tSims\tJoinCells")
	var budget int
	for mode := 0; mode < space.Order(); mode++ {
		c := cfg
		c.Pivot = space.ModeName(mode)
		report, err := m2td.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		budget = report.NumSims
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\n", c.Pivot, report.Accuracy, report.NumSims, report.JoinCells)
	}
	tw.Flush()

	baseline, err := m2td.Baseline(cfg, "random", budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRandom sampling at the same budget: accuracy %.2e\n", baseline.Accuracy)
}
