// Triple pendulum with friction: the low-budget regime of Table V. When
// the sub-ensemble density E drops, plain join stitching leaves the join
// tensor thin; zero-join stitching boosts the effective density and
// recovers accuracy.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	m2td "repro"
)

func main() {
	fmt.Println("Triple pendulum (phi1, phi2, phi3, f): budget sweep, join vs zero-join")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 6, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Budget(E)\tStitch\tAccuracy\tSims\tJoinCells")
	for _, density := range []float64{1.0, 0.5, 0.2} {
		for _, zeroJoin := range []bool{false, true} {
			if density == 1.0 && zeroJoin {
				continue // identical to plain join at full density
			}
			cfg := m2td.Config{
				System:             "triple-pendulum",
				Resolution:         8,
				Rank:               3,
				Method:             "select",
				SubEnsembleDensity: density,
				ZeroJoin:           zeroJoin,
			}
			report, err := m2td.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			stitchName := "join"
			if zeroJoin {
				stitchName = "zero-join"
			}
			fmt.Fprintf(tw, "%.0f%%\t%s\t%.4f\t%d\t%d\n",
				density*100, stitchName, report.Accuracy, report.NumSims, report.JoinCells)
		}
	}
	tw.Flush()

	fmt.Println("\nLower budgets reduce accuracy for every scheme; zero-join recovers")
	fmt.Println("effective density when sub-ensembles are sparse (the paper's Table V).")
}
