package m2td

import (
	"context"
	"strings"
	"testing"

	"repro/internal/tensor"
	"repro/internal/tucker"
)

// facadeTestTensor builds a small deterministic sparse tensor.
func facadeTestTensor() *tensor.Sparse {
	t := tensor.NewSparse(tensor.Shape{5, 4, 3})
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 3; k++ {
				if (i+j+k)%2 == 0 {
					t.Append([]int{i, j, k}, float64(1+i)*0.5+float64(j*k))
				}
			}
		}
	}
	return t
}

func TestTuckerCtxMatchesInternal(t *testing.T) {
	x := facadeTestTensor()
	ranks := tucker.UniformRanks(x.Order(), 2)
	ctx := context.Background()

	res, err := TuckerCtx(ctx, x, TuckerOptions{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := tucker.HOSVDWorkers(x, ranks, 0)
	if got, ref := res.Decomposition.Core.Norm(), want.Core.Norm(); got != ref {
		//lint:allow floatcmp -- bit-identity assertion between two code paths of the same kernel
		t.Fatalf("facade HOSVD core norm %v != internal %v", got, ref)
	}
	fit, err := res.Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	if fit <= 0 || fit > 1 {
		t.Fatalf("fit %v outside (0, 1]", fit)
	}

	hres, err := TuckerCtx(ctx, x, TuckerOptions{Rank: 2, HOOI: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	hfit, err := hres.Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	if hfit < fit-1e-12 {
		t.Fatalf("HOOI fit %v worse than HOSVD fit %v", hfit, fit)
	}

	sres, err := TuckerCtx(ctx, x, TuckerOptions{Rank: 2, Sketch: SketchConfig{KeepFrac: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Sketched || sres.SketchInput != x.NNZ() || sres.SketchKept <= 0 {
		t.Fatalf("sketch accounting: %+v", sres)
	}
}

func TestTuckerCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TuckerCtx(ctx, facadeTestTensor(), TuckerOptions{}); err == nil {
		t.Fatal("cancelled TuckerCtx succeeded")
	}
}

func TestConfigFingerprint(t *testing.T) {
	base := Config{System: SystemLorenz, Resolution: 6, Rank: 3}
	if got, again := base.Fingerprint(), base.Fingerprint(); got != again {
		t.Fatalf("fingerprint unstable: %q vs %q", got, again)
	}
	// Defaults collapse: an explicit default equals the zero-field form.
	explicit := Config{System: SystemLorenz, Resolution: 6, Rank: 3, Method: MethodSELECT, Seed: 1, Pivot: "t"}
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Fatalf("normalized defaults differ:\n%q\n%q", base.Fingerprint(), explicit.Fingerprint())
	}
	// Parallel is excluded (bit-identical by contract).
	par := base
	par.Parallel = 7
	if base.Fingerprint() != par.Fingerprint() {
		t.Fatal("Parallel changed the fingerprint")
	}
	// Distributed.Workers is excluded at fixed Shards; Shards is included.
	d2 := base
	d2.Distributed = &DistributedConfig{Workers: 2, Shards: 4}
	d3 := base
	d3.Distributed = &DistributedConfig{Workers: 3, Shards: 4}
	if d2.Fingerprint() != d3.Fingerprint() {
		t.Fatal("Distributed.Workers changed the fingerprint at fixed Shards")
	}
	dOther := base
	dOther.Distributed = &DistributedConfig{Workers: 2, Shards: 8}
	if d2.Fingerprint() == dOther.Fingerprint() {
		t.Fatal("Distributed.Shards did not change the fingerprint")
	}
	// Decomposition-shaping fields are included.
	for name, mut := range map[string]func(*Config){
		"Rank":     func(c *Config) { c.Rank = 5 },
		"Method":   func(c *Config) { c.Method = MethodAVG },
		"ZeroJoin": func(c *Config) { c.ZeroJoin = true },
		"Seed":     func(c *Config) { c.Seed = 9 },
		"Sketch":   func(c *Config) { c.Sketch = SketchConfig{KeepFrac: 0.5} },
		"Workers":  func(c *Config) { c.Workers = 2 },
	} {
		c := base
		mut(&c)
		if c.Fingerprint() == base.Fingerprint() {
			t.Fatalf("%s did not change the fingerprint", name)
		}
	}
	if !strings.HasPrefix(base.Fingerprint(), "full-v1|") {
		t.Fatalf("fingerprint missing version prefix: %q", base.Fingerprint())
	}
}
