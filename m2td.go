// Package m2td reproduces "M2TD: Multi-Task Tensor Decomposition for
// Sparse Ensemble Simulations" (Li, Candan, Sapino; ICDE 2018) as a
// self-contained Go library.
//
// The package is the public facade over the implementation packages:
//
//   - internal/dynsys    — double pendulum, triple pendulum, Lorenz, SEIR
//   - internal/ensemble  — parameter spaces; Random/Grid/Slice/LHS samplers
//   - internal/partition — PF-partitioning into pivot-sharing sub-systems
//   - internal/stitch    — JE-stitching (join and zero-join)
//   - internal/tucker    — HOSVD / ST-HOSVD / HOOI Tucker decomposition
//   - internal/cp        — CP-ALS decomposition
//   - internal/core      — M2TD-AVG / -CONCAT / -SELECT (+ factored core)
//   - internal/dist      — 3-phase distributed M2TD on MapReduce
//   - internal/increment — streaming M2TD with exact Gram maintenance
//   - internal/eval      — the paper's experiments (Tables I–VIII, Fig. 6)
//
// The one-call entry point is Run, which executes the full
// partition → simulate → stitch → decompose → evaluate pipeline:
//
//	report, err := m2td.Run(m2td.Config{
//	    System:     "double-pendulum",
//	    Resolution: 12,
//	    Rank:       4,
//	    Method:     "select",
//	})
//
// Lower-level building blocks (Partition, Stitch, Decompose) are exposed
// for custom pipelines, and the eval package's table runners are wrapped
// by the cmd/m2tdbench tool.
package m2td

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/distnet"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Config describes one end-to-end M2TD pipeline run.
type Config struct {
	// System is the dynamical system: SystemDoublePendulum (default),
	// SystemTriplePendulum, SystemLorenz, or SystemSEIR. Untyped string
	// literals ("double-pendulum", …) keep assigning to it unchanged; use
	// ParseSystem to validate free-form input eagerly.
	System System
	// Resolution is the per-parameter grid resolution (default 12).
	Resolution int
	// TimeSamples is the time-mode size (defaults to Resolution).
	TimeSamples int
	// Rank is the uniform per-mode Tucker rank (default 4).
	Rank int
	// Method selects the pivot fusion: MethodAVG, MethodCONCAT, or
	// MethodSELECT (default). Untyped string literals and the historical
	// aliases ("average", "M2TD-SELECT", …) keep working; use ParseMethod
	// to validate free-form input eagerly.
	Method Method
	// Pivot names the pivot mode: "t" (default), a parameter name such as
	// "phi1", or "auto" to pick the best pivot by a coarse pilot run
	// (eval.SelectPivot).
	Pivot string
	// PivotDensity and SubEnsembleDensity are the paper's P and E knobs in
	// (0, 1]; zero values mean 1.
	PivotDensity, SubEnsembleDensity float64
	// ZeroJoin selects zero-join JE-stitching.
	ZeroJoin bool
	// Workers > 0 runs the distributed 3-phase D-M2TD with that many
	// workers instead of the serial algorithm.
	Workers int
	// Distributed, when non-nil, runs D-M2TD on real worker PROCESSES —
	// the internal/distnet coordinator/worker engine over localhost TCP
	// and a shared artifact catalog — instead of in-process goroutines.
	// Mutually exclusive with Workers, Factored, and Sketch. The result
	// is bit-identical for any worker count (and under worker kills) at
	// a fixed Distributed.Shards; it matches the serial decomposition up
	// to floating-point summation order.
	Distributed *DistributedConfig
	// Parallel is the shared-memory worker-pool size for the decomposition
	// hot path (sparse TTM, Gram accumulation, the HOSVD mode loop, and
	// the concurrent X₁/X₂ sub-decompositions). 0 uses all CPUs
	// (runtime.GOMAXPROCS); 1 forces serial execution. Unlike Workers —
	// which simulates D-M2TD's distributed 3-phase algorithm — Parallel
	// only changes how the same serial algorithm is scheduled on cores:
	// results are bit-identical for any Parallel value.
	Parallel int
	// SkipAccuracy skips ground-truth construction (which simulates the
	// entire parameter space) and leaves Report.Accuracy as NaN.
	SkipAccuracy bool
	// AccuracySampleSims > 0 estimates the accuracy from that many
	// uniformly sampled ground-truth fibers instead of materialising the
	// full simulation-space tensor — required at paper-scale resolutions
	// where the exact metric needs tens of GB.
	AccuracySampleSims int
	// Factored computes the M2TD core without materialising the join
	// tensor (core.DecomposeFactored), exploiting the product structure of
	// PF-partitioned sub-ensembles. Identical results; required at
	// paper-scale resolutions where the join tensor has billions of cells.
	// Incompatible with Workers (D-M2TD materialises the join by design).
	Factored bool
	// Sketch enables the randomized sketch fast path: the decomposition
	// runs on biased random sketches of the sub-tensors and join instead
	// of the exact inputs, trading a graceful accuracy loss for a
	// proportional cut in every kernel's nnz. Orthogonal to Method — all
	// three fusion strategies sketch identically. Incompatible with
	// Workers and Factored (both need the exact cell sets). Baseline runs
	// sketch the encoded tensor before HOSVD.
	Sketch SketchConfig
	// Seed drives all sampling randomness (default 1).
	Seed int64

	// SimTimeout bounds the simulation stage (partition fan-out or
	// baseline encoding) with a per-stage deadline; 0 means no limit. On
	// expiry the stage drains cooperatively, flushes any checkpoint, and
	// the run fails with a wrapped context.DeadlineExceeded.
	SimTimeout time.Duration
	// DecompTimeout bounds the decomposition stage; 0 means no limit.
	DecompTimeout time.Duration
	// Retry is the per-simulation retry policy for transient failures.
	// The zero value means up to 3 attempts with default backoff.
	Retry faults.RetryPolicy
	// Faults, when non-nil, wraps the dynamical system with the seeded
	// deterministic fault-injection harness — transient errors, divergent
	// (non-finite) trajectories, panics, and latency at the configured
	// rates. The run's Report then carries the exact failure accounting.
	Faults *faults.Config
	// CheckpointDir, when non-empty, enables crash-safe persistence of
	// completed simulations into an internal/store catalog at that
	// directory (atomic temp+rename+CRC writes).
	CheckpointDir string
	// CheckpointEvery is the number of completed simulations between
	// checkpoint saves (default 64).
	CheckpointEvery int
	// Resume loads a compatible checkpoint from CheckpointDir and skips
	// every simulation it already holds. Checkpoints written by a
	// different configuration are ignored.
	Resume bool

	// Trace records a stage-span trace of the run (partition → decompose
	// → evaluate, with per-sub-tensor and per-mode sub-spans) on
	// Report.Trace. Span structure and counters are deterministic for any
	// Parallel value; only durations and gauges vary. Disabled tracing
	// costs one nil check per instrumented site.
	Trace bool
}

// SketchConfig configures the randomized sketch fast path
// (tucker.Sketch): each stored cell is kept with probability proportional
// to its magnitude and scaled by the inverse of that probability, an
// unbiased estimator of the tensor at a fraction of the nnz. The zero
// value disables sketching.
type SketchConfig struct {
	// KeepFrac is the expected fraction of stored cells each sketch
	// retains, in (0, 1]. 0 disables sketching; 1 keeps every cell
	// (bit-identical decomposition, with a full-keep SketchStats report).
	KeepFrac float64
	// Seed drives the per-cell keep decisions through a counter-based
	// hash — the sketch is a pure function of (tensor, KeepFrac, Seed),
	// identical for any Parallel value. 0 defaults to Config.Seed.
	Seed int64
}

// DistributedConfig configures the multi-process D-M2TD engine
// (internal/distnet): a coordinator in this process plus Workers child
// processes connected over localhost TCP, moving data through an
// internal/store catalog. Worker processes are spawned by re-executing
// the current binary, which must call MaybeDistWorker first thing in
// main (cmd/m2tdworker and cmd/m2tdbench do).
type DistributedConfig struct {
	// Workers is the worker-process count (default 1). The campaign
	// survives losing up to Workers-1 of them.
	Workers int
	// Shards fixes the phase-2/3 task count — the determinism unit: at a
	// fixed Shards the output is bit-identical for any Workers value and
	// any worker deaths. Default: Workers.
	Shards int
	// Addr is the coordinator listen address (default "127.0.0.1:0").
	Addr string
	// WorkDir is the shared artifact catalog. Empty uses a fresh
	// temporary directory, removed after the run; set it to a stable path
	// to enable resume-from-durable-artifacts across runs.
	WorkDir string
	// KillWorkers > 0 SIGKILLs that many workers mid-task at seeded
	// injection points (the faults.KillSpec chaos lottery) — the
	// kill-and-recover drill. Must stay below Workers.
	KillWorkers int
	// KillSeed seeds the kill lottery (0 defaults to Config.Seed).
	KillSeed int64
}

// DistStats is the distributed engine's accounting on the Report.
type DistStats struct {
	// Workers is the spawned worker-process count; WorkersLost counts
	// the ones quarantined (killed, hung, or corrupt) during the run.
	Workers, WorkersLost int
	// Requeues counts task re-leases; TasksSkipped counts tasks
	// satisfied by an already-durable artifact.
	Requeues, TasksSkipped int
	// Phase1/2/3 are the engine's per-phase wall-clock times (Table
	// III's split, with real IPC overhead).
	Phase1, Phase2, Phase3 time.Duration
}

// Report is the outcome of a pipeline run.
type Report struct {
	// Accuracy is the paper's metric 1 − ‖X̃−Y‖F/‖Y‖F against the full
	// ground-truth tensor (NaN when SkipAccuracy is set).
	Accuracy float64
	// NumSims is the number of simulation runs spent.
	NumSims int
	// JoinCells is the stitched join tensor's stored-cell count.
	JoinCells int
	// SimTime is the wall-clock spent running simulations; DecompTime
	// covers sub-decomposition, stitching, and core recovery.
	SimTime, DecompTime time.Duration
	// Decomposition holds the resulting factors and core.
	Decomposition *core.Result
	// Space is the underlying parameter space (exposes the shape, ground
	// truth, and mode names).
	Space *ensemble.Space

	// Fault-tolerance accounting (see faults and partition). Every
	// simulation of the campaign is either executed, restored from a
	// checkpoint, or failed; retried simulations and quarantined cells
	// are recorded on top, so the counters exactly cover every injected
	// or natural fault.
	ExecutedSims     int
	RestoredSims     int
	RetriedSims      int
	FailedSims       int
	QuarantinedCells int
	// EffectiveDensity1/2 are the sub-ensembles' stored-cell densities
	// after failures and quarantine (degraded relative to the sampled
	// density when simulations were lost).
	EffectiveDensity1, EffectiveDensity2 float64
	// FaultStats snapshots the injector's accounting when Config.Faults
	// was set (nil otherwise).
	FaultStats *faults.Stats
	// SketchStats accounts for the sketch passes when Config.Sketch was
	// enabled (nil otherwise). Baseline runs fill only the Join stats —
	// there is one tensor to sketch.
	SketchStats *core.SketchReport
	// Distributed carries the multi-process engine's accounting when
	// Config.Distributed was set (nil otherwise).
	Distributed *DistStats
	// Partition is the PF-partitioned pair the decomposition consumed
	// (nil for Baseline runs).
	Partition *partition.Result
	// Trace is the run's stage-span trace when Config.Trace was set (nil
	// otherwise). Its root counters mirror this report's deterministic
	// fields; serialize it with WriteTrace and inspect the JSONL with
	// cmd/tracecat.
	Trace *obs.Trace
}

// normalize fills config defaults.
func (c Config) normalize() Config {
	if c.System == "" {
		c.System = "double-pendulum"
	}
	if c.Resolution == 0 {
		c.Resolution = 12
	}
	if c.TimeSamples == 0 {
		c.TimeSamples = c.Resolution
	}
	if c.Rank == 0 {
		c.Rank = 4
	}
	if c.Method == "" {
		c.Method = "select"
	}
	if c.Pivot == "" {
		c.Pivot = "t"
	}
	if c.PivotDensity == 0 {
		c.PivotDensity = 1
	}
	if c.SubEnsembleDensity == 0 {
		c.SubEnsembleDensity = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sketch.KeepFrac != 0 && c.Sketch.Seed == 0 {
		c.Sketch.Seed = c.Seed
	}
	return c
}

// resolved carries the validated products of one Config: the normalized
// config, the internal fusion method, and the (possibly fault-wrapped)
// parameter space. Run, Baseline, and the Ctx entry points all validate
// through here, so every path accepts and rejects configurations
// identically.
type resolved struct {
	cfg      Config
	method   core.Method
	space    *ensemble.Space
	injector *faults.Injector
}

// resolve normalizes and validates the config.
func (c Config) resolve() (resolved, error) {
	cfg := c.normalize()
	method, err := cfg.Method.core()
	if err != nil {
		return resolved{}, err
	}
	if f := cfg.Sketch.KeepFrac; f < 0 || f > 1 {
		return resolved{}, fmt.Errorf("m2td: Sketch.KeepFrac %v outside (0, 1]", f)
	}
	if cfg.Sketch.KeepFrac > 0 {
		if cfg.Workers > 0 {
			return resolved{}, fmt.Errorf("m2td: Sketch and Workers are mutually exclusive (D-M2TD shuffles the exact cell sets)")
		}
		if cfg.Factored {
			return resolved{}, fmt.Errorf("m2td: Sketch and Factored are mutually exclusive (the sketch breaks the P×E product structure)")
		}
	}
	if d := cfg.Distributed; d != nil {
		if cfg.Workers > 0 {
			return resolved{}, fmt.Errorf("m2td: Distributed and Workers are mutually exclusive (pick one D-M2TD engine)")
		}
		if cfg.Factored {
			return resolved{}, fmt.Errorf("m2td: Distributed and Factored are mutually exclusive (D-M2TD materialises the join by design)")
		}
		if cfg.Sketch.KeepFrac > 0 {
			return resolved{}, fmt.Errorf("m2td: Distributed and Sketch are mutually exclusive (D-M2TD shuffles the exact cell sets)")
		}
		workers := d.Workers
		if workers < 1 {
			workers = 1
		}
		if d.KillWorkers < 0 || d.KillWorkers >= workers {
			return resolved{}, fmt.Errorf("m2td: Distributed.KillWorkers %d must be in [0, Workers)", d.KillWorkers)
		}
	}
	space, injector, err := cfg.space()
	if err != nil {
		return resolved{}, err
	}
	return resolved{cfg: cfg, method: method, space: space, injector: injector}, nil
}

// Systems lists the built-in dynamical systems.
func Systems() []string {
	out := make([]string, 0, 4)
	for _, s := range dynsys.All() {
		out = append(out, s.Name())
	}
	return out
}

// space returns the parameter space for the config and, when fault
// injection is enabled, the injector wrapping its system. Fault-wrapped
// runs always build a FRESH space: eval.SpaceFor caches spaces
// process-wide, and an injector must never leak into other runs' cached
// references or ground truths.
func (c Config) space() (*ensemble.Space, *faults.Injector, error) {
	if c.Faults == nil {
		sp, err := eval.SpaceFor(string(c.System), c.Resolution, c.TimeSamples)
		return sp, nil, err
	}
	sys, err := dynsys.ByName(string(c.System))
	if err != nil {
		return nil, nil, err
	}
	inj := faults.New(*c.Faults)
	return ensemble.NewSpace(inj.Wrap(sys), c.Resolution, c.TimeSamples), inj, nil
}

// fingerprint identifies the simulation-generating configuration for
// checkpoint compatibility: any field that changes which simulations run,
// their identities, or their outputs is included, so a resumed campaign
// never trusts a checkpoint written by a different configuration.
func (c Config) fingerprint(pivot int) string {
	fp := fmt.Sprintf("v1|%s|res=%d|t=%d|pivot=%d|P=%g|E=%g|seed=%d",
		c.System, c.Resolution, c.TimeSamples, pivot, c.PivotDensity, c.SubEnsembleDensity, c.Seed)
	return fp + c.faultsSuffix()
}

// stageCtx derives a per-stage context: a deadline when the stage has a
// timeout, a plain child otherwise.
func stageCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// Run executes the full M2TD pipeline described by the config. It is
// RunCtx on a background context — no cancellation, no stage deadlines
// beyond those in the config.
func Run(cfg Config) (*Report, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx facade is the root of its own context tree
	return RunCtx(context.Background(), cfg)
}

// MaybeDistWorker turns the current process into a distributed D-M2TD
// worker when the M2TD_DISTNET_ADDR environment is present, and never
// returns in that case. Any binary that may run with Config.Distributed
// set must call it first thing in main: the coordinator spawns workers
// by re-executing its own binary.
func MaybeDistWorker() { distnet.MaybeWorker() }

// RunCtx executes the full M2TD pipeline with cooperative cancellation:
// when ctx is cancelled (or a configured stage deadline expires) the
// pipeline stops at the next stage boundary — in-flight simulations and
// kernels finish, workers are joined, completed work is checkpointed —
// and a wrapped context error identifying the stage is returned.
func RunCtx(ctx context.Context, cfg Config) (*Report, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	cfg, method, space, injector := r.cfg, r.method, r.space, r.injector
	var trace *obs.Trace
	if cfg.Trace {
		trace = obs.New("run")
	}
	root := trace.Root()
	pivot := -1
	if cfg.Pivot == "auto" {
		pilotRes := cfg.Resolution
		if pilotRes > 8 {
			pilotRes = 8
		}
		scores, err := eval.SelectPivot(string(cfg.System), pilotRes, cfg.Rank, 150, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pivot = scores[0].Pivot
	} else {
		for m := 0; m < space.Order(); m++ {
			if space.ModeName(m) == cfg.Pivot {
				pivot = m
				break
			}
		}
	}
	if pivot == -1 {
		return nil, fmt.Errorf("m2td: unknown pivot %q for system %s", cfg.Pivot, cfg.System)
	}

	pcfg := partition.DefaultConfig(space.Order(), pivot, eval.PairsFor(string(cfg.System)))
	pcfg.PivotFrac = cfg.PivotDensity
	pcfg.FreeFrac = cfg.SubEnsembleDensity

	// Crash-safe checkpointing: completed simulations persist into an
	// internal/store catalog, tagged with the config fingerprint.
	var ck *partition.Checkpoint
	if cfg.CheckpointDir != "" {
		st, err := store.Open(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("m2td: checkpoint catalog: %w", err)
		}
		ck = &partition.Checkpoint{
			Store:       st,
			Fingerprint: cfg.fingerprint(pivot),
			Every:       cfg.CheckpointEvery,
			Resume:      cfg.Resume,
		}
	}

	simStart := time.Now()
	pspan := root.Start("partition")
	pdone := pspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	sctx, cancelSim := stageCtx(ctx, cfg.SimTimeout)
	part, err := partition.GenerateCtx(sctx, space, pcfg, rand.New(rand.NewSource(cfg.Seed)), partition.SimOptions{
		Workers:    cfg.Parallel,
		Retry:      cfg.Retry,
		Checkpoint: ck,
		Span:       pspan,
	})
	cancelSim()
	pdone()
	if err != nil {
		return nil, fmt.Errorf("m2td: simulation stage: %w", err)
	}
	simTime := time.Since(simStart)

	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)
	dspan := root.Start("decompose")
	ddone := dspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	opts := core.Options{
		Method:   method,
		Ranks:    ranks,
		ZeroJoin: cfg.ZeroJoin,
		Workers:  cfg.Parallel,
		Sketch:   core.SketchSpec{KeepFrac: cfg.Sketch.KeepFrac, Seed: cfg.Sketch.Seed},
		Span:     dspan,
	}
	dctx, cancelDecomp := stageCtx(ctx, cfg.DecompTimeout)
	defer cancelDecomp()
	var res *core.Result
	var distStats *DistStats
	switch {
	case cfg.Workers > 0 && cfg.Factored:
		return nil, fmt.Errorf("m2td: Factored and Workers are mutually exclusive")
	case cfg.Distributed != nil:
		dc := cfg.Distributed
		workDir := dc.WorkDir
		if workDir == "" {
			tmp, err := os.MkdirTemp("", "m2td-distnet-*")
			if err != nil {
				return nil, fmt.Errorf("m2td: distributed work dir: %w", err)
			}
			defer os.RemoveAll(tmp)
			workDir = tmp
		}
		killSeed := dc.KillSeed
		if killSeed == 0 {
			killSeed = cfg.Seed
		}
		d, err := distnet.Decompose(dctx, part, distnet.Options{
			Method:   method,
			Ranks:    ranks,
			ZeroJoin: cfg.ZeroJoin,
			Workers:  dc.Workers,
			Shards:   dc.Shards,
			Addr:     dc.Addr,
			WorkDir:  workDir,
			Kill:     faults.KillSpec{Seed: killSeed, Kills: dc.KillWorkers},
			Retry:    cfg.Retry,
			Span:     dspan,
		})
		if err != nil {
			return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
		}
		res = d.Result
		distStats = &DistStats{
			Workers:      len(d.Workers),
			WorkersLost:  d.Phase1.WorkersLost + d.Phase2.WorkersLost + d.Phase3.WorkersLost,
			Requeues:     d.Phase1.Requeues + d.Phase2.Requeues + d.Phase3.Requeues,
			TasksSkipped: d.Phase1.Skipped + d.Phase2.Skipped + d.Phase3.Skipped,
			Phase1:       d.Phase1.Duration,
			Phase2:       d.Phase2.Duration,
			Phase3:       d.Phase3.Duration,
		}
	case cfg.Workers > 0:
		if err := dctx.Err(); err != nil {
			return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
		}
		d, err := dist.Decompose(part, dist.Options{Options: opts, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		res = d.Result
	case cfg.Factored:
		if err := dctx.Err(); err != nil {
			return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
		}
		res, err = core.DecomposeFactored(part, opts)
		if err != nil {
			return nil, err
		}
	default:
		res, err = core.DecomposeCtx(dctx, part, opts)
		if err != nil {
			return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
		}
	}
	ddone()
	cancelDecomp()

	joinCells := 0
	if res.Join != nil {
		joinCells = res.Join.NNZ()
	}
	report := &Report{
		Accuracy:          nan(),
		NumSims:           part.NumSims,
		JoinCells:         joinCells,
		SimTime:           simTime,
		DecompTime:        res.SubDecompTime + res.StitchTime + res.CoreTime,
		Decomposition:     res,
		Space:             space,
		ExecutedSims:      part.Stats.ExecutedSims,
		RestoredSims:      part.Stats.RestoredSims,
		RetriedSims:       part.Stats.RetriedSims,
		FailedSims:        part.Stats.FailedSims,
		QuarantinedCells:  part.Stats.QuarantinedCells,
		EffectiveDensity1: part.Sub1.Tensor.Density(),
		EffectiveDensity2: part.Sub2.Tensor.Density(),
		SketchStats:       res.Sketch,
		Distributed:       distStats,
		Partition:         part,
	}
	if injector != nil {
		s := injector.Stats()
		report.FaultStats = &s
	}
	espan := root.Start("evaluate")
	edone := espan.WithVitals(nil)
	switch {
	case cfg.SkipAccuracy:
		espan.Set("skipped", 1)
	case ctx.Err() != nil:
		return nil, fmt.Errorf("m2td: evaluation stage: %w", ctx.Err())
	case cfg.AccuracySampleSims > 0:
		espan.Set("sampled_sims", int64(cfg.AccuracySampleSims))
		model := eval.TuckerModel{Core: res.Core, Factors: res.Factors}
		acc, err := eval.EstimateAccuracy(space, model, cfg.AccuracySampleSims, rand.New(rand.NewSource(cfg.Seed+100)))
		if err != nil {
			return nil, err
		}
		report.Accuracy = acc
	default:
		report.Accuracy = eval.Accuracy(res.Reconstruct(), space.GroundTruth())
	}
	edone()
	report.finishTrace(trace, cfg)
	runsTotal.Inc()
	return report, nil
}

// Baseline runs one conventional sampling scheme — "random", "grid",
// "slice" (the paper's Section IV baselines) or "lhs" (Latin hypercube,
// from the experiment-design literature the paper cites) — with the given
// simulation budget and returns its accuracy and decomposition time: the
// comparison target for Run.
func Baseline(cfg Config, scheme string, budget int) (*Report, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx facade is the root of its own context tree
	return BaselineCtx(context.Background(), cfg, scheme, budget)
}

// BaselineCtx is Baseline with cooperative cancellation and the
// fault-tolerance runtime (retry, panic capture, divergence quarantine)
// on the encoding fan-out. Stage deadlines follow Config.SimTimeout and
// Config.DecompTimeout.
func BaselineCtx(ctx context.Context, cfg Config, scheme string, budget int) (*Report, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	cfg, space, injector := r.cfg, r.space, r.injector
	var trace *obs.Trace
	if cfg.Trace {
		trace = obs.New("baseline")
	}
	root := trace.Root()
	var sims []ensemble.Sim
	switch strings.ToLower(scheme) {
	case "random":
		sims = ensemble.RandomSample(space, budget, rand.New(rand.NewSource(cfg.Seed)))
	case "grid":
		sims = ensemble.GridSample(space, budget)
	case "slice":
		sims = ensemble.SliceSample(space, budget, rand.New(rand.NewSource(cfg.Seed)))
	case "lhs", "latin", "latin-hypercube":
		sims = ensemble.LatinHypercubeSample(space, budget, rand.New(rand.NewSource(cfg.Seed)))
	default:
		return nil, fmt.Errorf("m2td: unknown baseline scheme %q", scheme)
	}
	simStart := time.Now()
	sspan := root.Start("simulate")
	sdone := sspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	sctx, cancelSim := stageCtx(ctx, cfg.SimTimeout)
	se, estats, err := ensemble.EncodeCtx(sctx, space, sims, ensemble.EncodeOptions{Workers: cfg.Parallel, Retry: cfg.Retry, Span: sspan})
	cancelSim()
	sdone()
	if err != nil {
		return nil, fmt.Errorf("m2td: simulation stage: %w", err)
	}
	simTime := time.Since(simStart)

	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
	}
	dspan := root.Start("decompose")
	ddone := dspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	var dec tucker.Decomposition
	var sketchReport *core.SketchReport
	if f := cfg.Sketch.KeepFrac; f > 0 {
		var stats tucker.SketchStats
		dec, stats, err = tucker.SketchedHOSVD(se.Tensor, ranks, tucker.SketchOptions{
			KeepFrac: f, Seed: cfg.Sketch.Seed, Workers: cfg.Parallel, Span: dspan,
		})
		if err != nil {
			return nil, err
		}
		sketchReport = &core.SketchReport{KeepFrac: f, Seed: cfg.Sketch.Seed, Join: stats}
	} else {
		dec = tucker.HOSVDSpan(se.Tensor, ranks, cfg.Parallel, dspan)
	}
	ddone()
	decompTime := time.Since(start)

	report := &Report{
		Accuracy:          nan(),
		NumSims:           len(sims),
		JoinCells:         se.Tensor.NNZ(),
		SimTime:           simTime,
		DecompTime:        decompTime,
		Space:             space,
		ExecutedSims:      estats.ExecutedSims,
		RetriedSims:       estats.RetriedSims,
		FailedSims:        estats.FailedSims,
		QuarantinedCells:  estats.QuarantinedCells,
		EffectiveDensity1: se.Tensor.Density(),
		EffectiveDensity2: se.Tensor.Density(),
		SketchStats:       sketchReport,
	}
	if injector != nil {
		s := injector.Stats()
		report.FaultStats = &s
	}
	espan := root.Start("evaluate")
	edone := espan.WithVitals(nil)
	switch {
	case cfg.SkipAccuracy:
		espan.Set("skipped", 1)
	case ctx.Err() != nil:
		return nil, fmt.Errorf("m2td: evaluation stage: %w", ctx.Err())
	case cfg.AccuracySampleSims > 0:
		espan.Set("sampled_sims", int64(cfg.AccuracySampleSims))
		model := eval.TuckerModel{Core: dec.Core, Factors: dec.Factors}
		acc, err := eval.EstimateAccuracy(space, model, cfg.AccuracySampleSims, rand.New(rand.NewSource(cfg.Seed+100)))
		if err != nil {
			return nil, err
		}
		report.Accuracy = acc
	default:
		report.Accuracy = eval.Accuracy(dec.Reconstruct(), space.GroundTruth())
	}
	edone()
	report.finishTrace(trace, cfg)
	runsTotal.Inc()
	return report, nil
}

// finishTrace closes out a run's trace: the root span's counters mirror
// the report's deterministic fields (so a serialized trace is
// self-describing and tests can assert counters == report), the trace is
// finished, and it is attached to the report. A nil trace is a no-op.
func (r *Report) finishTrace(trace *obs.Trace, cfg Config) {
	if trace == nil {
		return
	}
	root := trace.Root()
	root.Set("sims", int64(r.NumSims))
	root.Set("join_cells", int64(r.JoinCells))
	root.Set("sims_executed", int64(r.ExecutedSims))
	root.Set("sims_restored", int64(r.RestoredSims))
	root.Set("sims_retried", int64(r.RetriedSims))
	root.Set("sims_failed", int64(r.FailedSims))
	root.Set("cells_quarantined", int64(r.QuarantinedCells))
	root.Set("resolution", int64(cfg.Resolution))
	root.Set("rank", int64(cfg.Rank))
	trace.Finish()
	r.Trace = trace
}

// PartitionOptions configures PartitionCtx. The zero value means: full
// densities, seed 1, default worker count, default retry policy, no
// tracing.
type PartitionOptions struct {
	// PivotFrac and FreeFrac are the paper's P and E density knobs in
	// (0, 1]; zero values mean 1.
	PivotFrac, FreeFrac float64
	// Seed drives the sampling randomness (default 1).
	Seed int64
	// Parallel is the shared worker-pool size for the simulation fan-out
	// (0 = all CPUs, 1 = serial).
	Parallel int
	// Retry is the per-simulation retry policy for transient failures.
	Retry faults.RetryPolicy
	// Trace, when non-nil, receives a "partition" stage span (with
	// sub1/sub2 children) under its root.
	Trace *obs.Trace
}

// PartitionCtx PF-partitions a space and simulates both sub-ensembles
// with cooperative cancellation, retry, divergence quarantine, and
// optional tracing; a building block for custom pipelines.
func PartitionCtx(ctx context.Context, space *ensemble.Space, pivot int, opts PartitionOptions) (*partition.Result, error) {
	if opts.PivotFrac == 0 {
		opts.PivotFrac = 1
	}
	if opts.FreeFrac == 0 {
		opts.FreeFrac = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	pcfg := partition.DefaultConfig(space.Order(), pivot, eval.PairsFor(space.Sys.Name()))
	pcfg.PivotFrac = opts.PivotFrac
	pcfg.FreeFrac = opts.FreeFrac
	span := opts.Trace.Root().Start("partition")
	done := span.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	defer done()
	return partition.GenerateCtx(ctx, space, pcfg, rand.New(rand.NewSource(opts.Seed)), partition.SimOptions{
		Workers: opts.Parallel,
		Retry:   opts.Retry,
		Span:    span,
	})
}

// Partition PF-partitions a space and simulates both sub-ensembles; a
// building block for custom pipelines. It is PartitionCtx on a background
// context; prefer PartitionCtx in new code.
func Partition(space *ensemble.Space, pivot int, pivotFrac, freeFrac float64, seed int64) (*partition.Result, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx facade is the root of its own context tree
	return PartitionCtx(context.Background(), space, pivot, PartitionOptions{
		PivotFrac: pivotFrac, FreeFrac: freeFrac, Seed: seed,
	})
}

// StitchOptions configures StitchCtx.
type StitchOptions struct {
	// ZeroJoin selects zero-join JE-stitching (Section V-C.2).
	ZeroJoin bool
	// Trace, when non-nil, receives a "stitch" stage span under its root.
	Trace *obs.Trace
}

// StitchCtx constructs the join tensor (or zero-join tensor) for a
// PF-partitioned pair. The context is checked before the (uninterruptible)
// stitch kernel runs.
func StitchCtx(ctx context.Context, part *partition.Result, opts StitchOptions) (*tensor.Sparse, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("m2td: stitch stage: %w", err)
	}
	span := opts.Trace.Root().Start("stitch")
	done := span.WithVitals(nil)
	defer done()
	var j *tensor.Sparse
	if opts.ZeroJoin {
		j = stitch.ZeroJoin(part)
		span.Set("zero_join", 1)
	} else {
		j = stitch.Join(part)
	}
	span.Set("join_nnz", int64(j.NNZ()))
	return j, nil
}

// Stitch constructs the join tensor (or zero-join tensor) for a
// PF-partitioned pair of sub-ensembles. Prefer StitchCtx in new code.
func Stitch(part *partition.Result, zeroJoin bool) *tensor.Sparse {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx facade is the root of its own context tree
	j, err := StitchCtx(context.Background(), part, StitchOptions{ZeroJoin: zeroJoin})
	if err != nil {
		// Unreachable: background contexts are never cancelled and
		// StitchCtx has no other error path.
		panic(fmt.Sprintf("m2td: Stitch: %v", err))
	}
	return j
}

// DecomposeOptions configures DecomposeCtx. The zero value selects
// MethodSELECT at uniform rank 4 over the plain join.
type DecomposeOptions struct {
	// Method is the pivot fusion strategy ("" = MethodSELECT).
	Method Method
	// Rank is the uniform per-mode Tucker rank (0 = 4). Ranks, when
	// non-nil, overrides it with explicit per-mode ranks.
	Rank  int
	Ranks []int
	// ZeroJoin selects zero-join JE-stitching for core recovery.
	ZeroJoin bool
	// Factored computes the core without materialising the join tensor
	// (core.DecomposeFactored); identical results, required at paper-scale
	// resolutions.
	Factored bool
	// Sketch enables the randomized sketch fast path (see Config.Sketch);
	// Seed 0 defaults to 1. Incompatible with Factored.
	Sketch SketchConfig
	// Parallel is the shared worker-pool size for the decomposition hot
	// path (0 = all CPUs, 1 = serial). Results are bit-identical for any
	// value.
	Parallel int
	// Trace, when non-nil, receives a "decompose" stage span (with
	// factors/stitch/core children) under its root.
	Trace *obs.Trace
}

// DecomposeCtx runs the selected M2TD variant over a PF-partitioned pair
// with cooperative cancellation, the shared worker pool, kernel-plan
// reuse, and optional tracing — the same engine path RunCtx uses.
func DecomposeCtx(ctx context.Context, part *partition.Result, opts DecomposeOptions) (*core.Result, error) {
	if opts.Method == "" {
		opts.Method = MethodSELECT
	}
	method, err := opts.Method.core()
	if err != nil {
		return nil, err
	}
	ranks := opts.Ranks
	if ranks == nil {
		rank := opts.Rank
		if rank == 0 {
			rank = 4
		}
		ranks = tucker.UniformRanks(part.Space.Order(), rank)
	}
	if opts.Sketch.KeepFrac != 0 && opts.Sketch.Seed == 0 {
		opts.Sketch.Seed = 1
	}
	span := opts.Trace.Root().Start("decompose")
	done := span.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	defer done()
	copts := core.Options{
		Method:   method,
		Ranks:    ranks,
		ZeroJoin: opts.ZeroJoin,
		Workers:  opts.Parallel,
		Sketch:   core.SketchSpec{KeepFrac: opts.Sketch.KeepFrac, Seed: opts.Sketch.Seed},
		Span:     span,
	}
	if opts.Factored {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("m2td: decomposition stage: %w", err)
		}
		return core.DecomposeFactored(part, copts)
	}
	return core.DecomposeCtx(ctx, part, copts)
}

// Decompose runs the selected M2TD variant over a PF-partitioned pair.
// It now routes through the same engine path as RunCtx (shared worker
// pool, kernel-plan reuse) instead of the former always-default-options
// call; results are unchanged. Prefer DecomposeCtx in new code.
func Decompose(part *partition.Result, method core.Method, rank int, zeroJoin bool) (*core.Result, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx facade is the root of its own context tree
	return DecomposeCtx(context.Background(), part, DecomposeOptions{
		Method: Method(method), Rank: rank, ZeroJoin: zeroJoin,
	})
}

func nan() float64 { return math.NaN() }
