package m2td

import (
	"context"
	"testing"

	"repro/internal/eval"
)

// TestCtxBuildingBlocksParity locks in the context-first facade contract:
// the Ctx building blocks produce bit-identical results to the legacy
// wrappers at any Parallel value (the wrappers are now thin delegates,
// so this also guards against the validation paths diverging again).
func TestCtxBuildingBlocksParity(t *testing.T) {
	space, err := eval.SpaceFor("double-pendulum", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	legacy, err := Partition(space, space.TimeMode(), 1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionCtx(ctx, space, space.TimeMode(), PartitionOptions{FreeFrac: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if part.NumSims != legacy.NumSims {
		t.Fatalf("PartitionCtx NumSims = %d, Partition = %d", part.NumSims, legacy.NumSims)
	}

	j, err := StitchCtx(ctx, part, StitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := Stitch(legacy, false); j.NNZ() != want.NNZ() {
		t.Fatalf("StitchCtx NNZ = %d, Stitch = %d", j.NNZ(), want.NNZ())
	}

	serial, err := DecomposeCtx(ctx, part, DecomposeOptions{Method: MethodSELECT, Rank: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := DecomposeCtx(ctx, part, DecomposeOptions{Method: MethodSELECT, Rank: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical across worker counts: same factors, same core cells.
	for m := range serial.Factors {
		a, b := serial.Factors[m], pooled.Factors[m]
		if a.Rows != b.Rows || a.Cols != b.Cols {
			t.Fatalf("factor %d shape mismatch", m)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("factor %d differs at %d: %v vs %v (Parallel must not change results)", m, i, a.Data[i], b.Data[i])
			}
		}
	}
	if len(serial.Core.Data) != len(pooled.Core.Data) {
		t.Fatalf("core size %d vs %d across Parallel", len(serial.Core.Data), len(pooled.Core.Data))
	}
	for i := range serial.Core.Data {
		if serial.Core.Data[i] != pooled.Core.Data[i] {
			t.Fatalf("core differs at %d across Parallel", i)
		}
	}
}

// TestCtxBuildingBlocksTrace routes a trace through all three building
// blocks and asserts each contributed its stage span.
func TestCtxBuildingBlocksTrace(t *testing.T) {
	space, err := eval.SpaceFor("double-pendulum", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	trace := NewTrace("custom")
	part, err := PartitionCtx(ctx, space, space.TimeMode(), PartitionOptions{Seed: 3, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StitchCtx(ctx, part, StitchOptions{ZeroJoin: true, Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeCtx(ctx, part, DecomposeOptions{Rank: 2, Trace: trace}); err != nil {
		t.Fatal(err)
	}
	trace.Finish()
	root := trace.Root()
	for _, path := range [][]string{
		{"partition", "sub1"},
		{"stitch"},
		{"decompose", "factors"},
		{"decompose", "core"},
	} {
		if root.Find(path...) == nil {
			t.Errorf("span %v missing:\n%s", path, root.Skeleton())
		}
	}
	if got := root.Find("stitch").Counter("zero_join"); got != 1 {
		t.Errorf("stitch zero_join counter = %d, want 1", got)
	}
}

// TestCtxBuildingBlocksCancellation: a pre-cancelled context stops every
// building block with a context error.
func TestCtxBuildingBlocksCancellation(t *testing.T) {
	space, err := eval.SpaceFor("double-pendulum", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(space, space.TimeMode(), 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PartitionCtx(ctx, space, space.TimeMode(), PartitionOptions{}); err == nil {
		t.Error("PartitionCtx ignored cancelled context")
	}
	if _, err := StitchCtx(ctx, part, StitchOptions{}); err == nil {
		t.Error("StitchCtx ignored cancelled context")
	}
	if _, err := DecomposeCtx(ctx, part, DecomposeOptions{}); err == nil {
		t.Error("DecomposeCtx ignored cancelled context")
	}
}

// TestDecomposeCtxRejectsBadMethod: typed-method validation happens in
// the facade, before any work.
func TestDecomposeCtxRejectsBadMethod(t *testing.T) {
	if _, err := DecomposeCtx(context.Background(), nil, DecomposeOptions{Method: "bogus"}); err == nil {
		t.Error("bogus method accepted")
	}
}
