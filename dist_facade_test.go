package m2td

import (
	"os"
	"testing"
)

// TestMain lets the multi-process engine self-exec this test binary as a
// worker: with the distnet environment present MaybeDistWorker takes
// over the process and never returns.
func TestMain(m *testing.M) {
	MaybeDistWorker()
	os.Exit(m.Run())
}

func tinyDistConfig() Config {
	return Config{Resolution: 5, TimeSamples: 4, Rank: 2, SkipAccuracy: true}
}

// TestDistributedFacadeMatchesInProcess checks the two D-M2TD engines —
// in-process MapReduce (Workers) and multi-process (Distributed) — agree
// through the facade.
func TestDistributedFacadeMatchesInProcess(t *testing.T) {
	inproc := tinyDistConfig()
	inproc.Workers = 2
	a, err := Run(inproc)
	if err != nil {
		t.Fatal(err)
	}

	multi := tinyDistConfig()
	multi.Distributed = &DistributedConfig{Workers: 2}
	b, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}

	if b.Distributed == nil || a.Distributed != nil {
		t.Fatal("DistStats must be set exactly for the Distributed engine")
	}
	if b.Distributed.Workers != 2 || b.Distributed.WorkersLost != 0 {
		t.Fatalf("unexpected dist stats: %+v", b.Distributed)
	}
	if a.JoinCells != b.JoinCells {
		t.Fatalf("join cells %d vs %d", a.JoinCells, b.JoinCells)
	}
	if !a.Decomposition.Core.Equal(b.Decomposition.Core, 1e-9) {
		t.Fatal("in-process and multi-process cores differ")
	}
	for m := range a.Decomposition.Factors {
		if !a.Decomposition.Factors[m].Equal(b.Decomposition.Factors[m], 1e-9) {
			t.Fatalf("factor %d differs between engines", m)
		}
	}
}

// TestDistributedFacadeKillDrill runs the kill-and-recover chaos drill
// through the facade: killing a worker must not change a single bit.
func TestDistributedFacadeKillDrill(t *testing.T) {
	clean := tinyDistConfig()
	clean.Distributed = &DistributedConfig{Workers: 3, Shards: 4}
	a, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	chaos := tinyDistConfig()
	chaos.Distributed = &DistributedConfig{Workers: 3, Shards: 4, KillWorkers: 1}
	b, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}

	if b.Distributed.WorkersLost != 1 {
		t.Fatalf("%d workers lost, want 1", b.Distributed.WorkersLost)
	}
	if !a.Decomposition.Core.Equal(b.Decomposition.Core, 0) {
		t.Fatal("killed run's core is not bit-identical to clean run")
	}
	for m := range a.Decomposition.Factors {
		if !a.Decomposition.Factors[m].Equal(b.Decomposition.Factors[m], 0) {
			t.Fatalf("factor %d not bit-identical under kills", m)
		}
	}
}

func TestDistributedConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"with Workers":  func(c *Config) { c.Workers = 2 },
		"with Factored": func(c *Config) { c.Factored = true },
		"with Sketch":   func(c *Config) { c.Sketch.KeepFrac = 0.5 },
		"kill every worker": func(c *Config) {
			c.Distributed.Workers = 2
			c.Distributed.KillWorkers = 2
		},
		"negative kills": func(c *Config) { c.Distributed.KillWorkers = -1 },
	} {
		cfg := tinyDistConfig()
		cfg.Distributed = &DistributedConfig{Workers: 2}
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %s accepted", name)
		}
	}
}
