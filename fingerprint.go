package m2td

import "fmt"

// Fingerprint returns a stable identity string for the FULL campaign
// configuration: every field that can change the decomposition a run
// produces is included — the simulation-generating fields of the
// checkpoint fingerprint plus rank, method, zero-join, the in-process
// D-M2TD worker count, accuracy settings, sketching, and the distributed
// shard count. Fields that are bit-identical by contract (Parallel,
// Distributed.Workers at a fixed Shards) are deliberately excluded, so
// runs that must produce the same result share a fingerprint.
//
// The campaign server keys request coalescing and its decomposition cache
// on this value; callers should canonicalize free-form System/Method input
// (ParseSystem, ParseMethod) before fingerprinting so aliases collapse to
// one key.
func (c Config) Fingerprint() string {
	cfg := c.normalize()
	fp := fmt.Sprintf("full-v1|%s|res=%d|t=%d|pivot=%s|P=%g|E=%g|seed=%d|rank=%d|method=%s|zj=%t|w=%d|factored=%t|acc=%t:%d",
		cfg.System, cfg.Resolution, cfg.TimeSamples, cfg.Pivot,
		cfg.PivotDensity, cfg.SubEnsembleDensity, cfg.Seed,
		cfg.Rank, cfg.Method, cfg.ZeroJoin, cfg.Workers, cfg.Factored,
		cfg.SkipAccuracy, cfg.AccuracySampleSims)
	if cfg.Sketch.KeepFrac > 0 {
		fp += fmt.Sprintf("|sketch=%g:%d", cfg.Sketch.KeepFrac, cfg.Sketch.Seed)
	}
	if d := cfg.Distributed; d != nil {
		shards := d.Shards
		if shards == 0 {
			shards = d.Workers
		}
		if shards < 1 {
			shards = 1
		}
		fp += fmt.Sprintf("|dist-shards=%d", shards)
	}
	fp += cfg.faultsSuffix()
	return fp
}

// faultsSuffix is the fault-injection component shared by the checkpoint
// fingerprint and the exported Fingerprint: injected faults change which
// simulations survive, so two configs differing only in Faults must never
// share an identity.
func (c Config) faultsSuffix() string {
	if c.Faults == nil {
		return ""
	}
	f := c.Faults
	return fmt.Sprintf("|faults=%d:%g:%d:%g:%g:%g:%s",
		f.Seed, f.TransientRate, f.TransientAttempts, f.DivergentRate, f.PanicRate, f.LatencyRate, f.Latency)
}
