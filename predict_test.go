package m2td

import (
	"math"
	"testing"

	"repro/internal/dynsys"
)

func TestPredictOnGridMatchesReconstruction(t *testing.T) {
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	space := report.Space
	recon := report.Decomposition.Reconstruct()
	ps := space.Sys.Params()
	// Pick a grid point and feed its exact physical values.
	gridIdx := []int{1, 3, 0, 2}
	vals := make([]float64, 4)
	for m, p := range ps {
		vals[m] = p.Value(gridIdx[m], space.Res)
	}
	fiber, err := report.Predict(vals)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < space.TimeSamples; tt++ {
		want := recon.At(1, 3, 0, 2, tt)
		if math.Abs(fiber[tt]-want) > 1e-9 {
			t.Fatalf("t=%d: Predict %v != reconstruction %v", tt, fiber[tt], want)
		}
	}
}

func TestPredictMidpointBetweenNeighbours(t *testing.T) {
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	space := report.Space
	ps := space.Sys.Params()
	// Midway between grid points 1 and 2 of the first parameter: the
	// prediction must be the average of the two neighbouring fibers
	// (multilinearity).
	base := []int{1, 3, 0, 2}
	valsLo := make([]float64, 4)
	valsHi := make([]float64, 4)
	valsMid := make([]float64, 4)
	for m, p := range ps {
		valsLo[m] = p.Value(base[m], space.Res)
		valsHi[m] = valsLo[m]
		valsMid[m] = valsLo[m]
	}
	valsHi[0] = ps[0].Value(base[0]+1, space.Res)
	valsMid[0] = (valsLo[0] + valsHi[0]) / 2

	lo, err := report.Predict(valsLo)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := report.Predict(valsHi)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := report.Predict(valsMid)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range mid {
		want := (lo[tt] + hi[tt]) / 2
		if math.Abs(mid[tt]-want) > 1e-9 {
			t.Fatalf("t=%d: midpoint %v != average %v", tt, mid[tt], want)
		}
	}
}

func TestPredictClampsOutOfRange(t *testing.T) {
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps := report.Space.Sys.Params()
	below := make([]float64, 4)
	atMin := make([]float64, 4)
	for m, p := range ps {
		below[m] = p.Min - 100
		atMin[m] = p.Min
	}
	a, err := report.Predict(below)
	if err != nil {
		t.Fatal(err)
	}
	b, err := report.Predict(atMin)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range a {
		if a[tt] != b[tt] {
			t.Fatal("out-of-range values not clamped to the boundary")
		}
	}
}

func TestPredictApproximatesSimulation(t *testing.T) {
	// On a smooth system (SEIR) at a decent resolution, the prediction at
	// the reference parameters should be near the true cell values
	// (distance ≈ 0 at the reference — prediction should be small compared
	// with typical cell magnitudes).
	report, err := Run(Config{
		System:     "seir",
		Resolution: 8,
		Rank:       4,
		Method:     "select",
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := report.Space
	ref := dynsys.ReferenceParams(space.Sys)
	fiber, err := report.Predict(ref)
	if err != nil {
		t.Fatal(err)
	}
	truth := space.GroundTruth()
	var rms float64
	for _, v := range truth.Data {
		rms += v * v
	}
	rms = math.Sqrt(rms / float64(len(truth.Data)))
	for tt, v := range fiber {
		if math.Abs(v) > rms {
			t.Fatalf("t=%d: predicted distance %v exceeds RMS cell value %v at the reference point", tt, v, rms)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := report.Predict([]float64{1, 2}); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
	if _, err := report.PredictAt(make([]float64, 4), 99); err == nil {
		t.Fatal("out-of-range time index accepted")
	}
	vals := dynsys.ReferenceParams(report.Space.Sys)
	v, err := report.PredictAt(vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	fiber, _ := report.Predict(vals)
	if v != fiber[0] {
		t.Fatal("PredictAt disagrees with Predict")
	}
	bare := &Report{Space: report.Space}
	if _, err := bare.Predict(vals); err == nil {
		t.Fatal("report without decomposition accepted")
	}
}
