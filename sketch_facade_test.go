package m2td

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/eval"
)

// sketchConfig is smallConfig with the sketch fast path enabled.
func sketchConfig(keep float64) Config {
	cfg := smallConfig()
	cfg.Sketch = SketchConfig{KeepFrac: keep}
	return cfg
}

func TestRunSketchRoundTrip(t *testing.T) {
	report, err := Run(sketchConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	st := report.SketchStats
	if st == nil {
		t.Fatal("SketchStats missing from a sketched run")
	}
	if st.KeepFrac != 0.5 {
		t.Fatalf("KeepFrac = %v, want 0.5", st.KeepFrac)
	}
	if st.Seed != 7 {
		t.Fatalf("Seed = %v, want the Config.Seed default 7", st.Seed)
	}
	for name, s := range map[string]struct{ in, kept int }{
		"sub1": {st.Sub1.InputNNZ, st.Sub1.Kept},
		"sub2": {st.Sub2.InputNNZ, st.Sub2.Kept},
		"join": {st.Join.InputNNZ, st.Join.Kept},
	} {
		if s.in <= 0 || s.kept <= 0 || s.kept > s.in {
			t.Fatalf("%s sketch stats out of range: kept %d of %d", name, s.kept, s.in)
		}
	}
	// JoinCells still reports the full stitched join, not the sketch.
	if report.JoinCells != st.Join.InputNNZ {
		t.Fatalf("JoinCells = %d, want the full join nnz %d", report.JoinCells, st.Join.InputNNZ)
	}
	if math.IsNaN(report.Accuracy) || report.Accuracy >= 1 {
		t.Fatalf("accuracy = %v", report.Accuracy)
	}
}

func TestRunSketchKeepAllMatchesPlain(t *testing.T) {
	plain, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(sketchConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plain.Accuracy) != math.Float64bits(full.Accuracy) {
		t.Fatalf("KeepFrac=1 accuracy %v != plain %v", full.Accuracy, plain.Accuracy)
	}
	for i, v := range plain.Decomposition.Core.Data {
		if math.Float64bits(v) != math.Float64bits(full.Decomposition.Core.Data[i]) {
			t.Fatalf("KeepFrac=1 core differs from plain at cell %d", i)
		}
	}
	st := full.SketchStats
	if st == nil || st.Join.Kept != st.Join.InputNNZ || st.Join.Dropped() != 0 {
		t.Fatalf("KeepFrac=1 should report a full keep, got %+v", st)
	}
}

func TestRunSketchBitStableAcrossParallel(t *testing.T) {
	run := func(parallel int) *Report {
		cfg := sketchConfig(0.3)
		cfg.SkipAccuracy = true
		cfg.Parallel = parallel
		report, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	serial := run(1)
	for _, p := range []int{2, 3} {
		got := run(p)
		if *got.SketchStats != *serial.SketchStats {
			t.Fatalf("Parallel=%d sketch stats %+v != serial %+v", p, got.SketchStats, serial.SketchStats)
		}
		for i, v := range serial.Decomposition.Core.Data {
			if math.Float64bits(v) != math.Float64bits(got.Decomposition.Core.Data[i]) {
				t.Fatalf("Parallel=%d sketched core differs from serial at cell %d", p, i)
			}
		}
	}
}

func TestRunSketchValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"frac>1":   sketchConfig(1.5),
		"frac<0":   sketchConfig(-0.1),
		"workers":  func() Config { c := sketchConfig(0.5); c.Workers = 2; return c }(),
		"factored": func() Config { c := sketchConfig(0.5); c.Factored = true; return c }(),
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: invalid sketch config accepted", name)
		} else if !strings.Contains(err.Error(), "Sketch") {
			t.Fatalf("%s: error %q does not name the Sketch config", name, err)
		}
	}
}

func TestBaselineSketch(t *testing.T) {
	base, err := Baseline(sketchConfig(0.5), "random", 60)
	if err != nil {
		t.Fatal(err)
	}
	st := base.SketchStats
	if st == nil {
		t.Fatal("SketchStats missing from a sketched baseline")
	}
	if st.Join.InputNNZ <= 0 || st.Join.Kept <= 0 || st.Join.Kept > st.Join.InputNNZ {
		t.Fatalf("baseline sketch stats out of range: %+v", st.Join)
	}
	// A baseline has one tensor: the sub-tensor slots stay zero.
	if st.Sub1.InputNNZ != 0 || st.Sub2.InputNNZ != 0 {
		t.Fatalf("baseline filled sub-tensor sketch stats: %+v", st)
	}
}

func TestDecomposeCtxSketch(t *testing.T) {
	space, err := eval.SpaceFor("double-pendulum", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(space, 0, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decompose(part, "M2TD-SELECT", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sketch != nil {
		t.Fatalf("unsketched decomposition carries a SketchReport: %+v", res.Sketch)
	}
	sres, err := DecomposeCtx(context.Background(), part, DecomposeOptions{
		Rank:   2,
		Sketch: SketchConfig{KeepFrac: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Sketch == nil || sres.Sketch.Seed != 1 {
		t.Fatalf("sketched building block report = %+v, want defaulted seed 1", sres.Sketch)
	}
	if _, err := DecomposeCtx(context.Background(), part, DecomposeOptions{
		Rank:     2,
		Factored: true,
		Sketch:   SketchConfig{KeepFrac: 0.5},
	}); err == nil {
		t.Fatal("Factored+Sketch accepted by the building block")
	}
}
