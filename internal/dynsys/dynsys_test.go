package dynsys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamValueGrid(t *testing.T) {
	p := Param{Name: "x", Min: 0, Max: 10}
	if got := p.Value(0, 11); got != 0 {
		t.Fatalf("Value(0) = %v, want 0", got)
	}
	if got := p.Value(10, 11); got != 10 {
		t.Fatalf("Value(10) = %v, want 10", got)
	}
	if got := p.Value(5, 11); got != 5 {
		t.Fatalf("Value(5) = %v, want 5", got)
	}
	if got := p.Value(0, 1); got != 5 {
		t.Fatalf("Value with resolution 1 = %v, want midpoint 5", got)
	}
}

func TestDistance(t *testing.T) {
	if got := Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Fatalf("Distance = %v, want 5", got)
	}
	if got := Distance([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("Distance to self = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched dims did not panic")
		}
	}()
	Distance([]float64{1}, []float64{1, 2})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"double-pendulum", "triple-pendulum", "lorenz", "seir"} {
		sys, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sys.Name() != name {
			t.Fatalf("Name() = %q, want %q", sys.Name(), name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown system should error")
	}
	if len(All()) != 4 {
		t.Fatal("All() should return four systems")
	}
}

func TestAllSystemsHaveFourParams(t *testing.T) {
	// The paper's evaluation uses 5-mode tensors: 4 simulation parameters
	// plus time.
	for _, sys := range All() {
		if got := len(sys.Params()); got != 4 {
			t.Errorf("%s has %d params, want 4", sys.Name(), got)
		}
		for _, p := range sys.Params() {
			if p.Min >= p.Max {
				t.Errorf("%s param %s has empty range [%v, %v]", sys.Name(), p.Name, p.Min, p.Max)
			}
		}
	}
}

func TestTrajectoryShapes(t *testing.T) {
	for _, sys := range All() {
		ref := ReferenceParams(sys)
		traj := sys.Trajectory(ref, 7)
		if len(traj) != 7 {
			t.Errorf("%s: %d samples, want 7", sys.Name(), len(traj))
		}
		for i, st := range traj {
			if len(st) != sys.StateDim() {
				t.Errorf("%s sample %d: state dim %d, want %d", sys.Name(), i, len(st), sys.StateDim())
			}
			for _, v := range st {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s sample %d: non-finite state %v", sys.Name(), i, st)
				}
			}
		}
	}
}

func TestTrajectoryDeterministic(t *testing.T) {
	for _, sys := range All() {
		vals := ReferenceParams(sys)
		a := sys.Trajectory(vals, 5)
		b := sys.Trajectory(vals, 5)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Errorf("%s: trajectory not deterministic", sys.Name())
				}
			}
		}
	}
}

func TestCellValuesZeroAtReference(t *testing.T) {
	for _, sys := range All() {
		ref := Reference(sys, 6)
		cells := CellValues(sys, ReferenceParams(sys), ref)
		for tIdx, v := range cells {
			if v != 0 {
				t.Errorf("%s: distance to self at t=%d is %v, want 0", sys.Name(), tIdx, v)
			}
		}
	}
}

func TestCellValuesPositiveOffReference(t *testing.T) {
	for _, sys := range All() {
		ref := Reference(sys, 6)
		vals := ReferenceParams(sys)
		// Perturb the first parameter to the top of its range.
		vals[0] = sys.Params()[0].Max
		cells := CellValues(sys, vals, ref)
		var total float64
		for _, v := range cells {
			if v < 0 {
				t.Errorf("%s: negative distance %v", sys.Name(), v)
			}
			total += v
		}
		if total == 0 {
			t.Errorf("%s: perturbed trajectory identical to reference", sys.Name())
		}
	}
}

func TestDoublePendulumEnergyConservation(t *testing.T) {
	dp := NewDoublePendulum()
	m1, m2 := 1.2, 0.8
	vals := []float64{0.9, -0.5, m1, m2}
	y0 := []float64{0.9, 0, -0.5, 0}
	e0 := dp.Energy(y0, m1, m2)
	y1 := dp.FullState(vals, 4000)
	e1 := dp.Energy(y1, m1, m2)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-5 {
		t.Fatalf("double pendulum energy drift %v (E %v -> %v)", rel, e0, e1)
	}
}

func TestDoublePendulumSmallAngleFrequency(t *testing.T) {
	// For tiny initial angles with m2 → 0, the first pendulum behaves like
	// a simple pendulum with ω = sqrt(g/L): after one period it returns.
	dp := NewDoublePendulum()
	dp.Horizon = 2 * math.Pi / math.Sqrt(dp.G/dp.L)
	y := dp.FullState([]float64{0.01, 0.01, 1, 1e-6}, 4000)
	if math.Abs(y[0]-0.01) > 1e-3 {
		t.Fatalf("small-angle period mismatch: θ₁ = %v, want ≈0.01", y[0])
	}
}

func TestTriplePendulumEnergyConservedWithoutFriction(t *testing.T) {
	tp := NewTriplePendulum()
	vals := []float64{0.7, -0.3, 0.4, 0} // zero friction
	y0 := []float64{0.7, -0.3, 0.4, 0, 0, 0}
	e0 := tp.Energy(y0)
	y1 := tp.FullState(vals, 4000)
	e1 := tp.Energy(y1)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-4 {
		t.Fatalf("triple pendulum energy drift %v (E %v -> %v)", rel, e0, e1)
	}
}

func TestTriplePendulumFrictionDissipates(t *testing.T) {
	tp := NewTriplePendulum()
	y0 := []float64{0.7, -0.3, 0.4, 0, 0, 0}
	e0 := tp.Energy(y0)
	yf := tp.FullState([]float64{0.7, -0.3, 0.4, 0.8}, 4000)
	ef := tp.Energy(yf)
	if ef >= e0 {
		t.Fatalf("friction did not dissipate energy: %v -> %v", e0, ef)
	}
}

func TestTriplePendulumRestsAtEquilibrium(t *testing.T) {
	// Starting hanging straight down with no velocity: stays there.
	tp := NewTriplePendulum()
	traj := tp.Trajectory([]float64{0, 0, 0, 0.5}, 5)
	for _, st := range traj {
		for _, th := range st {
			if math.Abs(th) > 1e-10 {
				t.Fatalf("pendulum moved from equilibrium: %v", st)
			}
		}
	}
}

func TestLorenzFixedPoint(t *testing.T) {
	// For ρ < 1 the origin attracts; starting near it, the state decays.
	lz := NewLorenz()
	lz.Horizon = 20
	traj := lz.Trajectory([]float64{0.5, 10, 8.0 / 3, 0.5}, 4)
	last := traj[len(traj)-1]
	for _, v := range last {
		if math.Abs(v) > 1e-3 {
			t.Fatalf("Lorenz with ρ<1 did not decay to origin: %v", last)
		}
	}
}

func TestLorenzSensitivity(t *testing.T) {
	// Chaotic regime: nearby initial conditions separate by an order of
	// magnitude over a long horizon.
	lz := NewLorenz()
	lz.Horizon = 12
	a := lz.Trajectory([]float64{1.0, 10, 8.0 / 3, 28}, 24)
	b := lz.Trajectory([]float64{1.001, 10, 8.0 / 3, 28}, 24)
	d0 := Distance(a[0], b[0])
	dEnd := Distance(a[23], b[23])
	if dEnd < 5*d0 {
		t.Fatalf("chaotic trajectories did not diverge: %v -> %v", d0, dEnd)
	}
}

// Property: cell values are non-negative and finite for random in-range
// parameter settings, for every system.
func TestCellValuesWellFormedQuick(t *testing.T) {
	for _, sys := range All() {
		sys := sys
		ref := Reference(sys, 4)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			ps := sys.Params()
			vals := make([]float64, len(ps))
			for i, p := range ps {
				vals[i] = p.Min + rng.Float64()*(p.Max-p.Min)
			}
			for _, v := range CellValues(sys, vals, ref) {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(60))}); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
}

func TestSEIRConservesPopulation(t *testing.T) {
	// The four compartments always sum to 1.
	sr := NewSEIR()
	traj := sr.Trajectory([]float64{0.4, 0.3, 0.1, 0.01}, 10)
	for i, st := range traj {
		total := st[0] + st[1] + st[2] + st[3]
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("sample %d: compartments sum to %v", i, total)
		}
		for c, v := range st {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("sample %d compartment %d = %v outside [0,1]", i, c, v)
			}
		}
	}
}

func TestSEIREpidemicRegimes(t *testing.T) {
	sr := NewSEIR()
	// R0 = beta/gamma >> 1: most of the population eventually recovers.
	epidemic := sr.Trajectory([]float64{0.6, 0.5, 0.05, 0.01}, 8)
	finalR := epidemic[7][3]
	if finalR < 0.5 {
		t.Fatalf("R0>>1: recovered fraction %v, want > 0.5", finalR)
	}
	// R0 < 1: the outbreak dies out, most stay susceptible.
	dying := sr.Trajectory([]float64{0.1, 0.5, 0.3, 0.01}, 8)
	finalS := dying[7][0]
	if finalS < 0.8 {
		t.Fatalf("R0<1: susceptible fraction %v, want > 0.8", finalS)
	}
}

func TestSEIRInfectionPeaks(t *testing.T) {
	// In the epidemic regime the infectious fraction rises then falls.
	sr := NewSEIR()
	traj := sr.Trajectory([]float64{0.5, 0.3, 0.08, 0.005}, 60)
	peak, peakAt := 0.0, -1
	for i, st := range traj {
		if st[2] > peak {
			peak = st[2]
			peakAt = i
		}
	}
	if peakAt <= 0 || peakAt >= 59 {
		t.Fatalf("infection peak at boundary sample %d", peakAt)
	}
	if peak < 0.05 {
		t.Fatalf("peak infectious fraction %v too small", peak)
	}
}
