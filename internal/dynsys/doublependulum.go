package dynsys

import (
	"math"

	"repro/internal/ode"
)

// DoublePendulum is the equal-length double pendulum of Figure 2. Its four
// variable simulation parameters (Section VII-A) are the initial angles
// φ₁, φ₂ and the bob weights m₁, m₂; rod lengths and gravity are physical
// constants. The observed state is the two pendulum angles (θ₁, θ₂).
type DoublePendulum struct {
	// L is the common rod length; G the gravitational acceleration.
	L, G float64
	// Horizon is the simulated time span in seconds.
	Horizon float64
	// MaxStep caps the RK4 step size; the per-sample step count is derived
	// from it so integration accuracy does not depend on the time-mode
	// resolution.
	MaxStep float64
}

// NewDoublePendulum returns a double pendulum with unit rods, Earth
// gravity, and a 5-second horizon.
func NewDoublePendulum() *DoublePendulum {
	return &DoublePendulum{L: 1, G: 9.81, Horizon: 5, MaxStep: 0.01}
}

// Name implements System.
func (dp *DoublePendulum) Name() string { return "double-pendulum" }

// Params implements System. Angles span most of the upper half-plane;
// masses span a factor of ~5.
func (dp *DoublePendulum) Params() []Param {
	return []Param{
		{Name: "phi1", Min: -2.0, Max: 2.0},
		{Name: "phi2", Min: -2.0, Max: 2.0},
		{Name: "m1", Min: 0.5, Max: 2.5},
		{Name: "m2", Min: 0.5, Max: 2.5},
	}
}

// StateDim implements System: the observed state is (θ₁, θ₂).
func (dp *DoublePendulum) StateDim() int { return 2 }

// Trajectory implements System. vals = (φ₁, φ₂, m₁, m₂).
func (dp *DoublePendulum) Trajectory(vals []float64, numSamples int) [][]float64 {
	phi1, phi2, m1, m2 := vals[0], vals[1], vals[2], vals[3]
	l, g := dp.L, dp.G
	deriv := func(t float64, y, dst []float64) {
		th1, w1, th2, w2 := y[0], y[1], y[2], y[3]
		delta := th1 - th2
		sinD, cosD := math.Sin(delta), math.Cos(delta)
		den := 2*m1 + m2 - m2*math.Cos(2*th1-2*th2)
		// Standard equal-length double-pendulum equations of motion.
		dst[0] = w1
		dst[1] = (-g*(2*m1+m2)*math.Sin(th1) -
			m2*g*math.Sin(th1-2*th2) -
			2*sinD*m2*(w2*w2*l+w1*w1*l*cosD)) / (l * den)
		dst[2] = w2
		dst[3] = (2 * sinD * (w1*w1*l*(m1+m2) +
			g*(m1+m2)*math.Cos(th1) +
			w2*w2*l*m2*cosD)) / (l * den)
	}
	y0 := []float64{phi1, 0, phi2, 0}
	full := ode.Trajectory(deriv, 0, dp.Horizon, y0, numSamples, stepsPerSample(dp.Horizon, numSamples, dp.MaxStep))
	out := make([][]float64, numSamples)
	for i, y := range full {
		out[i] = []float64{y[0], y[2]}
	}
	return out
}

// Energy returns the total mechanical energy for a full internal state
// (θ₁, ω₁, θ₂, ω₂); used by tests to validate the equations of motion
// (energy is conserved in the frictionless system).
func (dp *DoublePendulum) Energy(y []float64, m1, m2 float64) float64 {
	th1, w1, th2, w2 := y[0], y[1], y[2], y[3]
	l, g := dp.L, dp.G
	v1sq := l * l * w1 * w1
	v2sq := l*l*w1*w1 + l*l*w2*w2 + 2*l*l*w1*w2*math.Cos(th1-th2)
	ke := 0.5*m1*v1sq + 0.5*m2*v2sq
	y1 := -l * math.Cos(th1)
	y2 := y1 - l*math.Cos(th2)
	pe := m1*g*y1 + m2*g*y2
	return ke + pe
}

// FullState integrates the pendulum and returns the complete internal
// state (θ₁, ω₁, θ₂, ω₂) at the end of the horizon; used by energy tests.
func (dp *DoublePendulum) FullState(vals []float64, steps int) []float64 {
	phi1, phi2, m1, m2 := vals[0], vals[1], vals[2], vals[3]
	l, g := dp.L, dp.G
	deriv := func(t float64, y, dst []float64) {
		th1, w1, th2, w2 := y[0], y[1], y[2], y[3]
		delta := th1 - th2
		sinD, cosD := math.Sin(delta), math.Cos(delta)
		den := 2*m1 + m2 - m2*math.Cos(2*th1-2*th2)
		dst[0] = w1
		dst[1] = (-g*(2*m1+m2)*math.Sin(th1) -
			m2*g*math.Sin(th1-2*th2) -
			2*sinD*m2*(w2*w2*l+w1*w1*l*cosD)) / (l * den)
		dst[2] = w2
		dst[3] = (2 * sinD * (w1*w1*l*(m1+m2) +
			g*(m1+m2)*math.Cos(th1) +
			w2*w2*l*m2*cosD)) / (l * den)
	}
	return ode.RK4(deriv, 0, dp.Horizon, []float64{phi1, 0, phi2, 0}, steps)
}
