// Package dynsys implements the dynamical systems the paper simulates —
// the double pendulum, the triple pendulum with friction, and the Lorenz
// system from its evaluation, plus the SEIR epidemic model its
// introduction motivates — behind a common System interface.
//
// Each system exposes exactly four variable simulation parameters
// (Section VII-A) and produces a multivariate time series by RK4
// integration. Ensemble tensor cells store, per Section VII-B, the
// Euclidean distance between a simulated trajectory's state and a
// designated reference ("observed") trajectory's state at each timestamp.
package dynsys

import (
	"context"
	"fmt"
	"math"
)

// Param describes one simulation parameter and its value range.
type Param struct {
	Name string
	Min  float64
	Max  float64
}

// Value returns the parameter value at grid position i of a grid with the
// given resolution (linearly spaced over [Min, Max], inclusive).
func (p Param) Value(i, resolution int) float64 {
	if resolution <= 1 {
		return (p.Min + p.Max) / 2
	}
	return p.Min + (p.Max-p.Min)*float64(i)/float64(resolution-1)
}

// System is a simulatable dynamic process with a fixed set of variable
// input parameters.
type System interface {
	// Name identifies the system ("double-pendulum", …).
	Name() string
	// Params returns the variable simulation parameters, in mode order.
	Params() []Param
	// StateDim is the dimensionality of the observed state vector.
	StateDim() int
	// Trajectory simulates the system for the given parameter values and
	// returns the observed state at numSamples evenly spaced timestamps.
	Trajectory(vals []float64, numSamples int) [][]float64
}

// CtxSystem is implemented by systems whose simulations are cancellable
// and fallible — fault-injection wrappers (internal/faults), external
// solvers, remote workers. The pipeline's simulation fan-out always calls
// through TrajectoryCtx (via the package-level TrajectoryCtx helper), so a
// wrapped system's failures surface as errors that the retry/quarantine
// machinery can handle, while the plain Trajectory path stays infallible
// for reference trajectories and ground-truth construction.
type CtxSystem interface {
	System
	// TrajectoryCtx simulates like Trajectory but may fail and must honour
	// context cancellation.
	TrajectoryCtx(ctx context.Context, vals []float64, numSamples int) ([][]float64, error)
}

// TrajectoryCtx simulates sys through the fallible path when it implements
// CtxSystem, and otherwise falls back to the infallible Trajectory after a
// context check. This is the single entry point the pipeline runtime uses
// for ensemble simulation runs.
func TrajectoryCtx(ctx context.Context, sys System, vals []float64, numSamples int) ([][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cs, ok := sys.(CtxSystem); ok {
		return cs.TrajectoryCtx(ctx, vals, numSamples)
	}
	return sys.Trajectory(vals, numSamples), nil
}

// Distance returns the Euclidean distance between two state vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dynsys: state dims differ: %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Reference produces the "observed system" trajectory for a system: the
// simulation at the designated reference parameter values. Ensemble cells
// measure distance to this trajectory.
func Reference(sys System, numSamples int) [][]float64 {
	return sys.Trajectory(ReferenceParams(sys), numSamples)
}

// ReferenceParams returns the reference parameter setting: 40% of the way
// through each parameter range. Deliberately off the grid midpoint so the
// reference does not coincide with the fixing constants used by
// PF-partitioning.
func ReferenceParams(sys System) []float64 {
	ps := sys.Params()
	vals := make([]float64, len(ps))
	for i, p := range ps {
		vals[i] = p.Min + 0.4*(p.Max-p.Min)
	}
	return vals
}

// CellValues runs one simulation and returns the tensor cell values for
// all numSamples timestamps: the Euclidean distance between the simulated
// state and the reference state at each timestamp. ref must come from
// Reference(sys, numSamples).
func CellValues(sys System, vals []float64, ref [][]float64) []float64 {
	numSamples := len(ref)
	traj := sys.Trajectory(vals, numSamples)
	out := make([]float64, numSamples)
	for t := range out {
		out[t] = Distance(traj[t], ref[t])
	}
	return out
}

// CellValuesCtx is CellValues through the cancellable, fallible simulation
// path: the trajectory is obtained via TrajectoryCtx, so wrapped systems
// can fail, inject faults, or be cancelled mid-campaign. Divergent
// (non-finite) trajectories flow through untouched — quarantining them is
// the ingest layer's job (tensor.Sparse RejectNonFinite), which keeps the
// failure accounting in one place.
func CellValuesCtx(ctx context.Context, sys System, vals []float64, ref [][]float64) ([]float64, error) {
	numSamples := len(ref)
	traj, err := TrajectoryCtx(ctx, sys, vals, numSamples)
	if err != nil {
		return nil, err
	}
	out := make([]float64, numSamples)
	for t := range out {
		out[t] = Distance(traj[t], ref[t])
	}
	return out, nil
}

// ByName returns the named system with default physical constants.
// Recognised names: "double-pendulum", "triple-pendulum", "lorenz",
// "seir".
func ByName(name string) (System, error) {
	switch name {
	case "double-pendulum":
		return NewDoublePendulum(), nil
	case "triple-pendulum":
		return NewTriplePendulum(), nil
	case "lorenz":
		return NewLorenz(), nil
	case "seir":
		return NewSEIR(), nil
	default:
		return nil, fmt.Errorf("dynsys: unknown system %q", name)
	}
}

// All returns every built-in system: the three the paper evaluates, in
// its order, plus the SEIR epidemic model its introduction motivates.
func All() []System {
	return []System{NewDoublePendulum(), NewTriplePendulum(), NewLorenz(), NewSEIR()}
}

// stepsPerSample returns the number of fixed RK4 sub-steps needed so that
// no step exceeds maxStep, given the interval between output samples.
// Integration accuracy must not depend on how coarsely the time mode is
// sampled, so integrators derive their step count from a maximum step
// size rather than from the sample count.
func stepsPerSample(horizon float64, numSamples int, maxStep float64) int {
	dt := horizon / float64(numSamples)
	n := int(math.Ceil(dt / maxStep))
	if n < 1 {
		n = 1
	}
	return n
}
