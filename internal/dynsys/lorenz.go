package dynsys

import "repro/internal/ode"

// Lorenz is the Lorenz system of Section VII-A, notable for chaotic
// solutions at certain parameter settings. Its four variable simulation
// parameters are the initial z coordinate z₀ and the system parameters
// σ, β, ρ; the initial x and y coordinates are physical constants. The
// observed state is the full position (x, y, z).
//
//	x' = σ(y − x)
//	y' = x(ρ − z) − y
//	z' = xy − βz
type Lorenz struct {
	// X0, Y0 are the fixed initial x and y coordinates.
	X0, Y0 float64
	// Horizon is the simulated time span.
	Horizon float64
	// MaxStep caps the RK4 step size; the per-sample step count is derived
	// from it so integration accuracy does not depend on the time-mode
	// resolution.
	MaxStep float64
}

// NewLorenz returns a Lorenz system starting at (1, 1, z₀) over a
// 2-second horizon (long enough for trajectories to separate, short
// enough that chaotic divergence does not saturate every distance).
func NewLorenz() *Lorenz {
	return &Lorenz{X0: 1, Y0: 1, Horizon: 2, MaxStep: 0.005}
}

// Name implements System.
func (lz *Lorenz) Name() string { return "lorenz" }

// Params implements System. Ranges straddle the classic chaotic setting
// (σ=10, β=8/3, ρ=28).
func (lz *Lorenz) Params() []Param {
	return []Param{
		{Name: "z0", Min: 0.5, Max: 1.5},
		{Name: "sigma", Min: 8, Max: 12},
		{Name: "beta", Min: 2, Max: 3.5},
		{Name: "rho", Min: 20, Max: 35},
	}
}

// StateDim implements System: the observed state is (x, y, z).
func (lz *Lorenz) StateDim() int { return 3 }

// Trajectory implements System. vals = (z₀, σ, β, ρ).
func (lz *Lorenz) Trajectory(vals []float64, numSamples int) [][]float64 {
	z0, sigma, beta, rho := vals[0], vals[1], vals[2], vals[3]
	deriv := func(t float64, y, dst []float64) {
		dst[0] = sigma * (y[1] - y[0])
		dst[1] = y[0]*(rho-y[2]) - y[1]
		dst[2] = y[0]*y[1] - beta*y[2]
	}
	y0 := []float64{lz.X0, lz.Y0, z0}
	return ode.Trajectory(deriv, 0, lz.Horizon, y0, numSamples, stepsPerSample(lz.Horizon, numSamples, lz.MaxStep))
}
