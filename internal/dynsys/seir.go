package dynsys

import "repro/internal/ode"

// SEIR is a compartmental epidemic model (susceptible → exposed →
// infectious → recovered), the kind of process the paper's introduction
// motivates with STEM-based epidemic-spread simulation and intervention
// assessment. Its four variable simulation parameters are the
// transmission rate β, the incubation rate σ, the recovery rate γ, and
// the initial infectious fraction i₀. The observed state is the
// compartment distribution (s, e, i, r).
//
//	s' = −β·s·i
//	e' = β·s·i − σ·e
//	i' = σ·e − γ·i
//	r' = γ·i
type SEIR struct {
	// Horizon is the simulated time span in days.
	Horizon float64
	// MaxStep caps the RK4 step size.
	MaxStep float64
}

// NewSEIR returns an SEIR model over a 60-day horizon.
func NewSEIR() *SEIR {
	return &SEIR{Horizon: 60, MaxStep: 0.25}
}

// Name implements System.
func (sr *SEIR) Name() string { return "seir" }

// Params implements System. Ranges straddle R₀ = β/γ crossing 1, so the
// ensemble spans both dying-out and epidemic regimes.
func (sr *SEIR) Params() []Param {
	return []Param{
		{Name: "beta", Min: 0.1, Max: 0.6},
		{Name: "sigma", Min: 0.1, Max: 0.5},
		{Name: "gamma", Min: 0.05, Max: 0.3},
		{Name: "i0", Min: 0.001, Max: 0.05},
	}
}

// StateDim implements System: the observed state is (s, e, i, r).
func (sr *SEIR) StateDim() int { return 4 }

// Trajectory implements System. vals = (β, σ, γ, i₀).
func (sr *SEIR) Trajectory(vals []float64, numSamples int) [][]float64 {
	beta, sigma, gamma, i0 := vals[0], vals[1], vals[2], vals[3]
	deriv := func(t float64, y, dst []float64) {
		s, e, i := y[0], y[1], y[2]
		inf := beta * s * i
		dst[0] = -inf
		dst[1] = inf - sigma*e
		dst[2] = sigma*e - gamma*i
		dst[3] = gamma * i
	}
	y0 := []float64{1 - i0, 0, i0, 0}
	return ode.Trajectory(deriv, 0, sr.Horizon, y0, numSamples, stepsPerSample(sr.Horizon, numSamples, sr.MaxStep))
}
