package dynsys

import (
	"math"

	"repro/internal/ode"
)

// TriplePendulum is the triple pendulum with variable friction of
// Section VII-A: three serial point-mass pendulums on massless unit rods.
// Its four variable simulation parameters are the initial angles
// φ₁, φ₂, φ₃ and the friction coefficient f of the whole system. The
// observed state is the three angles (θ₁, θ₂, θ₃).
//
// Dynamics follow the Lagrangian formulation for a serial pendulum chain:
//
//	M(θ)·θ̈ = b(θ, θ̇) − f·θ̇
//
// with mass matrix M_ij = c_ij·cos(θ_i−θ_j), c_ij = Σ_{k ≥ max(i,j)} m_k
// (unit rods), and b_i = −Σ_j c_ij·sin(θ_i−θ_j)·θ̇_j² − (Σ_{k≥i} m_k)·g·sin θ_i.
// The 3×3 system is solved by inlined Gaussian elimination at every
// derivative evaluation.
type TriplePendulum struct {
	// Masses holds the three bob masses (constants; friction is the
	// variable parameter in this system).
	Masses [3]float64
	// G is gravitational acceleration; Horizon the simulated span.
	G, Horizon float64
	// MaxStep caps the RK4 step size; the per-sample step count is derived
	// from it so integration accuracy does not depend on the time-mode
	// resolution.
	MaxStep float64
}

// NewTriplePendulum returns a unit-mass triple pendulum with Earth gravity
// and a 5-second horizon.
func NewTriplePendulum() *TriplePendulum {
	return &TriplePendulum{Masses: [3]float64{1, 1, 1}, G: 9.81, Horizon: 5, MaxStep: 0.01}
}

// Name implements System.
func (tp *TriplePendulum) Name() string { return "triple-pendulum" }

// Params implements System.
func (tp *TriplePendulum) Params() []Param {
	return []Param{
		{Name: "phi1", Min: -1.5, Max: 1.5},
		{Name: "phi2", Min: -1.5, Max: 1.5},
		{Name: "phi3", Min: -1.5, Max: 1.5},
		{Name: "f", Min: 0.0, Max: 1.0},
	}
}

// StateDim implements System: the observed state is (θ₁, θ₂, θ₃).
func (tp *TriplePendulum) StateDim() int { return 3 }

// deriv returns the derivative function for the given friction value.
// The 3×3 mass-matrix solve is inlined (Gaussian elimination with partial
// pivoting on stack arrays) because it runs on every RK4 stage; routing it
// through the general mat.Solve would allocate four times per evaluation.
func (tp *TriplePendulum) deriv(friction float64) ode.Derivative {
	m := tp.Masses
	g := tp.G
	// c_ij = Σ_{k ≥ max(i,j)} m_k with unit rod lengths.
	tail := [3]float64{m[0] + m[1] + m[2], m[1] + m[2], m[2]}
	return func(t float64, y, dst []float64) {
		th := y[0:3]
		w := y[3:6]
		var a [3][4]float64 // augmented system [M | b]
		for i := 0; i < 3; i++ {
			var b float64
			for j := 0; j < 3; j++ {
				c := tail[i]
				if j > i {
					c = tail[j]
				}
				d := th[i] - th[j]
				a[i][j] = c * math.Cos(d)
				b -= c * math.Sin(d) * w[j] * w[j]
			}
			b -= tail[i] * g * math.Sin(th[i])
			b -= friction * w[i]
			a[i][3] = b
		}
		// Gaussian elimination with partial pivoting. The mass matrix of a
		// physical pendulum chain is positive definite, so pivots only
		// vanish after a numerical blow-up; in that case damp to zero
		// acceleration instead of propagating NaNs.
		for k := 0; k < 3; k++ {
			p := k
			for i := k + 1; i < 3; i++ {
				if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
					p = i
				}
			}
			if a[p][k] == 0 {
				dst[0], dst[1], dst[2] = w[0], w[1], w[2]
				dst[3], dst[4], dst[5] = 0, 0, 0
				return
			}
			a[k], a[p] = a[p], a[k]
			inv := 1 / a[k][k]
			for i := k + 1; i < 3; i++ {
				f := a[i][k] * inv
				for j := k; j < 4; j++ {
					a[i][j] -= f * a[k][j]
				}
			}
		}
		acc2 := a[2][3] / a[2][2]
		acc1 := (a[1][3] - a[1][2]*acc2) / a[1][1]
		acc0 := (a[0][3] - a[0][1]*acc1 - a[0][2]*acc2) / a[0][0]
		dst[0], dst[1], dst[2] = w[0], w[1], w[2]
		dst[3], dst[4], dst[5] = acc0, acc1, acc2
	}
}

// Trajectory implements System. vals = (φ₁, φ₂, φ₃, f).
func (tp *TriplePendulum) Trajectory(vals []float64, numSamples int) [][]float64 {
	y0 := []float64{vals[0], vals[1], vals[2], 0, 0, 0}
	full := ode.Trajectory(tp.deriv(vals[3]), 0, tp.Horizon, y0, numSamples, stepsPerSample(tp.Horizon, numSamples, tp.MaxStep))
	out := make([][]float64, numSamples)
	for i, y := range full {
		out[i] = []float64{y[0], y[1], y[2]}
	}
	return out
}

// Energy returns the total mechanical energy for a full internal state
// (θ₁,θ₂,θ₃,ω₁,ω₂,ω₃); conserved when friction is zero.
func (tp *TriplePendulum) Energy(y []float64) float64 {
	th := y[0:3]
	w := y[3:6]
	m := tp.Masses
	g := tp.G
	// Bob velocities: v_k = Σ_{i ≤ k} rod_i angular velocity vectors.
	var ke, pe float64
	for k := 0; k < 3; k++ {
		var vx, vy, height float64
		for i := 0; i <= k; i++ {
			vx += w[i] * math.Cos(th[i])
			vy += w[i] * math.Sin(th[i])
			height -= math.Cos(th[i])
		}
		ke += 0.5 * m[k] * (vx*vx + vy*vy)
		pe += m[k] * g * height
	}
	return ke + pe
}

// FullState integrates and returns the complete internal state
// (θ₁,θ₂,θ₃,ω₁,ω₂,ω₃) at the end of the horizon.
func (tp *TriplePendulum) FullState(vals []float64, steps int) []float64 {
	y0 := []float64{vals[0], vals[1], vals[2], 0, 0, 0}
	return ode.RK4(tp.deriv(vals[3]), 0, tp.Horizon, y0, steps)
}
