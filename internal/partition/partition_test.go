package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
)

func tinySpace() *ensemble.Space {
	return ensemble.NewSpace(dynsys.NewDoublePendulum(), 4, 3)
}

// doublePendulumPairs keeps each pendulum's parameters in one sub-system:
// modes (φ1, φ2, m1, m2, t) pair as {0,2} and {1,3}.
var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

func TestConfigValidate(t *testing.T) {
	good := Config{Pivots: []int{4}, Free1: []int{0, 2}, Free2: []int{1, 3}, PivotFrac: 1, FreeFrac: 1}
	if err := good.Validate(5); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Pivots: []int{4}, Free1: []int{0, 2}, Free2: []int{1, 3}, PivotFrac: 0, FreeFrac: 1},    // P=0
		{Pivots: []int{4}, Free1: []int{0, 2}, Free2: []int{1, 3}, PivotFrac: 1, FreeFrac: 1.5},  // E>1
		{Pivots: []int{4}, Free1: []int{0, 2}, Free2: []int{1}, PivotFrac: 1, FreeFrac: 1},       // mode 3 missing
		{Pivots: []int{4}, Free1: []int{0, 2, 3}, Free2: []int{1, 3}, PivotFrac: 1, FreeFrac: 1}, // mode 3 twice
		{Pivots: []int{5}, Free1: []int{0, 1, 2}, Free2: []int{3, 4}, PivotFrac: 1, FreeFrac: 1}, // out of range
		{Pivots: nil, Free1: []int{0, 1, 4}, Free2: []int{2, 3}, PivotFrac: 1, FreeFrac: 1},      // no pivot
		{Pivots: []int{0, 1, 2, 3, 4}, Free1: nil, Free2: nil, PivotFrac: 1, FreeFrac: 1},        // no free
	}
	for i, cfg := range bad {
		if err := cfg.Validate(5); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigPairAware(t *testing.T) {
	// Pivot on time: the two pendulums' parameters split cleanly.
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	if len(cfg.Pivots) != 1 || cfg.Pivots[0] != 4 {
		t.Fatalf("Pivots = %v", cfg.Pivots)
	}
	got1 := append([]int(nil), cfg.Free1...)
	got2 := append([]int(nil), cfg.Free2...)
	sort.Ints(got1)
	sort.Ints(got2)
	halves := map[string]bool{
		"[0 2]": true, // pendulum 1
		"[1 3]": true, // pendulum 2
	}
	key := func(v []int) string {
		if len(v) != 2 {
			return "?"
		}
		return "[" + string(rune('0'+v[0])) + " " + string(rune('0'+v[1])) + "]"
	}
	if !halves[key(got1)] || !halves[key(got2)] || key(got1) == key(got2) {
		t.Fatalf("pair-aware split broken: %v | %v", got1, got2)
	}
}

func TestDefaultConfigEveryPivotValid(t *testing.T) {
	// Table VIII varies the pivot over all five modes; every resulting
	// config must be valid and keep intact pendulum pairs together.
	for pivot := 0; pivot < 5; pivot++ {
		cfg := DefaultConfig(5, pivot, doublePendulumPairs)
		if err := cfg.Validate(5); err != nil {
			t.Fatalf("pivot %d: %v", pivot, err)
		}
		// Whole pairs that survive the pivot must be in one half.
		for _, pair := range doublePendulumPairs {
			if pair[0] == pivot || pair[1] == pivot {
				continue
			}
			in1a, in1b := contains(cfg.Free1, pair[0]), contains(cfg.Free1, pair[1])
			if in1a != in1b {
				t.Fatalf("pivot %d split pair %v: Free1=%v Free2=%v", pivot, pair, cfg.Free1, cfg.Free2)
			}
		}
	}
}

func TestDefaultConfigNoPairs(t *testing.T) {
	cfg := DefaultConfig(5, 4, nil)
	if err := cfg.Validate(5); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Free1) != 2 || len(cfg.Free2) != 2 {
		t.Fatalf("unbalanced halves: %v | %v", cfg.Free1, cfg.Free2)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestGenerateFullDensity(t *testing.T) {
	space := tinySpace()
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	res, err := Generate(space, cfg, rand.New(rand.NewSource(80)))
	if err != nil {
		t.Fatal(err)
	}
	// Pivot = time: P configs = 3 timestamps; E = 4² free combos per side.
	if got := len(res.PivotConfigs); got != 3 {
		t.Fatalf("pivot configs = %d, want 3", got)
	}
	if got := len(res.Free1Configs); got != 16 {
		t.Fatalf("free1 configs = %d, want 16", got)
	}
	// Sub-tensors are fully dense over (t, pᵃ, pᵇ): 3·4·4 entries.
	if got := res.Sub1.Tensor.NNZ(); got != 48 {
		t.Fatalf("sub1 NNZ = %d, want 48", got)
	}
	// With pivot = t, each sub-system runs one simulation per free combo.
	if res.Sub1.NumSims != 16 || res.Sub2.NumSims != 16 {
		t.Fatalf("sims = %d, %d, want 16 each", res.Sub1.NumSims, res.Sub2.NumSims)
	}
	if res.NumSims != 32 {
		t.Fatalf("total sims = %d, want 32", res.NumSims)
	}
	// Modes: pivots first.
	if res.Sub1.Modes[0] != 4 || res.Sub1.NumPivots != 1 {
		t.Fatalf("sub1 modes = %v (pivots %d)", res.Sub1.Modes, res.Sub1.NumPivots)
	}
}

func TestGenerateCellsMatchGroundTruth(t *testing.T) {
	space := tinySpace()
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	res, err := Generate(space, cfg, rand.New(rand.NewSource(81)))
	if err != nil {
		t.Fatal(err)
	}
	y := space.GroundTruth()
	def := space.DefaultIndex()
	// Every sub-tensor cell must equal the ground truth at the sub-system's
	// coordinates with the other half's parameters fixed at the default.
	check := func(sub *SubEnsemble) {
		full := make([]int, 5)
		sub.Tensor.Each(func(idx []int, v float64) {
			for m := 0; m < 4; m++ {
				full[m] = def
			}
			full[4] = space.TimeSamples / 2
			for i, m := range sub.Modes {
				full[m] = idx[i]
			}
			want := y.Data[y.Shape.LinearIndex(full)]
			if math.Abs(want-v) > 1e-12 {
				t.Fatalf("sub cell %v = %v, truth %v", idx, v, want)
			}
		})
	}
	check(res.Sub1)
	check(res.Sub2)
}

func TestGenerateReducedPivotDensity(t *testing.T) {
	space := tinySpace()
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	cfg.PivotFrac = 0.5
	res, err := Generate(space, cfg, rand.New(rand.NewSource(82)))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.5 · 3) = 2 pivot configs.
	if got := len(res.PivotConfigs); got != 2 {
		t.Fatalf("pivot configs = %d, want 2", got)
	}
	if got := res.Sub1.Tensor.NNZ(); got != 2*16 {
		t.Fatalf("sub1 NNZ = %d, want 32", got)
	}
	// With pivot = t, fewer timestamps do not reduce simulations.
	if res.Sub1.NumSims != 16 {
		t.Fatalf("sims = %d, want 16", res.Sub1.NumSims)
	}
}

func TestGenerateReducedFreeDensity(t *testing.T) {
	space := tinySpace()
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = 0.25
	res, err := Generate(space, cfg, rand.New(rand.NewSource(83)))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.25 · 16) = 4 free configs per side.
	if got := len(res.Free1Configs); got != 4 {
		t.Fatalf("free1 configs = %d, want 4", got)
	}
	if res.Sub1.NumSims != 4 {
		t.Fatalf("sub1 sims = %d, want 4", res.Sub1.NumSims)
	}
	if got := res.Sub1.Tensor.NNZ(); got != 3*4 {
		t.Fatalf("sub1 NNZ = %d, want 12", got)
	}
}

func TestGenerateParameterPivot(t *testing.T) {
	// Pivot on φ1 (mode 0): sub-systems are {φ1, m1, t} and {φ1, φ2, m2}.
	space := tinySpace()
	cfg := DefaultConfig(5, 0, doublePendulumPairs)
	res, err := Generate(space, cfg, rand.New(rand.NewSource(84)))
	if err != nil {
		t.Fatal(err)
	}
	// Pivot configs = 4 grid values of φ1.
	if got := len(res.PivotConfigs); got != 4 {
		t.Fatalf("pivot configs = %d, want 4", got)
	}
	// The sub-system whose modes exclude time must still produce valid
	// cells (time fixed at the default stamp).
	sub := res.Sub1
	if contains(sub.Modes, 4) {
		sub = res.Sub2
	}
	if contains(sub.Modes, 4) {
		t.Skip("both sub-systems contain time for this split")
	}
	if sub.Tensor.NNZ() == 0 {
		t.Fatal("time-free sub-system has no cells")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	space := tinySpace()
	if _, err := Generate(space, Config{}, rand.New(rand.NewSource(85))); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGenerateDeterministicGivenSeed(t *testing.T) {
	space := tinySpace()
	cfg := DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = 0.5
	a, err := Generate(space, cfg, rand.New(rand.NewSource(86)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(space, cfg, rand.New(rand.NewSource(86)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Sub1.Tensor.NNZ() != b.Sub1.Tensor.NNZ() {
		t.Fatal("same seed produced different sub-ensembles")
	}
	for e := 0; e < a.Sub1.Tensor.NNZ(); e++ {
		ia, va := a.Sub1.Tensor.Entry(e)
		ib, vb := b.Sub1.Tensor.Entry(e)
		if va != vb {
			t.Fatal("same seed produced different values")
		}
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatal("same seed produced different coordinates")
			}
		}
	}
}

func TestGenerateMultiplePivots(t *testing.T) {
	// The general PF-formulation allows k > 1 pivot modes. With pivots
	// {t, phi1} the remaining three modes split 2/1.
	space := tinySpace()
	cfg := Config{
		Pivots:    []int{4, 0},
		Free1:     []int{1, 3},
		Free2:     []int{2},
		PivotFrac: 1,
		FreeFrac:  1,
	}
	res, err := Generate(space, cfg, rand.New(rand.NewSource(87)))
	if err != nil {
		t.Fatal(err)
	}
	// Pivot configs = T × res = 3·4 = 12.
	if got := len(res.PivotConfigs); got != 12 {
		t.Fatalf("pivot configs = %d, want 12", got)
	}
	// Sub1 covers (t, phi1, phi2, m2): 3·4·4·4 = 192 cells.
	if got := res.Sub1.Tensor.NNZ(); got != 192 {
		t.Fatalf("sub1 NNZ = %d, want 192", got)
	}
	// Sub2 covers (t, phi1, m1): 3·4·4 = 48 cells.
	if got := res.Sub2.Tensor.NNZ(); got != 48 {
		t.Fatalf("sub2 NNZ = %d, want 48", got)
	}
	if res.Sub1.NumPivots != 2 || res.Sub2.NumPivots != 2 {
		t.Fatal("NumPivots wrong for k=2")
	}
	// Cells still match ground truth.
	y := space.GroundTruth()
	def := space.DefaultIndex()
	full := make([]int, 5)
	res.Sub2.Tensor.Each(func(idx []int, v float64) {
		for m := 0; m < 4; m++ {
			full[m] = def
		}
		full[4] = space.TimeSamples / 2
		for i, m := range res.Sub2.Modes {
			full[m] = idx[i]
		}
		want := y.Data[y.Shape.LinearIndex(full)]
		if math.Abs(want-v) > 1e-12 {
			t.Fatalf("k=2 sub cell %v = %v, truth %v", idx, v, want)
		}
	})
}
