package partition

import "repro/internal/obs"

// Campaign instrumentation. Counters are incremented once per simulation
// (or per checkpoint flush), never per cell, so the fan-out pays one
// atomic add per solver run — negligible next to the solve itself.
var (
	simsExecutedTotal = obs.Default.Counter("m2td_sims_executed_total",
		"Simulations that ran to completion in this process.")
	simsRestoredTotal = obs.Default.Counter("m2td_sims_restored_total",
		"Simulations served from a resumed checkpoint without re-execution.")
	simsRetriedTotal = obs.Default.Counter("m2td_sims_retried_total",
		"Executed simulations that needed more than one attempt.")
	simsFailedTotal = obs.Default.Counter("m2td_sims_failed_total",
		"Simulations that exhausted their retry budget or crashed fatally.")
	cellsQuarantinedTotal = obs.Default.Counter("m2td_cells_quarantined_total",
		"Non-finite cell values dropped at ingest (divergence quarantine).")
	checkpointFlushesTotal = obs.Default.Counter("m2td_checkpoint_flushes_total",
		"Checkpoint saves of a sub-campaign's completed-simulation set.")
	simDuration = obs.Default.Histogram("m2td_sim_duration_seconds",
		"Wall time of one simulation (including its retries).", nil)
)

// record mirrors one sub-campaign's SimStats into the process-wide
// metrics registry and onto the sub-campaign's stage span (deterministic
// counters: every field depends only on the injected faults and the
// sampled configurations, never on the worker count).
func (s SimStats) record(span *obs.Span) {
	simsExecutedTotal.Add(int64(s.ExecutedSims))
	simsRestoredTotal.Add(int64(s.RestoredSims))
	simsRetriedTotal.Add(int64(s.RetriedSims))
	simsFailedTotal.Add(int64(s.FailedSims))
	cellsQuarantinedTotal.Add(int64(s.QuarantinedCells))
	span.Add("sims_executed", int64(s.ExecutedSims))
	span.Add("sims_restored", int64(s.RestoredSims))
	span.Add("sims_retried", int64(s.RetriedSims))
	span.Add("sims_failed", int64(s.FailedSims))
	span.Add("cells_quarantined", int64(s.QuarantinedCells))
}
