package partition

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/store"
)

// Checkpoint configures crash-safe persistence of a simulation campaign's
// progress to an internal/store catalog. Completed simulations are
// persisted periodically during the fan-out (atomic temp+rename+CRC
// writes, so a kill at any instant leaves either the previous or the new
// checkpoint intact — never a corrupt one), and a resumed campaign skips
// every simulation the checkpoint already holds.
//
// One sub-ensemble's completed set is stored under `<prefix>-sims`
// (prefix "sub1"/"sub2" for the PF-partitioned pair), tagged with the
// caller's Fingerprint: a checkpoint written by a different configuration
// (different system, resolution, densities, seed, …) never pollutes a
// resumed run — it is ignored and overwritten.
type Checkpoint struct {
	// Store is the catalog to persist into.
	Store *store.Store
	// Fingerprint identifies the generating configuration. Resume only
	// trusts checkpoints whose stored fingerprint matches exactly.
	Fingerprint string
	// Every is the number of newly completed simulations between
	// checkpoint saves (default 64). Lower values tighten the crash
	// window at the cost of more (atomic, whole-set) writes.
	Every int
	// Resume loads previously completed simulations and skips re-running
	// them.
	Resume bool
}

// objectName returns the catalog object holding one sub-campaign's set.
func (c *Checkpoint) objectName(prefix string) string { return prefix + "-sims" }

// ckptSession is the mutable per-sub-campaign state: the completed map,
// the dirty counter, and the restored set.
type ckptSession struct {
	ck   *Checkpoint
	name string

	mu        sync.Mutex
	done      map[int][]float64
	restored  map[int][]float64
	sinceSave int
}

// session opens (and, with Resume, restores) the checkpoint state for one
// sub-campaign. A missing, corrupt, or fingerprint-mismatched checkpoint
// is treated as absent: the campaign starts fresh and overwrites it.
func (c *Checkpoint) session(prefix string) *ckptSession {
	s := &ckptSession{ck: c, name: c.objectName(prefix), done: make(map[int][]float64)}
	if !c.Resume {
		return s
	}
	fp, sims, err := c.Store.LoadSimSet(s.name)
	switch {
	case err == nil && fp == c.Fingerprint:
		s.restored = sims
		for k, v := range sims {
			s.done[k] = v
		}
	case err == nil || errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrCorrupt):
		// Absent, stale, or damaged checkpoint: start fresh.
	default:
		// Unexpected I/O errors also degrade to a fresh start; the
		// campaign itself is the source of truth.
	}
	return s
}

// note records one completed simulation and saves the set every Every
// completions. Returns the first save error (the campaign surfaces it:
// silently losing checkpoint durability would defeat the point).
func (s *ckptSession) note(key int, cells []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done[key] = cells
	s.sinceSave++
	every := s.ck.Every
	if every <= 0 {
		every = 64
	}
	if s.sinceSave < every {
		return nil
	}
	s.sinceSave = 0
	return s.save()
}

// flush persists the current completed set unconditionally. Called at
// campaign end and on cancellation, so a cooperatively cancelled run
// checkpoints everything it finished.
func (s *ckptSession) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sinceSave == 0 && len(s.done) == len(s.restored) {
		return nil // nothing new since restore
	}
	s.sinceSave = 0
	return s.save()
}

// save writes the set under the session's lock.
func (s *ckptSession) save() error {
	if err := s.ck.Store.SaveSimSet(s.name, s.ck.Fingerprint, s.done); err != nil {
		return fmt.Errorf("partition: checkpoint save: %w", err)
	}
	checkpointFlushesTotal.Inc()
	return nil
}
