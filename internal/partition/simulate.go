package partition

import (
	"context"
	"sync"
	"time"

	"repro/internal/ensemble"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// SimOptions configures the simulation fan-out of a PF-partitioned
// campaign: worker count, retry policy for transient solver failures, and
// optional crash-safe checkpointing.
type SimOptions struct {
	// Workers is the worker count for the fan-out (0 = GOMAXPROCS, see
	// parallel.Resolve).
	Workers int
	// Retry governs re-execution of transiently failing simulations.
	// The zero value means up to 3 attempts with the default backoff.
	Retry faults.RetryPolicy
	// Checkpoint, when non-nil, persists completed simulations
	// periodically and (with Resume) skips previously completed ones.
	Checkpoint *Checkpoint
	// Span, when non-nil, is the partition stage span: GenerateCtx
	// records the sampled configuration counts on it and opens one child
	// span per sub-campaign (sub1, sub2) carrying that campaign's
	// SimStats as deterministic counters. A nil Span costs one nil check
	// per stage.
	Span *obs.Span
}

// SimStats accounts for every simulation of one sub-campaign (or, on
// Result, the whole campaign). The fault-tolerance invariant is that the
// counters exactly cover the injected faults: a simulation is either
// executed, restored from a checkpoint, or failed; retries and quarantined
// cells are recorded on top.
type SimStats struct {
	// ExecutedSims is the number of simulations that ran to completion in
	// this process (including ones that needed retries).
	ExecutedSims int
	// RestoredSims is the number of simulations skipped because a resumed
	// checkpoint already held their results.
	RestoredSims int
	// RetriedSims is the number of executed simulations that needed more
	// than one attempt.
	RetriedSims int
	// FailedSims is the number of simulations that exhausted their retry
	// budget or crashed fatally; their cells are absent from the tensor.
	FailedSims int
	// QuarantinedCells is the number of non-finite cell values dropped at
	// ingest (the divergence quarantine).
	QuarantinedCells int
}

// add accumulates o into s.
func (s *SimStats) add(o SimStats) {
	s.ExecutedSims += o.ExecutedSims
	s.RestoredSims += o.RestoredSims
	s.RetriedSims += o.RetriedSims
	s.FailedSims += o.FailedSims
	s.QuarantinedCells += o.QuarantinedCells
}

// simulateAll runs the simulations identified by keys (parameter grid
// indices in simIdxOf) on the shared worker pool and returns each
// simulation's per-timestamp cell values. Failed simulations are absent
// from the returned map (and counted in SimStats.FailedSims); restored
// simulations are served from the checkpoint without re-execution.
//
// Cancellation is cooperative and deterministic: once ctx is cancelled no
// new simulation starts, in-flight ones finish, completed work is flushed
// to the checkpoint (if any), and ctx.Err() is returned.
func simulateAll(ctx context.Context, space *ensemble.Space, keys []int, simIdxOf map[int][]int, opts SimOptions, ckptName string) (map[int][]float64, SimStats, error) {
	var stats SimStats
	results := make([][]float64, len(keys))

	var sess *ckptSession
	if opts.Checkpoint != nil {
		sess = opts.Checkpoint.session(ckptName)
	}

	// Partition keys into restored (served from the checkpoint) and
	// pending (to execute). Restore decisions are made up front so the
	// fan-out body is uniform.
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if sess != nil {
			if cells, ok := sess.restored[k]; ok {
				results[i] = cells
				stats.RestoredSims++
				continue
			}
		}
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		space.Reference() // materialise before fan-out
	}

	var mu sync.Mutex
	var ckptErr error
	workers := opts.Workers
	err := parallel.ForCtx(ctx, len(pending), workers, func(start, end int) {
		for p := start; p < end; p++ {
			i := pending[p]
			k := keys[i]
			var cells []float64
			simStart := time.Now()
			attempts, runErr := opts.Retry.Run(ctx, uint64(k), func(actx context.Context) error {
				var cerr error
				cells, cerr = space.SimCellsCtx(actx, simIdxOf[k])
				return cerr
			})
			simDuration.Observe(time.Since(simStart).Seconds())
			mu.Lock()
			switch {
			case runErr == nil:
				results[i] = cells
				stats.ExecutedSims++
				if attempts > 1 {
					stats.RetriedSims++
				}
				if sess != nil {
					if err := sess.note(k, cells); err != nil && ckptErr == nil {
						ckptErr = err
					}
				}
			case ctx.Err() != nil:
				// Campaign cancellation, not a simulation failure: the
				// fan-out returns ctx.Err() and nothing is recorded.
			default:
				stats.FailedSims++
			}
			mu.Unlock()
		}
	})

	// Flush completed work even on cancellation, so a cooperatively
	// cancelled campaign checkpoints everything it finished.
	if sess != nil {
		if ferr := sess.flush(); ferr != nil && ckptErr == nil {
			ckptErr = ferr
		}
	}
	if err != nil {
		return nil, stats, err
	}
	if ckptErr != nil {
		return nil, stats, ckptErr
	}

	out := make(map[int][]float64, len(keys))
	for i, k := range keys {
		if results[i] != nil {
			out[k] = results[i]
		}
	}
	return out, stats, nil
}
