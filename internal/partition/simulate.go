package partition

import (
	"runtime"
	"sync"

	"repro/internal/ensemble"
)

// simulateAll runs the simulations identified by keys (parameter grid
// indices in simIdxOf) in parallel and returns each simulation's
// per-timestamp cell values.
func simulateAll(space *ensemble.Space, keys []int, simIdxOf map[int][]int) map[int][]float64 {
	space.Reference() // materialise before fan-out
	out := make(map[int][]float64, len(keys))
	results := make([][]float64, len(keys))

	workers := runtime.NumCPU()
	if workers > len(keys) {
		workers = len(keys)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				results[i] = space.SimCells(simIdxOf[keys[i]])
			}
		}(w)
	}
	wg.Wait()
	for i, k := range keys {
		out[k] = results[i]
	}
	return out
}
