// Package partition implements the paper's Pivoted/Fixed (PF-)partitioning
// of a simulation parameter space (Section V-B): the N tensor modes are
// split into k shared pivot modes and two halves of free modes; each
// sub-system varies its pivot and free modes while fixing the other half's
// modes at default "fixing constants". Sub-ensembles are generated with
// common pivot configurations so they can later be stitched (package
// stitch) and jointly decomposed (package core).
package partition

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ensemble"
	"repro/internal/tensor"
)

// Config selects the pivot and free modes and the sub-ensemble densities.
type Config struct {
	// Pivots lists the original tensor modes shared by both sub-systems.
	Pivots []int
	// Free1 and Free2 list the original modes free in sub-system 1 and 2.
	// Together with Pivots they must cover every mode exactly once.
	Free1, Free2 []int
	// PivotFrac is the paper's P knob: the fraction of pivot
	// configurations included (1 = all).
	PivotFrac float64
	// FreeFrac is the paper's E knob: the fraction of free-mode
	// configurations included per sub-system (1 = all).
	FreeFrac float64
}

// Validate checks that the configuration covers all modes exactly once and
// that the density knobs are in (0, 1].
func (c Config) Validate(order int) error {
	seen := make([]bool, order)
	mark := func(modes []int, kind string) error {
		for _, m := range modes {
			if m < 0 || m >= order {
				return fmt.Errorf("partition: %s mode %d out of range [0, %d)", kind, m, order)
			}
			if seen[m] {
				return fmt.Errorf("partition: mode %d assigned twice", m)
			}
			seen[m] = true
		}
		return nil
	}
	if err := mark(c.Pivots, "pivot"); err != nil {
		return err
	}
	if err := mark(c.Free1, "free1"); err != nil {
		return err
	}
	if err := mark(c.Free2, "free2"); err != nil {
		return err
	}
	for m, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: mode %d not assigned", m)
		}
	}
	if len(c.Pivots) == 0 {
		return fmt.Errorf("partition: at least one pivot mode required")
	}
	if len(c.Free1) == 0 || len(c.Free2) == 0 {
		return fmt.Errorf("partition: both sub-systems need free modes")
	}
	if c.PivotFrac <= 0 || c.PivotFrac > 1 {
		return fmt.Errorf("partition: PivotFrac %v outside (0, 1]", c.PivotFrac)
	}
	if c.FreeFrac <= 0 || c.FreeFrac > 1 {
		return fmt.Errorf("partition: FreeFrac %v outside (0, 1]", c.FreeFrac)
	}
	return nil
}

// DefaultConfig returns the PF-partitioning used throughout the paper's
// evaluation: a single pivot mode with the remaining modes split into two
// halves. pairs optionally lists parameter modes that must land in the
// same half (for the double pendulum, {φ₁, m₁} and {φ₂, m₂}: "free
// parameters of the same pendulum are kept in the same sub-system",
// Table VIII). Halves are filled greedily, largest group first.
func DefaultConfig(order, pivot int, pairs [][2]int) Config {
	remaining := make([]int, 0, order-1)
	for m := 0; m < order; m++ {
		if m != pivot {
			remaining = append(remaining, m)
		}
	}
	inRemaining := func(m int) bool {
		for _, r := range remaining {
			if r == m {
				return true
			}
		}
		return false
	}
	// Build groups: intact pairs stay together; everything else is a
	// singleton.
	var groups [][]int
	used := make(map[int]bool)
	for _, p := range pairs {
		if inRemaining(p[0]) && inRemaining(p[1]) && !used[p[0]] && !used[p[1]] {
			groups = append(groups, []int{p[0], p[1]})
			used[p[0]], used[p[1]] = true, true
		}
	}
	for _, m := range remaining {
		if !used[m] {
			groups = append(groups, []int{m})
		}
	}
	sort.SliceStable(groups, func(a, b int) bool { return len(groups[a]) > len(groups[b]) })
	var h1, h2 []int
	for _, g := range groups {
		if len(h1) <= len(h2) {
			h1 = append(h1, g...)
		} else {
			h2 = append(h2, g...)
		}
	}
	sort.Ints(h1)
	sort.Ints(h2)
	return Config{Pivots: []int{pivot}, Free1: h1, Free2: h2, PivotFrac: 1, FreeFrac: 1}
}

// SubEnsemble is one PF-partitioned sub-system's simulation ensemble: a
// low-order sparse tensor over the sub-system's modes, pivot modes first.
type SubEnsemble struct {
	// Modes maps sub-tensor mode position to the original tensor mode:
	// pivots first (in Config order), then free modes.
	Modes []int
	// NumPivots is the number of leading pivot modes.
	NumPivots int
	// Tensor holds the sub-ensemble, shaped by the original mode sizes.
	Tensor *tensor.Sparse
	// NumSims is the number of simulation runs this sub-ensemble cost.
	NumSims int
	// Stats accounts for executed/restored/retried/failed simulations and
	// quarantined cells of this sub-campaign.
	Stats SimStats
}

// Result is a PF-partitioned, sampled pair of sub-ensembles.
type Result struct {
	Space  *ensemble.Space
	Config Config
	Sub1   *SubEnsemble
	Sub2   *SubEnsemble
	// PivotConfigs are the shared pivot-mode index combinations both
	// sub-ensembles were sampled at.
	PivotConfigs [][]int
	// Free1Configs and Free2Configs are the sampled free-mode index
	// combinations for each sub-system.
	Free1Configs [][]int
	Free2Configs [][]int
	// NumSims is the total simulation budget spent across both
	// sub-ensembles.
	NumSims int
	// Stats aggregates both sub-campaigns' fault-tolerance accounting.
	Stats SimStats
}

// allConfigs enumerates every index combination over the given original
// modes of the space.
func allConfigs(space *ensemble.Space, modes []int) [][]int {
	shape := space.Shape()
	total := 1
	for _, m := range modes {
		total *= shape[m]
	}
	out := make([][]int, 0, total)
	cur := make([]int, len(modes))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(modes) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < shape[modes[pos]]; i++ {
			cur[pos] = i
			walk(pos + 1)
		}
	}
	walk(0)
	return out
}

// sampleConfigs returns ceil(frac·len(all)) configurations: all of them
// when frac == 1, otherwise a uniform random subset (the paper samples
// sub-systems randomly to study worst-case behaviour).
func sampleConfigs(all [][]int, frac float64, rng *rand.Rand) [][]int {
	if frac >= 1 {
		return all
	}
	n := int(frac*float64(len(all)) + 0.999999)
	if n < 1 {
		n = 1
	}
	if n >= len(all) {
		return all
	}
	perm := rng.Perm(len(all))
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[perm[i]]
	}
	return out
}

// Generate PF-partitions the space per cfg and simulates both
// sub-ensembles. Both sub-systems share the same sampled pivot
// configurations; free configurations are sampled independently.
//
// Generate is the infallible entry point (background context, no retry
// policy override, no checkpointing); fault-tolerant campaigns use
// GenerateCtx.
func Generate(space *ensemble.Space, cfg Config, rng *rand.Rand) (*Result, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx API is the root of its own context tree
	return GenerateCtx(context.Background(), space, cfg, rng, SimOptions{})
}

// GenerateCtx is Generate with cooperative cancellation, per-simulation
// retry, divergence quarantine, and optional checkpoint/resume. The rng
// consumption order is identical to Generate's, so a resumed campaign
// samples exactly the same configurations as the interrupted one (given
// the same seed) and reassembles a bit-identical pair of sub-tensors.
func GenerateCtx(ctx context.Context, space *ensemble.Space, cfg Config, rng *rand.Rand, opts SimOptions) (*Result, error) {
	if err := cfg.Validate(space.Order()); err != nil {
		return nil, err
	}
	pivotConfigs := sampleConfigs(allConfigs(space, cfg.Pivots), cfg.PivotFrac, rng)
	free1Configs := sampleConfigs(allConfigs(space, cfg.Free1), cfg.FreeFrac, rng)
	free2Configs := sampleConfigs(allConfigs(space, cfg.Free2), cfg.FreeFrac, rng)

	// Stage-span accounting: the sampled configuration counts depend only
	// on the space, cfg and rng seed, so they are deterministic counters.
	opts.Span.Add("pivot_configs", int64(len(pivotConfigs)))
	opts.Span.Add("free1_configs", int64(len(free1Configs)))
	opts.Span.Add("free2_configs", int64(len(free2Configs)))

	sub1, err := buildSub(ctx, space, cfg.Pivots, cfg.Free1, pivotConfigs, free1Configs, opts, "sub1")
	if err != nil {
		return nil, err
	}
	sub2, err := buildSub(ctx, space, cfg.Pivots, cfg.Free2, pivotConfigs, free2Configs, opts, "sub2")
	if err != nil {
		return nil, err
	}

	res := &Result{
		Space:        space,
		Config:       cfg,
		Sub1:         sub1,
		Sub2:         sub2,
		PivotConfigs: pivotConfigs,
		Free1Configs: free1Configs,
		Free2Configs: free2Configs,
		NumSims:      sub1.NumSims + sub2.NumSims,
	}
	res.Stats.add(sub1.Stats)
	res.Stats.add(sub2.Stats)
	return res, nil
}

// buildSub simulates one sub-system over the selected pivot × free
// configurations. Modes outside pivot∪free are fixed at the space default
// (parameters at the grid midpoint, time at the midpoint stamp). Each
// distinct parameter combination is simulated once; all requested cells
// are then read off its trajectory.
//
// Fault tolerance: failed simulations contribute no cells (they lower the
// effective density instead of poisoning the tensor), and non-finite cell
// values from divergent-but-completed runs are quarantined at Append.
// Assembly iterates keys in sorted order regardless of which simulations
// were restored vs executed, so a resumed campaign's sub-tensor is laid
// out bit-identically to an uninterrupted one.
func buildSub(ctx context.Context, space *ensemble.Space, pivots, free []int, pivotConfigs, freeConfigs [][]int, opts SimOptions, ckptName string) (*SubEnsemble, error) {
	span := opts.Span.Start(ckptName)
	defer span.WithVitals(nil)()
	modes := append(append([]int(nil), pivots...), free...)
	shape := space.Shape()
	subShape := make(tensor.Shape, len(modes))
	for i, m := range modes {
		subShape[i] = shape[m]
	}
	sub := &SubEnsemble{
		Modes:     modes,
		NumPivots: len(pivots),
		Tensor:    tensor.NewSparse(subShape),
	}

	nParams := space.NumParams()
	timeMode := space.TimeMode()
	defIdx := space.DefaultIndex()
	defTime := space.TimeSamples / 2

	// Enumerate requested cells, grouping by the parameter quadruple so
	// each simulation runs once.
	type cellReq struct {
		subIdx []int
		tIdx   int
	}
	bySim := make(map[int][]cellReq)
	simIdxOf := make(map[int][]int)
	full := make([]int, space.Order())
	for _, pc := range pivotConfigs {
		for _, fc := range freeConfigs {
			for m := 0; m < nParams; m++ {
				full[m] = defIdx
			}
			full[timeMode] = defTime
			for i, m := range pivots {
				full[m] = pc[i]
			}
			for i, m := range free {
				full[m] = fc[i]
			}
			simKey := 0
			for m := 0; m < nParams; m++ {
				simKey = simKey*space.Res + full[m]
			}
			if _, ok := simIdxOf[simKey]; !ok {
				simIdxOf[simKey] = append([]int(nil), full[:nParams]...)
			}
			subIdx := make([]int, len(modes))
			for i, m := range modes {
				subIdx[i] = full[m]
			}
			bySim[simKey] = append(bySim[simKey], cellReq{subIdx: subIdx, tIdx: full[timeMode]})
		}
	}

	// Run each simulation once and emit its requested cells.
	keys := make([]int, 0, len(bySim))
	for k := range bySim {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic tensor layout
	cells, stats, err := simulateAll(ctx, space, keys, simIdxOf, opts, ckptName)
	if err != nil {
		return nil, fmt.Errorf("partition: %s simulation fan-out: %w", ckptName, err)
	}
	// Divergence quarantine: non-finite cells from divergent solver runs
	// are dropped at ingest and counted, never stored.
	sub.Tensor.RejectNonFinite = true
	for _, k := range keys {
		traj, ok := cells[k]
		if !ok {
			continue // failed simulation: cells absent by design
		}
		for _, req := range bySim[k] {
			sub.Tensor.Append(req.subIdx, traj[req.tIdx])
		}
	}
	stats.QuarantinedCells = sub.Tensor.Rejected
	sub.NumSims = len(keys)
	sub.Stats = stats
	span.Set("sims", int64(sub.NumSims))
	span.Set("cells", int64(sub.Tensor.NNZ()))
	stats.record(span)
	return sub, nil
}
