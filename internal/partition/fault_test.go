package partition_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/store"
)

// probe is a cheap deterministic 3-parameter system for fan-out tests.
type probe struct{}

func (probe) Name() string { return "probe" }
func (probe) Params() []dynsys.Param {
	return []dynsys.Param{
		{Name: "a", Min: 0, Max: 1},
		{Name: "b", Min: 0, Max: 2},
		{Name: "c", Min: -1, Max: 1},
	}
}
func (probe) StateDim() int { return 2 }
func (probe) Trajectory(vals []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		ti := float64(i)
		out[i] = []float64{vals[0] + ti*vals[1], vals[2] * ti}
	}
	return out
}

func probeSpace(sys dynsys.System) *ensemble.Space { return ensemble.NewSpace(sys, 4, 3) }

func probeConfig(t *testing.T, space *ensemble.Space) partition.Config {
	t.Helper()
	cfg := partition.DefaultConfig(space.Order(), space.TimeMode(), nil)
	if err := cfg.Validate(space.Order()); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGenerateCtxMatchesGenerate(t *testing.T) {
	space := probeSpace(probe{})
	cfg := probeConfig(t, space)
	want, err := partition.Generate(space, cfg, newRand(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := partition.GenerateCtx(context.Background(), probeSpace(probe{}), cfg, newRand(5), partition.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sub1.Tensor.Idx, want.Sub1.Tensor.Idx) ||
		!reflect.DeepEqual(got.Sub1.Tensor.Vals, want.Sub1.Tensor.Vals) ||
		!reflect.DeepEqual(got.Sub2.Tensor.Idx, want.Sub2.Tensor.Idx) ||
		!reflect.DeepEqual(got.Sub2.Tensor.Vals, want.Sub2.Tensor.Vals) {
		t.Fatalf("GenerateCtx output differs from Generate")
	}
	if got.Stats.ExecutedSims != got.NumSims || got.Stats.FailedSims != 0 {
		t.Fatalf("clean run stats off: %+v (NumSims %d)", got.Stats, got.NumSims)
	}
}

func TestGenerateCtxFaultAccountingBalances(t *testing.T) {
	cfg0 := faults.Config{Seed: 21, TransientRate: 0.3, DivergentRate: 0.25}
	inj := faults.New(cfg0)
	space := probeSpace(inj.Wrap(probe{}))
	pcfg := probeConfig(t, space)

	res, err := partition.GenerateCtx(context.Background(), space, pcfg, newRand(6), partition.SimOptions{
		Retry: faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := partition.Generate(probeSpace(probe{}), pcfg, newRand(6))
	if err != nil {
		t.Fatal(err)
	}

	s := res.Stats
	is := inj.Stats()
	if is.TransientSims == 0 || is.DivergentSims == 0 {
		t.Fatalf("fault rates produced no faults (%+v); test is vacuous", is)
	}
	// Transients all recover within the retry budget: nothing fails.
	if s.FailedSims != 0 {
		t.Fatalf("FailedSims = %d with recoverable faults only", s.FailedSims)
	}
	if s.ExecutedSims != res.NumSims {
		t.Fatalf("ExecutedSims %d != NumSims %d", s.ExecutedSims, res.NumSims)
	}
	// Every transient-affected simulation burned its failures inside one
	// retry loop, so retried sims match the injector's distinct count.
	if s.RetriedSims != is.TransientSims {
		t.Fatalf("RetriedSims %d != injected transient sims %d", s.RetriedSims, is.TransientSims)
	}
	// Every divergent cell was quarantined and nothing else was lost.
	cleanCells := clean.Sub1.Tensor.NNZ() + clean.Sub2.Tensor.NNZ()
	gotCells := res.Sub1.Tensor.NNZ() + res.Sub2.Tensor.NNZ()
	if s.QuarantinedCells != cleanCells-gotCells {
		t.Fatalf("QuarantinedCells %d != lost cells %d", s.QuarantinedCells, cleanCells-gotCells)
	}
	if s.QuarantinedCells == 0 {
		t.Fatalf("divergent sims produced no quarantined cells")
	}
}

func TestGenerateCtxRetryExhaustionFailsSim(t *testing.T) {
	// TransientAttempts beyond the retry budget: affected sims fail and
	// their cells are absent, degrading density instead of erroring the
	// whole campaign.
	inj := faults.New(faults.Config{Seed: 22, TransientRate: 0.4, TransientAttempts: 5})
	space := probeSpace(inj.Wrap(probe{}))
	pcfg := probeConfig(t, space)

	res, err := partition.GenerateCtx(context.Background(), space, pcfg, newRand(7), partition.SimOptions{
		Retry: faults.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	is := inj.Stats()
	if res.Stats.FailedSims == 0 || is.TransientSims == 0 {
		t.Fatalf("no failures despite exhausted retries (stats %+v, injected %+v)", res.Stats, is)
	}
	if res.Stats.ExecutedSims+res.Stats.FailedSims != res.NumSims {
		t.Fatalf("executed %d + failed %d != %d sims", res.Stats.ExecutedSims, res.Stats.FailedSims, res.NumSims)
	}
	clean, _ := partition.Generate(probeSpace(probe{}), pcfg, newRand(7))
	if got, want := res.Sub1.Tensor.NNZ()+res.Sub2.Tensor.NNZ(), clean.Sub1.Tensor.NNZ()+clean.Sub2.Tensor.NNZ(); got >= want {
		t.Fatalf("failed sims did not reduce stored cells: %d >= %d", got, want)
	}
}

func TestGenerateCtxPanicBecomesFailedSim(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 23, PanicRate: 1})
	space := probeSpace(inj.Wrap(probe{}))
	pcfg := probeConfig(t, space)
	res, err := partition.GenerateCtx(context.Background(), space, pcfg, newRand(8), partition.SimOptions{})
	if err != nil {
		t.Fatalf("panicking sims must become recorded failures, not errors: %v", err)
	}
	if res.Stats.FailedSims != res.NumSims || res.Stats.ExecutedSims != 0 {
		t.Fatalf("stats %+v, want all %d sims failed", res.Stats, res.NumSims)
	}
	if res.Sub1.Tensor.NNZ() != 0 || res.Sub2.Tensor.NNZ() != 0 {
		t.Fatalf("failed sims left cells behind")
	}
}

func TestGenerateCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	space := probeSpace(probe{})
	pcfg := probeConfig(t, space)
	_, err := partition.GenerateCtx(ctx, space, pcfg, newRand(9), partition.SimOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "probe|res=4|t=3|seed=10"

	// Uninterrupted reference campaign.
	pcfgSpace := probeSpace(probe{})
	pcfg := probeConfig(t, pcfgSpace)
	ref, err := partition.Generate(pcfgSpace, pcfg, newRand(10))
	if err != nil {
		t.Fatal(err)
	}

	// Campaign 1: cancelled after a handful of simulation attempts.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var attempts atomic.Int64
	inj1 := faults.New(faults.Config{Seed: 1, Hook: func() {
		if attempts.Add(1) == 5 {
			cancel1()
		}
	}})
	space1 := probeSpace(inj1.Wrap(probe{}))
	_, err = partition.GenerateCtx(ctx1, space1, pcfg, newRand(10), partition.SimOptions{
		Workers:    2,
		Checkpoint: &partition.Checkpoint{Store: st, Fingerprint: fp, Every: 1},
	})
	cancel1()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign 1: want Canceled, got %v", err)
	}

	// Campaign 2: resumes, executes only unfinished sims, and reassembles
	// bit-identically.
	var attempts2 atomic.Int64
	inj2 := faults.New(faults.Config{Seed: 1, Hook: func() { attempts2.Add(1) }})
	space2 := probeSpace(inj2.Wrap(probe{}))
	res, err := partition.GenerateCtx(context.Background(), space2, pcfg, newRand(10), partition.SimOptions{
		Workers:    2,
		Checkpoint: &partition.Checkpoint{Store: st, Fingerprint: fp, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RestoredSims == 0 {
		t.Fatalf("resume restored nothing; checkpoint was not persisted")
	}
	if res.Stats.RestoredSims+res.Stats.ExecutedSims != res.NumSims {
		t.Fatalf("restored %d + executed %d != %d sims", res.Stats.RestoredSims, res.Stats.ExecutedSims, res.NumSims)
	}
	if got := int(attempts2.Load()); got != res.Stats.ExecutedSims {
		t.Fatalf("resumed campaign ran %d simulations, want exactly the %d unfinished ones", got, res.Stats.ExecutedSims)
	}
	if !reflect.DeepEqual(res.Sub1.Tensor.Idx, ref.Sub1.Tensor.Idx) ||
		!reflect.DeepEqual(res.Sub1.Tensor.Vals, ref.Sub1.Tensor.Vals) ||
		!reflect.DeepEqual(res.Sub2.Tensor.Idx, ref.Sub2.Tensor.Idx) ||
		!reflect.DeepEqual(res.Sub2.Tensor.Vals, ref.Sub2.Tensor.Vals) {
		t.Fatalf("resumed campaign is not bit-identical to the uninterrupted one")
	}
}

func TestCheckpointFingerprintMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	space := probeSpace(probe{})
	pcfg := probeConfig(t, space)
	if _, err := partition.GenerateCtx(context.Background(), space, pcfg, newRand(11), partition.SimOptions{
		Checkpoint: &partition.Checkpoint{Store: st, Fingerprint: "config-A", Every: 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Resume under a different fingerprint: the stale checkpoint must be
	// ignored, not restored.
	res, err := partition.GenerateCtx(context.Background(), probeSpace(probe{}), pcfg, newRand(11), partition.SimOptions{
		Checkpoint: &partition.Checkpoint{Store: st, Fingerprint: "config-B", Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RestoredSims != 0 {
		t.Fatalf("restored %d sims from a mismatched checkpoint", res.Stats.RestoredSims)
	}
	if res.Stats.ExecutedSims != res.NumSims {
		t.Fatalf("executed %d != %d", res.Stats.ExecutedSims, res.NumSims)
	}
}
