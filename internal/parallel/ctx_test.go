package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxMatchesFor: an un-cancelled ForCtx must produce exactly the
// same output as For for a kernel that partitions its output index space,
// for a sweep of worker counts.
func TestForCtxMatchesFor(t *testing.T) {
	const n = 1337
	want := make([]float64, n)
	For(n, 4, func(start, end int) {
		for i := start; i < end; i++ {
			want[i] = float64(i) * 1.5
		}
	})
	for _, w := range []int{1, 2, 3, 8, 64} {
		got := make([]float64, n)
		if err := ForCtx(context.Background(), n, w, func(start, end int) {
			for i := start; i < end; i++ {
				got[i] = float64(i) * 1.5
			}
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: output mismatch at %d", w, i)
			}
		}
	}
}

// TestForCtxCancelled: an already-cancelled context must return promptly
// without invoking the body at all.
func TestForCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := ForCtx(ctx, 1000, 4, func(start, end int) { calls.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("body invoked %d times on a cancelled context", calls.Load())
	}
}

// TestForCtxDrains: cancelling mid-run stops new strips, completes strips
// in flight, joins all workers before returning, and leaks no goroutines.
func TestForCtxDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	err := ForCtx(ctx, 4096, 4, func(start, end int) {
		if done.Add(int64(end-start)) > 64 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := done.Load(); n >= 4096 {
		t.Fatalf("cancellation did not stop the loop: %d/%d items ran", n, 4096)
	}
	waitForGoroutines(t, before)
}

// TestDoCtxMatchesDo: un-cancelled DoCtx runs every task exactly once.
func TestDoCtxMatchesDo(t *testing.T) {
	ran := make([]atomic.Int64, 9)
	tasks := make([]func(), len(ran))
	for i := range tasks {
		i := i
		tasks[i] = func() { ran[i].Add(1) }
	}
	if err := DoCtx(context.Background(), 3, tasks...); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, ran[i].Load())
		}
	}
}

// TestDoCtxCancelled: a cancelled context skips unclaimed tasks and
// surfaces the context error.
func TestDoCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := DoCtx(ctx, 2, func() { calls.Add(1) }, func() { calls.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("tasks ran on a cancelled context")
	}
}

// TestReduceCtxMatchesReduce: the ctx variant must be bit-identical to
// Reduce for any worker count when not cancelled.
func TestReduceCtxMatchesReduce(t *testing.T) {
	const n = 997
	body := func(p *float64, start, end int) {
		for i := start; i < end; i++ {
			*p += 1 / float64(i+1)
		}
	}
	want := Reduce(n, 4,
		func() *float64 { return new(float64) },
		body,
		func(into, from *float64) *float64 { *into += *from; return into })
	for _, w := range []int{1, 2, 7, 32} {
		got, err := ReduceCtx(context.Background(), n, w,
			func() *float64 { return new(float64) },
			body,
			func(into, from *float64) *float64 { *into += *from; return into })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if *got != *want {
			t.Fatalf("workers=%d: %v != %v (not bit-identical)", w, *got, *want)
		}
	}
}

// TestReduceCtxCancelled: a cancelled reduce returns the zero accumulator
// and the context error.
func TestReduceCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ReduceCtx(ctx, 100, 4,
		func() int { return 0 },
		func(p int, start, end int) {},
		func(into, from int) int { return into + from })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != 0 {
		t.Fatalf("got %d, want zero value on cancellation", got)
	}
}

// TestForCtxPanicPropagates: worker panics surface on the caller like For.
func TestForCtxPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected re-raised worker panic")
		}
	}()
	_ = ForCtx(context.Background(), 64, 4, func(start, end int) {
		panic("boom")
	})
}

// waitForGoroutines polls until the goroutine count settles back to
// (near) the baseline; shared by the drain tests.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
}
