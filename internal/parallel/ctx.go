package parallel

import "context"

// The ctx-aware variants below are the cancellation layer of the pipeline
// runtime: they preserve every determinism guarantee of For/Do/Reduce on
// the success path (identical chunk grids, identical merge orders, so
// results stay bit-identical for any worker count) and add cooperative
// cancellation with DETERMINISTIC DRAINING on the failure path — when the
// context is cancelled, no new unit of work starts, units already started
// run to completion (a kernel is never abandoned mid-write), all workers
// are joined, and only then does the call return ctx.Err(). Callers
// discard partial output on a non-nil error.

// ctxPollStrips bounds how many times each ForCtx worker polls the context
// while draining its chunk: the chunk is subdivided into at most this many
// strips with a poll before each. The subdivision never changes results —
// For-based kernels partition their OUTPUT index space, so every element
// is still computed whole, by the same worker, in the same order.
const ctxPollStrips = 16

// ForCtx is For with cooperative cancellation. The chunk grid is identical
// to For's (boundaries depend only on n and the resolved worker count);
// each worker walks its chunk in up to ctxPollStrips strips, polling the
// context before each strip. On cancellation workers drain: the strip in
// flight finishes, no further strip begins, and ForCtx returns ctx.Err()
// after all workers have been joined — no goroutine outlives the call.
// An un-cancelled ForCtx is bit-identical to For. Worker panics are
// re-raised on the caller exactly as with For.
func ForCtx(ctx context.Context, n, workers int, fn func(start, end int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	For(n, workers, func(start, end int) {
		strip := (end - start + ctxPollStrips - 1) / ctxPollStrips
		if strip < 1 {
			strip = 1
		}
		for s := start; s < end; s += strip {
			if ctx.Err() != nil {
				return
			}
			e := s + strip
			if e > end {
				e = end
			}
			fn(s, e)
		}
	})
	return ctx.Err()
}

// DoCtx is Do with cooperative cancellation: workers poll the context
// before claiming each task, so on cancellation in-flight tasks finish,
// unclaimed tasks never start, and DoCtx returns ctx.Err() after every
// worker has been joined. An un-cancelled DoCtx behaves exactly like Do
// (tasks claimed in index order; first panic re-raised on the caller).
func DoCtx(ctx context.Context, workers int, tasks ...func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tasks) == 0 {
		return nil
	}
	wrapped := make([]func(), len(tasks))
	for i, t := range tasks {
		t := t
		wrapped[i] = func() {
			if ctx.Err() != nil {
				return
			}
			t()
		}
	}
	Do(workers, wrapped...)
	return ctx.Err()
}

// ReduceCtx is Reduce with cooperative cancellation: the fixed chunk grid
// and ascending merge order are identical to Reduce's (bit-stable results
// for any worker count), and the context is polled before each chunk's
// partial accumulation. On cancellation the zero value of T and ctx.Err()
// are returned after all workers have drained.
func ReduceCtx[T any](ctx context.Context, n, workers int, makePartial func() T, body func(partial T, start, end int), merge func(into, from T) T) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	out := Reduce(n, workers, makePartial, func(partial T, start, end int) {
		if ctx.Err() != nil {
			return
		}
		body(partial, start, end)
	}, merge)
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	return out, nil
}
