package parallel

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// workerCounts is the satellite-mandated sweep: serial, two, the machine
// default, and more workers than items.
func workerCounts(items int) []int {
	return []int{1, 2, runtime.GOMAXPROCS(0), items + 5}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		for _, w := range workerCounts(n) {
			t.Run("n="+strconv.Itoa(n)+"/w="+strconv.Itoa(w), func(t *testing.T) {
				hits := make([]int32, n)
				For(n, w, func(start, end int) {
					if start >= end {
						t.Errorf("empty range [%d,%d)", start, end)
					}
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("index %d visited %d times, want 1", i, h)
					}
				}
			})
		}
	}
}

func TestForEmptyInput(t *testing.T) {
	called := false
	For(0, 4, func(start, end int) { called = true })
	For(-3, 4, func(start, end int) { called = true })
	if called {
		t.Fatal("fn called for empty input")
	}
}

func TestForChunkBoundariesDeterministic(t *testing.T) {
	// Chunk boundaries must depend only on (n, workers): two runs record
	// identical range sets.
	record := func() map[int]int {
		out := make(map[int]int)
		var mu sync.Mutex
		For(1000, 4, func(start, end int) {
			mu.Lock()
			out[start] = end
			mu.Unlock()
		})
		return out
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("different chunk counts: %d vs %d", len(a), len(b))
	}
	for s, e := range a {
		if b[s] != e {
			t.Fatalf("chunk [%d,%d) vs [%d,%d)", s, e, s, b[s])
		}
	}
}

func TestForGrainCapsFanout(t *testing.T) {
	// n=100 with grain=100 must run in a single inline chunk.
	chunks := 0
	ForGrain(100, 8, 100, func(start, end int) {
		chunks++
		if start != 0 || end != 100 {
			t.Fatalf("expected single range [0,100), got [%d,%d)", start, end)
		}
	})
	if chunks != 1 {
		t.Fatalf("got %d chunks, want 1", chunks)
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, w := range workerCounts(64) {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("worker panic not propagated")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "boom-42") {
					t.Fatalf("panic value %v does not carry original message", r)
				}
			}()
			For(64, w, func(start, end int) {
				if start <= 13 && 13 < end {
					panic("boom-42")
				}
			})
		})
	}
}

func TestDoRunsAllTasksAndPropagatesPanic(t *testing.T) {
	for _, w := range workerCounts(9) {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			var ran [9]int32
			tasks := make([]func(), 9)
			for i := range tasks {
				i := i
				tasks[i] = func() { atomic.AddInt32(&ran[i], 1) }
			}
			Do(w, tasks...)
			for i, r := range ran {
				if r != 1 {
					t.Fatalf("task %d ran %d times, want 1", i, r)
				}
			}
		})
	}
	// Panic from one task propagates; the remaining tasks still run
	// (errgroup-style join waits for everyone).
	var after atomic.Int32
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("task panic not propagated")
			}
		}()
		Do(2,
			func() { panic("task-boom") },
			func() { after.Add(1) },
			func() { after.Add(1) },
		)
	}()
	if after.Load() != 2 {
		t.Fatalf("non-panicking tasks ran %d times, want 2", after.Load())
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4) // must not deadlock or panic
}

func TestReduceBitStableAcrossWorkerCounts(t *testing.T) {
	// A floating-point sum whose result depends on association order: the
	// fixed chunk grid must make every worker count produce the identical
	// bit pattern.
	const n = 100_000
	vals := make([]float64, n)
	x := 0.5
	for i := range vals {
		x = 3.9 * x * (1 - x) // logistic map: well-spread magnitudes
		vals[i] = x - 0.5
	}
	sum := func(workers int) float64 {
		return *Reduce(n, workers,
			func() *float64 { return new(float64) },
			func(p *float64, start, end int) {
				for i := start; i < end; i++ {
					*p += vals[i]
				}
			},
			func(into, from *float64) *float64 { *into += *from; return into },
		)
	}
	want := sum(1)
	for _, w := range workerCounts(n) {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, got, want)
		}
	}
}

func TestReduceEmptyAndTiny(t *testing.T) {
	got := Reduce(0, 4,
		func() *int { return new(int) },
		func(p *int, start, end int) { *p += end - start },
		func(into, from *int) *int { *into += *from; return into },
	)
	if *got != 0 {
		t.Fatalf("empty reduce = %d, want 0", *got)
	}
	got = Reduce(5, 8,
		func() *int { return new(int) },
		func(p *int, start, end int) { *p += end - start },
		func(into, from *int) *int { *into += *from; return into },
	)
	if *got != 5 {
		t.Fatalf("tiny reduce = %d, want 5", *got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	// The baseline default is GOMAXPROCS unless the process was started
	// with an M2TD_WORKERS override (the CI faults job sweeps it).
	want := runtime.GOMAXPROCS(0)
	if n := envWorkers(); n > 0 {
		want = n
	}
	if got := DefaultWorkers(); got != want {
		t.Fatalf("DefaultWorkers() = %d, want %d (GOMAXPROCS or M2TD_WORKERS)", got, want)
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("after SetDefaultWorkers(3): %d", got)
	}
	if got := Resolve(0); got != 3 {
		t.Fatalf("Resolve(0) = %d, want 3", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != want {
		t.Fatalf("after reset: %d, want %d", got, want)
	}
}

func TestFanoutExport(t *testing.T) {
	prev := SetFanoutCap(2)
	defer SetFanoutCap(prev)
	if got := Fanout(8); got != 2 {
		t.Fatalf("Fanout(8) under cap 2 = %d, want 2", got)
	}
	if got := Fanout(1); got != 1 {
		t.Fatalf("Fanout(1) = %d, want 1", got)
	}
	SetFanoutCap(16)
	if got := Fanout(8); got != 8 {
		t.Fatalf("Fanout(8) under cap 16 = %d, want 8 (workers bind first)", got)
	}
	if got := Fanout(0); got != Resolve(0) {
		t.Fatalf("Fanout(0) = %d, want Resolve(0) = %d under a high cap", got, Resolve(0))
	}
}
