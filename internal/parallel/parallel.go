// Package parallel is the shared worker-pool layer under every hot kernel
// in the decomposition stack (sparse TTM, matricization Gram matrices,
// dense matmul, the HOSVD mode loop, and the X₁/X₂ sub-decompositions of
// M2TD).
//
// Design rules, chosen so that concurrency never changes results:
//
//   - Scheduling is static and deterministic: For splits [0, n) into
//     contiguous near-equal ranges, one per worker, with boundaries that
//     depend only on n and the worker count — never on timing.
//   - Kernels built on For partition their OUTPUT index space, so each
//     element is written by exactly one goroutine in the same order the
//     serial loop would use. Results are bit-identical for any worker
//     count, including workers=1.
//   - Reductions that cannot partition their output use Reduce, which
//     accumulates into per-chunk partial buffers over a chunk grid that is
//     fixed independently of the worker count and merges the partials in
//     ascending chunk order. Results are again bit-stable for any worker
//     count (though the fixed chunking means they may differ — by FP
//     reassociation only — from a single undivided serial loop).
//   - Worker panics are captured and re-raised on the calling goroutine,
//     so a panicking kernel behaves exactly like its serial counterpart.
//
// The package-level default worker count is runtime.GOMAXPROCS(0); knobs
// on HOOIOptions, the tucker entry points, core.Options, and the public
// m2td.Config override it per call with a positive value (1 = serial).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide default worker count; 0 means
// "use runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// DefaultWorkers returns the process-wide default worker count:
// runtime.GOMAXPROCS(0) unless overridden by SetDefaultWorkers.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the process-wide default worker count used
// when a kernel is invoked with workers <= 0. Passing n <= 0 restores the
// GOMAXPROCS default. It is safe for concurrent use.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve normalizes a workers knob: a positive value is returned as-is,
// anything else resolves to DefaultWorkers().
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// workerPanic carries a captured worker panic back to the caller.
type workerPanic struct {
	val   any
	stack []byte
}

// capture records the first panic observed across workers.
type capture struct {
	mu    sync.Mutex
	first *workerPanic
}

func (c *capture) recover() {
	if r := recover(); r != nil {
		c.mu.Lock()
		if c.first == nil {
			buf := make([]byte, 8192)
			c.first = &workerPanic{val: r, stack: buf[:runtime.Stack(buf, false)]}
		}
		c.mu.Unlock()
	}
}

func (c *capture) repanic(kind string) {
	if c.first != nil {
		panic(fmt.Sprintf("parallel: %s panic: %v\n%s", kind, c.first.val, c.first.stack))
	}
}

// For runs fn over the half-open range [0, n) split into contiguous
// near-equal chunks, one per worker. Chunk boundaries depend only on n and
// the resolved worker count, and every index belongs to exactly one chunk,
// so kernels that write disjoint outputs per index are deterministic under
// any worker count. fn is never invoked with an empty range; with a single
// effective worker it runs inline as fn(0, n). workers <= 0 selects the
// package default; the effective worker count is also capped at n.
//
// For is for loops whose per-index work is substantial (a tensor fiber, a
// matrix row, a whole mode). For fine-grained element loops use ForGrain,
// which caps the fan-out so each worker gets at least a grain of work.
//
// A panic in any worker is re-raised on the calling goroutine after all
// workers have finished.
func For(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		stripsTotal.Inc()
		workersActive.Add(1)
		defer workersActive.Add(-1)
		fn(0, n)
		return
	}
	var (
		wg sync.WaitGroup
		pc capture
	)
	for w := 0; w < workers; w++ {
		start := w * n / workers
		end := (w + 1) * n / workers
		if start >= end {
			continue
		}
		wg.Add(1)
		stripsTotal.Inc()
		go func(start, end int) {
			defer wg.Done()
			defer pc.recover()
			workersActive.Add(1)
			defer workersActive.Add(-1)
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
	pc.repanic("worker")
}

// ForGrain is For with a minimum per-worker grain: the effective worker
// count is capped at n/grain (at least 1), so cheap element loops are not
// fanned out across more goroutines than the work can amortise. grain <= 0
// means 1. Determinism properties match For.
func ForGrain(n, workers, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Resolve(workers)
	if max := n / grain; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	For(n, workers, fn)
}

// Do runs the tasks concurrently on up to `workers` goroutines
// (errgroup-style join: it returns only after every task has finished) and
// re-raises the first worker panic on the caller. Tasks are claimed in
// index order, so with workers=1 they run exactly in the order given.
// workers <= 0 selects the package default.
func Do(workers int, tasks ...func()) {
	n := len(tasks)
	if n == 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		workersActive.Add(1)
		defer workersActive.Add(-1)
		for _, t := range tasks {
			tasksTotal.Inc()
			t()
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		pc   capture
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workersActive.Add(1)
			defer workersActive.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tasksTotal.Inc()
				func() {
					defer pc.recover()
					tasks[i]()
				}()
			}
		}()
	}
	wg.Wait()
	pc.repanic("task")
}

// reduceChunks is the fixed chunk-grid size for Reduce. It is a constant —
// deliberately NOT derived from the worker count or GOMAXPROCS — so the
// partial-buffer merge order, and therefore every floating-point rounding
// decision, is identical no matter how many workers execute the chunks.
const reduceChunks = 32

// Reduce accumulates a reduction over [0, n) deterministically: the range
// is split into a fixed chunk grid (independent of the worker count), each
// chunk fills its own partial buffer via body, and the partials are merged
// into a single result in ascending chunk order. Because both the chunk
// boundaries and the merge order are worker-count-independent, the result
// is bit-stable for any workers value, including 1.
//
// makePartial allocates one zero-valued partial accumulator; body folds the
// index range [start, end) into it; merge folds `from` into `into` and
// returns the combined accumulator.
func Reduce[T any](n, workers int, makePartial func() T, body func(partial T, start, end int), merge func(into, from T) T) T {
	if n <= 0 {
		return makePartial()
	}
	chunks := reduceChunks
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		p := makePartial()
		body(p, 0, n)
		return p
	}
	partials := make([]T, chunks)
	For(chunks, workers, func(cs, ce int) {
		for c := cs; c < ce; c++ {
			p := makePartial()
			body(p, c*n/chunks, (c+1)*n/chunks)
			partials[c] = p
		}
	})
	acc := partials[0]
	for c := 1; c < chunks; c++ {
		acc = merge(acc, partials[c])
	}
	return acc
}
