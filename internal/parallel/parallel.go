// Package parallel is the shared worker-pool layer under every hot kernel
// in the decomposition stack (sparse TTM, matricization Gram matrices,
// dense matmul, the HOSVD mode loop, and the X₁/X₂ sub-decompositions of
// M2TD).
//
// Design rules, chosen so that concurrency never changes results:
//
//   - Scheduling is static and deterministic: For splits [0, n) into
//     contiguous near-equal ranges, one per worker, with boundaries that
//     depend only on n and the worker count — never on timing.
//   - Kernels built on For partition their OUTPUT index space, so each
//     element is written by exactly one goroutine in the same order the
//     serial loop would use. Results are bit-identical for any worker
//     count, including workers=1.
//   - Reductions that cannot partition their output use Reduce, which
//     accumulates into per-chunk partial buffers over a chunk grid that is
//     fixed independently of the worker count and merges the partials in
//     ascending chunk order. Results are again bit-stable for any worker
//     count (though the fixed chunking means they may differ — by FP
//     reassociation only — from a single undivided serial loop).
//   - Worker panics are captured and re-raised on the calling goroutine,
//     so a panicking kernel behaves exactly like its serial counterpart.
//
// The package-level default worker count is runtime.GOMAXPROCS(0); knobs
// on HOOIOptions, the tucker entry points, core.Options, and the public
// m2td.Config override it per call with a positive value (1 = serial).
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide default worker count; 0 means
// "use the M2TD_WORKERS environment override, else runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// envWorkers reads the M2TD_WORKERS environment override once. It exists
// so CI can sweep the whole test suite across worker counts (the faults
// job runs the acceptance tests at M2TD_WORKERS ∈ {1, 3, NumCPU} under
// -race) without threading a knob through every entry point.
var envWorkers = sync.OnceValue(func() int {
	if s := os.Getenv("M2TD_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
})

// DefaultWorkers returns the process-wide default worker count:
// runtime.GOMAXPROCS(0) unless overridden by SetDefaultWorkers or the
// M2TD_WORKERS environment variable (SetDefaultWorkers wins).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// fanoutCap bounds how many goroutines a single For/Do call actually
// spawns; 0 means "use runtime.GOMAXPROCS(0)". See SetFanoutCap.
var fanoutCap atomic.Int64

// FanoutCap returns the per-call goroutine fan-out bound:
// runtime.GOMAXPROCS(0) unless overridden by SetFanoutCap.
func FanoutCap() int {
	if n := fanoutCap.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetFanoutCap overrides the per-call goroutine fan-out bound (n <= 0
// restores the GOMAXPROCS default) and returns the previous override (0 if
// none was set). The cap is pure scheduling: every result-bearing grid —
// For's output partitions are write-disjoint, Reduce's chunk grid and
// ReduceStrips' strip grid are fixed independently of the worker count —
// is unchanged by it, so capping never changes a single output bit. The
// bit-stability suites raise the cap above GOMAXPROCS so the race
// detector sees real goroutine interleavings even on small machines;
// production code leaves it alone, which keeps a workers=8 request on a
// 1-CPU container from paying for 8 goroutines that cannot run in
// parallel.
func SetFanoutCap(n int) int {
	if n < 0 {
		n = 0
	}
	return int(fanoutCap.Swap(int64(n)))
}

// Fanout resolves a workers knob to the number of goroutines a For/Do
// call would actually spawn for it: the resolved worker count, capped by
// FanoutCap. Kernels use it to decide whether a parallel code path can
// pay off at all — when Fanout(workers) is 1 there is no available
// parallelism, and any setup cost a parallel path front-loads (plan
// compilation, partial-buffer pools) is a pure loss over the serial
// path.
func Fanout(workers int) int {
	return fanout(workers)
}

// fanout resolves a workers knob to the number of goroutines worth
// spawning: the resolved worker count, capped by FanoutCap.
func fanout(workers int) int {
	w := Resolve(workers)
	if c := FanoutCap(); w > c {
		w = c
	}
	return w
}

// SplitWorkers divides a worker budget across tasks that will each fan
// out internally: it returns the per-task inner worker count
// ceil(workers/min(tasks, workers)), at least 1. Task fan-outs (e.g.
// HOSVD's per-mode factor extractions, M2TD's concurrent X₁/X₂
// sub-decompositions) pass the result to their nested kernels so a
// workers=W request occupies ~W goroutines in total instead of W per
// task. Purely a scheduling decision — worker counts never change
// results.
func SplitWorkers(workers, tasks int) int {
	w := Resolve(workers)
	if tasks < 1 {
		tasks = 1
	}
	if tasks > w {
		tasks = w
	}
	return (w + tasks - 1) / tasks
}

// SetDefaultWorkers overrides the process-wide default worker count used
// when a kernel is invoked with workers <= 0. Passing n <= 0 restores the
// GOMAXPROCS default. It is safe for concurrent use.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve normalizes a workers knob: a positive value is returned as-is,
// anything else resolves to DefaultWorkers().
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// workerPanic carries a captured worker panic back to the caller.
type workerPanic struct {
	val   any
	stack []byte
}

// capture records the first panic observed across workers.
type capture struct {
	mu    sync.Mutex
	first *workerPanic
}

func (c *capture) recover() {
	if r := recover(); r != nil {
		c.mu.Lock()
		if c.first == nil {
			buf := make([]byte, 8192)
			c.first = &workerPanic{val: r, stack: buf[:runtime.Stack(buf, false)]}
		}
		c.mu.Unlock()
	}
}

func (c *capture) repanic(kind string) {
	if c.first != nil {
		panic(fmt.Sprintf("parallel: %s panic: %v\n%s", kind, c.first.val, c.first.stack))
	}
}

// For runs fn over the half-open range [0, n) split into contiguous
// near-equal chunks, one per worker. Chunk boundaries depend only on n and
// the resolved worker count, and every index belongs to exactly one chunk,
// so kernels that write disjoint outputs per index are deterministic under
// any worker count. fn is never invoked with an empty range; with a single
// effective worker it runs inline as fn(0, n). workers <= 0 selects the
// package default; the effective worker count is also capped at n and at
// FanoutCap (goroutines beyond the scheduler's parallelism only add
// overhead). The cap moves chunk boundaries, never how an index is
// computed — For kernels write disjoint outputs per index, and
// reductions layer their own worker-independent grids on top — so it
// cannot change results.
//
// For is for loops whose per-index work is substantial (a tensor fiber, a
// matrix row, a whole mode). For fine-grained element loops use ForGrain,
// which caps the fan-out so each worker gets at least a grain of work.
//
// A panic in any worker is re-raised on the calling goroutine after all
// workers have finished.
func For(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers = fanout(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		stripsTotal.Inc()
		workersActive.Add(1)
		defer workersActive.Add(-1)
		fn(0, n)
		return
	}
	var (
		wg sync.WaitGroup
		pc capture
	)
	for w := 0; w < workers; w++ {
		start := w * n / workers
		end := (w + 1) * n / workers
		if start >= end {
			continue
		}
		wg.Add(1)
		stripsTotal.Inc()
		go func(start, end int) {
			defer wg.Done()
			defer pc.recover()
			workersActive.Add(1)
			defer workersActive.Add(-1)
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
	pc.repanic("worker")
}

// ForGrain is For with a minimum per-worker grain: the effective worker
// count is capped at n/grain (at least 1), so cheap element loops are not
// fanned out across more goroutines than the work can amortise. grain <= 0
// means 1. Determinism properties match For.
func ForGrain(n, workers, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Resolve(workers)
	if max := n / grain; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	For(n, workers, fn)
}

// Do runs the tasks concurrently on up to `workers` goroutines
// (errgroup-style join: it returns only after every task has finished) and
// re-raises the first worker panic on the caller. Tasks are claimed in
// index order, so with workers=1 they run exactly in the order given.
// workers <= 0 selects the package default.
func Do(workers int, tasks ...func()) {
	n := len(tasks)
	if n == 0 {
		return
	}
	workers = fanout(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		workersActive.Add(1)
		defer workersActive.Add(-1)
		var pc capture
		for _, t := range tasks {
			tasksTotal.Inc()
			func() {
				defer pc.recover()
				t()
			}()
		}
		pc.repanic("task")
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		pc   capture
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workersActive.Add(1)
			defer workersActive.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tasksTotal.Inc()
				func() {
					defer pc.recover()
					tasks[i]()
				}()
			}
		}()
	}
	wg.Wait()
	pc.repanic("task")
}

// reduceChunks is the fixed chunk-grid size for Reduce. It is a constant —
// deliberately NOT derived from the worker count or GOMAXPROCS — so the
// partial-buffer merge order, and therefore every floating-point rounding
// decision, is identical no matter how many workers execute the chunks.
const reduceChunks = 32

// Reduce accumulates a reduction over [0, n) deterministically: the range
// is split into a fixed chunk grid (independent of the worker count), each
// chunk fills its own partial buffer via body, and the partials are merged
// into a single result in ascending chunk order. Because both the chunk
// boundaries and the merge order are worker-count-independent, the result
// is bit-stable for any workers value, including 1.
//
// makePartial allocates one zero-valued partial accumulator; body folds the
// index range [start, end) into it; merge folds `from` into `into` and
// returns the combined accumulator.
func Reduce[T any](n, workers int, makePartial func() T, body func(partial T, start, end int), merge func(into, from T) T) T {
	if n <= 0 {
		return makePartial()
	}
	chunks := reduceChunks
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		p := makePartial()
		body(p, 0, n)
		return p
	}
	partials := make([]T, chunks)
	For(chunks, workers, func(cs, ce int) {
		for c := cs; c < ce; c++ {
			p := makePartial()
			body(p, c*n/chunks, (c+1)*n/chunks)
			partials[c] = p
		}
	})
	acc := partials[0]
	for c := 1; c < chunks; c++ {
		acc = merge(acc, partials[c])
	}
	return acc
}
