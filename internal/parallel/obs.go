package parallel

import "repro/internal/obs"

// Worker-pool instrumentation. Counters are registry-backed atomics
// incremented once per strip / task / worker goroutine — never per
// element — so the hot kernels pay a handful of atomic adds per kernel
// invocation, which is far below measurement noise (guarded by the
// BenchmarkParallelHOSVD regression budget).
var (
	stripsTotal = obs.Default.Counter("m2td_parallel_strips_total",
		"Contiguous index strips executed by the shared worker pool (For/ForCtx/Reduce).")
	tasksTotal = obs.Default.Counter("m2td_parallel_tasks_total",
		"Tasks executed by the shared worker pool (Do/DoCtx).")
	workersActive = obs.Default.Gauge("m2td_parallel_workers_active",
		"Worker goroutines (or inline callers) currently executing pool work.")
	reduceStripsTotal = obs.Default.Counter("m2td_parallel_reduce_strips_total",
		"Input strips folded into private partial accumulators by ReduceStrips.")
	reduceMergesTotal = obs.Default.Counter("m2td_parallel_reduce_merges_total",
		"Pairwise partial-accumulator merges performed by ReduceStrips' fixed tree.")
)

// Strips returns the process-wide count of index strips executed by the
// pool. Stage spans record the delta across a stage as a gauge — the
// value depends on the worker count, so it is a vital, not a
// deterministic counter.
func Strips() int64 { return stripsTotal.Value() }

// Tasks returns the process-wide count of pool tasks executed.
func Tasks() int64 { return tasksTotal.Value() }
