package parallel

// Deterministic strip reduction.
//
// Reduce (parallel.go) is the right tool when the index space is uniform
// and the accumulator is cheap: it fixes a 32-chunk grid and merges the
// partials left-to-right. The Gram kernels need more control — their
// natural work unit is a ModePlan fiber group whose cost is the group's
// entry count, not its index span, and their partials are I×I matrices
// whose merges are worth counting and pooling. ReduceStrips is the
// generalisation: the CALLER supplies the strip grid (entry-balanced,
// derived only from the input), each strip fills a private partial, and
// the partials combine through a fixed-shape pairwise tree.
//
// The determinism contract, which DESIGN.md §11 states as the reduction
// shape invariant:
//
//   - The strip grid is a pure function of the input (sizes, plan group
//     bounds, package constants). It must never depend on the worker
//     count, GOMAXPROCS, or timing.
//   - Partials are per-STRIP, not per-worker. A per-worker accumulator
//     folding a contiguous run of strips would make the floating-point
//     association depend on how many workers the run was split across —
//     ((s0+s1)+s2)+s3 with one worker vs (s0+s1)+(s2+s3) with two.
//   - The merge tree is a pure function of the strip count S: pairwise,
//     ascending by strip index, span doubling each level. Workers only
//     decide WHEN a strip's partial is produced, never where it lands in
//     the tree.
//
// Under this contract the result is bit-identical for every worker count
// (including 1) and every fan-out cap, which is exactly what the
// workers ∈ {1, 2, 3, 8} bit-stability suites assert.

// ReduceStrips folds the strip grid `bounds` (S+1 ascending boundaries
// describing S half-open strips [bounds[s], bounds[s+1])) into a single
// accumulator deterministically:
//
//   - makePartial(s) produces the strip's private accumulator (pull it
//     from a pool for zero steady-state allocation),
//   - body(p, s, start, end) folds strip s into p,
//   - merge(into, from) combines two partials and returns the result,
//   - recycle(p), if non-nil, takes each consumed `from` partial back
//     (return it to the pool).
//
// Strips are claimed by workers in contiguous runs (the same static
// split as For), but each strip fills its own partial and the partials
// merge through a fixed pairwise tree ascending by strip index, so the
// result is bit-identical for any worker count. With S == 1 the single
// body call and zero merges make ReduceStrips exactly the serial loop —
// callers use a one-strip grid to preserve undivided serial math for
// small inputs.
//
// The returned accumulator is one produced by makePartial; all others
// have been handed to recycle.
func ReduceStrips[T any](bounds []int, workers int, makePartial func(strip int) T, body func(partial T, strip, start, end int), merge func(into, from T) T, recycle func(T)) T {
	s := len(bounds) - 1
	if s < 1 {
		panic("parallel: ReduceStrips needs at least one strip (len(bounds) >= 2)")
	}
	if s == 1 {
		reduceStripsTotal.Inc()
		p := makePartial(0)
		body(p, 0, bounds[0], bounds[1])
		return p
	}
	partials := make([]T, s)
	For(s, workers, func(cs, ce int) {
		for c := cs; c < ce; c++ {
			reduceStripsTotal.Inc()
			p := makePartial(c)
			body(p, c, bounds[c], bounds[c+1])
			partials[c] = p
		}
	})
	// Fixed-shape pairwise tree: level k merges partials[i] ← partials[i+2ᵏ]
	// for i ≡ 0 (mod 2ᵏ⁺¹). The shape depends only on S.
	var zero T
	for span := 1; span < s; span *= 2 {
		for i := 0; i+span < s; i += 2 * span {
			reduceMergesTotal.Inc()
			partials[i] = merge(partials[i], partials[i+span])
			if recycle != nil {
				recycle(partials[i+span])
			}
			partials[i+span] = zero
		}
	}
	return partials[0]
}

// UniformStripBounds builds a strip grid over [0, n): S = n/grain strips,
// clamped to [1, maxStrips], with boundaries i*n/S. The grid depends only
// on the arguments — callers must pass a grain derived from the input and
// package constants (NOT AutoGrain, whose calibration is timing-based) if
// the grid feeds a floating-point reduction.
func UniformStripBounds(n, grain, maxStrips int) []int {
	if n < 0 {
		n = 0
	}
	if grain < 1 {
		grain = 1
	}
	s := n / grain
	if s > maxStrips {
		s = maxStrips
	}
	if s < 1 {
		s = 1
	}
	bounds := make([]int, s+1)
	for i := 1; i <= s; i++ {
		bounds[i] = i * n / s
	}
	return bounds
}

// BalancedStripBounds builds a strip grid over the group index space
// [0, len(weights)) that balances total WEIGHT rather than group count:
// it cuts S = clamp(total/grain, 1, maxStrips) strips at the positions
// where the weight prefix sum crosses each multiple of total/S. Groups
// are never split. The grid depends only on the weights and the
// arguments, so it is safe for floating-point reductions. The Gram
// kernels use it with ModePlan group entry counts as weights, which keeps
// strips cache-contiguous in the plan's sorted entry storage while
// equalising per-strip work even when a few fibers dominate.
func BalancedStripBounds(weights []int, grain, maxStrips int) []int {
	n := len(weights)
	if n == 0 {
		return []int{0, 0}
	}
	if grain < 1 {
		grain = 1
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	s := total / grain
	if s > maxStrips {
		s = maxStrips
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	bounds := make([]int, s+1)
	bounds[s] = n
	run, g := 0, 0
	for k := 1; k < s; k++ {
		// Every strip takes at least one group; then extend to the k-th
		// proportional weight share, stopping early if the strips still to
		// come would otherwise be starved of groups.
		run += weights[g]
		g++
		for run*s < k*total && g < n-(s-k) {
			run += weights[g]
			g++
		}
		bounds[k] = g
	}
	return bounds
}
