package parallel

import (
	"math"
	"runtime"
	"strconv"
	"testing"
)

// logisticVals returns n floats with well-spread magnitudes whose sum is
// association-order sensitive.
func logisticVals(n int) []float64 {
	vals := make([]float64, n)
	x := 0.5
	for i := range vals {
		x = 3.9 * x * (1 - x)
		vals[i] = x - 0.5
	}
	return vals
}

// stripSum folds vals over the given strip grid with a float-slice
// accumulator of length 1.
func stripSum(vals []float64, bounds []int, workers int) float64 {
	out := ReduceStrips(bounds, workers,
		func(int) *float64 { p := new(float64); return p },
		func(p *float64, _, start, end int) {
			for i := start; i < end; i++ {
				*p += vals[i]
			}
		},
		func(into, from *float64) *float64 { *into += *from; return into },
		nil,
	)
	return *out
}

func TestReduceStripsBitStableAcrossWorkerCounts(t *testing.T) {
	const n = 100_000
	vals := logisticVals(n)
	bounds := UniformStripBounds(n, 1024, 32)
	if len(bounds) != 33 {
		t.Fatalf("expected 32 strips, got %d", len(bounds)-1)
	}
	want := stripSum(vals, bounds, 1)
	for _, w := range []int{1, 2, 3, 8, 37} {
		got := stripSum(vals, bounds, w)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: %x, want %x", w, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestReduceStripsBitStableAcrossFanoutCaps(t *testing.T) {
	const n = 50_000
	vals := logisticVals(n)
	bounds := UniformStripBounds(n, 512, 32)
	want := stripSum(vals, bounds, 8)
	for _, cap := range []int{1, 2, 8} {
		prev := SetFanoutCap(cap)
		got := stripSum(vals, bounds, 8)
		SetFanoutCap(prev)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("fanout cap %d changed the result: %x vs %x",
				cap, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestReduceStripsSingleStripIsSerialLoop(t *testing.T) {
	const n = 10_000
	vals := logisticVals(n)
	serial := 0.0
	for _, v := range vals {
		serial += v
	}
	got := stripSum(vals, []int{0, n}, 8)
	if math.Float64bits(got) != math.Float64bits(serial) {
		t.Fatalf("S=1 must be the undivided serial fold: %x vs %x",
			math.Float64bits(got), math.Float64bits(serial))
	}
}

func TestReduceStripsRecyclesEveryConsumedPartial(t *testing.T) {
	for _, s := range []int{2, 3, 5, 8, 17, 32} {
		bounds := UniformStripBounds(s*10, 10, s)
		made, recycled := 0, 0
		out := ReduceStrips(bounds, 4,
			func(int) *int { made++; return new(int) },
			func(p *int, _, start, end int) { *p += end - start },
			func(into, from *int) *int { *into += *from; return into },
			func(*int) { recycled++ },
		)
		if *out != s*10 {
			t.Fatalf("s=%d: sum %d, want %d", s, *out, s*10)
		}
		if made != s || recycled != s-1 {
			t.Fatalf("s=%d: made %d recycled %d, want %d and %d", s, made, recycled, s, s-1)
		}
	}
}

func TestReduceStripsPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("strip body panic not propagated")
		}
	}()
	ReduceStrips(UniformStripBounds(100, 10, 8), 4,
		func(int) *int { return new(int) },
		func(_ *int, strip, _, _ int) {
			if strip == 3 {
				panic("strip-boom")
			}
		},
		func(into, _ *int) *int { return into },
		nil,
	)
}

func TestUniformStripBounds(t *testing.T) {
	for _, tc := range []struct {
		n, grain, maxStrips, wantStrips int
	}{
		{0, 10, 8, 1},
		{5, 10, 8, 1},   // under one grain → single strip
		{100, 10, 8, 8}, // capped by maxStrips
		{100, 10, 32, 10},
		{100, 1, 4, 4},
		{7, 0, 32, 7}, // grain<1 treated as 1
	} {
		b := UniformStripBounds(tc.n, tc.grain, tc.maxStrips)
		if len(b)-1 != tc.wantStrips {
			t.Fatalf("UniformStripBounds(%d,%d,%d): %d strips, want %d",
				tc.n, tc.grain, tc.maxStrips, len(b)-1, tc.wantStrips)
		}
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("bounds %v do not cover [0,%d)", b, tc.n)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("bounds %v not ascending", b)
			}
		}
	}
}

func TestBalancedStripBounds(t *testing.T) {
	// Skewed weights: one dominant group must not produce empty strips.
	weights := []int{1, 1, 1000, 1, 1, 1, 1, 1}
	b := BalancedStripBounds(weights, 100, 4)
	if b[0] != 0 || b[len(b)-1] != len(weights) {
		t.Fatalf("bounds %v do not cover the group space", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds %v contain an empty strip", b)
		}
	}
	if len(b)-1 != 4 {
		t.Fatalf("want 4 strips for total=1007 grain=100 max=4, got %d", len(b)-1)
	}

	// Uniform weights split evenly.
	uni := make([]int, 64)
	for i := range uni {
		uni[i] = 10
	}
	b = BalancedStripBounds(uni, 80, 32)
	if len(b)-1 != 8 {
		t.Fatalf("uniform: want 8 strips, got %d (%v)", len(b)-1, b)
	}
	for i := 1; i < len(b); i++ {
		if got := b[i] - b[i-1]; got != 8 {
			t.Fatalf("uniform: strip %d has %d groups, want 8 (%v)", i-1, got, b)
		}
	}

	// Small totals collapse to one strip; empty input yields an empty grid.
	if b := BalancedStripBounds([]int{3, 4}, 100, 8); len(b) != 2 || b[0] != 0 || b[1] != 2 {
		t.Fatalf("small total: got %v, want [0 2]", b)
	}
	if b := BalancedStripBounds(nil, 10, 8); len(b) != 2 || b[1] != 0 {
		t.Fatalf("empty weights: got %v, want [0 0]", b)
	}

	// More strips than groups is clamped to one group per strip.
	b = BalancedStripBounds([]int{100, 100, 100}, 1, 32)
	if len(b)-1 != 3 {
		t.Fatalf("want 3 strips for 3 groups, got %d (%v)", len(b)-1, b)
	}
}

func TestBalancedStripBoundsIsWeightBalanced(t *testing.T) {
	// Geometric-ish weights: every strip should carry a comparable share.
	weights := make([]int, 200)
	w := 1
	for i := range weights {
		weights[i] = w
		w = w*17%97 + 1
	}
	total := 0
	for _, x := range weights {
		total += x
	}
	b := BalancedStripBounds(weights, total/16, 16)
	s := len(b) - 1
	for k := 0; k < s; k++ {
		sum := 0
		for g := b[k]; g < b[k+1]; g++ {
			sum += weights[g]
		}
		// No strip may exceed ~2 proportional shares plus one group (the
		// group granularity bound).
		if sum > 2*total/s+97 {
			t.Fatalf("strip %d carries %d of %d total across %d strips (%v)", k, sum, total, s, b)
		}
	}
}

func TestSetFanoutCapStillCoversAllIndices(t *testing.T) {
	prev := SetFanoutCap(1)
	defer SetFanoutCap(prev)
	hits := make([]int, 1000)
	For(len(hits), 8, func(start, end int) {
		for i := start; i < end; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times under cap=1", i, h)
		}
	}
}

func TestFanoutCapDefaultsToGOMAXPROCS(t *testing.T) {
	prev := SetFanoutCap(0)
	defer SetFanoutCap(prev)
	if got, want := FanoutCap(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("FanoutCap() = %d, want GOMAXPROCS = %d", got, want)
	}
	if old := SetFanoutCap(7); old != 0 {
		t.Fatalf("previous cap override = %d, want 0", old)
	}
	if got := FanoutCap(); got != 7 {
		t.Fatalf("FanoutCap() = %d after SetFanoutCap(7)", got)
	}
	if old := SetFanoutCap(-3); old != 7 {
		t.Fatalf("SetFanoutCap returned %d, want 7", old)
	}
	if got, want := FanoutCap(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("negative cap must restore default: got %d, want %d", got, want)
	}
}

func TestSplitWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, tasks, want int }{
		{8, 4, 2},
		{8, 3, 3}, // ceil(8/3)
		{8, 16, 1},
		{1, 4, 1},
		{4, 0, 4},
		{5, 2, 3},
	} {
		if got := SplitWorkers(tc.workers, tc.tasks); got != tc.want {
			t.Fatalf("SplitWorkers(%d,%d) = %d, want %d", tc.workers, tc.tasks, got, tc.want)
		}
	}
}

func BenchmarkReduceStrips(b *testing.B) {
	const n = 1 << 18
	vals := logisticVals(n)
	bounds := UniformStripBounds(n, 4096, 32)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = stripSum(vals, bounds, w)
			}
		})
	}
}
