package parallel

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Grain autotuning. ForGrain callers historically hard-coded grains
// (64, 128, 256, 1024, 2048, 4096 …) tuned on one machine; AutoGrain
// derives them from a one-time calibration of goroutine spawn/join
// overhead against straight-line FLOP throughput, so the fan-out
// decision tracks the hardware it actually runs on.
//
// SCOPE: AutoGrain is timing-derived, so it may only steer SCHEDULING —
// the fan-out cap of write-disjoint ForGrain loops, where chunk
// boundaries affect which goroutine computes an index but never how.
// It must NOT size a reduction strip grid (those grids feed
// floating-point merge trees and must be pure functions of the input —
// see strips.go); UniformStripBounds/BalancedStripBounds callers pass
// package constants instead.
//
// The determinism analyzer bans time.Now in kernel packages precisely
// to keep timing away from results; the calibration sites below carry
// lint:allow suppressions with that scheduling-only justification, and
// SetGrainCalibration pins the calibration for tests and benchmarks
// that want runs to be scheduling-reproducible too.

// grainCal is a calibration: nanoseconds to spawn+join one goroutine and
// nanoseconds per floating-point multiply-add of straight-line work.
type grainCal struct{ spawnNs, flopNs float64 }

// calOverride, when non-nil, pins the calibration (tests, benchmarks).
var calOverride atomic.Pointer[grainCal]

// calMeasured runs the one-time measurement. sync.OnceValue amortises it
// to a single ~100µs cost for the life of the process.
var calMeasured = sync.OnceValue(measureCal)

// SetGrainCalibration pins AutoGrain's calibration to the given
// spawn/join and per-FLOP costs (in nanoseconds), making grain choices —
// a scheduling property only; results never depend on grain — fully
// reproducible. Non-positive values restore the measured calibration.
// It returns the previously pinned values (0, 0 if none).
func SetGrainCalibration(spawnNs, flopNs float64) (prevSpawnNs, prevFlopNs float64) {
	var next *grainCal
	if spawnNs > 0 && flopNs > 0 {
		next = &grainCal{spawnNs: spawnNs, flopNs: flopNs}
	}
	prev := calOverride.Swap(next)
	if prev == nil {
		return 0, 0
	}
	return prev.spawnNs, prev.flopNs
}

// autoGrainAmortize is how many times the per-worker work must outweigh
// the spawn/join overhead: each chunk of an AutoGrain'd loop costs at
// least 16 spawns' worth of FLOPs, bounding parallelisation overhead at
// ~6% in the worst case.
const autoGrainAmortize = 16

// AutoGrain returns the minimum items-per-worker grain for a loop that
// spends roughly flopsPerItem multiply-adds per item, sized so each
// worker's chunk amortises goroutine spawn/join overhead. Pass it as
// ForGrain's grain for write-disjoint loops. The result is clamped to
// [1, 1<<20]. flopsPerItem < 1 is treated as 1.
//
// Grain only caps fan-out; it never moves a reduction boundary, so two
// processes with different calibrations still produce bit-identical
// results.
func AutoGrain(flopsPerItem float64) int {
	if flopsPerItem < 1 || math.IsNaN(flopsPerItem) {
		flopsPerItem = 1
	}
	cal := calOverride.Load()
	if cal == nil {
		c := calMeasured()
		cal = &c
	}
	g := autoGrainAmortize * cal.spawnNs / (flopsPerItem * cal.flopNs)
	switch {
	case g < 1 || math.IsNaN(g):
		return 1
	case g > 1<<20:
		return 1 << 20
	}
	return int(g)
}

// measureCal times goroutine spawn/join and straight-line multiply-add
// throughput. Both measurements are tiny (~64 spawns, ~64k FLOPs) and
// deliberately coarse — grain only needs the right order of magnitude.
func measureCal() grainCal {
	const spawnRounds = 64
	var wg sync.WaitGroup
	//lint:allow determinism -- grain calibration is scheduling-only: it sizes fan-out caps for write-disjoint loops and can never move a reduction boundary or change results
	spawnStart := time.Now()
	for i := 0; i < spawnRounds; i++ {
		wg.Add(1)
		go wg.Done()
	}
	wg.Wait()
	//lint:allow determinism -- grain calibration is scheduling-only: it sizes fan-out caps for write-disjoint loops and can never move a reduction boundary or change results
	spawnNs := float64(time.Since(spawnStart).Nanoseconds()) / spawnRounds

	const flopRounds = 1 << 16
	acc, x := 0.0, 1.0000001
	//lint:allow determinism -- grain calibration is scheduling-only: it sizes fan-out caps for write-disjoint loops and can never move a reduction boundary or change results
	flopStart := time.Now()
	for i := 0; i < flopRounds; i++ {
		acc = acc*x + x
	}
	//lint:allow determinism -- grain calibration is scheduling-only: it sizes fan-out caps for write-disjoint loops and can never move a reduction boundary or change results
	flopNs := float64(time.Since(flopStart).Nanoseconds()) / flopRounds
	calSink.Store(math.Float64bits(acc)) // defeat dead-code elimination

	// Clamp away scheduler hiccups (a preempted measurement can be wildly
	// off); the defaults correspond to a typical ~1 GHz-class core.
	return grainCal{
		spawnNs: clampF(spawnNs, 100, 100_000),
		flopNs:  clampF(flopNs, 0.05, 100),
	}
}

var calSink atomic.Uint64

func clampF(v, lo, hi float64) float64 {
	if !(v > lo) { // also catches NaN
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
