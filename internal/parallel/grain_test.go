package parallel

import "testing"

func TestAutoGrainPinnedCalibration(t *testing.T) {
	prevS, prevF := SetGrainCalibration(1600, 1)
	defer SetGrainCalibration(prevS, prevF)

	// grain = amortize * spawnNs / (flops * flopNs) = 16*1600/flops.
	for _, tc := range []struct {
		flops float64
		want  int
	}{
		{1, 25600},
		{100, 256},
		{25600, 1},
		{1e12, 1},   // clamp low
		{0, 25600},  // flops<1 treated as 1
		{-5, 25600}, // negative likewise
	} {
		if got := AutoGrain(tc.flops); got != tc.want {
			t.Fatalf("AutoGrain(%v) = %d, want %d", tc.flops, got, tc.want)
		}
	}
}

func TestAutoGrainPinnedIsReproducible(t *testing.T) {
	prevS, prevF := SetGrainCalibration(1000, 0.5)
	defer SetGrainCalibration(prevS, prevF)
	first := AutoGrain(32)
	for i := 0; i < 100; i++ {
		if got := AutoGrain(32); got != first {
			t.Fatalf("pinned AutoGrain drifted: %d then %d", first, got)
		}
	}
}

func TestAutoGrainUpperClamp(t *testing.T) {
	prevS, prevF := SetGrainCalibration(1e12, 1)
	defer SetGrainCalibration(prevS, prevF)
	if got := AutoGrain(1); got != 1<<20 {
		t.Fatalf("AutoGrain = %d, want upper clamp %d", got, 1<<20)
	}
}

func TestAutoGrainMeasuredIsSane(t *testing.T) {
	// Clear any override: the measured calibration must land in the
	// clamped range and produce positive grains.
	prevS, prevF := SetGrainCalibration(0, 0)
	defer SetGrainCalibration(prevS, prevF)
	cal := calMeasured()
	if cal.spawnNs < 100 || cal.spawnNs > 100_000 {
		t.Fatalf("spawnNs %v outside clamp", cal.spawnNs)
	}
	if cal.flopNs < 0.05 || cal.flopNs > 100 {
		t.Fatalf("flopNs %v outside clamp", cal.flopNs)
	}
	if g := AutoGrain(8); g < 1 || g > 1<<20 {
		t.Fatalf("measured AutoGrain(8) = %d outside [1, 2^20]", g)
	}
	// Cheaper per-item work must never get a smaller grain.
	if AutoGrain(1) < AutoGrain(1000) {
		t.Fatalf("grain not monotone in per-item cost: %d < %d", AutoGrain(1), AutoGrain(1000))
	}
}
