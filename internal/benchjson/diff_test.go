package benchjson

import (
	"strings"
	"testing"
)

// res builds a Result with optional allocs/op (negative = not measured).
func res(ns float64, allocs int64) Result {
	r := Result{NsPerOp: ns, Iterations: 100}
	if allocs >= 0 {
		r.AllocsPerOp = &allocs
	}
	return r
}

// entryFor finds one named entry or fails the test.
func entryFor(t *testing.T, entries []DiffEntry, name string) DiffEntry {
	t.Helper()
	for _, e := range entries {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no diff entry for %q in %+v", name, entries)
	return DiffEntry{}
}

func TestDiffDetectsTimingRegression(t *testing.T) {
	old := map[string]Result{"BenchmarkA": res(1000, -1)}
	cur := map[string]Result{"BenchmarkA": res(1400, -1)}
	entries := Diff(old, cur, DiffOptions{Tolerance: 0.25})
	e := entryFor(t, entries, "BenchmarkA")
	if e.Status != StatusRegression || !e.Failed {
		t.Fatalf("1000->1400 ns at 25%% tolerance: got status %q failed=%v, want regression/failed", e.Status, e.Failed)
	}
	if !AnyFailed(entries) {
		t.Fatal("AnyFailed = false for a failing diff")
	}
}

func TestDiffWithinToleranceAndImprovementPass(t *testing.T) {
	old := map[string]Result{
		"BenchmarkSlow":   res(1000, -1),
		"BenchmarkFaster": res(1000, -1),
	}
	cur := map[string]Result{
		"BenchmarkSlow":   res(1200, -1), // +20% < 25% tolerance
		"BenchmarkFaster": res(400, -1),  // big improvement
	}
	entries := Diff(old, cur, DiffOptions{Tolerance: 0.25})
	if AnyFailed(entries) {
		t.Fatalf("within-tolerance + improvement should pass: %+v", entries)
	}
	if e := entryFor(t, entries, "BenchmarkFaster"); e.Status != StatusImproved {
		t.Fatalf("2.5x speedup: got status %q, want improved", e.Status)
	}
	if e := entryFor(t, entries, "BenchmarkSlow"); e.Status != StatusOK {
		t.Fatalf("+20%% at 25%% tolerance: got status %q, want ok", e.Status)
	}
}

func TestDiffPerBenchToleranceOverride(t *testing.T) {
	old := map[string]Result{
		"BenchmarkNoisy/workers=4": res(1000, -1),
		"BenchmarkTight":           res(1000, -1),
	}
	cur := map[string]Result{
		"BenchmarkNoisy/workers=4": res(1700, -1), // +70%
		"BenchmarkTight":           res(1060, -1), // +6%
	}
	entries := Diff(old, cur, DiffOptions{
		Tolerance: 0.25,
		PerBench: map[string]float64{
			"BenchmarkNoisy": 0.80, // prefix key covers the sub-benchmark
			"BenchmarkTight": 0.05,
		},
	})
	if e := entryFor(t, entries, "BenchmarkNoisy/workers=4"); e.Failed {
		t.Fatalf("+70%% under an 80%% prefix override should pass: %+v", e)
	}
	if e := entryFor(t, entries, "BenchmarkTight"); !e.Failed {
		t.Fatalf("+6%% under a 5%% override should fail: %+v", e)
	}
}

func TestDiffAllocsGate(t *testing.T) {
	old := map[string]Result{"BenchmarkGram": res(1000, 10)}
	cur := map[string]Result{"BenchmarkGram": res(1000, 46)}
	entries := Diff(old, cur, DiffOptions{Tolerance: 0.25})
	e := entryFor(t, entries, "BenchmarkGram")
	if e.Status != StatusAllocRegression || !e.Failed {
		t.Fatalf("10 -> 46 allocs/op at tolerance 0: got %q failed=%v", e.Status, e.Failed)
	}
	// Within an explicit allocs budget it passes.
	entries = Diff(old, cur, DiffOptions{Tolerance: 0.25, AllocsTolerance: 40})
	if e := entryFor(t, entries, "BenchmarkGram"); e.Failed {
		t.Fatalf("10 -> 46 allocs/op at tolerance +40 should pass: %+v", e)
	}
	// A benchmark that stops reporting allocs is not gated on them.
	cur = map[string]Result{"BenchmarkGram": res(1000, -1)}
	if e := entryFor(t, Diff(old, cur, DiffOptions{}), "BenchmarkGram"); e.Failed {
		t.Fatalf("missing allocs measurement should not fail the allocs gate: %+v", e)
	}
}

func TestDiffMissingBenchmark(t *testing.T) {
	old := map[string]Result{"BenchmarkGone": res(1000, -1)}
	cur := map[string]Result{}
	e := entryFor(t, Diff(old, cur, DiffOptions{}), "BenchmarkGone")
	if e.Status != StatusMissing || !e.Failed {
		t.Fatalf("baseline benchmark absent from new run: got %q failed=%v, want missing/failed", e.Status, e.Failed)
	}
	e = entryFor(t, Diff(old, cur, DiffOptions{AllowMissing: true}), "BenchmarkGone")
	if e.Status != StatusMissing || e.Failed {
		t.Fatalf("AllowMissing should downgrade to a note: got %q failed=%v", e.Status, e.Failed)
	}
}

func TestDiffNewBenchmarkNeverFails(t *testing.T) {
	old := map[string]Result{}
	cur := map[string]Result{"BenchmarkFresh": res(1000, 5)}
	e := entryFor(t, Diff(old, cur, DiffOptions{}), "BenchmarkFresh")
	if e.Status != StatusNew || e.Failed {
		t.Fatalf("benchmark only in new run: got %q failed=%v, want new/pass", e.Status, e.Failed)
	}
}

func TestDiffNegativeToleranceDisablesTimingGate(t *testing.T) {
	old := map[string]Result{"BenchmarkA": res(100, -1)}
	cur := map[string]Result{"BenchmarkA": res(10000, -1)}
	if e := entryFor(t, Diff(old, cur, DiffOptions{Tolerance: -1}), "BenchmarkA"); e.Failed {
		t.Fatalf("negative tolerance should disable the timing gate: %+v", e)
	}
}

func TestCheckMonotone(t *testing.T) {
	good := map[string]Result{
		"BenchmarkHOSVD/workers=1": res(1000, -1),
		"BenchmarkHOSVD/workers=2": res(900, -1),
		"BenchmarkHOSVD/workers=4": res(930, -1), // +3.3% over w2, inside 5% slack
		"BenchmarkHOSVD/other":     res(5, -1),   // ignored: not workers=N
	}
	if problems := CheckMonotone(good, "BenchmarkHOSVD", 0.05); len(problems) != 0 {
		t.Fatalf("flat-to-improving curve flagged: %v", problems)
	}

	inverted := map[string]Result{
		"BenchmarkHOSVD/workers=1": res(11300, -1),
		"BenchmarkHOSVD/workers=2": res(16100, -1),
		"BenchmarkHOSVD/workers=4": res(24800, -1),
	}
	problems := CheckMonotone(inverted, "BenchmarkHOSVD", 0.05)
	if len(problems) != 2 {
		t.Fatalf("the seed's inverted curve should produce 2 violations, got %v", problems)
	}
	if !strings.Contains(problems[0], "inversion") {
		t.Fatalf("violation text should name the inversion: %q", problems[0])
	}

	// A vanished sweep must itself be a violation, not a silent pass.
	if problems := CheckMonotone(map[string]Result{}, "BenchmarkHOSVD", 0.05); len(problems) != 1 {
		t.Fatalf("missing sweep should be one violation, got %v", problems)
	}
}

func TestCheckSpeedup(t *testing.T) {
	results := map[string]Result{
		"BenchmarkSketchedHOSVD/keep=0.1": res(200, -1),
		"BenchmarkHOSVD":                  res(1000, -1),
	}
	spec := "BenchmarkSketchedHOSVD/keep=0.1:BenchmarkHOSVD:3"
	if problems := CheckSpeedup(results, spec); len(problems) != 0 {
		t.Fatalf("5x speedup failed a 3x gate: %v", problems)
	}
	// A shortfall is one violation naming both sides and the ratio.
	tight := "BenchmarkSketchedHOSVD/keep=0.1:BenchmarkHOSVD:6"
	problems := CheckSpeedup(results, tight)
	if len(problems) != 1 || !strings.Contains(problems[0], "shortfall") {
		t.Fatalf("5x speedup should fail a 6x gate with a shortfall, got %v", problems)
	}
	// A missing side must be a violation, not a silent pass.
	if problems := CheckSpeedup(map[string]Result{"BenchmarkHOSVD": res(1000, -1)}, spec); len(problems) != 1 {
		t.Fatalf("missing fast side should be one violation, got %v", problems)
	}
	if problems := CheckSpeedup(results, "malformed"); len(problems) != 1 {
		t.Fatalf("malformed spec should be one violation, got %v", problems)
	}
	if problems := CheckSpeedup(results, "a:b:zero"); len(problems) != 1 {
		t.Fatalf("bad MIN should be one violation, got %v", problems)
	}
}
