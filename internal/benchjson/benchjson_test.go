package benchjson

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/tensor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkModeGramSparse-8    	      31	  37907166 ns/op	  483501 B/op	      68 allocs/op
BenchmarkTTMSparse-8         	    1694	    761343 ns/op	   31352 B/op	       9 allocs/op
BenchmarkWorkspaceTTMChain-8 	    5127	    234365 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelHOSVD/workers=1-8 	       1	1165547843 ns/op
BenchmarkNoNs-8                        12     77 somethingelse/op
PASS
ok  	repro/internal/tensor	12.3s
`

func TestParse(t *testing.T) {
	got := Parse(sample)
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %v", len(got), got)
	}
	r, ok := got["BenchmarkTTMSparse"]
	if !ok {
		t.Fatal("BenchmarkTTMSparse missing (GOMAXPROCS suffix not stripped?)")
	}
	if r.NsPerOp != 761343 || r.Iterations != 1694 {
		t.Fatalf("TTMSparse = %+v", r)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 9 {
		t.Fatalf("TTMSparse allocs = %v", r.AllocsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 31352 {
		t.Fatalf("TTMSparse bytes = %v", r.BytesPerOp)
	}

	// Zero allocations must be reported as explicit zeros, not omitted.
	ws := got["BenchmarkWorkspaceTTMChain"]
	if ws.AllocsPerOp == nil || *ws.AllocsPerOp != 0 {
		t.Fatalf("WorkspaceTTMChain allocs = %v, want explicit 0", ws.AllocsPerOp)
	}

	// Sub-benchmark names keep their /workers=N segment; only the trailing
	// -GOMAXPROCS is stripped, and missing -benchmem fields stay nil.
	h, ok := got["BenchmarkParallelHOSVD/workers=1"]
	if !ok {
		t.Fatalf("sub-benchmark name mangled: %v", got)
	}
	if h.NsPerOp != 1165547843 || h.AllocsPerOp != nil || h.BytesPerOp != nil {
		t.Fatalf("ParallelHOSVD = %+v", h)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	got := Parse("PASS\nok repro 1s\nBenchmarkBad notanint 5 ns/op\n--- BENCH: BenchmarkX\n")
	if len(got) != 0 {
		t.Fatalf("parsed noise as results: %v", got)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/workers=4-8": "BenchmarkFoo/workers=4",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
