// Package benchjson parses standard `go test -bench` output into a
// machine-readable form for the BENCH_*.json CI artifacts.
package benchjson

import (
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. AllocsPerOp and BytesPerOp are
// pointers because benchmarks that don't call ReportAllocs (and aren't run
// with -benchmem) don't report them; nil means "not measured" and the
// fields are omitted from the JSON.
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	Iterations  int64    `json:"iterations"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

// Parse extracts every benchmark result line from `go test -bench` output.
// Lines look like
//
//	BenchmarkTTMSparse-8   1694   761343 ns/op   31352 B/op   9 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so names are stable across
// machines. Non-benchmark lines (pkg headers, PASS/ok, sub-benchmark
// warnings) are ignored. When the same name appears more than once (e.g.
// the same benchmark in two packages after suffix stripping, or -count>1)
// the last occurrence wins.
func Parse(output string) map[string]Result {
	results := make(map[string]Result)
	for _, line := range strings.Split(output, "\n") {
		name, r, ok := parseLine(line)
		if ok {
			results[name] = r
		}
	}
	return results
}

// parseLine parses a single benchmark output line.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := stripProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	// The remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, false
			}
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &v
			}
		}
	}
	if !seenNs {
		return "", Result{}, false
	}
	return name, r, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, taking care not to eat a -N that is part of a sub-benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
