package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Status classifies one benchmark's old→new comparison.
type Status string

const (
	// StatusOK: within tolerance of the baseline.
	StatusOK Status = "ok"
	// StatusImproved: measurably faster than the baseline. Never fails.
	StatusImproved Status = "improved"
	// StatusRegression: ns/op grew beyond the tolerance.
	StatusRegression Status = "regression"
	// StatusAllocRegression: allocs/op grew beyond the allocs tolerance.
	// Allocation counts are deterministic, so this gate is exact where the
	// timing gate is statistical.
	StatusAllocRegression Status = "alloc-regression"
	// StatusMissing: present in the baseline, absent from the new run —
	// usually a renamed or deleted benchmark silently dropping out of the
	// gate. Fails unless AllowMissing is set.
	StatusMissing Status = "missing"
	// StatusNew: present only in the new run; recorded for the report but
	// never a failure (new benchmarks join the baseline on its next
	// refresh).
	StatusNew Status = "new"
)

// DefaultTolerance is the relative ns/op growth allowed before a
// comparison fails. Checked-in baselines come from different hardware
// than the machine replaying them, so the default is deliberately loose;
// tighten per benchmark via DiffOptions.PerBench when a kernel's timing
// is stable.
const DefaultTolerance = 0.25

// DiffOptions configures Diff.
type DiffOptions struct {
	// Tolerance is the default allowed relative ns/op growth (0.25 =
	// +25%). Zero means DefaultTolerance; negative means "no timing gate".
	Tolerance float64
	// PerBench overrides Tolerance for matching benchmarks. Keys match
	// exactly or as a name prefix (so "BenchmarkParallelHOSVD" covers its
	// workers= sub-benchmarks); the longest matching key wins.
	PerBench map[string]float64
	// AllocsTolerance is the allowed absolute allocs/op growth for
	// benchmarks that report allocations in both runs. Allocation counts
	// are deterministic, so the default 0 is the right gate.
	AllocsTolerance int64
	// AllowMissing downgrades baseline benchmarks absent from the new run
	// from failures to notes.
	AllowMissing bool
}

// toleranceFor resolves the effective ns/op tolerance for one benchmark.
func (o DiffOptions) toleranceFor(name string) float64 {
	tol := o.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	best := -1
	for key, v := range o.PerBench {
		if (key == name || strings.HasPrefix(name, key)) && len(key) > best {
			best = len(key)
			tol = v
		}
	}
	return tol
}

// DiffEntry is one benchmark's comparison outcome.
type DiffEntry struct {
	Name      string
	Status    Status
	Failed    bool
	OldNs     float64
	NewNs     float64
	Ratio     float64 // NewNs / OldNs; 0 when either side is absent
	OldAllocs *int64
	NewAllocs *int64
	Detail    string
}

// Diff compares a new benchmark run against a baseline and returns one
// entry per benchmark name in either run, sorted by name. An entry fails
// when ns/op grew beyond its tolerance, allocs/op grew beyond the allocs
// tolerance, or the benchmark vanished from the new run (unless
// AllowMissing). Improvements and newly added benchmarks never fail.
func Diff(baseline, current map[string]Result, opts DiffOptions) []DiffEntry {
	names := make([]string, 0, len(baseline)+len(current))
	for name := range baseline {
		names = append(names, name)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	entries := make([]DiffEntry, 0, len(names))
	for _, name := range names {
		old, inOld := baseline[name]
		cur, inCur := current[name]
		e := DiffEntry{Name: name}
		switch {
		case !inCur:
			e.Status = StatusMissing
			e.OldNs = old.NsPerOp
			e.OldAllocs = old.AllocsPerOp
			e.Failed = !opts.AllowMissing
			e.Detail = "present in baseline, absent from new run"
		case !inOld:
			e.Status = StatusNew
			e.NewNs = cur.NsPerOp
			e.NewAllocs = cur.AllocsPerOp
			e.Detail = "not in baseline"
		default:
			e.OldNs, e.NewNs = old.NsPerOp, cur.NsPerOp
			e.OldAllocs, e.NewAllocs = old.AllocsPerOp, cur.AllocsPerOp
			if old.NsPerOp > 0 {
				e.Ratio = cur.NsPerOp / old.NsPerOp
			}
			tol := opts.toleranceFor(name)
			switch {
			case tol >= 0 && old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+tol):
				e.Status = StatusRegression
				e.Failed = true
				e.Detail = fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx, tolerance %.0f%%)",
					old.NsPerOp, cur.NsPerOp, e.Ratio, tol*100)
			case old.AllocsPerOp != nil && cur.AllocsPerOp != nil &&
				*cur.AllocsPerOp > *old.AllocsPerOp+opts.AllocsTolerance:
				e.Status = StatusAllocRegression
				e.Failed = true
				e.Detail = fmt.Sprintf("allocs/op %d -> %d (tolerance +%d)",
					*old.AllocsPerOp, *cur.AllocsPerOp, opts.AllocsTolerance)
			case e.Ratio > 0 && e.Ratio < 1:
				e.Status = StatusImproved
			default:
				e.Status = StatusOK
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// AnyFailed reports whether any entry failed.
func AnyFailed(entries []DiffEntry) bool {
	for _, e := range entries {
		if e.Failed {
			return true
		}
	}
	return false
}

// CheckMonotone verifies a worker-scaling curve does not invert: among the
// sub-benchmarks named group+"/workers=N", ns/op must be non-increasing in
// N up to the relative slack (cur <= prev * (1+slack)). This is the shape
// gate behind the parallel-scaling fix: adding workers must never make a
// kernel slower, on any hardware, regardless of absolute timings. It
// returns a description of each violation; an empty slice means the curve
// is sound. A group with fewer than two workers= points is itself a
// violation — the gate must notice when the sweep silently disappears.
func CheckMonotone(results map[string]Result, group string, slack float64) []string {
	type point struct {
		workers int
		ns      float64
	}
	prefix := group + "/workers="
	var pts []point
	for name, r := range results {
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		w, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		pts = append(pts, point{w, r.NsPerOp})
	}
	if len(pts) < 2 {
		return []string{fmt.Sprintf("%s: found %d workers= sub-benchmarks, need >= 2 for a scaling curve", group, len(pts))}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].workers < pts[b].workers })
	var problems []string
	for i := 1; i < len(pts); i++ {
		prev, cur := pts[i-1], pts[i]
		if cur.ns > prev.ns*(1+slack) {
			problems = append(problems, fmt.Sprintf(
				"%s: scaling inversion — workers=%d %.0f ns/op -> workers=%d %.0f ns/op (%.2fx, slack %.0f%%)",
				group, prev.workers, prev.ns, cur.workers, cur.ns, cur.ns/prev.ns, slack*100))
		}
	}
	return problems
}

// CheckSpeedup verifies a fast-path benchmark actually is one: spec is
// "FAST:SLOW:MIN" (benchmark names never contain ':'), and the check
// requires SLOW's ns/op ≥ MIN × FAST's ns/op in the same snapshot. Both
// sides come from one run on one machine, so unlike the cross-machine
// timing gate this ratio is meaningful at a tight threshold — it is the
// gate behind the sketch fast path's claimed speedup. It returns a
// description of each violation; an empty slice means the spec holds.
func CheckSpeedup(results map[string]Result, spec string) []string {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return []string{fmt.Sprintf("speedup spec %q: want FAST:SLOW:MIN", spec)}
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || min <= 0 {
		return []string{fmt.Sprintf("speedup spec %q: bad MIN %q", spec, parts[2])}
	}
	fast, okFast := results[parts[0]]
	slow, okSlow := results[parts[1]]
	switch {
	case !okFast:
		return []string{fmt.Sprintf("speedup %s: %s missing from the run", spec, parts[0])}
	case !okSlow:
		return []string{fmt.Sprintf("speedup %s: %s missing from the run", spec, parts[1])}
	case fast.NsPerOp <= 0:
		return []string{fmt.Sprintf("speedup %s: %s has no timing", spec, parts[0])}
	}
	if got := slow.NsPerOp / fast.NsPerOp; got < min {
		return []string{fmt.Sprintf(
			"speedup shortfall — %s %.0f ns/op vs %s %.0f ns/op: %.2fx, want >= %.2fx",
			parts[0], fast.NsPerOp, parts[1], slow.NsPerOp, got, min)}
	}
	return nil
}

// LoadFile reads a BENCH_*.json snapshot (benchmark name → Result, as
// written by cmd/benchjson).
func LoadFile(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results map[string]Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}
