package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// chainMatrices builds one factor matrix per mode (rank rows, shape[n]
// cols), with nils where skip says so.
func chainMatrices(rng *rand.Rand, shape Shape, rank int, skip map[int]bool) []*mat.Matrix {
	ms := make([]*mat.Matrix, shape.Order())
	for n := range ms {
		if skip[n] {
			continue
		}
		ms[n] = mat.Random(rng, rank, shape[n])
	}
	return ms
}

func TestWorkspaceTTMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randomDense(rng, Shape{7, 6, 5})
	w := NewWorkspace()
	for n := 0; n < d.Shape.Order(); n++ {
		m := mat.Random(rng, 3, d.Shape[n])
		for _, workers := range []int{1, 8} {
			got := w.TTMWorkers(d, n, m, workers)
			want := TTMWorkers(d, n, m, workers)
			bitsEqualDense(t, "Workspace.TTM", got, want)
		}
	}
}

func TestWorkspaceMultiTTMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shape := Shape{6, 5, 4, 3}
	d := randomDense(rng, shape)
	cases := []map[int]bool{
		nil,
		{0: true},                            // HOOI-style: skip the swept mode
		{2: true},                            //
		{0: true, 3: true},                   //
		{0: true, 1: true, 2: true, 3: true}, // all nil: identity chain
	}
	w := NewWorkspace()
	for ci, skip := range cases {
		ms := chainMatrices(rng, shape, 4, skip)
		for _, workers := range []int{1, 8} {
			got := w.MultiTTMWorkers(d, ms, workers)
			want := MultiTTMWorkers(d, ms, workers)
			if ci == len(cases)-1 {
				// All-nil chain returns the input itself; just check aliasing.
				if got != d {
					t.Fatal("all-nil MultiTTM should return the input tensor")
				}
				continue
			}
			bitsEqualDense(t, "Workspace.MultiTTM", got, want)
		}
	}
}

func TestWorkspaceMultiTTMSparseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shape := Shape{8, 7, 6, 5}
	s := randomSparse(rng, shape, 300)
	cases := []map[int]bool{
		nil,
		{0: true},
		{1: true, 2: true},
		{0: true, 1: true, 2: true, 3: true}, // all nil: densify
	}
	w := NewWorkspace()
	for _, skip := range cases {
		ms := chainMatrices(rng, shape, 3, skip)
		for _, workers := range []int{1, 8} {
			got := w.MultiTTMSparseWorkers(s, ms, workers)
			want := MultiTTMSparseWorkers(s, ms, workers)
			bitsEqualDense(t, "Workspace.MultiTTMSparse", got, want)
		}
	}
}

// TestWorkspaceResultAliasing documents the contract: a result is only
// valid until the next call, so retained results must be Cloned.
func TestWorkspaceResultAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	d := randomDense(rng, Shape{5, 4, 3})
	m0 := mat.Random(rng, 2, 5)
	m1 := mat.Random(rng, 2, 4)
	w := NewWorkspace()
	first := w.TTMWorkers(d, 0, m0, 1)
	kept := first.Clone()
	second := w.TTMWorkers(d, 1, m1, 1)
	if &second.Data[0] == &kept.Data[0] {
		t.Fatal("Clone did not detach from workspace storage")
	}
	bitsEqualDense(t, "clone-detach", kept, TTMWorkers(d, 0, m0, 1))
	bitsEqualDense(t, "second-result", second, TTMWorkers(d, 1, m1, 1))
}

// TestWorkspaceZeroAllocSteadyState asserts the headline property: after
// warm-up, a full dense TTM chain through the workspace allocates zero
// bytes at workers=1 (the acceptance criterion for steady-state HOOI
// sweeps).
func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	shape := Shape{10, 9, 8, 7}
	d := randomDense(rng, shape)
	ms := chainMatrices(rng, shape, 4, nil)
	w := NewWorkspace()
	// Warm-up sizes the two slots to the largest intermediates.
	_ = w.MultiTTMWorkers(d, ms, 1)
	allocs := testing.AllocsPerRun(10, func() {
		_ = w.MultiTTMWorkers(d, ms, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense MultiTTM chain allocates %.1f objects/op, want 0", allocs)
	}
	// Single-mode dense TTM is also allocation-free.
	allocs = testing.AllocsPerRun(10, func() {
		_ = w.TTMWorkers(d, 2, ms[2], 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense TTM allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWorkspaceHOOIStyleSweeps drives the workspace the way HOOI does —
// alternating which mode is skipped, sweep after sweep — and checks every
// intermediate against the allocating path.
func TestWorkspaceHOOIStyleSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	shape := Shape{7, 6, 5, 4}
	s := randomSparse(rng, shape, 250)
	full := chainMatrices(rng, shape, 3, nil)
	w := NewWorkspace()
	ms := make([]*mat.Matrix, shape.Order())
	for sweep := 0; sweep < 3; sweep++ {
		for n := 0; n < shape.Order(); n++ {
			copy(ms, full)
			ms[n] = nil
			got := w.MultiTTMSparseWorkers(s, ms, 2)
			want := MultiTTMSparseWorkers(s, ms, 2)
			bitsEqualDense(t, "HOOI-style sweep", got, want)
		}
	}
}
