package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Deterministic entry selection: the storage-layer half of the sketch
// fast path (tucker.Sketch). The tucker package decides per entry whether
// it is kept and at what value (a pure function of seed + cell index);
// this file materialises that decision — in parallel, bit-identically to
// a serial filter for any worker count — and derives the new tensor's
// kernel plans from the source's cached ones instead of recompiling them.

// absSumStripGrain is the minimum entries per AbsSum reduction strip. A
// package constant — NOT AutoGrain — because the strip grid feeds a
// floating-point merge tree and must be a pure function of the input
// (DESIGN.md §11).
const absSumStripGrain = 4096

// absSumMaxStrips bounds the AbsSum reduction grid; the partials are
// single float64s, so the only cost of more strips is merge bookkeeping.
const absSumMaxStrips = 32

// AbsSum returns Σ|v| over the stored entries, reduced over a fixed strip
// grid (a pure function of nnz and package constants) with the partials
// merged through parallel.ReduceStrips' fixed pairwise tree — bit-identical
// for any worker count. Single-strip inputs (nnz < 2×absSumStripGrain)
// keep the undivided serial accumulation order.
func (s *Sparse) AbsSum(workers int) float64 {
	nnz := s.NNZ()
	if nnz == 0 {
		return 0
	}
	bounds := parallel.UniformStripBounds(nnz, absSumStripGrain, absSumMaxStrips)
	sum := parallel.ReduceStrips(bounds, workers,
		func(int) *float64 { return new(float64) },
		func(p *float64, _, lo, hi int) {
			var t float64
			for _, v := range s.Vals[lo:hi] {
				t += math.Abs(v)
			}
			*p = t
		},
		func(into, from *float64) *float64 { *into += *from; return into },
		nil,
	)
	return *sum
}

// SelectScaled returns a new tensor over the same shape containing exactly
// the entries e with keep[e], valued scaled[e], in storage order. The
// output is identical to a serial keep-filter loop for any worker count:
// workers partition a fixed strip grid, per-strip kept counts turn into
// exclusive prefix offsets serially, and each strip then copies its kept
// entries into its own disjoint output range.
//
// The output inherits the source's quarantine configuration and
// accounting (RejectNonFinite, Rejected) — a selection is a view of the
// same ingest history, so degraded-density reporting must survive it.
//
// For every mode with a cached source plan (HasPlanMode), the output's
// ModePlan is DERIVED instead of recompiled: filtering a stably-sorted
// sequence preserves its order, so walking the source plan and keeping
// the selected entries yields exactly the plan compileModePlan would
// build — minus the O(nnz log nnz) sort. Modes without a cached plan are
// left to compile on demand (building a source plan just to derive from
// it could never amortize — the same transient-tensor trap
// ttmSparseKernel avoids). The number of derived plans is returned.
func (s *Sparse) SelectScaled(keep []bool, scaled []float64, workers int) (*Sparse, int) {
	nnz := s.NNZ()
	if len(keep) != nnz || len(scaled) != nnz {
		panic(fmt.Sprintf("tensor: SelectScaled mask/value length %d/%d != nnz %d", len(keep), len(scaled), nnz))
	}
	o := s.Order()
	out := NewSparse(s.Shape)
	out.RejectNonFinite = s.RejectNonFinite
	out.Rejected = s.Rejected
	if nnz == 0 {
		return out, 0
	}

	// Strip grid for the count/fill passes. Selection output is pure
	// integer bookkeeping plus copies — no floating-point reduction — so
	// the grid affects scheduling only; it is fixed anyway so the prefix
	// offsets are computed once, not per worker count.
	bounds := parallel.UniformStripBounds(nnz, selectStripGrain, selectMaxStrips)
	strips := len(bounds) - 1
	counts := make([]int, strips)
	parallel.For(strips, workers, func(s0, s1 int) {
		for st := s0; st < s1; st++ {
			c := 0
			for _, k := range keep[bounds[st]:bounds[st+1]] {
				if k {
					c++
				}
			}
			counts[st] = c
		}
	})
	offsets := make([]int, strips+1)
	for st := 0; st < strips; st++ {
		offsets[st+1] = offsets[st] + counts[st]
	}
	kept := offsets[strips]
	if kept == 0 {
		// Nothing survived; an empty tensor compiles trivial plans on
		// demand (kernels return before consulting them anyway).
		return out, 0
	}
	out.Idx = make([]int, kept*o)
	out.Vals = make([]float64, kept)
	// newOf maps a kept source entry to its output position (dense rank
	// among kept entries); consumed by plan derivation.
	newOf := make([]int, nnz)
	parallel.For(strips, workers, func(s0, s1 int) {
		for st := s0; st < s1; st++ {
			pos := offsets[st]
			for e := bounds[st]; e < bounds[st+1]; e++ {
				if !keep[e] {
					continue
				}
				copy(out.Idx[pos*o:(pos+1)*o], s.Idx[e*o:(e+1)*o])
				out.Vals[pos] = scaled[e]
				newOf[e] = pos
				pos++
			}
		}
	})

	derived := 0
	for n := 0; n < o; n++ {
		if !s.HasPlanMode(n) {
			continue
		}
		out.installPlan(deriveSelectedPlan(s.PlanMode(n, workers), keep, scaled, newOf))
		derived++
	}
	return out, derived
}

// selectStripGrain / selectMaxStrips fix the SelectScaled strip grid.
const (
	selectStripGrain = 4096
	selectMaxStrips  = 32
)

// deriveSelectedPlan builds the selected tensor's mode plan by filtering
// the source plan in order. Correctness argument: compileModePlan
// stable-sorts entries by matricization column with storage order inside
// each column. The selected tensor preserves the source's relative
// storage order and every kept entry keeps its coordinates, so filtering
// the source's sorted sequence yields exactly the stable sort of the
// selected entries. Column groups are the source's groups restricted to
// kept entries, with emptied groups dropped; the reduction grid is
// recompiled from the surviving group weights through the same
// BalancedStripBounds call compileModePlan uses, so the derived plan is
// bit-identical to a freshly compiled one (asserted by
// TestSelectScaledDerivedPlanMatchesCompiled).
func deriveSelectedPlan(src *ModePlan, keep []bool, scaled []float64, newOf []int) *ModePlan {
	p := &ModePlan{Mode: src.Mode}
	n := len(src.Ents)
	p.Ents = make([]int, 0, n)
	p.Rows = make([]int, 0, n)
	p.Vals = make([]float64, 0, n)
	p.Bounds = make([]int, 0, len(src.Bounds))
	for g := 0; g < src.NumGroups(); g++ {
		start := len(p.Ents)
		for i := src.Bounds[g]; i < src.Bounds[g+1]; i++ {
			e := src.Ents[i]
			if !keep[e] {
				continue
			}
			p.Ents = append(p.Ents, newOf[e])
			p.Rows = append(p.Rows, src.Rows[i])
			p.Vals = append(p.Vals, scaled[e])
		}
		if len(p.Ents) > start {
			p.Bounds = append(p.Bounds, start)
		}
	}
	p.Bounds = append(p.Bounds, len(p.Ents))
	weights := make([]int, p.NumGroups())
	for gi := range weights {
		weights[gi] = p.Bounds[gi+1] - p.Bounds[gi]
	}
	p.Strips = parallel.BalancedStripBounds(weights, gramStripGrain, gramMaxStripsEff())
	return p
}

// installPlan caches a finished plan on the tensor's current generation,
// exactly as PlanMode would after building it. The plan must describe the
// tensor's current contents. Installation is not counted as a build or a
// hit: PlanStats keeps counting kernel-driven compiles and reuses only,
// so its deltas stay deterministic span counters; the first PlanMode call
// against an installed plan registers as a hit.
func (s *Sparse) installPlan(p *ModePlan) {
	s.planMu.Lock()
	if s.plans == nil || s.plans.gen != s.gen {
		s.plans = &planCache{gen: s.gen, modes: make([]*planEntry, s.Order())}
	}
	e := s.plans.modes[p.Mode]
	if e == nil {
		e = &planEntry{}
		s.plans.modes[p.Mode] = e
	}
	s.planMu.Unlock()
	e.once.Do(func() {
		e.plan = p
		e.done.Store(true)
	})
}
