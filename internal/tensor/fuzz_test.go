package tensor

import "testing"

// FuzzLinearIndexRoundtrip checks that MultiIndex inverts LinearIndex for
// arbitrary small shapes and positions.
func FuzzLinearIndexRoundtrip(f *testing.F) {
	f.Add(2, 3, 4, 10)
	f.Add(1, 1, 1, 0)
	f.Add(5, 2, 7, 33)
	f.Fuzz(func(t *testing.T, d0, d1, d2, lin int) {
		if d0 < 1 || d1 < 1 || d2 < 1 || d0 > 12 || d1 > 12 || d2 > 12 {
			t.Skip()
		}
		shape := Shape{d0, d1, d2}
		n := shape.NumElements()
		if lin < 0 || lin >= n {
			t.Skip()
		}
		idx := make([]int, 3)
		shape.MultiIndex(lin, idx)
		if got := shape.LinearIndex(idx); got != lin {
			t.Fatalf("roundtrip %d -> %v -> %d for shape %v", lin, idx, got, shape)
		}
		// The matricization column index must stay within bounds for all
		// modes.
		for mode := 0; mode < 3; mode++ {
			col := shape.MatricizeColumn(mode, idx)
			if col < 0 || col >= shape.MatricizeCols(mode) {
				t.Fatalf("column %d out of range for mode %d, shape %v", col, mode, shape)
			}
		}
	})
}

// FuzzDedupPreservesSum checks that summing duplicates preserves the total
// mass of a sparse tensor.
func FuzzDedupPreservesSum(f *testing.F) {
	f.Add(int64(1), 10)
	f.Add(int64(7), 30)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 1 || n > 200 {
			t.Skip()
		}
		shape := Shape{3, 3}
		s := NewSparse(shape)
		// Deterministic pseudo-random fill with duplicates.
		x := seed
		var total float64
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			a := int((x >> 33) & 1)
			b := int((x >> 34) & 1)
			v := float64(int32(x>>35%1000)) / 100
			s.Append([]int{a, b}, v)
			total += v
		}
		s.Dedup(SumDuplicates)
		var after float64
		s.Each(func(idx []int, v float64) { after += v })
		if diff := total - after; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Dedup changed total mass: %v -> %v", total, after)
		}
		// No duplicates remain.
		seen := map[int]bool{}
		s.Each(func(idx []int, v float64) {
			lin := shape.LinearIndex(idx)
			if seen[lin] {
				t.Fatalf("duplicate survives Dedup at %v", idx)
			}
			seen[lin] = true
		})
	})
}
