package tensor

import (
	"fmt"
	"math"
)

// SliceMode fixes one mode of a dense tensor at the given index and
// returns the resulting (N−1)-mode tensor. For an ensemble tensor this
// extracts, e.g., the snapshot of all parameter combinations at one
// timestamp.
func (d *Dense) SliceMode(mode, index int) *Dense {
	checkSliceArgs(d.Shape, mode, index)
	outShape := make(Shape, 0, d.Shape.Order()-1)
	for k, s := range d.Shape {
		if k != mode {
			outShape = append(outShape, s)
		}
	}
	out := NewDense(outShape)
	idx := make([]int, d.Shape.Order())
	outIdx := make([]int, outShape.Order())
	for lin, v := range d.Data {
		d.Shape.MultiIndex(lin, idx)
		if idx[mode] != index {
			continue
		}
		p := 0
		for k, i := range idx {
			if k != mode {
				outIdx[p] = i
				p++
			}
		}
		out.Data[outShape.LinearIndex(outIdx)] = v
	}
	return out
}

// SliceMode fixes one mode of a sparse tensor at the given index and
// returns the resulting (N−1)-mode sparse tensor.
func (s *Sparse) SliceMode(mode, index int) *Sparse {
	checkSliceArgs(s.Shape, mode, index)
	outShape := make(Shape, 0, s.Order()-1)
	for k, sz := range s.Shape {
		if k != mode {
			outShape = append(outShape, sz)
		}
	}
	out := NewSparse(outShape)
	outIdx := make([]int, outShape.Order())
	s.Each(func(idx []int, v float64) {
		if idx[mode] != index {
			return
		}
		p := 0
		for k, i := range idx {
			if k != mode {
				outIdx[p] = i
				p++
			}
		}
		out.Append(outIdx, v)
	})
	return out
}

// FiberNorms returns, for the given mode, the Euclidean norm of each of
// its hyperslices: out[i] = ‖X(mode = i)‖F. Useful for locating which
// parameter values carry the most ensemble energy.
func (s *Sparse) FiberNorms(mode int) []float64 {
	if mode < 0 || mode >= s.Order() {
		panic(fmt.Sprintf("tensor: FiberNorms mode %d out of range", mode))
	}
	sums := make([]float64, s.Shape[mode])
	s.Each(func(idx []int, v float64) {
		sums[idx[mode]] += v * v
	})
	for i, v := range sums {
		sums[i] = math.Sqrt(v)
	}
	return sums
}

func checkSliceArgs(shape Shape, mode, index int) {
	if mode < 0 || mode >= shape.Order() {
		panic(fmt.Sprintf("tensor: slice mode %d out of range for order %d", mode, shape.Order()))
	}
	if index < 0 || index >= shape[mode] {
		panic(fmt.Sprintf("tensor: slice index %d out of range for mode size %d", index, shape[mode]))
	}
	if shape.Order() < 2 {
		panic("tensor: cannot slice an order-1 tensor")
	}
}
