package tensor_test

import (
	"fmt"

	"repro/internal/tensor"
)

func ExampleShape_LinearIndex() {
	shape := tensor.Shape{2, 3, 4}
	fmt.Println(shape.LinearIndex([]int{1, 2, 3}))
	// Output: 23
}

func ExampleMatricize() {
	// A 2×2 matrix is its own mode-0 matricization.
	d := tensor.DenseFromSlice(tensor.Shape{2, 2}, []float64{1, 2, 3, 4})
	m := tensor.Matricize(d, 0)
	fmt.Println(m.Row(0), m.Row(1))
	// Output: [1 2] [3 4]
}

func ExampleSparse_Density() {
	s := tensor.NewSparse(tensor.Shape{10, 10})
	s.Append([]int{3, 4}, 1.5)
	fmt.Println(s.Density())
	// Output: 0.01
}

func ExampleSparse_Dedup() {
	s := tensor.NewSparse(tensor.Shape{2})
	s.Append([]int{0}, 1)
	s.Append([]int{0}, 3)
	s.Dedup(tensor.MeanDuplicates)
	fmt.Println(s.NNZ(), s.Vals[0])
	// Output: 1 2
}

func ExampleDense_SliceMode() {
	d := tensor.DenseFromSlice(tensor.Shape{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	fmt.Println(d.SliceMode(0, 1).Data)
	// Output: [4 5 6]
}
