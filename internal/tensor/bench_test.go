package tensor

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/mat"
)

func benchSparse5(b *testing.B, nnz int) *Sparse {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomSparse(rng, Shape{12, 12, 12, 12, 12}, nnz)
}

func BenchmarkModeGramSparse(b *testing.B) {
	s := benchSparse5(b, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModeGram(s, 0)
	}
}

func BenchmarkModeGramDense(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModeGramDense(d, 0)
	}
}

func BenchmarkTTMSparse(b *testing.B) {
	s := benchSparse5(b, 20000)
	m := mat.Random(rand.New(rand.NewSource(3)), 4, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TTMSparse(s, 0, m)
	}
}

func BenchmarkTTMDense(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	m := mat.Random(rng, 4, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TTM(d, 0, m)
	}
}

func BenchmarkMatricize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matricize(d, 1)
	}
}

func BenchmarkTuckerReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	core := randomDense(rng, Shape{4, 4, 4, 4})
	us := make([]*mat.Matrix, 4)
	for n := range us {
		us[n] = mat.RandomOrthonormal(rng, 12, 4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TuckerReconstruct(core, us)
	}
}

// BenchmarkModeGramDenseWorkers is the regression benchmark for the
// hoisted nonzero-fiber enumeration: before the fix every worker re-walked
// the whole tensor (O(workers·total)), so higher worker counts got slower
// per element; after it the enumeration runs once per call.
func BenchmarkModeGramDenseWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	for i := 0; i < len(d.Data); i += 3 {
		d.Data[i] = 0 // leave nonzero-fiber hoisting work to do
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ModeGramDenseWorkers(d, 0, w)
			}
		})
	}
}

// BenchmarkModeGramPlanned measures the steady-state planned sparse Gram:
// the per-mode plan is compiled on the first iteration and reused, so this
// reports the pure accumulate cost (compare BenchmarkModeGramSparse, which
// replans when the tensor changes between calls).
func BenchmarkModeGramPlanned(b *testing.B) {
	s := benchSparse5(b, 20000)
	ModeGram(s, 0) // compile the plan outside the timing loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModeGram(s, 0)
	}
}

// BenchmarkWorkspaceTTMChain is the zero-allocation steady-state dense TTM
// chain (the HOOI inner loop); allocs/op must report 0.
func BenchmarkWorkspaceTTMChain(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	ms := make([]*mat.Matrix, 4)
	for n := range ms {
		ms[n] = mat.Transpose(mat.RandomOrthonormal(rng, 12, 4))
	}
	w := NewWorkspace()
	w.MultiTTMWorkers(d, ms, 1) // warm the slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MultiTTMWorkers(d, ms, 1)
	}
}

// BenchmarkWorkspaceTTMSparseChain is the sparse-input analogue: one
// planned sparse TTM followed by dense chain steps, all in reused buffers.
func BenchmarkWorkspaceTTMSparseChain(b *testing.B) {
	s := benchSparse5(b, 20000)
	rng := rand.New(rand.NewSource(10))
	ms := make([]*mat.Matrix, 5)
	for n := range ms {
		ms[n] = mat.Transpose(mat.RandomOrthonormal(rng, 12, 4))
	}
	w := NewWorkspace()
	w.MultiTTMSparseWorkers(s, ms, 1) // warm slots + compile the plan
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MultiTTMSparseWorkers(s, ms, 1)
	}
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}

func BenchmarkSparseDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	base := randomSparse(rng, Shape{16, 16, 16}, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := base.Clone()
		// Duplicate every entry once.
		s.Idx = append(s.Idx, base.Idx...)
		s.Vals = append(s.Vals, base.Vals...)
		b.StartTimer()
		s.Dedup(SumDuplicates)
	}
}
