package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func benchSparse5(b *testing.B, nnz int) *Sparse {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomSparse(rng, Shape{12, 12, 12, 12, 12}, nnz)
}

func BenchmarkModeGramSparse(b *testing.B) {
	s := benchSparse5(b, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModeGram(s, 0)
	}
}

func BenchmarkModeGramDense(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModeGramDense(d, 0)
	}
}

func BenchmarkTTMSparse(b *testing.B) {
	s := benchSparse5(b, 20000)
	m := mat.Random(rand.New(rand.NewSource(3)), 4, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TTMSparse(s, 0, m)
	}
}

func BenchmarkTTMDense(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	m := mat.Random(rng, 4, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TTM(d, 0, m)
	}
}

func BenchmarkMatricize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := randomDense(rng, Shape{12, 12, 12, 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matricize(d, 1)
	}
}

func BenchmarkTuckerReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	core := randomDense(rng, Shape{4, 4, 4, 4})
	us := make([]*mat.Matrix, 4)
	for n := range us {
		us[n] = mat.RandomOrthonormal(rng, 12, 4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TuckerReconstruct(core, us)
	}
}

func BenchmarkSparseDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	base := randomSparse(rng, Shape{16, 16, 16}, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := base.Clone()
		// Duplicate every entry once.
		s.Idx = append(s.Idx, base.Idx...)
		s.Vals = append(s.Vals, base.Vals...)
		b.StartTimer()
		s.Dedup(SumDuplicates)
	}
}
