package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// ModePlan is a compiled kernel plan for one mode of a sparse tensor: the
// stored entries laid out in ascending mode-n matricization-column order
// (ties broken by storage order — a stable sort), split into column
// groups. Computing this layout is the per-call setup cost every sparse
// mode kernel used to pay (an O(nnz log nnz) sort per mode per call);
// compiling it once per (tensor, mode) and caching it on the tensor
// amortises that cost across all HOSVD modes and every HOOI sweep.
//
// The plan is consumed by ModeGramWorkers (column groups are the outer
// products of the Gram accumulation), TTMSparseWorkers (column groups are
// write-disjoint output cells, so workers partition groups instead of
// re-scanning every entry per output slab), and, through those, by
// LeadingModeVectors, HOSVD, ST-HOSVD and HOOI.
//
// A plan is immutable once built. It aliases no tensor storage: Rows and
// Vals are copies in plan order, so kernels touch two flat arrays with
// perfect locality instead of strided multi-index decodes.
type ModePlan struct {
	// Mode is the mode this plan was compiled for.
	Mode int
	// Ents holds, for each plan position, the storage index of the entry
	// (the stable sort permutation). Kernels use it to recover an entry's
	// full multi-index from the tensor when needed.
	Ents []int
	// Rows holds each entry's mode-n coordinate in plan order.
	Rows []int
	// Vals holds each entry's value in plan order.
	Vals []float64
	// Bounds delimits column groups: positions Bounds[g] up to Bounds[g+1]
	// share one matricization column (equivalently: one configuration of
	// all non-n modes). len(Bounds) == NumGroups()+1.
	Bounds []int
	// Strips is the Gram reduction grid over GROUP index space: strip s
	// covers groups [Strips[s], Strips[s+1]), cut so strips carry
	// near-equal entry counts while staying contiguous in the plan's
	// sorted storage (cache-aware). The grid is a pure function of the
	// plan contents and package constants — never of the worker count —
	// which is what lets ModeGramWorkers give each strip a private
	// accumulator and still produce bit-identical results for any worker
	// count (see parallel.ReduceStrips). A single strip means consumers
	// take their undivided serial path.
	Strips []int
}

// NumGroups returns the number of distinct matricization columns.
func (p *ModePlan) NumGroups() int { return len(p.Bounds) - 1 }

// NumStrips returns the number of Gram reduction strips.
func (p *ModePlan) NumStrips() int { return len(p.Strips) - 1 }

// gramStripGrain is the minimum plan entries per Gram reduction strip:
// below it the per-strip partial-matrix zero/merge overhead outweighs the
// accumulation work. Tensors with fewer than 2×gramStripGrain entries
// compile a single strip and keep the undivided serial accumulation
// order. A package constant — NOT AutoGrain — because the strip grid
// feeds a floating-point merge tree and must be a pure function of the
// input.
const gramStripGrain = 2048

// gramMaxStrips bounds the reduction grid (and so the pooled partial
// matrices alive at once). 32 strips keep merge depth at 5 while leaving
// enough strips to balance across any realistic worker count.
const gramMaxStrips = 32

// gramStripsOverride, when positive, replaces gramMaxStrips; see
// SetGramMaxStrips.
var gramStripsOverride atomic.Int64

// SetGramMaxStrips overrides the maximum Gram reduction strips per
// compiled plan (n <= 0 restores the package default) and returns the
// previous override (0 if none). It exists for benchmarks and
// experiments — the strips-vs-workers sweep in BenchmarkParallelHOSVD
// uses it to expose the scheduler's scaling surface. Different strip
// grids associate the floating-point accumulation differently, so
// results are comparable only at tolerance level across settings (they
// remain bit-deterministic for any fixed setting and worker count).
// Sparse plans cache their grid: call InvalidatePlans on tensors built
// before the override changed.
func SetGramMaxStrips(n int) int {
	if n < 0 {
		n = 0
	}
	return int(gramStripsOverride.Swap(int64(n)))
}

func gramMaxStripsEff() int {
	if n := gramStripsOverride.Load(); n > 0 {
		return int(n)
	}
	return gramMaxStrips
}

// planEntry is one lazily-built per-mode plan slot. done is set (with
// release semantics) only after once has stored the finished plan, so
// HasPlanMode can answer "is a plan ready right now" without taking the
// build path or racing a concurrent builder.
type planEntry struct {
	once sync.Once
	plan *ModePlan
	done atomic.Bool
}

// planCache holds the per-mode plan slots for one tensor generation.
type planCache struct {
	gen   uint64
	modes []*planEntry
}

// InvalidatePlans discards all cached mode plans by bumping the tensor's
// mutation generation. The mutating methods (Append, Dedup, SortByMode)
// call it automatically; code that mutates Idx or Vals directly must call
// it before the next kernel invocation, or kernels will keep serving the
// stale compiled layout.
func (s *Sparse) InvalidatePlans() { s.gen++ }

// PlanMode returns the compiled kernel plan for mode n, building and
// caching it on first use. Subsequent calls (from any kernel, any worker
// count) return the cached plan until the tensor is mutated. It is safe
// for concurrent use: plans for different modes build in parallel, and
// concurrent requests for the same mode block on a single build.
func (s *Sparse) PlanMode(n, workers int) *ModePlan {
	if n < 0 || n >= s.Order() {
		panic(fmt.Sprintf("tensor: PlanMode mode %d out of range for order %d", n, s.Order()))
	}
	s.planMu.Lock()
	if s.plans == nil || s.plans.gen != s.gen {
		s.plans = &planCache{gen: s.gen, modes: make([]*planEntry, s.Order())}
	}
	e := s.plans.modes[n]
	if e == nil {
		e = &planEntry{}
		s.plans.modes[n] = e
	}
	s.planMu.Unlock()
	built := false
	e.once.Do(func() {
		e.plan = compileModePlan(s, n, workers)
		e.done.Store(true)
		built = true
	})
	// Cache accounting: exactly one caller per (generation, mode) observes
	// the build; every other call is a hit. Both counts depend only on how
	// many kernel invocations the algorithm performs — never on the worker
	// count — so per-tensor deltas are valid deterministic span counters.
	if built {
		s.planBuilds.Add(1)
		planBuildsTotal.Inc()
	} else {
		s.planHits.Add(1)
		planHitsTotal.Inc()
	}
	return e.plan
}

// HasPlanMode reports whether a finished plan for mode n is cached for
// the tensor's current generation. Kernels that can run either planned
// or unplanned (bit-identically) use it to avoid compiling a plan that
// will never amortize: a cached plan is free to use, but building one
// for a transient tensor that dies after a single kernel call costs an
// O(nnz log nnz) stable sort — more than the kernel itself when no real
// parallelism is available (see ttmSparseKernel).
func (s *Sparse) HasPlanMode(n int) bool {
	if n < 0 || n >= s.Order() {
		return false
	}
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if s.plans == nil || s.plans.gen != s.gen {
		return false
	}
	e := s.plans.modes[n]
	return e != nil && e.done.Load()
}

// PlanStats returns this tensor's kernel-plan cache accounting: builds
// (cache misses, one per (tensor generation, mode)) and hits (kernel
// invocations served by a cached plan). Both counts depend only on the
// sequence of kernel invocations — never on the worker count — so stage
// spans may record their deltas as deterministic counters.
func (s *Sparse) PlanStats() (builds, hits int64) {
	return s.planBuilds.Load(), s.planHits.Load()
}

// compileModePlan builds the sorted triple layout and group bounds for one
// mode. The column keys are computed in parallel (disjoint entry ranges);
// the stable sort keeps storage order within a column group, which is what
// preserves the serial floating-point accumulation order in every consumer.
func compileModePlan(s *Sparse, n, workers int) *ModePlan {
	nnz := s.NNZ()
	p := &ModePlan{Mode: n}
	if nnz == 0 {
		p.Bounds = []int{0}
		return p
	}
	o := s.Order()
	cols := make([]int, nnz)
	parallel.ForGrain(nnz, workers, parallel.AutoGrain(4*float64(o)), func(lo, hi int) {
		for e := lo; e < hi; e++ {
			cols[e] = s.Shape.MatricizeColumn(n, s.Idx[e*o:(e+1)*o])
		}
	})
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return cols[perm[a]] < cols[perm[b]] })

	p.Ents = perm
	p.Rows = make([]int, nnz)
	p.Vals = make([]float64, nnz)
	for i, e := range perm {
		p.Rows[i] = s.Idx[e*o+n]
		p.Vals[i] = s.Vals[e]
	}
	bounds := make([]int, 0, 64)
	for start := 0; start < nnz; {
		bounds = append(bounds, start)
		end := start + 1
		for end < nnz && cols[perm[end]] == cols[perm[start]] {
			end++
		}
		start = end
	}
	p.Bounds = append(bounds, nnz)

	// Reduction grid: contiguous group runs balanced by entry count.
	weights := make([]int, p.NumGroups())
	for gi := range weights {
		weights[gi] = p.Bounds[gi+1] - p.Bounds[gi]
	}
	p.Strips = parallel.BalancedStripBounds(weights, gramStripGrain, gramMaxStripsEff())
	return p
}
