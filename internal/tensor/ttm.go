package tensor

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// ttmGrain is the minimum number of linear indices' worth of work per
// worker when fanning a dense TTM out over fiber bases; below it the
// goroutine overhead beats the arithmetic. The live kernels size their
// grains with parallel.AutoGrain now; this constant remains only for the
// retained reference implementation.
const ttmGrain = 2048

// TTM computes the mode-n tensor–matrix product Y = X ×ₙ M for a dense
// tensor, where M is J × I_n and the result has mode-n size J:
//
//	Y(i₁,…,j,…,i_N) = Σ_{iₙ} M(j, iₙ) · X(i₁,…,iₙ,…,i_N).
//
// It runs on the package-default worker pool; see TTMWorkers.
func TTM(x *Dense, n int, m *mat.Matrix) *Dense { return TTMWorkers(x, n, m, 0) }

// TTMWorkers is TTM on an explicit worker count (workers <= 0 selects the
// parallel package default). Fibers are enumerated by stride walking —
// base(f) = (f/inner)·inner·I_n + f%inner with inner = Π_{k>n} I_k — so no
// linear index is ever MultiIndex-decoded and no non-fiber-base element is
// visited. Every fiber writes a disjoint set of output elements and each
// output element is a single dot product accumulated in the serial order,
// so the result is bit-identical for any worker count (and to the
// pre-stride-walk kernel).
func TTMWorkers(x *Dense, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: TTM mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)
	ttmDenseKernel(x, n, m, out, workers)
	return out
}

// ttmDenseKernel computes the mode-n dense TTM into a preallocated output
// tensor (shape x.Shape with mode n resized to m.Rows). Every output
// element is assigned exactly once, so out does not need to be zeroed.
// The serial path runs inline without spawning closures, keeping the
// steady-state Workspace TTM chain allocation-free.
func ttmDenseKernel(x *Dense, n int, m *mat.Matrix, out *Dense, workers int) {
	inSize := x.Shape[n]
	outSize := m.Rows
	order := x.Shape.Order()
	inner := 1
	for k := n + 1; k < order; k++ {
		inner *= x.Shape[k]
	}
	total := len(x.Data)
	if total == 0 || inSize == 0 {
		return
	}
	numFibers := total / inSize

	// Per-fiber cost is one inSize×outSize panel; the calibrated grain
	// keeps the fan-out amortised on whatever hardware runs this
	// (scheduling only — fibers write disjoint outputs).
	grain := parallel.AutoGrain(float64(inSize) * float64(outSize))
	if parallel.Resolve(workers) <= 1 || numFibers < 2*grain {
		ttmDenseRange(x, m, out, inner, inSize, outSize, 0, numFibers)
		return
	}
	parallel.ForGrain(numFibers, workers, grain, func(lo, hi int) {
		ttmDenseRange(x, m, out, inner, inSize, outSize, lo, hi)
	})
}

// ttmDenseRange processes fibers [lo, hi) of the stride-walk enumeration:
// fiber f has input base (f/inner)·inner·inSize + f%inner and output base
// (f/inner)·inner·outSize + f%inner; both advance incrementally.
func ttmDenseRange(x *Dense, m *mat.Matrix, out *Dense, inner, inSize, outSize, lo, hi int) {
	q, r := lo/inner, lo%inner
	inBase := q*inner*inSize + r
	outBase := q*inner*outSize + r
	for f := lo; f < hi; f++ {
		for j := 0; j < outSize; j++ {
			row := m.Row(j)
			var s float64
			for i := 0; i < inSize; i++ {
				s += row[i] * x.Data[inBase+i*inner]
			}
			out.Data[outBase+j*inner] = s
		}
		r++
		inBase++
		outBase++
		if r == inner {
			r = 0
			inBase += inner * (inSize - 1)
			outBase += inner * (outSize - 1)
		}
	}
}

// TTMSparse computes Y = X ×ₙ M where X is sparse, producing a dense
// result. This is the entry point for core recovery G = J ×₁U₁ᵀ…: the
// first product consumes COO coordinates directly; subsequent products use
// the dense TTM as dimensions shrink to the target ranks.
//
// It runs on the package-default worker pool; see TTMSparseWorkers.
func TTMSparse(x *Sparse, n int, m *mat.Matrix) *Dense { return TTMSparseWorkers(x, n, m, 0) }

// ttmSparseMinNNZ gates the plan-based parallel sparse TTM; tiny tensors
// run the single-pass serial loop.
const ttmSparseMinNNZ = 4096

// TTMSparseWorkers is TTMSparse on an explicit worker count. The parallel
// path consumes the tensor's compiled mode plan (see ModePlan): entries
// grouped by matricization column share one output base, and distinct
// groups write disjoint output cells, so workers partition the GROUPS —
// each worker touches only its own groups' entries instead of re-scanning
// all nnz entries per output slab as the pre-plan kernel did. Within a
// group the plan preserves storage order, so every output cell accumulates
// its contributions in exactly the serial entry order — bit-identical
// results for any worker count.
func TTMSparseWorkers(x *Sparse, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: TTMSparse mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)
	ttmSparseKernel(x, n, m, out, outShape.Strides(), workers)
	return out
}

// ttmSparseKernel computes the mode-n sparse TTM into a preallocated,
// ZEROED output tensor with the given strides. The serial path runs
// inline without spawning closures.
//
// Path choice: the planned path is taken when a plan is already cached
// (then it is free and its group-sum loop is cache-friendlier than the
// entry scatter even serially) or when real parallelism is available
// (parallel.Fanout > 1). Otherwise — no cached plan, no parallelism —
// compiling a plan is a pure loss: transient tensors like the stitched
// join in CoreFromFactors die after this one call, so the O(nnz log nnz)
// compile sort can never amortize, and on a fanout-capped box it used to
// make a workers=8 request several times SLOWER than workers=1. Both
// paths accumulate every output cell in storage-entry order, so the
// choice never changes a single output bit.
func ttmSparseKernel(x *Sparse, n int, m *mat.Matrix, out *Dense, outStrides []int, workers int) {
	stride := outStrides[n]
	nnz := x.NNZ()
	o := x.Order()
	planned := x.HasPlanMode(n) || parallel.Fanout(workers) > 1
	if !planned || nnz < ttmSparseMinNNZ || m.Rows == 1 {
		for e := 0; e < nnz; e++ {
			idx := x.Idx[e*o : (e+1)*o]
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			v := x.Vals[e]
			in := idx[n]
			for j := 0; j < m.Rows; j++ {
				out.Data[base+j*stride] += v * m.At(j, in)
			}
		}
		return
	}

	p := x.PlanMode(n, workers)
	bounds, rows, vals, ents := p.Bounds, p.Rows, p.Vals, p.Ents
	// Average per-group cost: (nnz/groups) entries × m.Rows accumulations.
	groupCost := float64(nnz) / float64(p.NumGroups()) * float64(m.Rows)
	parallel.ForGrain(p.NumGroups(), workers, parallel.AutoGrain(groupCost), func(g0, g1 int) {
		for gi := g0; gi < g1; gi++ {
			start, end := bounds[gi], bounds[gi+1]
			// All entries of a group share the non-n coordinates; recover
			// the output base from the first entry's multi-index.
			e0 := ents[start]
			idx := x.Idx[e0*o : (e0+1)*o]
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			for j := 0; j < m.Rows; j++ {
				row := m.Row(j)
				var s float64
				for q := start; q < end; q++ {
					s += vals[q] * row[rows[q]]
				}
				out.Data[base+j*stride] = s
			}
		}
	})
}

// MultiTTM applies Y = X ×₁ M[0] ×₂ M[1] … over all modes sequentially.
// A nil entry skips that mode. Matrices are applied in increasing mode
// order; since each M[k] typically has far fewer rows than columns
// (rank ≪ mode size), intermediate tensors shrink monotonically.
func MultiTTM(x *Dense, ms []*mat.Matrix) *Dense { return MultiTTMWorkers(x, ms, 0) }

// MultiTTMWorkers is MultiTTM on an explicit worker count.
func MultiTTMWorkers(x *Dense, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Shape.Order() {
		panic(fmt.Sprintf("tensor: MultiTTM got %d matrices for order-%d tensor", len(ms), x.Shape.Order()))
	}
	cur := x
	for n, m := range ms {
		if m == nil {
			continue
		}
		cur = TTMWorkers(cur, n, m, workers)
	}
	return cur
}

// MultiTTMSparse applies all mode products to a sparse tensor: the first
// non-nil matrix consumes the sparse input, the rest proceed densely.
func MultiTTMSparse(x *Sparse, ms []*mat.Matrix) *Dense { return MultiTTMSparseWorkers(x, ms, 0) }

// MultiTTMSparseWorkers is MultiTTMSparse on an explicit worker count.
func MultiTTMSparseWorkers(x *Sparse, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Order() {
		panic(fmt.Sprintf("tensor: MultiTTMSparse got %d matrices for order-%d tensor", len(ms), x.Order()))
	}
	var cur *Dense
	start := -1
	for n, m := range ms {
		if m != nil {
			cur = TTMSparseWorkers(x, n, m, workers)
			start = n
			break
		}
	}
	if start == -1 {
		return x.ToDense()
	}
	for n := start + 1; n < len(ms); n++ {
		if ms[n] == nil {
			continue
		}
		cur = TTMWorkers(cur, n, ms[n], workers)
	}
	return cur
}

// TuckerReconstruct computes X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N), expanding a
// core tensor back to the full space through factor matrices U(n) of shape
// I_n × r_n.
func TuckerReconstruct(core *Dense, factors []*mat.Matrix) *Dense {
	if len(factors) != core.Shape.Order() {
		panic(fmt.Sprintf("tensor: TuckerReconstruct got %d factors for order-%d core", len(factors), core.Shape.Order()))
	}
	return MultiTTM(core, factors)
}

// TransposeAll returns the transposes of the given factor matrices;
// convenience for core recovery G = X ×₁ U(1)ᵀ ….
func TransposeAll(factors []*mat.Matrix) []*mat.Matrix {
	out := make([]*mat.Matrix, len(factors))
	for i, f := range factors {
		if f != nil {
			out[i] = mat.Transpose(f)
		}
	}
	return out
}
