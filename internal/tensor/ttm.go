package tensor

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// ttmGrain is the minimum number of linear indices per worker when fanning
// a dense TTM out over fiber bases; below it the goroutine overhead beats
// the arithmetic.
const ttmGrain = 2048

// TTM computes the mode-n tensor–matrix product Y = X ×ₙ M for a dense
// tensor, where M is J × I_n and the result has mode-n size J:
//
//	Y(i₁,…,j,…,i_N) = Σ_{iₙ} M(j, iₙ) · X(i₁,…,iₙ,…,i_N).
//
// It runs on the package-default worker pool; see TTMWorkers.
func TTM(x *Dense, n int, m *mat.Matrix) *Dense { return TTMWorkers(x, n, m, 0) }

// TTMWorkers is TTM on an explicit worker count (workers <= 0 selects the
// parallel package default). The linear index space is partitioned across
// workers; every fiber base writes a disjoint set of output elements in
// the same order as the serial loop, so the result is bit-identical for
// any worker count.
func TTMWorkers(x *Dense, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: TTM mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)

	inStride := x.Shape.Strides()[n]
	outStride := outShape.Strides()[n]
	inSize := x.Shape[n]
	outSize := m.Rows

	// Iterate over fibers: every element with idx[n] == 0 is a fiber base.
	total := x.Shape.NumElements()
	outStrides := outShape.Strides()
	parallel.ForGrain(total, workers, ttmGrain, func(lo, hi int) {
		idx := make([]int, x.Shape.Order())
		for lin := lo; lin < hi; lin++ {
			x.Shape.MultiIndex(lin, idx)
			if idx[n] != 0 {
				continue
			}
			// Same multi-index with mode n at 0 in the output tensor.
			outBase := 0
			for k, i := range idx {
				outBase += i * outStrides[k]
			}
			for j := 0; j < outSize; j++ {
				var s float64
				row := m.Row(j)
				for i := 0; i < inSize; i++ {
					s += row[i] * x.Data[lin+i*inStride]
				}
				out.Data[outBase+j*outStride] = s
			}
		}
	})
	return out
}

// TTMSparse computes Y = X ×ₙ M where X is sparse, producing a dense
// result. This is the entry point for core recovery G = J ×₁U₁ᵀ…: the
// first product consumes COO coordinates directly; subsequent products use
// the dense TTM as dimensions shrink to the target ranks.
//
// It runs on the package-default worker pool; see TTMSparseWorkers.
func TTMSparse(x *Sparse, n int, m *mat.Matrix) *Dense { return TTMSparseWorkers(x, n, m, 0) }

// ttmSparseMinNNZ gates the two-phase parallel sparse TTM; tiny tensors
// run the single-pass serial loop.
const ttmSparseMinNNZ = 4096

// TTMSparseWorkers is TTMSparse on an explicit worker count. The parallel
// path runs in two phases: (1) decode each entry's output base offset and
// mode-n coordinate (disjoint writes across entry ranges), then (2)
// partition the OUTPUT mode-n slabs j across workers, each scanning the
// entry list in storage order. Every output element is therefore
// accumulated by exactly one worker in exactly the serial entry order —
// bit-identical results for any worker count.
func TTMSparseWorkers(x *Sparse, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: TTMSparse mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)
	outStrides := outShape.Strides()
	stride := outStrides[n]

	nnz := x.NNZ()
	if parallel.Resolve(workers) <= 1 || nnz < ttmSparseMinNNZ || m.Rows == 1 {
		x.Each(func(idx []int, v float64) {
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			in := idx[n]
			for j := 0; j < m.Rows; j++ {
				out.Data[base+j*stride] += v * m.At(j, in)
			}
		})
		return out
	}

	// Phase 1: decode per-entry output bases and mode-n coordinates.
	o := x.Order()
	bases := make([]int, nnz)
	ins := make([]int, nnz)
	parallel.ForGrain(nnz, workers, 1024, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			idx := x.Idx[e*o : (e+1)*o]
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			bases[e] = base
			ins[e] = idx[n]
		}
	})

	// Phase 2: each worker owns a contiguous range of output slabs j and
	// scans every entry in storage order.
	parallel.For(m.Rows, workers, func(j0, j1 int) {
		for e := 0; e < nnz; e++ {
			v := x.Vals[e]
			base := bases[e]
			in := ins[e]
			for j := j0; j < j1; j++ {
				out.Data[base+j*stride] += v * m.At(j, in)
			}
		}
	})
	return out
}

// MultiTTM applies Y = X ×₁ M[0] ×₂ M[1] … over all modes sequentially.
// A nil entry skips that mode. Matrices are applied in increasing mode
// order; since each M[k] typically has far fewer rows than columns
// (rank ≪ mode size), intermediate tensors shrink monotonically.
func MultiTTM(x *Dense, ms []*mat.Matrix) *Dense { return MultiTTMWorkers(x, ms, 0) }

// MultiTTMWorkers is MultiTTM on an explicit worker count.
func MultiTTMWorkers(x *Dense, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Shape.Order() {
		panic(fmt.Sprintf("tensor: MultiTTM got %d matrices for order-%d tensor", len(ms), x.Shape.Order()))
	}
	cur := x
	for n, m := range ms {
		if m == nil {
			continue
		}
		cur = TTMWorkers(cur, n, m, workers)
	}
	return cur
}

// MultiTTMSparse applies all mode products to a sparse tensor: the first
// non-nil matrix consumes the sparse input, the rest proceed densely.
func MultiTTMSparse(x *Sparse, ms []*mat.Matrix) *Dense { return MultiTTMSparseWorkers(x, ms, 0) }

// MultiTTMSparseWorkers is MultiTTMSparse on an explicit worker count.
func MultiTTMSparseWorkers(x *Sparse, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Order() {
		panic(fmt.Sprintf("tensor: MultiTTMSparse got %d matrices for order-%d tensor", len(ms), x.Order()))
	}
	var cur *Dense
	start := -1
	for n, m := range ms {
		if m != nil {
			cur = TTMSparseWorkers(x, n, m, workers)
			start = n
			break
		}
	}
	if start == -1 {
		return x.ToDense()
	}
	for n := start + 1; n < len(ms); n++ {
		if ms[n] == nil {
			continue
		}
		cur = TTMWorkers(cur, n, ms[n], workers)
	}
	return cur
}

// TuckerReconstruct computes X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N), expanding a
// core tensor back to the full space through factor matrices U(n) of shape
// I_n × r_n.
func TuckerReconstruct(core *Dense, factors []*mat.Matrix) *Dense {
	if len(factors) != core.Shape.Order() {
		panic(fmt.Sprintf("tensor: TuckerReconstruct got %d factors for order-%d core", len(factors), core.Shape.Order()))
	}
	return MultiTTM(core, factors)
}

// TransposeAll returns the transposes of the given factor matrices;
// convenience for core recovery G = X ×₁ U(1)ᵀ ….
func TransposeAll(factors []*mat.Matrix) []*mat.Matrix {
	out := make([]*mat.Matrix, len(factors))
	for i, f := range factors {
		if f != nil {
			out[i] = mat.Transpose(f)
		}
	}
	return out
}
