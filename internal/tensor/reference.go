package tensor

import (
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// This file retains the pre-plan / pre-stride-walk kernel implementations
// verbatim (renamed with a Ref suffix). They are the executable
// specification the optimised kernels are held to: the parity suites in
// plan_test.go assert bit-identical output against them for workers ∈
// {1, N}. They are referenced only by tests and must not be used in
// pipelines.

// gramTripleRef is one sparse entry keyed by its matricization column.
type gramTripleRef struct {
	col int
	row int
	val float64
}

// modeGramWorkersRef is the previous ModeGramWorkers: it re-collects and
// re-sorts the (col,row,val) triples on every call.
func modeGramWorkersRef(s *Sparse, n, workers int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	nnz := s.NNZ()
	if nnz == 0 {
		return g
	}
	o := s.Order()

	ts := make([]gramTripleRef, nnz)
	parallel.ForGrain(nnz, workers, 1024, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			idx := s.Idx[e*o : (e+1)*o]
			ts[e] = gramTripleRef{col: s.Shape.MatricizeColumn(n, idx), row: idx[n], val: s.Vals[e]}
		}
	})
	sort.SliceStable(ts, func(a, b int) bool { return ts[a].col < ts[b].col })

	bounds := make([]int, 0, 64)
	for start := 0; start < nnz; {
		bounds = append(bounds, start)
		end := start + 1
		for end < nnz && ts[end].col == ts[start].col {
			end++
		}
		start = end
	}
	bounds = append(bounds, nnz)

	parallel.For(rows, workers, func(r0, r1 int) {
		for gi := 0; gi+1 < len(bounds); gi++ {
			start, end := bounds[gi], bounds[gi+1]
			for a := start; a < end; a++ {
				ra := ts[a].row
				if ra < r0 || ra >= r1 {
					continue
				}
				ga := g.Row(ra)
				va := ts[a].val
				for b := start; b < end; b++ {
					ga[ts[b].row] += va * ts[b].val
				}
			}
		}
	})
	return g
}

// modeGramDenseWorkersRef is the previous ModeGramDenseWorkers: every
// worker decodes the full linear index range and skips non-fiber-base
// elements.
func modeGramDenseWorkersRef(d *Dense, n, workers int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	shape := d.Shape
	strides := shape.Strides()
	stride := strides[n]
	total := shape.NumElements()
	parallel.For(rows, workers, func(r0, r1 int) {
		fiber := make([]float64, rows)
		idx := make([]int, shape.Order())
		for lin := 0; lin < total; lin++ {
			shape.MultiIndex(lin, idx)
			if idx[n] != 0 {
				continue
			}
			base := lin
			zero := true
			for r := 0; r < rows; r++ {
				fiber[r] = d.Data[base+r*stride]
				if fiber[r] != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			for a := r0; a < r1; a++ {
				if fiber[a] == 0 {
					continue
				}
				ga := g.Row(a)
				va := fiber[a]
				for b := 0; b < rows; b++ {
					ga[b] += va * fiber[b]
				}
			}
		}
	})
	return g
}

// ttmWorkersRef is the previous TTMWorkers: every linear index is
// MultiIndex-decoded and non-fiber-base elements are skipped.
func ttmWorkersRef(x *Dense, n int, m *mat.Matrix, workers int) *Dense {
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)

	inStride := x.Shape.Strides()[n]
	outStride := outShape.Strides()[n]
	inSize := x.Shape[n]
	outSize := m.Rows

	total := x.Shape.NumElements()
	outStrides := outShape.Strides()
	parallel.ForGrain(total, workers, ttmGrain, func(lo, hi int) {
		idx := make([]int, x.Shape.Order())
		for lin := lo; lin < hi; lin++ {
			x.Shape.MultiIndex(lin, idx)
			if idx[n] != 0 {
				continue
			}
			outBase := 0
			for k, i := range idx {
				outBase += i * outStrides[k]
			}
			for j := 0; j < outSize; j++ {
				var s float64
				row := m.Row(j)
				for i := 0; i < inSize; i++ {
					s += row[i] * x.Data[lin+i*inStride]
				}
				out.Data[outBase+j*outStride] = s
			}
		}
	})
	return out
}

// ttmSparseWorkersRef is the previous TTMSparseWorkers: phase 2 partitions
// output slabs j and every worker re-scans all nnz entries.
func ttmSparseWorkersRef(x *Sparse, n int, m *mat.Matrix, workers int) *Dense {
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	out := NewDense(outShape)
	outStrides := outShape.Strides()
	stride := outStrides[n]

	nnz := x.NNZ()
	if parallel.Resolve(workers) <= 1 || nnz < ttmSparseMinNNZ || m.Rows == 1 {
		x.Each(func(idx []int, v float64) {
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			in := idx[n]
			for j := 0; j < m.Rows; j++ {
				out.Data[base+j*stride] += v * m.At(j, in)
			}
		})
		return out
	}

	o := x.Order()
	bases := make([]int, nnz)
	ins := make([]int, nnz)
	parallel.ForGrain(nnz, workers, 1024, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			idx := x.Idx[e*o : (e+1)*o]
			base := 0
			for k, i := range idx {
				if k == n {
					continue
				}
				base += i * outStrides[k]
			}
			bases[e] = base
			ins[e] = idx[n]
		}
	})

	parallel.For(m.Rows, workers, func(j0, j1 int) {
		for e := 0; e < nnz; e++ {
			v := x.Vals[e]
			base := bases[e]
			in := ins[e]
			for j := j0; j < j1; j++ {
				out.Data[base+j*stride] += v * m.At(j, in)
			}
		}
	})
	return out
}

// modeGramStripRef is the executable specification of the strip-reduced
// ModeGramWorkers: one serial pass per strip into a fresh dense partial,
// then an explicit pairwise tree merge ascending by strip index (span
// doubling each level). No pooling, no goroutines — the parity suite
// asserts the optimised kernel matches this bit for bit at every worker
// count, which is exactly the claim that workers only decide WHEN a
// partial is produced, never where it lands in the tree.
func modeGramStripRef(s *Sparse, n int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	if s.NNZ() == 0 {
		return g
	}
	p := s.PlanMode(n, 1)
	partials := make([][]float64, p.NumStrips())
	for st := range partials {
		partials[st] = make([]float64, rows*rows)
		gramAccumulate(partials[st], rows, p.Bounds, p.Rows, p.Vals, p.Strips[st], p.Strips[st+1])
	}
	copy(g.Data, treeMergeRef(partials))
	return g
}

// modeGramDenseStripRef is the executable specification of the
// strip-reduced ModeGramDenseWorkers, built on the same fiber base list
// and strip grid, with fresh partials and an explicit tree merge.
func modeGramDenseStripRef(d *Dense, n int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	total := d.Shape.NumElements()
	if total == 0 || rows == 0 {
		return g
	}
	inner := 1
	for k := n + 1; k < d.Shape.Order(); k++ {
		inner *= d.Shape[k]
	}
	var bases []int
	for f := 0; f < total/rows; f++ {
		base := (f/inner)*inner*rows + f%inner
		for i := 0; i < rows; i++ {
			if d.Data[base+i*inner] != 0 {
				bases = append(bases, base)
				break
			}
		}
	}
	if len(bases) == 0 {
		return g
	}
	strips := parallel.UniformStripBounds(len(bases), denseGramStripGrain, gramMaxStripsEff())
	partials := make([][]float64, len(strips)-1)
	fiber := make([]float64, rows)
	for st := range partials {
		partials[st] = make([]float64, rows*rows)
		denseGramAccumulate(partials[st], d.Data, bases, fiber, inner, rows, strips[st], strips[st+1])
	}
	copy(g.Data, treeMergeRef(partials))
	return g
}

// treeMergeRef folds per-strip partials through the fixed pairwise tree:
// level k merges partials[i] ← partials[i+2ᵏ] for i ≡ 0 (mod 2ᵏ⁺¹). The
// shape depends only on the strip count.
func treeMergeRef(partials [][]float64) []float64 {
	s := len(partials)
	for span := 1; span < s; span *= 2 {
		for i := 0; i+span < s; i += 2 * span {
			for j, v := range partials[i+span] {
				partials[i][j] += v
			}
		}
	}
	return partials[0]
}

// foldRef is the previous Fold: each column is decoded with a div/mod
// chain and each element placed through a full LinearIndex call.
func foldRef(m *mat.Matrix, n int, shape Shape) *Dense {
	out := NewDense(shape)
	order := shape.Order()
	idx := make([]int, order)
	modes := make([]int, 0, order-1)
	for k := 0; k < order; k++ {
		if k != n {
			modes = append(modes, k)
		}
	}
	for col := 0; col < m.Cols; col++ {
		c := col
		for _, k := range modes {
			idx[k] = c % shape[k]
			c /= shape[k]
		}
		for r := 0; r < m.Rows; r++ {
			idx[n] = r
			out.Data[shape.LinearIndex(idx)] = m.At(r, col)
		}
	}
	return out
}
