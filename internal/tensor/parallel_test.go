package tensor

// Regression tests for the worker-pool kernels: every parallel kernel must
// produce BIT-IDENTICAL output for workers=1 and workers=8 (and any other
// count), because the parallel schedules partition the output index space
// and preserve the serial floating-point accumulation order. A build of
// these tests under -race also proves the kernels are data-race free.

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/mat"
)

// seededSparse builds a deterministic random sparse tensor with enough
// entries to cross the parallel kernels' serial-fallback thresholds.
func seededSparse(shape Shape, nnz int, seed int64) *Sparse {
	rng := rand.New(rand.NewSource(seed))
	s := NewSparse(shape)
	idx := make([]int, shape.Order())
	for e := 0; e < nnz; e++ {
		for k, d := range shape {
			idx[k] = rng.Intn(d)
		}
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

// randomMatrix builds a deterministic random matrix.
func randomMatrix(rows, cols int, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// matEqualBits reports whether two matrices are bit-identical.
func matEqualBits(a, b *mat.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// denseEqualBits reports whether two dense tensors are bit-identical.
func denseEqualBits(a, b *Dense) bool {
	if !a.Shape.Equal(b.Shape) {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

var parallelTestWorkers = []int{2, 3, 8}

func TestTTMSparseWorkersBitStable(t *testing.T) {
	s := seededSparse(Shape{9, 8, 7, 6}, 6000, 1)
	m := randomMatrix(4, 9, 2)
	want := TTMSparseWorkers(s, 0, m, 1)
	for _, w := range parallelTestWorkers {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			got := TTMSparseWorkers(s, 0, m, w)
			if !denseEqualBits(want, got) {
				t.Fatal("TTMSparse workers=1 and workers=N differ")
			}
		})
	}
	// Middle mode too (different base/stride layout).
	m2 := randomMatrix(5, 7, 3)
	want2 := TTMSparseWorkers(s, 2, m2, 1)
	for _, w := range parallelTestWorkers {
		if !denseEqualBits(want2, TTMSparseWorkers(s, 2, m2, w)) {
			t.Fatalf("TTMSparse mode 2, workers=%d differs", w)
		}
	}
}

func TestTTMWorkersBitStable(t *testing.T) {
	d := seededSparse(Shape{8, 9, 10}, 500, 4).ToDense()
	m := randomMatrix(5, 9, 5)
	want := TTMWorkers(d, 1, m, 1)
	for _, w := range parallelTestWorkers {
		if !denseEqualBits(want, TTMWorkers(d, 1, m, w)) {
			t.Fatalf("TTM workers=%d differs", w)
		}
	}
}

func TestMatricizeWorkersBitStable(t *testing.T) {
	d := seededSparse(Shape{7, 8, 9}, 400, 6).ToDense()
	for n := 0; n < 3; n++ {
		want := MatricizeWorkers(d, n, 1)
		for _, w := range parallelTestWorkers {
			if !matEqualBits(want, MatricizeWorkers(d, n, w)) {
				t.Fatalf("Matricize mode %d workers=%d differs", n, w)
			}
		}
	}
}

func TestModeGramWorkersBitStable(t *testing.T) {
	s := seededSparse(Shape{12, 9, 8, 7}, 8000, 7)
	for n := 0; n < 4; n++ {
		want := ModeGramWorkers(s, n, 1)
		for _, w := range parallelTestWorkers {
			if !matEqualBits(want, ModeGramWorkers(s, n, w)) {
				t.Fatalf("ModeGram mode %d workers=%d differs", n, w)
			}
		}
	}
}

func TestModeGramWorkersStableUnderDuplicateColumns(t *testing.T) {
	// Many entries share matricization columns: the stable column sort must
	// keep storage order within a group so repeated runs and any worker
	// count agree exactly.
	s := seededSparse(Shape{6, 4, 3}, 5000, 8)
	want := ModeGramWorkers(s, 0, 1)
	again := ModeGramWorkers(s, 0, 1)
	if !matEqualBits(want, again) {
		t.Fatal("ModeGram not reproducible across runs")
	}
	for _, w := range parallelTestWorkers {
		if !matEqualBits(want, ModeGramWorkers(s, 0, w)) {
			t.Fatalf("ModeGram workers=%d differs", w)
		}
	}
}

func TestModeGramDenseWorkersBitStable(t *testing.T) {
	d := seededSparse(Shape{11, 9, 8}, 700, 9).ToDense()
	for n := 0; n < 3; n++ {
		want := ModeGramDenseWorkers(d, n, 1)
		for _, w := range parallelTestWorkers {
			if !matEqualBits(want, ModeGramDenseWorkers(d, n, w)) {
				t.Fatalf("ModeGramDense mode %d workers=%d differs", n, w)
			}
		}
	}
}

func TestMultiTTMSparseWorkersBitStable(t *testing.T) {
	s := seededSparse(Shape{9, 8, 7}, 6000, 10)
	ms := []*mat.Matrix{
		randomMatrix(3, 9, 11),
		randomMatrix(4, 8, 12),
		randomMatrix(2, 7, 13),
	}
	want := MultiTTMSparseWorkers(s, ms, 1)
	for _, w := range parallelTestWorkers {
		if !denseEqualBits(want, MultiTTMSparseWorkers(s, ms, w)) {
			t.Fatalf("MultiTTMSparse workers=%d differs", w)
		}
	}
}

func TestLeadingModeVectorsWorkersBitStable(t *testing.T) {
	s := seededSparse(Shape{10, 9, 8}, 7000, 14)
	want := LeadingModeVectorsWorkers(s, 0, 4, 1)
	for _, w := range parallelTestWorkers {
		if !matEqualBits(want, LeadingModeVectorsWorkers(s, 0, 4, w)) {
			t.Fatalf("LeadingModeVectors workers=%d differs", w)
		}
	}
}
