package tensor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Sparse is an N-mode tensor in coordinate (COO) format. Indices are stored
// flattened: entry e occupies Idx[e*order : (e+1)*order]. Duplicate
// coordinates are permitted until Dedup is called; most builders in this
// module produce duplicate-free tensors directly.
//
// Sparse lazily caches compiled per-mode kernel plans (see ModePlan); the
// mutating methods (Append, Dedup, SortByMode) invalidate them via a
// generation counter. Code that mutates Idx or Vals directly must call
// InvalidatePlans before the next kernel invocation. Sparse must not be
// copied by value once PlanMode has been called.
type Sparse struct {
	Shape Shape
	Idx   []int
	Vals  []float64

	// RejectNonFinite makes Append drop NaN/±Inf values instead of storing
	// them, counting each drop in Rejected. This is the divergence
	// quarantine of the fault-tolerant pipeline runtime: divergent solver
	// output is excluded at ingest so it can never poison Gram matrices or
	// average into stitched pivots.
	RejectNonFinite bool
	// Rejected counts values dropped by RejectNonFinite.
	Rejected int

	// gen is the mutation generation; cached plans are valid only while
	// their recorded generation matches.
	gen uint64
	// planMu guards plans; plan compilation itself happens outside the
	// lock (per-mode sync.Once), so concurrent kernels on different modes
	// never serialise their plan builds.
	planMu sync.Mutex
	plans  *planCache
	// planBuilds/planHits are this tensor's kernel-plan cache accounting
	// (see PlanStats); maintained by PlanMode.
	planBuilds, planHits atomic.Int64
}

// NewSparse returns an empty sparse tensor with the given shape.
func NewSparse(shape Shape) *Sparse {
	return &Sparse{Shape: shape.Clone()}
}

// PlanlessView returns a tensor sharing s's entry storage with an empty
// kernel-plan cache — the transient-tensor protocol for decomposition
// benchmarks and sweeps, where every arm must pay plan compilation as a
// freshly stitched tensor would. The view inherits the quarantine
// accounting (RejectNonFinite/Rejected). The storage is aliased, not
// copied: mutating either tensor's entries corrupts the other's plan
// generation, so callers must treat both as read-only.
func (s *Sparse) PlanlessView() *Sparse {
	return &Sparse{
		Shape:           s.Shape.Clone(),
		Idx:             s.Idx,
		Vals:            s.Vals,
		RejectNonFinite: s.RejectNonFinite,
		Rejected:        s.Rejected,
	}
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.Vals) }

// Order returns the number of modes.
func (s *Sparse) Order() int { return s.Shape.Order() }

// Append adds an entry at the multi-index (copied). Bounds are checked.
// With RejectNonFinite set, NaN/±Inf values are quarantined (dropped and
// counted in Rejected) instead of stored.
func (s *Sparse) Append(idx []int, v float64) {
	if len(idx) != s.Order() {
		panic(fmt.Sprintf("tensor: Append index order %d != %d", len(idx), s.Order()))
	}
	for k, i := range idx {
		if i < 0 || i >= s.Shape[k] {
			panic(fmt.Sprintf("tensor: Append index %v out of range for shape %v", idx, s.Shape))
		}
	}
	if s.RejectNonFinite && !isFinite(v) {
		s.Rejected++
		return
	}
	s.Idx = append(s.Idx, idx...)
	s.Vals = append(s.Vals, v)
	s.InvalidatePlans()
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Entry returns the multi-index slice (aliasing internal storage; do not
// mutate) and value of the e-th stored entry.
func (s *Sparse) Entry(e int) ([]int, float64) {
	o := s.Order()
	return s.Idx[e*o : (e+1)*o], s.Vals[e]
}

// Each invokes fn for every stored entry. The index slice aliases internal
// storage and must not be retained or mutated.
func (s *Sparse) Each(fn func(idx []int, v float64)) {
	o := s.Order()
	for e := 0; e < len(s.Vals); e++ {
		fn(s.Idx[e*o:(e+1)*o], s.Vals[e])
	}
}

// Norm returns the Frobenius norm over stored entries. The tensor must be
// duplicate-free for this to equal the mathematical norm.
func (s *Sparse) Norm() float64 {
	var sum float64
	for _, v := range s.Vals {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Density returns NNZ divided by the total number of cells.
func (s *Sparse) Density() float64 {
	total := s.Shape.NumElements()
	if total == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(total)
}

// Clone returns a deep copy (including the quarantine configuration and
// accounting).
func (s *Sparse) Clone() *Sparse {
	out := NewSparse(s.Shape)
	out.Idx = append([]int(nil), s.Idx...)
	out.Vals = append([]float64(nil), s.Vals...)
	out.RejectNonFinite = s.RejectNonFinite
	out.Rejected = s.Rejected
	return out
}

// ToDense materialises the tensor densely, summing duplicates.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.Shape)
	s.Each(func(idx []int, v float64) {
		d.Data[s.Shape.LinearIndex(idx)] += v
	})
	return d
}

// Dedup merges duplicate coordinates using the combiner (e.g. sum or mean
// of the duplicates) and sorts entries by linear index. The combiner
// receives all values recorded for one coordinate.
func (s *Sparse) Dedup(combine func(vals []float64) float64) {
	if s.NNZ() == 0 {
		return
	}
	o := s.Order()
	lin := make([]int, s.NNZ())
	for e := 0; e < s.NNZ(); e++ {
		lin[e] = s.Shape.LinearIndex(s.Idx[e*o : (e+1)*o])
	}
	perm := make([]int, s.NNZ())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return lin[perm[a]] < lin[perm[b]] })

	newIdx := make([]int, 0, len(s.Idx))
	newVals := make([]float64, 0, len(s.Vals))
	group := make([]float64, 0, 4)
	flush := func(e int) {
		newIdx = append(newIdx, s.Idx[e*o:(e+1)*o]...)
		newVals = append(newVals, combine(group))
		group = group[:0]
	}
	for i := 0; i < len(perm); i++ {
		group = append(group, s.Vals[perm[i]])
		if i+1 == len(perm) || lin[perm[i+1]] != lin[perm[i]] {
			flush(perm[i])
		}
	}
	s.Idx, s.Vals = newIdx, newVals
	s.InvalidatePlans()
}

// SumDuplicates is a Dedup combiner that sums duplicate values.
func SumDuplicates(vals []float64) float64 {
	var t float64
	for _, v := range vals {
		t += v
	}
	return t
}

// MeanDuplicates is a Dedup combiner that averages duplicate values.
func MeanDuplicates(vals []float64) float64 {
	return SumDuplicates(vals) / float64(len(vals))
}

// SortByMode sorts entries lexicographically with the given mode as the
// primary key (remaining modes in order), grouping cells that share a
// value along that mode — e.g. all cells of one pivot configuration.
func (s *Sparse) SortByMode(mode int) {
	o := s.Order()
	n := s.NNZ()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	less := func(a, b int) bool {
		ia := s.Idx[perm[a]*o : (perm[a]+1)*o]
		ib := s.Idx[perm[b]*o : (perm[b]+1)*o]
		if ia[mode] != ib[mode] {
			return ia[mode] < ib[mode]
		}
		for k := 0; k < o; k++ {
			if k == mode {
				continue
			}
			if ia[k] != ib[k] {
				return ia[k] < ib[k]
			}
		}
		return false
	}
	sort.Slice(perm, less)
	newIdx := make([]int, len(s.Idx))
	newVals := make([]float64, n)
	for to, from := range perm {
		copy(newIdx[to*o:(to+1)*o], s.Idx[from*o:(from+1)*o])
		newVals[to] = s.Vals[from]
	}
	s.Idx, s.Vals = newIdx, newVals
	s.InvalidatePlans()
}
