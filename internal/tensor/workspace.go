package tensor

import (
	"fmt"

	"repro/internal/mat"
)

// Workspace holds reusable dense buffers for TTM chains. A MultiTTM chain
// ping-pongs between two slots — step k reads one slot and writes the
// other — so an arbitrarily long chain needs exactly two buffers, each
// sized once to the largest intermediate and reused forever after.
// Steady-state HOOI/ST-HOSVD sweeps therefore allocate zero bytes in the
// dense TTM chain (asserted by testing.AllocsPerRun in the workspace
// tests).
//
// Results returned by Workspace methods ALIAS workspace memory: they are
// valid only until the next call on the same Workspace and must be Cloned
// if retained. A Workspace is not safe for concurrent use (the kernels
// inside a single call still fan out across workers as usual).
type Workspace struct {
	slots   [2]wsSlot
	strides []int
}

// wsSlot is one reusable dense buffer plus its cached header.
type wsSlot struct {
	data  []float64
	shape Shape
	d     Dense
}

// NewWorkspace returns an empty workspace; buffers grow on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// take returns a Dense of the given shape backed by slot storage, growing
// the buffer if needed. After warm-up this performs no allocation. The
// data is NOT zeroed; callers that accumulate must call zero first.
// modeOverride >= 0 resizes that mode to overrideSize (the TTM output
// shape) without materialising an intermediate Shape.
func (w *Workspace) take(slot int, shape Shape, modeOverride, overrideSize int) *Dense {
	s := &w.slots[slot]
	if cap(s.shape) < len(shape) {
		s.shape = make(Shape, len(shape))
	}
	s.shape = s.shape[:len(shape)]
	copy(s.shape, shape)
	if modeOverride >= 0 {
		s.shape[modeOverride] = overrideSize
	}
	n := s.shape.NumElements()
	if cap(s.data) < n {
		s.data = make([]float64, n)
	}
	s.data = s.data[:n]
	s.d = Dense{Shape: s.shape, Data: s.data}
	return &s.d
}

// outSlotFor picks the slot to write when reading from x: the one x does
// not alias (slot 0 when x is not workspace-backed).
func (w *Workspace) outSlotFor(x *Dense) int {
	if x == &w.slots[0].d {
		return 1
	}
	return 0
}

// takeStrides fills the reusable stride scratch with the C-order strides
// of the given shape.
func (w *Workspace) takeStrides(shape Shape) []int {
	if cap(w.strides) < len(shape) {
		w.strides = make([]int, len(shape))
	}
	w.strides = w.strides[:len(shape)]
	acc := 1
	for k := len(shape) - 1; k >= 0; k-- {
		w.strides[k] = acc
		acc *= shape[k]
	}
	return w.strides
}

// zero clears a workspace-backed tensor for accumulation.
func zero(d *Dense) {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// TTMWorkers computes the mode-n dense TTM into workspace memory. The
// result aliases the workspace. Results are bit-identical to the
// allocating TTMWorkers for any worker count.
func (w *Workspace) TTMWorkers(x *Dense, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: Workspace TTM mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	out := w.take(w.outSlotFor(x), x.Shape, n, m.Rows)
	ttmDenseKernel(x, n, m, out, workers)
	return out
}

// TTMSparseWorkers computes the mode-n sparse TTM into workspace memory.
// The result aliases the workspace.
func (w *Workspace) TTMSparseWorkers(x *Sparse, n int, m *mat.Matrix, workers int) *Dense {
	if m.Cols != x.Shape[n] {
		panic(fmt.Sprintf("tensor: Workspace TTMSparse mode %d size %d != matrix cols %d", n, x.Shape[n], m.Cols))
	}
	out := w.take(0, x.Shape, n, m.Rows)
	zero(out)
	ttmSparseKernel(x, n, m, out, w.takeStrides(out.Shape), workers)
	return out
}

// MultiTTMWorkers applies the mode products sequentially, ping-ponging
// between the two workspace slots. The result aliases the workspace.
func (w *Workspace) MultiTTMWorkers(x *Dense, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Shape.Order() {
		panic(fmt.Sprintf("tensor: MultiTTM got %d matrices for order-%d tensor", len(ms), x.Shape.Order()))
	}
	cur := x
	for n, m := range ms {
		if m == nil {
			continue
		}
		cur = w.TTMWorkers(cur, n, m, workers)
	}
	return cur
}

// MultiTTMSparseWorkers applies all mode products to a sparse tensor into
// workspace memory: the first non-nil matrix consumes the sparse input,
// the rest proceed densely, ping-ponging between the two slots. With all
// matrices nil the tensor is densified into a workspace slot. The result
// aliases the workspace. Results are bit-identical to the allocating
// MultiTTMSparseWorkers for any worker count.
func (w *Workspace) MultiTTMSparseWorkers(x *Sparse, ms []*mat.Matrix, workers int) *Dense {
	if len(ms) != x.Order() {
		panic(fmt.Sprintf("tensor: MultiTTMSparse got %d matrices for order-%d tensor", len(ms), x.Order()))
	}
	start := -1
	for n, m := range ms {
		if m != nil {
			start = n
			break
		}
	}
	if start == -1 {
		out := w.take(0, x.Shape, -1, 0)
		zero(out)
		o := x.Order()
		for e := 0; e < x.NNZ(); e++ {
			out.Data[x.Shape.LinearIndex(x.Idx[e*o:(e+1)*o])] += x.Vals[e]
		}
		return out
	}
	cur := w.TTMSparseWorkers(x, start, ms[start], workers)
	for n := start + 1; n < len(ms); n++ {
		if ms[n] == nil {
			continue
		}
		cur = w.TTMWorkers(cur, n, ms[n], workers)
	}
	return cur
}
