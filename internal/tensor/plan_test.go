package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// bitsEqualMat fails the test unless a and b agree exactly (bit-for-bit).
func bitsEqualMat(t *testing.T, name string, a, b *mat.Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			t.Fatalf("%s: element %d = %v vs %v (not bit-identical)", name, i, v, b.Data[i])
		}
	}
}

// bitsEqualDense fails the test unless a and b agree exactly.
func bitsEqualDense(t *testing.T, name string, a, b *Dense) {
	t.Helper()
	if !a.Shape.Equal(b.Shape) {
		t.Fatalf("%s: shape %v vs %v", name, a.Shape, b.Shape)
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			t.Fatalf("%s: element %d = %v vs %v (not bit-identical)", name, i, v, b.Data[i])
		}
	}
}

// withDuplicates appends a duplicated slice of entries so plans must cope
// with pre-Dedup tensors.
func withDuplicates(rng *rand.Rand, s *Sparse, n int) *Sparse {
	o := s.Order()
	for i := 0; i < n; i++ {
		e := rng.Intn(s.NNZ())
		s.Append(s.Idx[e*o:(e+1)*o], rng.NormFloat64())
	}
	return s
}

func TestModePlanCachedAndReused(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomSparse(rng, Shape{6, 5, 4}, 40)
	p1 := s.PlanMode(1, 1)
	p2 := s.PlanMode(1, 1)
	if p1 != p2 {
		t.Fatal("PlanMode did not return the cached plan on the second call")
	}
	// A different mode builds its own plan without invalidating mode 1's.
	_ = s.PlanMode(0, 1)
	if s.PlanMode(1, 1) != p1 {
		t.Fatal("building another mode's plan invalidated the cached plan")
	}
}

func TestModePlanGroupsAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := withDuplicates(rng, randomSparse(rng, Shape{5, 4, 6}, 60), 20)
	o := s.Order()
	for n := 0; n < o; n++ {
		p := s.PlanMode(n, 2)
		if len(p.Ents) != s.NNZ() || len(p.Rows) != s.NNZ() || len(p.Vals) != s.NNZ() {
			t.Fatalf("mode %d plan length mismatch", n)
		}
		if p.Bounds[0] != 0 || p.Bounds[len(p.Bounds)-1] != s.NNZ() {
			t.Fatalf("mode %d plan bounds do not cover all entries: %v", n, p.Bounds)
		}
		prevCol := -1
		for g := 0; g < p.NumGroups(); g++ {
			start, end := p.Bounds[g], p.Bounds[g+1]
			idx0 := s.Idx[p.Ents[start]*o : (p.Ents[start]+1)*o]
			col := s.Shape.MatricizeColumn(n, idx0)
			if col <= prevCol {
				t.Fatalf("mode %d group %d column %d not ascending after %d", n, g, col, prevCol)
			}
			prevCol = col
			prevEnt := -1
			for q := start; q < end; q++ {
				e := p.Ents[q]
				idx := s.Idx[e*o : (e+1)*o]
				if got := s.Shape.MatricizeColumn(n, idx); got != col {
					t.Fatalf("mode %d group %d mixes columns %d and %d", n, g, col, got)
				}
				if idx[n] != p.Rows[q] || s.Vals[e] != p.Vals[q] {
					t.Fatalf("mode %d plan position %d does not mirror entry %d", n, q, e)
				}
				if e <= prevEnt {
					t.Fatalf("mode %d group %d not in storage order (stable-sort violated)", n, g)
				}
				prevEnt = e
			}
		}
	}
}

func TestModePlanInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSparse(rng, Shape{6, 5, 4}, 50)

	mutations := []struct {
		name string
		do   func(*Sparse)
	}{
		{"Append", func(s *Sparse) { s.Append([]int{0, 0, 0}, 1.5) }},
		{"SortByMode", func(s *Sparse) { s.SortByMode(2) }},
		{"Dedup", func(s *Sparse) { s.Dedup(SumDuplicates) }},
		{"InvalidatePlans", func(s *Sparse) { s.Vals[0] *= 2; s.InvalidatePlans() }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := s.Clone()
			stale := c.PlanMode(0, 1)
			m.do(c)
			fresh := c.PlanMode(0, 1)
			if fresh == stale {
				t.Fatalf("%s did not invalidate the cached plan", m.name)
			}
			// The fresh plan must produce the same Gram as a never-planned
			// copy of the mutated tensor.
			pristine := c.Clone()
			bitsEqualMat(t, m.name, ModeGramWorkers(c, 0, 1), modeGramWorkersRef(pristine, 0, 1))
		})
	}
}

func TestModeGramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := []Shape{{7, 5, 4}, {4, 6, 3, 5}, {3, 3, 3, 3, 3}}
	for _, shape := range shapes {
		s := withDuplicates(rng, randomSparse(rng, shape, shape.NumElements()/3), 15)
		for n := 0; n < shape.Order(); n++ {
			for _, w := range []int{1, 8} {
				got := ModeGramWorkers(s, n, w)
				want := modeGramWorkersRef(s, n, w)
				bitsEqualMat(t, "ModeGram", got, want)
			}
		}
	}
}

func TestTTMSparseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Large enough to cross ttmSparseMinNNZ so the plan-grouped parallel
	// path engages at workers>1.
	s := withDuplicates(rng, randomSparse(rng, Shape{12, 11, 10, 9}, 6000), 100)
	for n := 0; n < s.Order(); n++ {
		m := mat.Random(rand.New(rand.NewSource(int64(n))), 4, s.Shape[n])
		for _, w := range []int{1, 2, 8} {
			got := TTMSparseWorkers(s, n, m, w)
			want := ttmSparseWorkersRef(s, n, m, w)
			bitsEqualDense(t, "TTMSparse", got, want)
		}
	}
}

func TestTTMDenseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []Shape{{9, 8, 7}, {6, 5, 4, 7}, {3, 4, 2, 3, 2}} {
		d := randomDense(rng, shape)
		for n := 0; n < shape.Order(); n++ {
			m := mat.Random(rand.New(rand.NewSource(int64(n))), 3, shape[n])
			for _, w := range []int{1, 8} {
				got := TTMWorkers(d, n, m, w)
				want := ttmWorkersRef(d, n, m, w)
				bitsEqualDense(t, "TTMDense", got, want)
			}
		}
	}
}

func TestModeGramDenseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []Shape{{8, 7, 6}, {5, 6, 4, 5}} {
		d := randomDense(rng, shape)
		// Zero out some fibers so the nonzero-fiber hoisting is exercised.
		for i := 0; i < len(d.Data); i += 7 {
			d.Data[i] = 0
		}
		for i := 0; i < len(d.Data)/4; i++ {
			d.Data[rng.Intn(len(d.Data))] = 0
		}
		for n := 0; n < shape.Order(); n++ {
			for _, w := range []int{1, 8} {
				got := ModeGramDenseWorkers(d, n, w)
				want := modeGramDenseWorkersRef(d, n, w)
				bitsEqualMat(t, "ModeGramDense", got, want)
			}
		}
	}
}

func TestFoldMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range []Shape{{5, 4, 3}, {3, 4, 2, 5}} {
		for n := 0; n < shape.Order(); n++ {
			m := mat.Random(rng, shape[n], shape.MatricizeCols(n))
			bitsEqualDense(t, "Fold", Fold(m, n, shape), foldRef(m, n, shape))
		}
	}
}

// TestPlanCacheConcurrentKernels drives concurrent kernels over the same
// tensor (as HOSVD's per-mode fan-out does) to exercise the plan cache's
// locking; run under -race this doubles as a data-race proof.
func TestPlanCacheConcurrentKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomSparse(rng, Shape{8, 7, 6, 5}, 800)
	want := make([]*mat.Matrix, s.Order())
	for n := range want {
		want[n] = modeGramWorkersRef(s, n, 1)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for n := 0; n < s.Order(); n++ {
				bitsEqualMat(t, "concurrent ModeGram", ModeGramWorkers(s, n, 2), want[n])
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestPlanlessView(t *testing.T) {
	s := NewSparse(Shape{3, 4})
	s.RejectNonFinite = true
	s.Append([]int{0, 1}, 2.5)
	s.Append([]int{2, 3}, -1.0)
	s.Append([]int{1, 0}, math.NaN()) // quarantined
	s.PlanMode(0, 1)
	if !s.HasPlanMode(0) {
		t.Fatal("source should have a cached plan for mode 0")
	}

	v := s.PlanlessView()
	if v.HasPlanMode(0) {
		t.Error("view must start with an empty plan cache")
	}
	if v.NNZ() != s.NNZ() {
		t.Fatalf("view NNZ = %d, want %d", v.NNZ(), s.NNZ())
	}
	if &v.Idx[0] != &s.Idx[0] || &v.Vals[0] != &s.Vals[0] {
		t.Error("view must alias the source storage, not copy it")
	}
	if !v.RejectNonFinite || v.Rejected != 1 {
		t.Errorf("view quarantine = (%v, %d), want (true, 1)", v.RejectNonFinite, v.Rejected)
	}
	// Plans built on the view stay on the view.
	v.PlanMode(1, 1)
	if s.HasPlanMode(1) {
		t.Error("plan built on the view must not appear on the source")
	}
}
