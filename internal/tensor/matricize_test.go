package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestMatricizeKolda(t *testing.T) {
	// 2×2×2 tensor with elements 0..7 in C order. Check a handful of
	// matricization cells against the column convention.
	d := DenseFromSlice(Shape{2, 2, 2}, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	m0 := Matricize(d, 0)
	if m0.Rows != 2 || m0.Cols != 4 {
		t.Fatalf("mode-0 dims = %d×%d, want 2×4", m0.Rows, m0.Cols)
	}
	// Element (1, 0, 1) = 5; column for mode 0 = i2 + i3*I2... here modes
	// are (0,1,2): col = i1 + i2*I1 = 0 + 1*2 = 2.
	if m0.At(1, 2) != 5 {
		t.Fatalf("X(0)[1,2] = %v, want 5", m0.At(1, 2))
	}
	// Element (0, 1, 1) = 3; mode-1 col = i0 + i2*I0 = 0 + 1*2 = 2.
	m1 := Matricize(d, 1)
	if m1.At(1, 2) != 3 {
		t.Fatalf("X(1)[1,2] = %v, want 3", m1.At(1, 2))
	}
}

func TestMatricizeFoldRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []Shape{{3}, {2, 5}, {3, 4, 2}, {2, 3, 2, 4}, {2, 2, 2, 2, 3}}
	for _, shape := range shapes {
		d := randomDense(rng, shape)
		for n := 0; n < shape.Order(); n++ {
			m := Matricize(d, n)
			back := Fold(m, n, shape)
			if !back.Equal(d, 0) {
				t.Errorf("shape %v mode %d: Fold(Matricize) != original", shape, n)
			}
		}
	}
}

func TestFoldShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fold with wrong dims did not panic")
		}
	}()
	Fold(mat.New(2, 3), 0, Shape{2, 2})
}

func TestMatricizeNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := randomDense(rng, Shape{3, 4, 5})
	for n := 0; n < 3; n++ {
		if got, want := mat.FrobeniusNorm(Matricize(d, n)), d.Norm(); got < want-1e-12 || got > want+1e-12 {
			t.Errorf("mode %d: matricization norm %v != tensor norm %v", n, got, want)
		}
	}
}

func TestModeGramMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	shape := Shape{4, 3, 5}
	s := randomSparse(rng, shape, 20)
	d := s.ToDense()
	for n := 0; n < shape.Order(); n++ {
		gSparse := ModeGram(s, n)
		gDense := mat.Gram(Matricize(d, n))
		if !gSparse.Equal(gDense, 1e-10) {
			t.Errorf("mode %d: sparse ModeGram disagrees with dense Gram", n)
		}
		gFiber := ModeGramDense(d, n)
		if !gFiber.Equal(gDense, 1e-10) {
			t.Errorf("mode %d: ModeGramDense disagrees with dense Gram", n)
		}
	}
}

func TestModeGramEmpty(t *testing.T) {
	s := NewSparse(Shape{3, 3})
	g := ModeGram(s, 0)
	if mat.FrobeniusNorm(g) != 0 {
		t.Fatal("empty tensor Gram should be zero")
	}
}

func TestLeadingModeVectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := randomSparse(rng, Shape{5, 4, 3}, 30)
	u := LeadingModeVectors(s, 0, 3)
	if u.Rows != 5 || u.Cols != 3 {
		t.Fatalf("dims = %d×%d, want 5×3", u.Rows, u.Cols)
	}
	if !mat.IsOrthonormalCols(u, 1e-9) {
		t.Fatal("leading mode vectors not orthonormal")
	}
}

// Property: ModeGram is symmetric positive semi-definite for random sparse
// tensors.
func TestModeGramPSDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSparse(rng, Shape{4, 3, 3}, 12)
		g := ModeGram(s, rng.Intn(3))
		if !g.Equal(mat.Transpose(g), 1e-10) {
			return false
		}
		eig := mat.SymEig(g)
		for _, v := range eig.Values {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(35))}); err != nil {
		t.Error(err)
	}
}
