package tensor

import "repro/internal/obs"

// Kernel-plan cache instrumentation. PlanMode is called once per sparse
// kernel invocation (not per element), so one atomic add per call is
// far below the kernels' measurement noise.
var (
	planBuildsTotal = obs.Default.Counter("m2td_plan_cache_builds_total",
		"Compiled sparse mode plans (kernel-plan cache misses).")
	planHitsTotal = obs.Default.Counter("m2td_plan_cache_hits_total",
		"Sparse kernel invocations served by a cached mode plan.")
)

// PlanCacheStats returns the process-wide kernel-plan cache accounting:
// builds (cache misses, one per (tensor generation, mode)) and hits
// (kernel invocations that reused a cached plan).
func PlanCacheStats() (builds, hits int64) {
	return planBuildsTotal.Value(), planHitsTotal.Value()
}
