package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randomDense(rng *rand.Rand, shape Shape) *Dense {
	d := NewDense(shape)
	for i := range d.Data {
		d.Data[i] = 2*rng.Float64() - 1
	}
	return d
}

func randomSparse(rng *rand.Rand, shape Shape, nnz int) *Sparse {
	// Sample distinct linear indices so the result is duplicate-free.
	total := shape.NumElements()
	if nnz > total {
		nnz = total
	}
	seen := make(map[int]bool, nnz)
	s := NewSparse(shape)
	idx := make([]int, shape.Order())
	for len(seen) < nnz {
		lin := rng.Intn(total)
		if seen[lin] {
			continue
		}
		seen[lin] = true
		shape.MultiIndex(lin, idx)
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

func TestShapeBasics(t *testing.T) {
	s := Shape{3, 4, 5}
	if s.NumElements() != 60 {
		t.Fatalf("NumElements = %d, want 60", s.NumElements())
	}
	if s.Order() != 3 {
		t.Fatalf("Order = %d, want 3", s.Order())
	}
	if !s.Clone().Equal(s) {
		t.Fatal("Clone not equal")
	}
	if s.Equal(Shape{3, 4}) || s.Equal(Shape{3, 4, 6}) {
		t.Fatal("Equal false positive")
	}
	st := s.Strides()
	if st[0] != 20 || st[1] != 5 || st[2] != 1 {
		t.Fatalf("Strides = %v, want [20 5 1]", st)
	}
}

func TestLinearMultiIndexRoundtrip(t *testing.T) {
	s := Shape{2, 3, 4}
	idx := make([]int, 3)
	for lin := 0; lin < s.NumElements(); lin++ {
		s.MultiIndex(lin, idx)
		if got := s.LinearIndex(idx); got != lin {
			t.Fatalf("roundtrip: lin %d -> %v -> %d", lin, idx, got)
		}
	}
}

func TestLinearIndexPanics(t *testing.T) {
	s := Shape{2, 2}
	for _, bad := range [][]int{{2, 0}, {-1, 0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinearIndex(%v) did not panic", bad)
				}
			}()
			s.LinearIndex(bad)
		}()
	}
}

func TestMatricizeColumnConvention(t *testing.T) {
	// Kolda–Bader example-style check: for shape (I1,I2,I3) and mode 0,
	// column = i2 + i3*I2 (little-endian over non-n modes in mode order).
	s := Shape{2, 3, 4}
	if got := s.MatricizeColumn(0, []int{1, 2, 3}); got != 2+3*3 {
		t.Fatalf("MatricizeColumn mode 0 = %d, want 11", got)
	}
	if got := s.MatricizeColumn(1, []int{1, 2, 3}); got != 1+3*2 {
		t.Fatalf("MatricizeColumn mode 1 = %d, want 7", got)
	}
	if got := s.MatricizeCols(1); got != 8 {
		t.Fatalf("MatricizeCols(1) = %d, want 8", got)
	}
}

func TestDenseAtSet(t *testing.T) {
	d := NewDense(Shape{2, 3})
	d.Set(5, 1, 2)
	if d.At(1, 2) != 5 {
		t.Fatalf("At = %v, want 5", d.At(1, 2))
	}
	if d.At(0, 0) != 0 {
		t.Fatal("unset element should be zero")
	}
}

func TestDenseFromSlice(t *testing.T) {
	d := DenseFromSlice(Shape{2, 2}, []float64{1, 2, 3, 4})
	// C order: last mode fastest.
	if d.At(0, 1) != 2 || d.At(1, 0) != 3 {
		t.Fatalf("C-order layout broken: %v", d.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched DenseFromSlice did not panic")
		}
	}()
	DenseFromSlice(Shape{2, 2}, []float64{1})
}

func TestDenseArithmetic(t *testing.T) {
	a := DenseFromSlice(Shape{2, 2}, []float64{1, 2, 3, 4})
	b := DenseFromSlice(Shape{2, 2}, []float64{5, 6, 7, 8})
	if got := a.Add(b); got.Data[3] != 12 {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := b.Sub(a); got.Data[0] != 4 {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := a.Clone().Scale(2); got.Data[1] != 4 {
		t.Fatalf("Scale = %v", got.Data)
	}
	if n := DenseFromSlice(Shape{2}, []float64{3, 4}).Norm(); math.Abs(n-5) > 1e-14 {
		t.Fatalf("Norm = %v, want 5", n)
	}
	if !a.Equal(a.Clone(), 0) {
		t.Fatal("Equal(self) = false")
	}
	if a.Equal(b, 1) {
		t.Fatal("Equal should fail at tol 1")
	}
	if a.NNZ(0) != 4 || NewDense(Shape{3}).NNZ(0) != 0 {
		t.Fatal("NNZ broken")
	}
}

func TestDenseShapeMismatchPanics(t *testing.T) {
	a, b := NewDense(Shape{2}), NewDense(Shape{3})
	for name, fn := range map[string]func(){
		"Add": func() { a.Add(b) },
		"Sub": func() { a.Sub(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s shape mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSparseAppendEntryEach(t *testing.T) {
	s := NewSparse(Shape{2, 3})
	s.Append([]int{0, 1}, 2.5)
	s.Append([]int{1, 2}, -1)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	idx, v := s.Entry(1)
	if idx[0] != 1 || idx[1] != 2 || v != -1 {
		t.Fatalf("Entry(1) = %v, %v", idx, v)
	}
	count := 0
	s.Each(func(idx []int, v float64) { count++ })
	if count != 2 {
		t.Fatalf("Each visited %d entries, want 2", count)
	}
}

func TestSparseAppendPanics(t *testing.T) {
	s := NewSparse(Shape{2, 2})
	for _, bad := range [][]int{{2, 0}, {0, -1}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%v) did not panic", bad)
				}
			}()
			s.Append(bad, 1)
		}()
	}
}

func TestSparseDenseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := randomDense(rng, Shape{3, 4, 2})
	s := d.ToSparse(0)
	if !s.ToDense().Equal(d, 0) {
		t.Fatal("ToSparse/ToDense roundtrip broken")
	}
	if math.Abs(s.Norm()-d.Norm()) > 1e-12 {
		t.Fatal("sparse norm != dense norm")
	}
}

func TestToSparseThreshold(t *testing.T) {
	d := DenseFromSlice(Shape{3}, []float64{0.5, 1e-12, -2})
	s := d.ToSparse(1e-9)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after thresholding", s.NNZ())
	}
}

func TestSparseDensity(t *testing.T) {
	s := NewSparse(Shape{2, 5})
	s.Append([]int{0, 0}, 1)
	if got := s.Density(); math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("Density = %v, want 0.1", got)
	}
}

func TestSparseDedupSum(t *testing.T) {
	s := NewSparse(Shape{2, 2})
	s.Append([]int{0, 1}, 1)
	s.Append([]int{0, 1}, 2)
	s.Append([]int{1, 0}, 5)
	s.Dedup(SumDuplicates)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ after Dedup = %d, want 2", s.NNZ())
	}
	d := s.ToDense()
	if d.At(0, 1) != 3 || d.At(1, 0) != 5 {
		t.Fatalf("Dedup sums wrong: %v", d.Data)
	}
}

func TestSparseDedupMean(t *testing.T) {
	s := NewSparse(Shape{2})
	s.Append([]int{0}, 1)
	s.Append([]int{0}, 3)
	s.Dedup(MeanDuplicates)
	if s.NNZ() != 1 || s.Vals[0] != 2 {
		t.Fatalf("mean Dedup = %v", s.Vals)
	}
}

func TestSparseSortByMode(t *testing.T) {
	s := NewSparse(Shape{3, 3})
	s.Append([]int{2, 0}, 1)
	s.Append([]int{0, 2}, 2)
	s.Append([]int{0, 1}, 3)
	s.SortByMode(1)
	// Sorted by mode-1 value: (2,0), (0,1), (0,2).
	idx0, _ := s.Entry(0)
	idx1, _ := s.Entry(1)
	idx2, _ := s.Entry(2)
	if idx0[1] != 0 || idx1[1] != 1 || idx2[1] != 2 {
		t.Fatalf("SortByMode order: %v %v %v", idx0, idx1, idx2)
	}
}

func TestSparseClone(t *testing.T) {
	s := NewSparse(Shape{2})
	s.Append([]int{1}, 7)
	c := s.Clone()
	c.Vals[0] = 9
	if s.Vals[0] != 7 {
		t.Fatal("Clone aliases values")
	}
}

func TestDenseSliceMode(t *testing.T) {
	d := DenseFromSlice(Shape{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	row := d.SliceMode(0, 1)
	if !row.Shape.Equal(Shape{3}) || row.Data[0] != 4 || row.Data[2] != 6 {
		t.Fatalf("SliceMode(0,1) = %v", row.Data)
	}
	col := d.SliceMode(1, 2)
	if !col.Shape.Equal(Shape{2}) || col.Data[0] != 3 || col.Data[1] != 6 {
		t.Fatalf("SliceMode(1,2) = %v", col.Data)
	}
}

func TestSparseSliceModeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	sp := randomSparse(rng, Shape{4, 3, 5}, 25)
	d := sp.ToDense()
	for mode := 0; mode < 3; mode++ {
		for index := 0; index < sp.Shape[mode]; index++ {
			if !sp.SliceMode(mode, index).ToDense().Equal(d.SliceMode(mode, index), 0) {
				t.Fatalf("sparse/dense slice mismatch at mode %d index %d", mode, index)
			}
		}
	}
}

func TestSliceModePanics(t *testing.T) {
	d := NewDense(Shape{2, 2})
	for _, bad := range [][2]int{{2, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SliceMode(%v) did not panic", bad)
				}
			}()
			d.SliceMode(bad[0], bad[1])
		}()
	}
	one := NewDense(Shape{3})
	defer func() {
		if recover() == nil {
			t.Error("slicing order-1 tensor did not panic")
		}
	}()
	one.SliceMode(0, 0)
}

func TestFiberNorms(t *testing.T) {
	s := NewSparse(Shape{2, 2})
	s.Append([]int{0, 0}, 3)
	s.Append([]int{0, 1}, 4)
	s.Append([]int{1, 0}, 1)
	norms := s.FiberNorms(0)
	if math.Abs(norms[0]-5) > 1e-12 || math.Abs(norms[1]-1) > 1e-12 {
		t.Fatalf("FiberNorms = %v", norms)
	}
	defer func() {
		if recover() == nil {
			t.Error("FiberNorms with bad mode did not panic")
		}
	}()
	s.FiberNorms(5)
}
