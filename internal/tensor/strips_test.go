package tensor

// Parity and regression tests for the strip-reduced Gram kernels: the
// optimised kernels must match the executable strip specification
// (reference.go) bit for bit at every worker count and fan-out cap, the
// strip grid must be a pure function of the input, and steady-state
// allocations must not grow with the worker count (the BENCH_2.json
// regression this PR fixes).

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/parallel"
)

// stripTestWorkers mirrors the bit-stability sweep the CI faults job runs
// under -race.
var stripTestWorkers = []int{1, 2, 3, 8}

// largeStripSparse crosses gramStripGrain so plans compile multiple
// reduction strips.
func largeStripSparse(t *testing.T) *Sparse {
	t.Helper()
	s := seededSparse(Shape{14, 12, 10, 8}, 9000, 21)
	if p := s.PlanMode(0, 1); p.NumStrips() < 2 {
		t.Fatalf("test tensor compiles %d strips; need >= 2 to exercise the tree", p.NumStrips())
	}
	return s
}

func TestTreeReductionGramMatchesStripSpec(t *testing.T) {
	s := largeStripSparse(t)
	for n := 0; n < s.Order(); n++ {
		want := modeGramStripRef(s, n)
		for _, w := range stripTestWorkers {
			if !matEqualBits(want, ModeGramWorkers(s, n, w)) {
				t.Fatalf("ModeGram mode %d workers=%d differs from strip spec", n, w)
			}
		}
	}
}

func TestTreeReductionGramDenseMatchesStripSpec(t *testing.T) {
	// Mode 0 has 1536 fibers (multi-strip); later modes stay single-strip
	// and verify the serial fallback against the same spec.
	d := seededSparse(Shape{8, 48, 32}, 5000, 22).ToDense()
	for n := 0; n < 3; n++ {
		want := modeGramDenseStripRef(d, n)
		for _, w := range stripTestWorkers {
			if !matEqualBits(want, ModeGramDenseWorkers(d, n, w)) {
				t.Fatalf("ModeGramDense mode %d workers=%d differs from strip spec", n, w)
			}
		}
	}
}

func TestTreeReductionBitStableUnderHighFanout(t *testing.T) {
	// Raise the fan-out cap above GOMAXPROCS so real goroutines interleave
	// even on small CI machines — under -race this is the order-dependence
	// probe the fixed sweep misses.
	prev := parallel.SetFanoutCap(8)
	defer parallel.SetFanoutCap(prev)
	s := largeStripSparse(t)
	d := seededSparse(Shape{8, 48, 32}, 5000, 23).ToDense()
	wantG := ModeGramWorkers(s, 0, 1)
	wantD := ModeGramDenseWorkers(d, 0, 1)
	for _, w := range stripTestWorkers[1:] {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			if !matEqualBits(wantG, ModeGramWorkers(s, 0, w)) {
				t.Fatalf("ModeGram workers=%d differs under fanout cap 8", w)
			}
			if !matEqualBits(wantD, ModeGramDenseWorkers(d, 0, w)) {
				t.Fatalf("ModeGramDense workers=%d differs under fanout cap 8", w)
			}
		})
	}
}

func TestTreeReductionGramToleranceVsSerialReference(t *testing.T) {
	// Multi-strip results reassociate the accumulation, so they may differ
	// from the undivided serial order — but only at rounding level.
	s := largeStripSparse(t)
	for n := 0; n < s.Order(); n++ {
		got := ModeGramWorkers(s, n, 8)
		ref := modeGramWorkersRef(s, n, 1)
		for i, v := range got.Data {
			r := ref.Data[i]
			scale := math.Abs(r)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(v-r)/scale > 1e-12 {
				t.Fatalf("mode %d cell %d: strip-reduced %v vs serial %v", n, i, v, r)
			}
		}
	}
}

func TestGramStripGridIsPureFunctionOfInput(t *testing.T) {
	a := seededSparse(Shape{12, 10, 8}, 7000, 24)
	b := seededSparse(Shape{12, 10, 8}, 7000, 24)
	for n := 0; n < 3; n++ {
		// Different workers arguments at compile time must yield the same grid.
		pa, pb := a.PlanMode(n, 1), b.PlanMode(n, 8)
		if len(pa.Strips) != len(pb.Strips) {
			t.Fatalf("mode %d: %d vs %d strips", n, pa.NumStrips(), pb.NumStrips())
		}
		for i, v := range pa.Strips {
			if pb.Strips[i] != v {
				t.Fatalf("mode %d: strip grids differ at %d: %v vs %v", n, i, pa.Strips, pb.Strips)
			}
		}
		// Grid boundaries must cover the group space in ascending order.
		if pa.Strips[0] != 0 || pa.Strips[pa.NumStrips()] != pa.NumGroups() {
			t.Fatalf("mode %d: strips %v do not cover %d groups", n, pa.Strips, pa.NumGroups())
		}
		for i := 1; i < len(pa.Strips); i++ {
			if pa.Strips[i] <= pa.Strips[i-1] {
				t.Fatalf("mode %d: strips %v contain an empty strip", n, pa.Strips)
			}
		}
	}
	// Small tensors must compile a single strip (undivided serial path).
	small := seededSparse(Shape{7, 5, 4}, 60, 25)
	if got := small.PlanMode(0, 1).NumStrips(); got != 1 {
		t.Fatalf("small tensor compiled %d strips, want 1", got)
	}
}

func TestSetGramMaxStripsOverride(t *testing.T) {
	prev := SetGramMaxStrips(2)
	defer SetGramMaxStrips(prev)
	s := seededSparse(Shape{14, 12, 10, 8}, 9000, 26)
	p := s.PlanMode(0, 1)
	if p.NumStrips() != 2 {
		t.Fatalf("override=2: plan compiled %d strips, want 2", p.NumStrips())
	}
	// Results stay bit-stable across worker counts under any fixed override.
	want := ModeGramWorkers(s, 0, 1)
	for _, w := range stripTestWorkers[1:] {
		if !matEqualBits(want, ModeGramWorkers(s, 0, w)) {
			t.Fatalf("override=2: workers=%d differs", w)
		}
	}
	// Restoring the default and invalidating recompiles a bigger grid
	// (9000 entries / gramStripGrain = 4 strips).
	SetGramMaxStrips(prev)
	s.InvalidatePlans()
	if got := s.PlanMode(0, 1).NumStrips(); got != 9000/gramStripGrain {
		t.Fatalf("default grid: %d strips for nnz=9000, want %d", got, 9000/gramStripGrain)
	}
}

func TestModeGramDenseAllocsFlatAcrossWorkers(t *testing.T) {
	// BENCH_2.json: allocs/op grew 7 → 46 from workers 1 → 8 because every
	// worker allocated its own fiber buffer. Scratch is pooled now. The
	// fan-out cap is pinned to 1 so the measurement isolates ALGORITHMIC
	// allocations from goroutine-spawn bookkeeping (which varies by
	// machine): any remaining worker-count dependence would be exactly the
	// per-worker scratch this test guards against.
	prev := parallel.SetFanoutCap(1)
	defer parallel.SetFanoutCap(prev)
	d := seededSparse(Shape{12, 12, 12, 12}, 12000, 27).ToDense()
	measure := func(w int) float64 {
		return testing.AllocsPerRun(20, func() { ModeGramDenseWorkers(d, 0, w) })
	}
	a1, a8 := measure(1), measure(8)
	if a8 > a1+2 {
		t.Fatalf("allocs/op grew from %.0f (w=1) to %.0f (w=8); pooled scratch must not scale with workers", a1, a8)
	}
	if a1 > 16 {
		t.Fatalf("workers=1 allocates %.0f per op; expected pooled steady state <= 16", a1)
	}
}

func TestGramPartialPoolReuse(t *testing.T) {
	// Steady-state sparse Gram calls must not allocate new partials: after
	// a warm-up call, allocations are bounded by the output matrix + plan
	// bookkeeping, independent of the strip count.
	s := largeStripSparse(t)
	ModeGramWorkers(s, 0, 2) // warm plan + pool
	got := testing.AllocsPerRun(20, func() { ModeGramWorkers(s, 0, 2) })
	if got > 16 {
		t.Fatalf("steady-state ModeGram allocates %.0f per op, want <= 16", got)
	}
}
