package tensor

import (
	"math"
	"testing"
)

func TestSparseRejectNonFinite(t *testing.T) {
	s := NewSparse(Shape{2, 3})
	s.RejectNonFinite = true
	s.Append([]int{0, 0}, 1.5)
	s.Append([]int{0, 1}, math.NaN())
	s.Append([]int{1, 0}, math.Inf(1))
	s.Append([]int{1, 1}, math.Inf(-1))
	s.Append([]int{1, 2}, -2.5)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (non-finite values quarantined)", s.NNZ())
	}
	if s.Rejected != 3 {
		t.Fatalf("Rejected = %d, want 3", s.Rejected)
	}
	s.Each(func(idx []int, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v stored at %v", v, idx)
		}
	})
}

func TestSparseAcceptsNonFiniteByDefault(t *testing.T) {
	// The quarantine is opt-in: raw tensors (tests, synthetic data)
	// keep the permissive legacy behaviour.
	s := NewSparse(Shape{2})
	s.Append([]int{0}, math.NaN())
	if s.NNZ() != 1 || s.Rejected != 0 {
		t.Fatalf("default Append altered: NNZ=%d Rejected=%d", s.NNZ(), s.Rejected)
	}
}

func TestSparseCloneCarriesQuarantine(t *testing.T) {
	s := NewSparse(Shape{2})
	s.RejectNonFinite = true
	s.Append([]int{0}, math.NaN())
	c := s.Clone()
	if !c.RejectNonFinite || c.Rejected != 1 {
		t.Fatalf("Clone dropped quarantine state: %+v", c)
	}
	c.Append([]int{1}, math.Inf(1))
	if c.Rejected != 2 || s.Rejected != 1 {
		t.Fatalf("Clone shares accounting: clone=%d orig=%d", c.Rejected, s.Rejected)
	}
}

func TestDenseSetRejectNonFinite(t *testing.T) {
	d := NewDense(Shape{2, 2})
	d.RejectNonFinite = true
	d.Set(1.0, 0, 0)
	d.Set(math.NaN(), 0, 1)
	d.Set(math.Inf(1), 1, 0)
	if d.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", d.Rejected)
	}
	if d.At(0, 1) != 0 || d.At(1, 0) != 0 {
		t.Fatalf("quarantined cells were written: %v", d.Data)
	}
	if d.At(0, 0) != 1.0 {
		t.Fatalf("finite cell lost: %v", d.At(0, 0))
	}
}
