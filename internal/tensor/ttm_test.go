package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// naiveTTM is a reference implementation via matricization:
// Y(n) = M · X(n).
func naiveTTM(x *Dense, n int, m *mat.Matrix) *Dense {
	xm := Matricize(x, n)
	ym := mat.Mul(m, xm)
	outShape := x.Shape.Clone()
	outShape[n] = m.Rows
	return Fold(ym, n, outShape)
}

func TestTTMAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	shapes := []Shape{{4}, {3, 5}, {3, 4, 2}, {2, 3, 4, 2}}
	for _, shape := range shapes {
		x := randomDense(rng, shape)
		for n := 0; n < shape.Order(); n++ {
			m := mat.Random(rng, 2, shape[n])
			got := TTM(x, n, m)
			want := naiveTTM(x, n, m)
			if !got.Equal(want, 1e-10) {
				t.Errorf("shape %v mode %d: TTM disagrees with matricized product", shape, n)
			}
		}
	}
}

func TestTTMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randomDense(rng, Shape{3, 4, 2})
	for n := 0; n < 3; n++ {
		if !TTM(x, n, mat.Identity(x.Shape[n])).Equal(x, 1e-14) {
			t.Errorf("TTM by identity changed the tensor (mode %d)", n)
		}
	}
}

func TestTTMShapeMismatchPanics(t *testing.T) {
	x := NewDense(Shape{2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("TTM with wrong matrix cols did not panic")
		}
	}()
	TTM(x, 0, mat.New(2, 5))
}

func TestTTMSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shape := Shape{4, 3, 5}
	s := randomSparse(rng, shape, 25)
	d := s.ToDense()
	for n := 0; n < shape.Order(); n++ {
		m := mat.Random(rng, 2, shape[n])
		if !TTMSparse(s, n, m).Equal(TTM(d, n, m), 1e-10) {
			t.Errorf("mode %d: TTMSparse != TTM", n)
		}
	}
}

func TestTTMSparseShapeMismatchPanics(t *testing.T) {
	s := NewSparse(Shape{2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("TTMSparse with wrong matrix cols did not panic")
		}
	}()
	TTMSparse(s, 1, mat.New(2, 2))
}

func TestMultiTTM(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shape := Shape{3, 4, 2}
	x := randomDense(rng, shape)
	ms := []*mat.Matrix{
		mat.Random(rng, 2, 3),
		mat.Random(rng, 2, 4),
		mat.Random(rng, 2, 2),
	}
	got := MultiTTM(x, ms)
	want := TTM(TTM(TTM(x, 0, ms[0]), 1, ms[1]), 2, ms[2])
	if !got.Equal(want, 1e-10) {
		t.Fatal("MultiTTM disagrees with sequential TTM")
	}
	// nil skips a mode.
	got2 := MultiTTM(x, []*mat.Matrix{nil, ms[1], nil})
	want2 := TTM(x, 1, ms[1])
	if !got2.Equal(want2, 1e-12) {
		t.Fatal("MultiTTM with nil entries broken")
	}
}

func TestMultiTTMSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	shape := Shape{3, 4, 2}
	s := randomSparse(rng, shape, 10)
	ms := []*mat.Matrix{
		mat.Random(rng, 2, 3),
		mat.Random(rng, 3, 4),
		mat.Random(rng, 2, 2),
	}
	if !MultiTTMSparse(s, ms).Equal(MultiTTM(s.ToDense(), ms), 1e-10) {
		t.Fatal("MultiTTMSparse != MultiTTM on densified input")
	}
	// All-nil returns densified input.
	if !MultiTTMSparse(s, []*mat.Matrix{nil, nil, nil}).Equal(s.ToDense(), 0) {
		t.Fatal("MultiTTMSparse with all nil should densify")
	}
	// Leading nil, then matrices.
	got := MultiTTMSparse(s, []*mat.Matrix{nil, ms[1], ms[2]})
	want := TTM(TTM(s.ToDense(), 1, ms[1]), 2, ms[2])
	if !got.Equal(want, 1e-10) {
		t.Fatal("MultiTTMSparse with leading nil broken")
	}
}

func TestMultiTTMWrongCountPanics(t *testing.T) {
	x := NewDense(Shape{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("MultiTTM with wrong factor count did not panic")
		}
	}()
	MultiTTM(x, []*mat.Matrix{nil})
}

func TestTuckerReconstructExact(t *testing.T) {
	// Build X = G ×1 U1 ×2 U2 ×3 U3 for random orthonormal U; recovering the
	// core via Uᵀ and reconstructing must reproduce X exactly.
	rng := rand.New(rand.NewSource(45))
	core := randomDense(rng, Shape{2, 3, 2})
	us := []*mat.Matrix{
		mat.RandomOrthonormal(rng, 5, 2),
		mat.RandomOrthonormal(rng, 6, 3),
		mat.RandomOrthonormal(rng, 4, 2),
	}
	x := TuckerReconstruct(core, us)
	coreBack := MultiTTM(x, TransposeAll(us))
	if !coreBack.Equal(core, 1e-9) {
		t.Fatal("core recovery through orthonormal factors failed")
	}
	xBack := TuckerReconstruct(coreBack, us)
	if !xBack.Equal(x, 1e-9) {
		t.Fatal("Tucker reconstruct roundtrip failed")
	}
}

func TestTransposeAll(t *testing.T) {
	ms := []*mat.Matrix{mat.New(2, 3), nil, mat.New(4, 1)}
	ts := TransposeAll(ms)
	if ts[0].Rows != 3 || ts[0].Cols != 2 || ts[1] != nil || ts[2].Rows != 1 {
		t.Fatal("TransposeAll broken")
	}
}

// Property: TTM commutes across distinct modes:
// (X ×m A) ×n B == (X ×n B) ×m A for m != n.
func TestTTMCommutesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomDense(rng, Shape{3, 4, 2})
		a := mat.Random(rng, 2, 3)
		b := mat.Random(rng, 3, 4)
		lhs := TTM(TTM(x, 0, a), 1, b)
		rhs := TTM(TTM(x, 1, b), 0, a)
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(46))}); err != nil {
		t.Error(err)
	}
}

// Property: same-mode TTM composes: (X ×n A) ×n B == X ×n (B·A).
func TestTTMComposesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomDense(rng, Shape{4, 3})
		a := mat.Random(rng, 3, 4) // mode-0: 4 -> 3
		b := mat.Random(rng, 2, 3) // mode-0: 3 -> 2
		lhs := TTM(TTM(x, 0, a), 0, b)
		rhs := TTM(x, 0, mat.Mul(b, a))
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

// TestTTMSparseOneShotSkipsPlanCompile pins the ttmSparseKernel path
// choice: with no cached plan and no available parallelism (fanout cap
// 1), a sparse TTM on a transient tensor must NOT compile a mode plan —
// the O(nnz log nnz) compile sort can never amortize over a single call.
// A cached plan, by contrast, is free and must be used.
func TestTTMSparseOneShotSkipsPlanCompile(t *testing.T) {
	prev := parallel.SetFanoutCap(1)
	defer parallel.SetFanoutCap(prev)

	// Large enough to cross ttmSparseMinNNZ so only the new fanout /
	// cached-plan gates decide the path.
	s := seededSparse(Shape{12, 11, 10, 9}, 2*ttmSparseMinNNZ, 31)
	m := mat.Random(rand.New(rand.NewSource(31)), 4, s.Shape[0])

	serial := TTMSparseWorkers(s, 0, m, 8)
	if builds, _ := s.PlanStats(); builds != 0 {
		t.Fatalf("one-shot TTM at fanout cap 1 compiled %d plans, want 0", builds)
	}

	// Once a plan exists the kernel must pick it up (hits grow) and the
	// result must stay bit-identical to the serial entry loop.
	s.PlanMode(0, 1)
	builds0, hits0 := s.PlanStats()
	planned := TTMSparseWorkers(s, 0, m, 8)
	builds1, hits1 := s.PlanStats()
	if builds1 != builds0 || hits1 != hits0+1 {
		t.Fatalf("cached-plan TTM: builds %d->%d hits %d->%d, want one hit and no build",
			builds0, builds1, hits0, hits1)
	}
	bitsEqualDense(t, "TTMSparse serial vs planned", serial, planned)
}

// TestHasPlanMode pins the accessor: false before any build, true after,
// false again once the tensor mutates, and false (not a panic) for
// out-of-range modes.
func TestHasPlanMode(t *testing.T) {
	s := seededSparse(Shape{6, 5, 4}, 200, 7)
	if s.HasPlanMode(1) {
		t.Fatal("HasPlanMode true before any PlanMode call")
	}
	s.PlanMode(1, 1)
	if !s.HasPlanMode(1) {
		t.Fatal("HasPlanMode false after PlanMode built mode 1")
	}
	if s.HasPlanMode(0) {
		t.Fatal("HasPlanMode true for a mode that was never built")
	}
	s.InvalidatePlans()
	if s.HasPlanMode(1) {
		t.Fatal("HasPlanMode survived InvalidatePlans")
	}
	if s.HasPlanMode(-1) || s.HasPlanMode(99) {
		t.Fatal("HasPlanMode true for out-of-range mode")
	}
}
