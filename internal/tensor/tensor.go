// Package tensor provides dense and sparse (coordinate-format) N-mode
// tensors plus the tensor algebra kernels required by HOSVD and M2TD:
// mode-n matricization, matricization Gram matrices computed directly from
// sparse coordinates, the mode-n tensor–matrix product (TTM), and Tucker
// reconstruction.
//
// Conventions follow Kolda & Bader, "Tensor Decompositions and
// Applications": the mode-n matricization X(n) has I_n rows, and tensor
// element (i_1, …, i_N) maps to column
//
//	j = Σ_{k≠n} i_k · J_k   with   J_k = Π_{m<k, m≠n} I_m.
//
// Dense tensors store elements in C order (last mode varies fastest).
package tensor

import (
	"fmt"
	"math"
)

// Shape describes the mode sizes of a tensor.
type Shape []int

// NumElements returns the product of the mode sizes.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative mode size in shape %v", s))
		}
		n *= d
	}
	return n
}

// Order returns the number of modes.
func (s Shape) Order() int { return len(s) }

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i, d := range s {
		if d != o[i] {
			return false
		}
	}
	return true
}

// Strides returns C-order strides (last mode fastest).
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for k := len(s) - 1; k >= 0; k-- {
		st[k] = acc
		acc *= s[k]
	}
	return st
}

// LinearIndex converts a multi-index to the C-order linear index.
func (s Shape) LinearIndex(idx []int) int {
	if len(idx) != len(s) {
		panic(fmt.Sprintf("tensor: index order %d != tensor order %d", len(idx), len(s)))
	}
	lin := 0
	acc := 1
	for k := len(s) - 1; k >= 0; k-- {
		if idx[k] < 0 || idx[k] >= s[k] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, s))
		}
		lin += idx[k] * acc
		acc *= s[k]
	}
	return lin
}

// MultiIndex converts a C-order linear index into dst (which must have
// length equal to the order) and returns it.
func (s Shape) MultiIndex(lin int, dst []int) []int {
	for k := len(s) - 1; k >= 0; k-- {
		dst[k] = lin % s[k]
		lin /= s[k]
	}
	return dst
}

// MatricizeColumn returns the mode-n matricization column index for a
// multi-index, per the Kolda–Bader convention.
func (s Shape) MatricizeColumn(n int, idx []int) int {
	col := 0
	j := 1
	for k := 0; k < len(s); k++ {
		if k == n {
			continue
		}
		col += idx[k] * j
		j *= s[k]
	}
	return col
}

// MatricizeCols returns the number of columns of the mode-n matricization,
// i.e. the product of all mode sizes except mode n.
func (s Shape) MatricizeCols(n int) int {
	cols := 1
	for k, d := range s {
		if k != n {
			cols *= d
		}
	}
	return cols
}

// Dense is a dense N-mode tensor in C order.
type Dense struct {
	Shape Shape
	Data  []float64

	// RejectNonFinite makes Set drop NaN/±Inf values (counted in
	// Rejected) — the dense-side divergence quarantine used by stitching
	// and ingest paths that assemble cells one at a time. Kernels that
	// write Data directly are unaffected.
	RejectNonFinite bool
	// Rejected counts values dropped by RejectNonFinite.
	Rejected int
}

// NewDense returns a zero dense tensor with the given shape.
func NewDense(shape Shape) *Dense {
	return &Dense{Shape: shape.Clone(), Data: make([]float64, shape.NumElements())}
}

// DenseFromSlice wraps data (not copied) as a dense tensor.
func DenseFromSlice(shape Shape, data []float64) *Dense {
	if len(data) != shape.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d != shape %v elements %d", len(data), shape, shape.NumElements()))
	}
	return &Dense{Shape: shape.Clone(), Data: data}
}

// At returns the element at the multi-index.
func (d *Dense) At(idx ...int) float64 { return d.Data[d.Shape.LinearIndex(idx)] }

// Set assigns the element at the multi-index. With RejectNonFinite set,
// NaN/±Inf values are quarantined (dropped and counted) instead of stored.
func (d *Dense) Set(v float64, idx ...int) {
	if d.RejectNonFinite && (math.IsNaN(v) || math.IsInf(v, 0)) {
		d.Rejected++
		return
	}
	d.Data[d.Shape.LinearIndex(idx)] = v
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Shape)
	copy(out.Data, d.Data)
	return out
}

// Norm returns the Frobenius norm.
func (d *Dense) Norm() float64 {
	var s float64
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns d - o element-wise. Shapes must match.
func (d *Dense) Sub(o *Dense) *Dense {
	if !d.Shape.Equal(o.Shape) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", d.Shape, o.Shape))
	}
	out := NewDense(d.Shape)
	for i, v := range d.Data {
		out.Data[i] = v - o.Data[i]
	}
	return out
}

// Add returns d + o element-wise. Shapes must match.
func (d *Dense) Add(o *Dense) *Dense {
	if !d.Shape.Equal(o.Shape) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", d.Shape, o.Shape))
	}
	out := NewDense(d.Shape)
	for i, v := range d.Data {
		out.Data[i] = v + o.Data[i]
	}
	return out
}

// Scale multiplies every element by s in place and returns d.
func (d *Dense) Scale(s float64) *Dense {
	for i := range d.Data {
		d.Data[i] *= s
	}
	return d
}

// Equal reports whether shapes match and all elements agree within tol.
func (d *Dense) Equal(o *Dense, tol float64) bool {
	if !d.Shape.Equal(o.Shape) {
		return false
	}
	for i, v := range d.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// NNZ returns the number of elements with magnitude above eps.
func (d *Dense) NNZ(eps float64) int {
	n := 0
	for _, v := range d.Data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// ToSparse converts to COO format, keeping elements with magnitude above
// eps.
func (d *Dense) ToSparse(eps float64) *Sparse {
	sp := NewSparse(d.Shape)
	idx := make([]int, d.Shape.Order())
	for lin, v := range d.Data {
		if math.Abs(v) <= eps {
			continue
		}
		d.Shape.MultiIndex(lin, idx)
		sp.Append(idx, v)
	}
	return sp
}
