package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/parallel"
)

// selectFixture builds a multi-strip sparse tensor plus a pseudo-random
// keep/scale pair (seeded — the mask itself must be identical across the
// worker sweeps).
func selectFixture(t *testing.T) (*Sparse, []bool, []float64) {
	t.Helper()
	s := seededSparse(Shape{14, 12, 10, 8}, 9000, 31)
	rng := rand.New(rand.NewSource(32))
	keep := make([]bool, s.NNZ())
	scaled := make([]float64, s.NNZ())
	for e := range keep {
		keep[e] = rng.Float64() < 0.4
		scaled[e] = s.Vals[e] * (1 + rng.Float64())
	}
	return s, keep, scaled
}

// serialSelect is the one-line specification SelectScaled must match.
func serialSelect(s *Sparse, keep []bool, scaled []float64) *Sparse {
	out := NewSparse(s.Shape)
	out.RejectNonFinite = s.RejectNonFinite
	out.Rejected = s.Rejected
	o := s.Order()
	for e := 0; e < s.NNZ(); e++ {
		if keep[e] {
			out.Idx = append(out.Idx, s.Idx[e*o:(e+1)*o]...)
			out.Vals = append(out.Vals, scaled[e])
		}
	}
	return out
}

func sparseEqualBits(a, b *Sparse) bool {
	if len(a.Idx) != len(b.Idx) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			return false
		}
	}
	for i := range a.Vals {
		if math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
			return false
		}
	}
	return true
}

func TestSelectScaledMatchesSerialFilterAcrossWorkers(t *testing.T) {
	s, keep, scaled := selectFixture(t)
	want := serialSelect(s, keep, scaled)
	for _, w := range stripTestWorkers {
		got, derived := s.SelectScaled(keep, scaled, w)
		if derived != 0 {
			t.Fatalf("workers=%d derived %d plans from a plan-less source", w, derived)
		}
		if !sparseEqualBits(want, got) {
			t.Fatalf("workers=%d SelectScaled differs from the serial filter", w)
		}
		if got.RejectNonFinite != s.RejectNonFinite || got.Rejected != s.Rejected {
			t.Fatalf("workers=%d quarantine state not inherited", w)
		}
	}
}

func TestSelectScaledBitStableUnderHighFanoutWorkers(t *testing.T) {
	// Raise the fan-out cap above GOMAXPROCS so real goroutines interleave
	// even on small CI machines (the faults job runs this under -race).
	prev := parallel.SetFanoutCap(8)
	defer parallel.SetFanoutCap(prev)
	s, keep, scaled := selectFixture(t)
	want, _ := s.SelectScaled(keep, scaled, 1)
	for _, w := range stripTestWorkers[1:] {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			got, _ := s.SelectScaled(keep, scaled, w)
			if !sparseEqualBits(want, got) {
				t.Fatalf("SelectScaled workers=%d differs under fanout cap 8", w)
			}
		})
	}
}

func TestSelectScaledQuarantineInherited(t *testing.T) {
	s := NewSparse(Shape{2, 2})
	s.RejectNonFinite = true
	s.Append([]int{0, 0}, 1)
	s.Append([]int{0, 1}, math.NaN()) // quarantined
	s.Append([]int{1, 1}, 2)
	if s.Rejected != 1 || s.NNZ() != 2 {
		t.Fatalf("fixture: rejected=%d nnz=%d", s.Rejected, s.NNZ())
	}
	out, _ := s.SelectScaled([]bool{true, false}, []float64{3, 0}, 1)
	if !out.RejectNonFinite || out.Rejected != 1 {
		t.Fatalf("quarantine state lost: RejectNonFinite=%v Rejected=%d", out.RejectNonFinite, out.Rejected)
	}
	// The empty-selection path must inherit too.
	none, _ := s.SelectScaled([]bool{false, false}, []float64{0, 0}, 1)
	if !none.RejectNonFinite || none.Rejected != 1 || none.NNZ() != 0 {
		t.Fatalf("empty selection: RejectNonFinite=%v Rejected=%d nnz=%d", none.RejectNonFinite, none.Rejected, none.NNZ())
	}
}

func TestSelectScaledDerivedPlanMatchesCompiled(t *testing.T) {
	s, keep, scaled := selectFixture(t)
	// Warm only modes 0 and 2: derivation must cover exactly the cached
	// modes and leave the rest to compile on demand.
	s.PlanMode(0, 1)
	s.PlanMode(2, 1)
	out, derived := s.SelectScaled(keep, scaled, 3)
	if derived != 2 {
		t.Fatalf("derived %d plans, want 2", derived)
	}
	if !out.HasPlanMode(0) || out.HasPlanMode(1) || !out.HasPlanMode(2) || out.HasPlanMode(3) {
		t.Fatalf("cached modes: %v %v %v %v, want plans exactly on modes 0 and 2",
			out.HasPlanMode(0), out.HasPlanMode(1), out.HasPlanMode(2), out.HasPlanMode(3))
	}
	// A fresh tensor with identical storage compiles the ground-truth
	// plans; every field of the derived plans must match bit for bit.
	fresh := NewSparse(out.Shape)
	fresh.Idx = append([]int(nil), out.Idx...)
	fresh.Vals = append([]float64(nil), out.Vals...)
	for _, n := range []int{0, 1, 2, 3} {
		got := out.PlanMode(n, 1)
		want := fresh.PlanMode(n, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %d plan differs from a fresh compile:\n got %+v\nwant %+v", n, got, want)
		}
	}
	// Kernels consuming the derived plans must agree with the fresh ones.
	for n := 0; n < out.Order(); n++ {
		if !matEqualBits(ModeGramWorkers(out, n, 2), ModeGramWorkers(fresh, n, 2)) {
			t.Fatalf("mode %d Gram differs between derived and compiled plans", n)
		}
	}
}

func TestAbsSumStripStableAcrossWorkers(t *testing.T) {
	prev := parallel.SetFanoutCap(8)
	defer parallel.SetFanoutCap(prev)
	s := seededSparse(Shape{24, 24, 24}, 13000, 33) // 3 strips at grain 4096
	want := s.AbsSum(1)
	for _, w := range stripTestWorkers[1:] {
		if got := s.AbsSum(w); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("AbsSum workers=%d = %v differs from workers=1 = %v", w, got, want)
		}
	}
	// Small inputs stay single-strip: exactly the undivided serial sum.
	small := seededSparse(Shape{6, 6, 6}, 100, 34)
	var serial float64
	for _, v := range small.Vals {
		serial += math.Abs(v)
	}
	if math.Float64bits(small.AbsSum(4)) != math.Float64bits(serial) {
		t.Fatalf("single-strip AbsSum differs from the serial loop")
	}
}
