package tensor

import (
	"sync"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Pooled Gram reduction scratch. Strip partials and fiber buffers recycle
// through sync.Pool so steady-state kernel calls allocate nothing beyond
// their output matrix regardless of the worker count (the allocs/op
// regression tests pin this down). Pool order is nondeterministic but
// irrelevant: every buffer is zeroed (or fully overwritten) before use.

// gramPool recycles sparse-Gram strip partials (rows² float64 each).
var gramPool sync.Pool

func gramPartialGet(size int) *[]float64 {
	p, _ := gramPool.Get().(*[]float64)
	if p == nil || cap(*p) < size {
		b := make([]float64, size)
		return &b
	}
	b := (*p)[:size]
	clear(b)
	*p = b
	return p
}

func gramPartialPut(p *[]float64) { gramPool.Put(p) }

// denseGramPartial is one dense-Gram strip's scratch: the partial Gram
// accumulator plus the fiber load buffer.
type denseGramPartial struct {
	gram  []float64
	fiber []float64
}

// denseGramPool recycles dense-Gram strip scratch.
var denseGramPool sync.Pool

func denseGramPartialGet(rows int) *denseGramPartial {
	p, _ := denseGramPool.Get().(*denseGramPartial)
	if p == nil || cap(p.gram) < rows*rows || cap(p.fiber) < rows {
		return &denseGramPartial{gram: make([]float64, rows*rows), fiber: make([]float64, rows)}
	}
	p.gram = p.gram[:rows*rows]
	clear(p.gram)
	p.fiber = p.fiber[:rows]
	return p
}

func denseGramPartialPut(p *denseGramPartial) { denseGramPool.Put(p) }

// Matricize returns the mode-n matricization X(n) of a dense tensor as an
// I_n × Π_{k≠n} I_k matrix. It runs on the package-default worker pool;
// see MatricizeWorkers.
func Matricize(d *Dense, n int) *mat.Matrix { return MatricizeWorkers(d, n, 0) }

// MatricizeWorkers is Matricize on an explicit worker count. Each linear
// index maps to a unique (row, column) output cell, so partitioning the
// element range across workers is write-disjoint and bit-identical to the
// serial loop for any worker count.
func MatricizeWorkers(d *Dense, n, workers int) *mat.Matrix {
	shape := d.Shape
	rows := shape[n]
	cols := shape.MatricizeCols(n)
	out := mat.New(rows, cols)
	parallel.ForGrain(len(d.Data), workers, parallel.AutoGrain(4*float64(shape.Order())), func(lo, hi int) {
		idx := make([]int, shape.Order())
		for lin := lo; lin < hi; lin++ {
			v := d.Data[lin]
			if v == 0 {
				continue
			}
			shape.MultiIndex(lin, idx)
			out.Set(idx[n], shape.MatricizeColumn(n, idx), v)
		}
	})
	return out
}

// Fold inverts Matricize: it reshapes an I_n × Π_{k≠n} I_k matrix back into
// a dense tensor with the given shape. Columns are enumerated with an
// odometer over the non-n modes (little-endian, first non-n mode fastest),
// maintaining the output linear base incrementally — no per-column div/mod
// chain and no per-element LinearIndex call.
func Fold(m *mat.Matrix, n int, shape Shape) *Dense {
	if m.Rows != shape[n] || m.Cols != shape.MatricizeCols(n) {
		panic("tensor: Fold dimensions do not match shape")
	}
	out := NewDense(shape)
	order := shape.Order()
	strides := shape.Strides()
	strideN := strides[n]
	// Non-n modes in matricization order (first varies fastest), with
	// their output strides.
	modes := make([]int, 0, order-1)
	for k := 0; k < order; k++ {
		if k != n {
			modes = append(modes, k)
		}
	}
	counters := make([]int, len(modes))
	base := 0
	for col := 0; col < m.Cols; col++ {
		for r := 0; r < m.Rows; r++ {
			out.Data[base+r*strideN] = m.At(r, col)
		}
		// Advance the odometer and the linear base together.
		for p := 0; p < len(modes); p++ {
			k := modes[p]
			counters[p]++
			base += strides[k]
			if counters[p] < shape[k] {
				break
			}
			base -= counters[p] * strides[k]
			counters[p] = 0
		}
	}
	return out
}

// ModeGram computes G = X(n) · X(n)ᵀ (an I_n × I_n matrix) directly from
// sparse coordinates, without materialising the matricization whose column
// count is the product of all other mode sizes. It runs on the
// package-default worker pool; see ModeGramWorkers.
func ModeGram(s *Sparse, n int) *mat.Matrix { return ModeGramWorkers(s, n, 0) }

// ModeGramWorkers is ModeGram on an explicit worker count.
//
// The column layout comes from the tensor's compiled mode plan (see
// ModePlan): entries sorted by matricization column with stable storage
// order inside each group, built once per (tensor, mode) and reused by
// every subsequent kernel call — one HOSVD no longer pays one O(nnz log
// nnz) sort per mode per call, and HOOI sweeps pay none at all.
//
// Parallelism: workers claim contiguous runs of the plan's reduction
// strips (entry-balanced group ranges, see ModePlan.Strips), accumulate
// each strip's outer products into a private pooled I_n×I_n partial, and
// the partials combine through parallel.ReduceStrips' fixed pairwise
// tree. Total work is O(nnz·group) regardless of the worker count — the
// previous output-row partition made every worker rescan ALL entries and
// keep only its rows, multiplying total work by the worker count and
// scaling backwards (BENCH_2.json).
//
// Determinism: the strip grid and merge tree depend only on the plan, so
// results are bit-identical for any worker count. Single-strip plans
// (nnz < 2×gramStripGrain) take the undivided serial path, which is
// bit-identical to the pre-strip implementation; multi-strip results
// differ from the old serial order only by the grid's fixed
// reassociation (tolerance-level), and never vary run to run.
func ModeGramWorkers(s *Sparse, n, workers int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	if s.NNZ() == 0 {
		return g
	}
	p := s.PlanMode(n, workers)
	bounds, prow, pval := p.Bounds, p.Rows, p.Vals
	if p.NumStrips() <= 1 {
		gramAccumulate(g.Data, rows, bounds, prow, pval, 0, p.NumGroups())
		return g
	}
	out := parallel.ReduceStrips(p.Strips, workers,
		func(int) *[]float64 { return gramPartialGet(rows * rows) },
		func(partial *[]float64, _, g0, g1 int) {
			gramAccumulate(*partial, rows, bounds, prow, pval, g0, g1)
		},
		func(into, from *[]float64) *[]float64 {
			a, b := *into, *from
			for i, v := range b {
				a[i] += v
			}
			return into
		},
		gramPartialPut,
	)
	copy(g.Data, *out)
	gramPartialPut(out)
	return g
}

// gramAccumulate folds column groups [g0, g1) of a mode plan into the
// rows×rows Gram accumulator gm: groups ascending, entries in plan
// (storage) order — the serial floating-point order within a strip.
func gramAccumulate(gm []float64, rows int, bounds, prow []int, pval []float64, g0, g1 int) {
	for gi := g0; gi < g1; gi++ {
		start, end := bounds[gi], bounds[gi+1]
		for a := start; a < end; a++ {
			row := gm[prow[a]*rows:][:rows]
			va := pval[a]
			for b := start; b < end; b++ {
				row[prow[b]] += va * pval[b]
			}
		}
	}
}

// ModeGramDense computes X(n)·X(n)ᵀ for a dense tensor without allocating
// the matricization; useful when the unfolding's column count is large.
// It runs on the package-default worker pool; see ModeGramDenseWorkers.
func ModeGramDense(d *Dense, n int) *mat.Matrix { return ModeGramDenseWorkers(d, n, 0) }

// ModeGramDenseWorkers is ModeGramDense on an explicit worker count.
//
// Fibers are enumerated by stride walking: a mode-n fiber base is
// base(f) = (f/inner)·inner·I_n + f%inner with inner = Π_{k>n} I_k, so the
// enumeration needs no MultiIndex decode and visits no non-base element.
// The all-zero-fiber scan is hoisted out of the per-worker loop: one
// shared pass marks nonzero fibers (write-disjoint) and the base list is
// assembled once in ascending order.
//
// The accumulation strips the BASE LIST: workers claim contiguous strip
// runs (parallel.UniformStripBounds over the bases, a pure function of
// the input), fold each strip's fibers — loaded once into pooled scratch
// — into a private pooled I_n×I_n partial, and the partials combine
// through parallel.ReduceStrips' fixed pairwise tree. The previous
// output-row partition made every worker reload EVERY fiber and keep its
// row slab, duplicating the fiber loads per worker (ns/op and allocs/op
// both grew with the worker count in BENCH_2.json); now each fiber is
// loaded exactly once regardless of workers, and all scratch is pooled.
//
// Determinism: the strip grid and merge tree depend only on the input,
// so results are bit-identical for any worker count. Single-strip inputs
// (fewer than 2×denseGramStripGrain nonzero fibers) take the undivided
// serial path, bit-identical to the pre-strip implementation.
func ModeGramDenseWorkers(d *Dense, n, workers int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	shape := d.Shape
	total := shape.NumElements()
	if total == 0 || rows == 0 {
		return g
	}
	inner := 1
	for k := n + 1; k < shape.Order(); k++ {
		inner *= shape[k]
	}
	numFibers := total / rows

	// Hoisted phase: mark nonzero fibers once (disjoint writes).
	nzMark := make([]bool, numFibers)
	parallel.ForGrain(numFibers, workers, parallel.AutoGrain(float64(rows)), func(lo, hi int) {
		q, r := lo/inner, lo%inner
		base := q*inner*rows + r
		for f := lo; f < hi; f++ {
			zero := true
			for i := 0; i < rows; i++ {
				if d.Data[base+i*inner] != 0 {
					zero = false
					break
				}
			}
			nzMark[f] = !zero
			r++
			base++
			if r == inner {
				r = 0
				base += inner * (rows - 1)
			}
		}
	})
	bases := make([]int, 0, numFibers)
	{
		base, r := 0, 0
		for f := 0; f < numFibers; f++ {
			if nzMark[f] {
				bases = append(bases, base)
			}
			r++
			base++
			if r == inner {
				r = 0
				base += inner * (rows - 1)
			}
		}
	}
	if len(bases) == 0 {
		return g
	}

	// Accumulation phase: strip the nonzero-fiber list, one private
	// partial per strip, fixed-tree merge.
	strips := parallel.UniformStripBounds(len(bases), denseGramStripGrain, gramMaxStripsEff())
	if len(strips) <= 2 {
		p := denseGramPartialGet(rows)
		denseGramAccumulate(g.Data, d.Data, bases, p.fiber, inner, rows, 0, len(bases))
		denseGramPartialPut(p)
		return g
	}
	out := parallel.ReduceStrips(strips, workers,
		func(int) *denseGramPartial { return denseGramPartialGet(rows) },
		func(p *denseGramPartial, _, s0, s1 int) {
			denseGramAccumulate(p.gram, d.Data, bases, p.fiber, inner, rows, s0, s1)
		},
		func(into, from *denseGramPartial) *denseGramPartial {
			for i, v := range from.gram {
				into.gram[i] += v
			}
			return into
		},
		denseGramPartialPut,
	)
	copy(g.Data, out.gram)
	denseGramPartialPut(out)
	return g
}

// denseGramStripGrain is the minimum nonzero fibers per reduction strip
// of ModeGramDenseWorkers. A package constant (not AutoGrain): the strip
// grid feeds a floating-point merge tree and must be a pure function of
// the input.
const denseGramStripGrain = 256

// denseGramAccumulate folds fibers bases[s0:s1] into the rows×rows Gram
// accumulator gm, loading each fiber once into the scratch slice: bases
// ascending, rows ascending — the serial floating-point order within a
// strip. Zero fiber elements are skipped exactly as the serial kernel
// skips them, preserving signed-zero behaviour.
func denseGramAccumulate(gm, data []float64, bases []int, fiber []float64, inner, rows, s0, s1 int) {
	for _, base := range bases[s0:s1] {
		for i := 0; i < rows; i++ {
			fiber[i] = data[base+i*inner]
		}
		for a := 0; a < rows; a++ {
			va := fiber[a]
			if va == 0 {
				continue
			}
			row := gm[a*rows:][:rows]
			for b := 0; b < rows; b++ {
				row[b] += va * fiber[b]
			}
		}
	}
}

// LeadingModeVectors returns the r leading left singular vectors of the
// mode-n matricization of the sparse tensor, as an I_n × r matrix, via the
// Gram eigendecomposition route.
func LeadingModeVectors(s *Sparse, n, r int) *mat.Matrix {
	return LeadingModeVectorsWorkers(s, n, r, 0)
}

// LeadingModeVectorsWorkers is LeadingModeVectors on an explicit worker
// count (the Gram accumulation parallelises; the small I_n × I_n
// eigendecomposition stays serial).
func LeadingModeVectorsWorkers(s *Sparse, n, r, workers int) *mat.Matrix {
	return mat.LeadingEigenvectors(ModeGramWorkers(s, n, workers), r)
}
