package tensor

import (
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Matricize returns the mode-n matricization X(n) of a dense tensor as an
// I_n × Π_{k≠n} I_k matrix. It runs on the package-default worker pool;
// see MatricizeWorkers.
func Matricize(d *Dense, n int) *mat.Matrix { return MatricizeWorkers(d, n, 0) }

// MatricizeWorkers is Matricize on an explicit worker count. Each linear
// index maps to a unique (row, column) output cell, so partitioning the
// element range across workers is write-disjoint and bit-identical to the
// serial loop for any worker count.
func MatricizeWorkers(d *Dense, n, workers int) *mat.Matrix {
	shape := d.Shape
	rows := shape[n]
	cols := shape.MatricizeCols(n)
	out := mat.New(rows, cols)
	parallel.ForGrain(len(d.Data), workers, 4096, func(lo, hi int) {
		idx := make([]int, shape.Order())
		for lin := lo; lin < hi; lin++ {
			v := d.Data[lin]
			if v == 0 {
				continue
			}
			shape.MultiIndex(lin, idx)
			out.Set(idx[n], shape.MatricizeColumn(n, idx), v)
		}
	})
	return out
}

// Fold inverts Matricize: it reshapes an I_n × Π_{k≠n} I_k matrix back into
// a dense tensor with the given shape.
func Fold(m *mat.Matrix, n int, shape Shape) *Dense {
	if m.Rows != shape[n] || m.Cols != shape.MatricizeCols(n) {
		panic("tensor: Fold dimensions do not match shape")
	}
	out := NewDense(shape)
	order := shape.Order()
	idx := make([]int, order)
	// Enumerate columns by iterating the non-n modes in the matricization's
	// little-endian order (first non-n mode varies fastest).
	modes := make([]int, 0, order-1)
	for k := 0; k < order; k++ {
		if k != n {
			modes = append(modes, k)
		}
	}
	for col := 0; col < m.Cols; col++ {
		c := col
		for _, k := range modes {
			idx[k] = c % shape[k]
			c /= shape[k]
		}
		for r := 0; r < m.Rows; r++ {
			idx[n] = r
			out.Data[shape.LinearIndex(idx)] = m.At(r, col)
		}
	}
	return out
}

// ModeGram computes G = X(n) · X(n)ᵀ (an I_n × I_n matrix) directly from
// sparse coordinates, without materialising the matricization whose column
// count is the product of all other mode sizes. It runs on the
// package-default worker pool; see ModeGramWorkers.
func ModeGram(s *Sparse, n int) *mat.Matrix { return ModeGramWorkers(s, n, 0) }

// gramTriple is one sparse entry keyed by its matricization column.
type gramTriple struct {
	col int
	row int
	val float64
}

// ModeGramWorkers is ModeGram on an explicit worker count.
//
// Entries are bucketed by matricization column; within one column the
// contribution to G is the outer product of the column's sparse rows. This
// is the workhorse behind sparse HOSVD: left singular vectors of X(n) are
// the leading eigenvectors of G.
//
// Determinism: the column bucketing uses a STABLE sort, so entries within
// a column group keep their storage order (an index-ordered walk rather
// than a comparison-sort-dependent one), and the accumulation is
// partitioned by OUTPUT Gram row — each worker scans the column groups in
// ascending order and accumulates only the rows it owns, reproducing the
// serial floating-point order exactly. Results are bit-identical for any
// worker count.
func ModeGramWorkers(s *Sparse, n, workers int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	nnz := s.NNZ()
	if nnz == 0 {
		return g
	}
	o := s.Order()

	// Collect (column, row, value) triples in storage order (parallel:
	// disjoint assignment per entry range).
	ts := make([]gramTriple, nnz)
	parallel.ForGrain(nnz, workers, 1024, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			idx := s.Idx[e*o : (e+1)*o]
			ts[e] = gramTriple{col: s.Shape.MatricizeColumn(n, idx), row: idx[n], val: s.Vals[e]}
		}
	})
	sort.SliceStable(ts, func(a, b int) bool { return ts[a].col < ts[b].col })

	// Column-group boundaries: bounds[i] .. bounds[i+1] is one group.
	bounds := make([]int, 0, 64)
	for start := 0; start < nnz; {
		bounds = append(bounds, start)
		end := start + 1
		for end < nnz && ts[end].col == ts[start].col {
			end++
		}
		start = end
	}
	bounds = append(bounds, nnz)

	// Accumulate the symmetric outer products, partitioned by Gram row.
	parallel.For(rows, workers, func(r0, r1 int) {
		for gi := 0; gi+1 < len(bounds); gi++ {
			start, end := bounds[gi], bounds[gi+1]
			for a := start; a < end; a++ {
				ra := ts[a].row
				if ra < r0 || ra >= r1 {
					continue
				}
				ga := g.Row(ra)
				va := ts[a].val
				for b := start; b < end; b++ {
					ga[ts[b].row] += va * ts[b].val
				}
			}
		}
	})
	return g
}

// ModeGramDense computes X(n)·X(n)ᵀ for a dense tensor without allocating
// the matricization; useful when the unfolding's column count is large.
// It runs on the package-default worker pool; see ModeGramDenseWorkers.
func ModeGramDense(d *Dense, n int) *mat.Matrix { return ModeGramDenseWorkers(d, n, 0) }

// ModeGramDenseWorkers is ModeGramDense on an explicit worker count. The
// accumulation is partitioned by OUTPUT Gram row: every worker walks the
// fibers in linear order with a private fiber buffer and accumulates only
// the rows it owns, reproducing the serial floating-point order exactly —
// bit-identical results for any worker count.
func ModeGramDenseWorkers(d *Dense, n, workers int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	shape := d.Shape
	strides := shape.Strides()
	stride := strides[n]
	total := shape.NumElements()
	// Iterate over all "columns" (fixed values of the other modes): for each
	// we have a length-I_n fiber spaced by stride.
	parallel.For(rows, workers, func(r0, r1 int) {
		fiber := make([]float64, rows)
		idx := make([]int, shape.Order())
		for lin := 0; lin < total; lin++ {
			shape.MultiIndex(lin, idx)
			if idx[n] != 0 {
				continue // visit each fiber once, at its idx[n]==0 element
			}
			base := lin
			zero := true
			for r := 0; r < rows; r++ {
				fiber[r] = d.Data[base+r*stride]
				if fiber[r] != 0 {
					zero = false
				}
			}
			if zero {
				continue
			}
			for a := r0; a < r1; a++ {
				if fiber[a] == 0 {
					continue
				}
				ga := g.Row(a)
				va := fiber[a]
				for b := 0; b < rows; b++ {
					ga[b] += va * fiber[b]
				}
			}
		}
	})
	return g
}

// LeadingModeVectors returns the r leading left singular vectors of the
// mode-n matricization of the sparse tensor, as an I_n × r matrix, via the
// Gram eigendecomposition route.
func LeadingModeVectors(s *Sparse, n, r int) *mat.Matrix {
	return LeadingModeVectorsWorkers(s, n, r, 0)
}

// LeadingModeVectorsWorkers is LeadingModeVectors on an explicit worker
// count (the Gram accumulation parallelises; the small I_n × I_n
// eigendecomposition stays serial).
func LeadingModeVectorsWorkers(s *Sparse, n, r, workers int) *mat.Matrix {
	return mat.LeadingEigenvectors(ModeGramWorkers(s, n, workers), r)
}
