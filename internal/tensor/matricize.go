package tensor

import (
	"sort"

	"repro/internal/mat"
)

// Matricize returns the mode-n matricization X(n) of a dense tensor as an
// I_n × Π_{k≠n} I_k matrix.
func Matricize(d *Dense, n int) *mat.Matrix {
	shape := d.Shape
	rows := shape[n]
	cols := shape.MatricizeCols(n)
	out := mat.New(rows, cols)
	idx := make([]int, shape.Order())
	for lin, v := range d.Data {
		if v == 0 {
			continue
		}
		shape.MultiIndex(lin, idx)
		out.Set(idx[n], shape.MatricizeColumn(n, idx), v)
	}
	return out
}

// Fold inverts Matricize: it reshapes an I_n × Π_{k≠n} I_k matrix back into
// a dense tensor with the given shape.
func Fold(m *mat.Matrix, n int, shape Shape) *Dense {
	if m.Rows != shape[n] || m.Cols != shape.MatricizeCols(n) {
		panic("tensor: Fold dimensions do not match shape")
	}
	out := NewDense(shape)
	order := shape.Order()
	idx := make([]int, order)
	// Enumerate columns by iterating the non-n modes in the matricization's
	// little-endian order (first non-n mode varies fastest).
	modes := make([]int, 0, order-1)
	for k := 0; k < order; k++ {
		if k != n {
			modes = append(modes, k)
		}
	}
	for col := 0; col < m.Cols; col++ {
		c := col
		for _, k := range modes {
			idx[k] = c % shape[k]
			c /= shape[k]
		}
		for r := 0; r < m.Rows; r++ {
			idx[n] = r
			out.Data[shape.LinearIndex(idx)] = m.At(r, col)
		}
	}
	return out
}

// ModeGram computes G = X(n) · X(n)ᵀ (an I_n × I_n matrix) directly from
// sparse coordinates, without materialising the matricization whose column
// count is the product of all other mode sizes.
//
// Entries are bucketed by matricization column; within one column the
// contribution to G is the outer product of the column's sparse rows. This
// is the workhorse behind sparse HOSVD: left singular vectors of X(n) are
// the leading eigenvectors of G.
func ModeGram(s *Sparse, n int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	nnz := s.NNZ()
	if nnz == 0 {
		return g
	}
	o := s.Order()

	// Collect (column, row, value) triples and sort by column.
	type triple struct {
		col int
		row int
		val float64
	}
	ts := make([]triple, nnz)
	for e := 0; e < nnz; e++ {
		idx := s.Idx[e*o : (e+1)*o]
		ts[e] = triple{col: s.Shape.MatricizeColumn(n, idx), row: idx[n], val: s.Vals[e]}
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a].col < ts[b].col })

	// For each column group, accumulate the symmetric outer product.
	for start := 0; start < nnz; {
		end := start + 1
		for end < nnz && ts[end].col == ts[start].col {
			end++
		}
		for a := start; a < end; a++ {
			ga := g.Row(ts[a].row)
			va := ts[a].val
			for b := start; b < end; b++ {
				ga[ts[b].row] += va * ts[b].val
			}
		}
		start = end
	}
	return g
}

// ModeGramDense computes X(n)·X(n)ᵀ for a dense tensor without allocating
// the matricization; useful when the unfolding's column count is large.
func ModeGramDense(d *Dense, n int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	shape := d.Shape
	strides := shape.Strides()
	stride := strides[n]
	// Iterate over all "columns" (fixed values of the other modes): for each
	// we have a length-I_n fiber spaced by stride.
	total := shape.NumElements()
	fiber := make([]float64, rows)
	idx := make([]int, shape.Order())
	for lin := 0; lin < total; lin++ {
		shape.MultiIndex(lin, idx)
		if idx[n] != 0 {
			continue // visit each fiber once, at its idx[n]==0 element
		}
		base := lin
		zero := true
		for r := 0; r < rows; r++ {
			fiber[r] = d.Data[base+r*stride]
			if fiber[r] != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		for a := 0; a < rows; a++ {
			if fiber[a] == 0 {
				continue
			}
			ga := g.Row(a)
			va := fiber[a]
			for b := 0; b < rows; b++ {
				ga[b] += va * fiber[b]
			}
		}
	}
	return g
}

// LeadingModeVectors returns the r leading left singular vectors of the
// mode-n matricization of the sparse tensor, as an I_n × r matrix, via the
// Gram eigendecomposition route.
func LeadingModeVectors(s *Sparse, n, r int) *mat.Matrix {
	return mat.LeadingEigenvectors(ModeGram(s, n), r)
}
