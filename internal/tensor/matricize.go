package tensor

import (
	"repro/internal/mat"
	"repro/internal/parallel"
)

// Matricize returns the mode-n matricization X(n) of a dense tensor as an
// I_n × Π_{k≠n} I_k matrix. It runs on the package-default worker pool;
// see MatricizeWorkers.
func Matricize(d *Dense, n int) *mat.Matrix { return MatricizeWorkers(d, n, 0) }

// MatricizeWorkers is Matricize on an explicit worker count. Each linear
// index maps to a unique (row, column) output cell, so partitioning the
// element range across workers is write-disjoint and bit-identical to the
// serial loop for any worker count.
func MatricizeWorkers(d *Dense, n, workers int) *mat.Matrix {
	shape := d.Shape
	rows := shape[n]
	cols := shape.MatricizeCols(n)
	out := mat.New(rows, cols)
	parallel.ForGrain(len(d.Data), workers, 4096, func(lo, hi int) {
		idx := make([]int, shape.Order())
		for lin := lo; lin < hi; lin++ {
			v := d.Data[lin]
			if v == 0 {
				continue
			}
			shape.MultiIndex(lin, idx)
			out.Set(idx[n], shape.MatricizeColumn(n, idx), v)
		}
	})
	return out
}

// Fold inverts Matricize: it reshapes an I_n × Π_{k≠n} I_k matrix back into
// a dense tensor with the given shape. Columns are enumerated with an
// odometer over the non-n modes (little-endian, first non-n mode fastest),
// maintaining the output linear base incrementally — no per-column div/mod
// chain and no per-element LinearIndex call.
func Fold(m *mat.Matrix, n int, shape Shape) *Dense {
	if m.Rows != shape[n] || m.Cols != shape.MatricizeCols(n) {
		panic("tensor: Fold dimensions do not match shape")
	}
	out := NewDense(shape)
	order := shape.Order()
	strides := shape.Strides()
	strideN := strides[n]
	// Non-n modes in matricization order (first varies fastest), with
	// their output strides.
	modes := make([]int, 0, order-1)
	for k := 0; k < order; k++ {
		if k != n {
			modes = append(modes, k)
		}
	}
	counters := make([]int, len(modes))
	base := 0
	for col := 0; col < m.Cols; col++ {
		for r := 0; r < m.Rows; r++ {
			out.Data[base+r*strideN] = m.At(r, col)
		}
		// Advance the odometer and the linear base together.
		for p := 0; p < len(modes); p++ {
			k := modes[p]
			counters[p]++
			base += strides[k]
			if counters[p] < shape[k] {
				break
			}
			base -= counters[p] * strides[k]
			counters[p] = 0
		}
	}
	return out
}

// ModeGram computes G = X(n) · X(n)ᵀ (an I_n × I_n matrix) directly from
// sparse coordinates, without materialising the matricization whose column
// count is the product of all other mode sizes. It runs on the
// package-default worker pool; see ModeGramWorkers.
func ModeGram(s *Sparse, n int) *mat.Matrix { return ModeGramWorkers(s, n, 0) }

// ModeGramWorkers is ModeGram on an explicit worker count.
//
// The column layout comes from the tensor's compiled mode plan (see
// ModePlan): entries sorted by matricization column with stable storage
// order inside each group, built once per (tensor, mode) and reused by
// every subsequent kernel call — one HOSVD no longer pays one O(nnz log
// nnz) sort per mode per call, and HOOI sweeps pay none at all.
//
// Determinism: within one column group the contribution to G is the outer
// product of the group's sparse rows; the accumulation is partitioned by
// OUTPUT Gram row — each worker scans the column groups in ascending order
// and accumulates only the rows it owns, reproducing the serial
// floating-point order exactly. Results are bit-identical for any worker
// count (and to the pre-plan implementation).
func ModeGramWorkers(s *Sparse, n, workers int) *mat.Matrix {
	rows := s.Shape[n]
	g := mat.New(rows, rows)
	if s.NNZ() == 0 {
		return g
	}
	p := s.PlanMode(n, workers)
	bounds, prow, pval := p.Bounds, p.Rows, p.Vals
	parallel.For(rows, workers, func(r0, r1 int) {
		for gi := 0; gi+1 < len(bounds); gi++ {
			start, end := bounds[gi], bounds[gi+1]
			for a := start; a < end; a++ {
				ra := prow[a]
				if ra < r0 || ra >= r1 {
					continue
				}
				ga := g.Row(ra)
				va := pval[a]
				for b := start; b < end; b++ {
					ga[prow[b]] += va * pval[b]
				}
			}
		}
	})
	return g
}

// ModeGramDense computes X(n)·X(n)ᵀ for a dense tensor without allocating
// the matricization; useful when the unfolding's column count is large.
// It runs on the package-default worker pool; see ModeGramDenseWorkers.
func ModeGramDense(d *Dense, n int) *mat.Matrix { return ModeGramDenseWorkers(d, n, 0) }

// ModeGramDenseWorkers is ModeGramDense on an explicit worker count.
//
// Fibers are enumerated by stride walking: a mode-n fiber base is
// base(f) = (f/inner)·inner·I_n + f%inner with inner = Π_{k>n} I_k, so the
// enumeration needs no MultiIndex decode and visits no non-base element.
// The all-zero-fiber scan is hoisted out of the per-worker loop: one
// shared pass marks nonzero fibers (write-disjoint), the base list is
// assembled once in ascending order, and each worker then accumulates only
// its slab of OUTPUT Gram rows over that shared list — the per-worker cost
// drops from O(total) decodes to O(#nonzero-fibers · I_n) reads.
//
// Per-cell accumulation visits nonzero fibers in ascending base order,
// exactly the serial (and pre-stride-walk) floating-point order — results
// are bit-identical for any worker count.
func ModeGramDenseWorkers(d *Dense, n, workers int) *mat.Matrix {
	rows := d.Shape[n]
	g := mat.New(rows, rows)
	shape := d.Shape
	total := shape.NumElements()
	if total == 0 || rows == 0 {
		return g
	}
	inner := 1
	for k := n + 1; k < shape.Order(); k++ {
		inner *= shape[k]
	}
	numFibers := total / rows

	// Hoisted phase: mark nonzero fibers once (disjoint writes).
	nzMark := make([]bool, numFibers)
	parallel.ForGrain(numFibers, workers, 256, func(lo, hi int) {
		q, r := lo/inner, lo%inner
		base := q*inner*rows + r
		for f := lo; f < hi; f++ {
			zero := true
			for i := 0; i < rows; i++ {
				if d.Data[base+i*inner] != 0 {
					zero = false
					break
				}
			}
			nzMark[f] = !zero
			r++
			base++
			if r == inner {
				r = 0
				base += inner * (rows - 1)
			}
		}
	})
	bases := make([]int, 0, numFibers)
	{
		base, r := 0, 0
		for f := 0; f < numFibers; f++ {
			if nzMark[f] {
				bases = append(bases, base)
			}
			r++
			base++
			if r == inner {
				r = 0
				base += inner * (rows - 1)
			}
		}
	}
	if len(bases) == 0 {
		return g
	}

	// Accumulation phase: partition by output Gram row over the shared
	// nonzero-fiber list.
	parallel.For(rows, workers, func(r0, r1 int) {
		fiber := make([]float64, rows)
		for _, base := range bases {
			for i := 0; i < rows; i++ {
				fiber[i] = d.Data[base+i*inner]
			}
			for a := r0; a < r1; a++ {
				if fiber[a] == 0 {
					continue
				}
				ga := g.Row(a)
				va := fiber[a]
				for b := 0; b < rows; b++ {
					ga[b] += va * fiber[b]
				}
			}
		}
	})
	return g
}

// LeadingModeVectors returns the r leading left singular vectors of the
// mode-n matricization of the sparse tensor, as an I_n × r matrix, via the
// Gram eigendecomposition route.
func LeadingModeVectors(s *Sparse, n, r int) *mat.Matrix {
	return LeadingModeVectorsWorkers(s, n, r, 0)
}

// LeadingModeVectorsWorkers is LeadingModeVectors on an explicit worker
// count (the Gram accumulation parallelises; the small I_n × I_n
// eigendecomposition stays serial).
func LeadingModeVectorsWorkers(s *Sparse, n, r, workers int) *mat.Matrix {
	return mat.LeadingEigenvectors(ModeGramWorkers(s, n, workers), r)
}
