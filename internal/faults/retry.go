package faults

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// Transient marks an error as retryable: the failure is expected to clear
// on a re-run (flaky solver licence, lost worker, injected fault). The
// retry policy retries only transient errors and per-attempt timeouts;
// everything else is fatal for the run.
type Transient struct{ Err error }

// Error implements error.
func (t *Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the wrapped cause.
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether any error in err's chain is *Transient.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// PanicError records a captured simulation panic: a crashed run converted
// into an error value instead of a dead process. Panics are fatal — they
// indicate a programming error or corrupted state, not a flaky dependency —
// so the retry policy never retries them.
type PanicError struct {
	Val   any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("simulation panicked: %v", p.Val) }

// RetryPolicy bounds how hard the runtime tries to complete one simulation
// run: at most MaxAttempts attempts, exponential backoff with seeded
// jitter between them, and an optional per-attempt timeout. The zero value
// normalizes to sensible defaults (3 attempts, 2ms base backoff, 250ms
// cap, ±25% jitter, no per-attempt timeout).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per run (default 3;
	// set 1 to disable retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 250ms).
	MaxBackoff time.Duration
	// JitterFrac spreads each backoff by ±this fraction, deterministically
	// from the run key, so retry storms de-synchronise without making
	// campaigns irreproducible (default 0.25).
	JitterFrac float64
	// AttemptTimeout bounds each attempt with a context deadline
	// (0 = none). A timed-out attempt counts as transient.
	AttemptTimeout time.Duration
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.25
	}
	return p
}

// Run executes fn under the policy and returns the number of attempts made
// and the final error (nil on success).
//
//   - Panics inside fn are captured into *PanicError and returned
//     immediately (fatal, never retried).
//   - *Transient errors — and per-attempt deadline expiries while the
//     parent context is still live — are retried with exponential backoff
//     until MaxAttempts is exhausted.
//   - Parent-context cancellation aborts immediately, including during a
//     backoff sleep, returning the context's error.
//
// key seeds the backoff jitter; pass the simulation's deterministic
// identity (faults.SimKey) so resumed campaigns sleep identically.
func (p RetryPolicy) Run(ctx context.Context, key uint64, fn func(ctx context.Context) error) (int, error) {
	p = p.normalize()
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return attempt - 1, cerr
		}
		err := p.attempt(ctx, fn)
		if err == nil {
			return attempt, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return attempt, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return attempt, cerr
		}
		retryable := IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
		if !retryable || attempt >= p.MaxAttempts {
			return attempt, err
		}
		timer := time.NewTimer(p.backoff(key, attempt))
		select {
		case <-ctx.Done():
			timer.Stop()
			return attempt, ctx.Err()
		case <-timer.C:
		}
	}
}

// attempt runs fn once with the per-attempt deadline and panic capture.
func (p RetryPolicy) attempt(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	actx := ctx
	if p.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			err = &PanicError{Val: r, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	return fn(actx)
}

// Backoff returns the delay the policy sleeps before retry attempt+1 of
// the run identified by key. It is a pure function of (policy, key,
// attempt) — no process-local state, no clock — so independent processes
// (a coordinator re-leasing a dead worker's shard, a resumed campaign)
// compute bit-identical schedules. The zero policy normalizes to the
// documented defaults first, exactly as Run does.
func (p RetryPolicy) Backoff(key uint64, attempt int) time.Duration {
	return p.normalize().backoff(key, attempt)
}

// backoff computes the sleep before retry `attempt+1`: exponential from
// BaseBackoff, capped at MaxBackoff, spread by ±JitterFrac using a
// deterministic draw from (key, attempt).
func (p RetryPolicy) backoff(key uint64, attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	u := unit(key, 0x6261636b6f666600+uint64(attempt)) // "backoff"
	factor := 1 + p.JitterFrac*(2*u-1)
	return time.Duration(float64(d) * factor)
}
