package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/dynsys"
)

// stubSys is a trivial deterministic System for injection tests.
type stubSys struct{}

func (stubSys) Name() string { return "stub" }
func (stubSys) Params() []dynsys.Param {
	return []dynsys.Param{{Name: "a", Min: 0, Max: 1}, {Name: "b", Min: 0, Max: 1}}
}
func (stubSys) StateDim() int { return 1 }
func (stubSys) Trajectory(vals []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{vals[0] + float64(i)*vals[1]}
	}
	return out
}

// grid returns nSims distinct parameter-value pairs.
func grid(nSims int) [][]float64 {
	out := make([][]float64, nSims)
	for i := range out {
		out[i] = []float64{float64(i) / float64(nSims), float64(i%7) / 7}
	}
	return out
}

// runToCompletion drives one simulation through the injector until success
// or maxAttempts, returning (succeeded, sawTransient, divergent).
func runToCompletion(t *testing.T, sys dynsys.System, vals []float64, maxAttempts int) (bool, bool, bool) {
	t.Helper()
	sawTransient := false
	for a := 0; a < maxAttempts; a++ {
		traj, err := dynsys.TrajectoryCtx(context.Background(), sys, vals, 4)
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("unexpected non-transient error: %v", err)
			}
			sawTransient = true
			continue
		}
		return true, sawTransient, math.IsNaN(traj[0][0])
	}
	return false, sawTransient, false
}

func TestInjectionDeterministicAcrossInjectorsAndOrder(t *testing.T) {
	cfg := Config{Seed: 42, TransientRate: 0.3, DivergentRate: 0.2}
	sims := grid(200)

	type outcome struct{ transient, divergent bool }
	collect := func(order []int) map[int]outcome {
		sys := New(cfg).Wrap(stubSys{})
		out := make(map[int]outcome)
		for _, i := range order {
			ok, tr, dv := runToCompletion(t, sys, sims[i], 5)
			if !ok {
				t.Fatalf("sim %d never succeeded", i)
			}
			out[i] = outcome{tr, dv}
		}
		return out
	}

	fwd := make([]int, len(sims))
	rev := make([]int, len(sims))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(sims) - 1 - i
	}
	a, b := collect(fwd), collect(rev)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sim %d outcome depends on execution order: %+v vs %+v", i, a[i], b[i])
		}
	}
	nTransient, nDivergent := 0, 0
	for _, o := range a {
		if o.transient {
			nTransient++
		}
		if o.divergent {
			nDivergent++
		}
	}
	// Loose binomial bounds around the configured rates.
	if nTransient < 30 || nTransient > 90 {
		t.Errorf("transient count %d wildly off 200·0.3", nTransient)
	}
	if nDivergent < 15 || nDivergent > 70 {
		t.Errorf("divergent count %d wildly off 200·0.2", nDivergent)
	}
}

func TestTransientClearsAfterConfiguredAttempts(t *testing.T) {
	cfg := Config{Seed: 7, TransientRate: 1, TransientAttempts: 2}
	in := New(cfg)
	sys := in.Wrap(stubSys{})
	vals := []float64{0.5, 0.25}
	for a := 1; a <= 2; a++ {
		if _, err := dynsys.TrajectoryCtx(context.Background(), sys, vals, 4); !IsTransient(err) {
			t.Fatalf("attempt %d: want transient error, got %v", a, err)
		}
	}
	if _, err := dynsys.TrajectoryCtx(context.Background(), sys, vals, 4); err != nil {
		t.Fatalf("attempt 3: want success, got %v", err)
	}
	s := in.Stats()
	if s.TransientSims != 1 || s.TransientFailures != 2 || s.Attempts != 3 {
		t.Fatalf("stats = %+v, want 1 transient sim, 2 failures, 3 attempts", s)
	}
}

func TestDivergentTrajectoryIsAllNaN(t *testing.T) {
	sys := New(Config{Seed: 1, DivergentRate: 1}).Wrap(stubSys{})
	traj, err := dynsys.TrajectoryCtx(context.Background(), sys, []float64{0.1, 0.9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range traj {
		for j, v := range st {
			if !math.IsNaN(v) {
				t.Fatalf("traj[%d][%d] = %v, want NaN", i, j, v)
			}
		}
	}
}

func TestPlainTrajectoryPassthroughStaysClean(t *testing.T) {
	// 100% fault rates on the fallible path must leave the plain
	// Trajectory path (reference + ground truth) untouched.
	sys := New(Config{Seed: 3, TransientRate: 1, DivergentRate: 1, PanicRate: 1}).Wrap(stubSys{})
	want := stubSys{}.Trajectory([]float64{0.3, 0.6}, 6)
	got := sys.Trajectory([]float64{0.3, 0.6}, 6)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("passthrough altered trajectory at [%d][%d]", i, j)
			}
		}
	}
}

func TestLatencyHonoursCancellation(t *testing.T) {
	sys := New(Config{Seed: 5, LatencyRate: 1, Latency: 10 * time.Second}).Wrap(stubSys{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := dynsys.TrajectoryCtx(ctx, sys, []float64{0.2, 0.4}, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("latency sleep was not interrupted by cancellation")
	}
}

func TestSimKeyDeterministicAndDistinct(t *testing.T) {
	a := SimKey(1, []float64{0.1, 0.2})
	if b := SimKey(1, []float64{0.1, 0.2}); a != b {
		t.Fatalf("SimKey not deterministic: %x vs %x", a, b)
	}
	if b := SimKey(1, []float64{0.2, 0.1}); a == b {
		t.Fatalf("SimKey ignores value order")
	}
	if b := SimKey(2, []float64{0.1, 0.2}); a == b {
		t.Fatalf("SimKey ignores seed")
	}
}

func TestRetryRunRecoversTransient(t *testing.T) {
	calls := 0
	attempts, err := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}.Run(context.Background(), 1, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &Transient{Err: errors.New("flaky")}
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Run = (%d, %v), want (3, nil)", attempts, err)
	}
}

func TestRetryRunExhaustsBudget(t *testing.T) {
	attempts, err := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}.Run(context.Background(), 1, func(ctx context.Context) error {
		return &Transient{Err: errors.New("never clears")}
	})
	if attempts != 3 || !IsTransient(err) {
		t.Fatalf("Run = (%d, %v), want 3 attempts and transient error", attempts, err)
	}
}

func TestRetryRunNeverRetriesFatal(t *testing.T) {
	calls := 0
	fatal := errors.New("fatal")
	attempts, err := RetryPolicy{MaxAttempts: 5}.Run(context.Background(), 1, func(ctx context.Context) error {
		calls++
		return fatal
	})
	if attempts != 1 || calls != 1 || !errors.Is(err, fatal) {
		t.Fatalf("fatal error was retried: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryRunCapturesPanic(t *testing.T) {
	calls := 0
	attempts, err := RetryPolicy{MaxAttempts: 5}.Run(context.Background(), 1, func(ctx context.Context) error {
		calls++
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Val != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want captured value and stack", pe)
	}
	if attempts != 1 || calls != 1 {
		t.Fatalf("panicked run was retried: attempts=%d calls=%d", attempts, calls)
	}
}

func TestRetryRunAttemptTimeoutIsRetryable(t *testing.T) {
	calls := 0
	attempts, err := RetryPolicy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond, BaseBackoff: time.Microsecond}.Run(
		context.Background(), 1, func(ctx context.Context) error {
			calls++
			<-ctx.Done() // cooperative solver observing its deadline
			return ctx.Err()
		})
	if attempts != 2 || calls != 2 {
		t.Fatalf("timed-out attempt not retried: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded after exhaustion, got %v", err)
	}
}

func TestRetryRunAbortsOnParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	_, err := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Hour}.Run(ctx, 1, func(c context.Context) error {
		calls++
		cancel() // cancel mid-first-attempt; backoff must not sleep an hour
		return &Transient{Err: errors.New("flaky")}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("cancelled run kept retrying: %d calls", calls)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("backoff sleep not interrupted by cancellation")
	}
}

func TestBackoffDeterministicBoundedGrowth(t *testing.T) {
	p := RetryPolicy{}.normalize()
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := p.backoff(99, attempt)
		d2 := p.backoff(99, attempt)
		if d1 != d2 {
			t.Fatalf("backoff(99, %d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		lo := time.Duration(float64(p.BaseBackoff) * (1 - p.JitterFrac))
		hi := time.Duration(float64(p.MaxBackoff) * (1 + p.JitterFrac))
		if d1 < lo || d1 > hi {
			t.Fatalf("backoff(99, %d) = %v outside [%v, %v]", attempt, d1, lo, hi)
		}
		if d1 > prevMax {
			prevMax = d1
		}
	}
	if prevMax < p.BaseBackoff*2 {
		t.Fatalf("backoff never grew: max %v", prevMax)
	}
}

func TestInjectedPanicIsCapturedByRetry(t *testing.T) {
	in := New(Config{Seed: 11, PanicRate: 1})
	sys := in.Wrap(stubSys{})
	attempts, err := RetryPolicy{MaxAttempts: 3}.Run(context.Background(), 1, func(ctx context.Context) error {
		_, e := dynsys.TrajectoryCtx(ctx, sys, []float64{0.7, 0.1}, 4)
		return e
	})
	var pe *PanicError
	if !errors.As(err, &pe) || attempts != 1 {
		t.Fatalf("injected panic not captured as fatal: attempts=%d err=%v", attempts, err)
	}
	if in.Stats().PanickedSims != 1 {
		t.Fatalf("injector did not account the panic: %+v", in.Stats())
	}
}

func TestHookObservesEveryAttempt(t *testing.T) {
	var hooked int
	in := New(Config{Seed: 2, TransientRate: 1, TransientAttempts: 1, Hook: func() { hooked++ }})
	sys := in.Wrap(stubSys{})
	policy := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	if _, err := policy.Run(context.Background(), 1, func(ctx context.Context) error {
		_, e := dynsys.TrajectoryCtx(ctx, sys, []float64{0.9, 0.9}, 4)
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if hooked != 2 { // transient first attempt + successful retry
		t.Fatalf("hook saw %d attempts, want 2", hooked)
	}
}

func ExampleRetryPolicy_Run() {
	calls := 0
	attempts, err := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}.Run(context.Background(), 0, func(ctx context.Context) error {
		calls++
		if calls == 1 {
			return &Transient{Err: errors.New("worker lost")}
		}
		return nil
	})
	fmt.Println(attempts, err)
	// Output: 2 <nil>
}
