package faults

import "testing"

func TestKillSpecDisabled(t *testing.T) {
	for _, k := range []KillSpec{{}, {Seed: 7, Total: 4}, {Seed: 7, Kills: 1}} {
		if k.Enabled() {
			t.Fatalf("spec %+v should be disabled", k)
		}
		for w := -1; w < 5; w++ {
			if k.Doomed(w) {
				t.Fatalf("spec %+v dooms worker %d", k, w)
			}
			if k.KillPoint(w) != 0 {
				t.Fatalf("spec %+v has kill point for worker %d", k, w)
			}
		}
	}
}

func TestKillSpecDoomsExactlyK(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		for total := 1; total <= 6; total++ {
			for kills := 0; kills <= total; kills++ {
				k := KillSpec{Seed: seed, Total: total, Kills: kills}
				doomed := 0
				for w := 0; w < total; w++ {
					if k.Doomed(w) {
						doomed++
						if p := k.KillPoint(w); p < 1 || p > 2 {
							t.Fatalf("%v worker %d: kill point %d outside {1,2}", k, w, p)
						}
					} else if k.KillPoint(w) != 0 {
						t.Fatalf("%v worker %d: survivor has kill point", k, w)
					}
				}
				if doomed != kills {
					t.Fatalf("%v: %d workers doomed, want %d", k, doomed, kills)
				}
			}
		}
	}
}

func TestKillSpecVictimsNestAsKGrows(t *testing.T) {
	// Raising Kills by one adds one victim without changing who the
	// existing victims are: the lottery ranking is fixed by the seed.
	for seed := int64(1); seed <= 10; seed++ {
		const total = 5
		prev := map[int]bool{}
		for kills := 1; kills <= total; kills++ {
			k := KillSpec{Seed: seed, Total: total, Kills: kills}
			cur := map[int]bool{}
			for w := 0; w < total; w++ {
				if k.Doomed(w) {
					cur[w] = true
				}
			}
			for w := range prev {
				if !cur[w] {
					t.Fatalf("seed %d: worker %d doomed at kills=%d but spared at kills=%d", seed, w, kills-1, kills)
				}
			}
			prev = cur
		}
	}
}

func TestKillSpecRoundtrip(t *testing.T) {
	for _, k := range []KillSpec{{}, {Seed: 42, Total: 3, Kills: 2}, {Seed: -9, Total: 16, Kills: 1}} {
		got, err := ParseKillSpec(k.String())
		if err != nil {
			t.Fatalf("parse %q: %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("roundtrip %q: got %+v want %+v", k.String(), got, k)
		}
	}
	if got, err := ParseKillSpec(""); err != nil || got != (KillSpec{}) {
		t.Fatalf("empty spec: %+v, %v", got, err)
	}
	for _, bad := range []string{"seed", "seed=x", "bogus=1"} {
		if _, err := ParseKillSpec(bad); err == nil {
			t.Fatalf("malformed spec %q accepted", bad)
		}
	}
}
