package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// KillSpec is the process-level fault plan for chaos testing the
// distributed runtime: out of Total worker processes, exactly Kills of
// them SIGKILL themselves mid-task at a seeded injection point. Like
// every decision in this package, which workers die and when is a pure
// function of (Seed, Total, Kills) — never of timing or scheduling — so
// a chaos run is reproducible and the surviving output can be compared
// bit-for-bit against an unkilled run.
//
// The spec travels from the coordinator to its child processes as a
// string (String / ParseKillSpec) in an environment variable; each
// worker then answers two questions locally: Doomed(id) — am I one of
// the Kills victims? — and KillPoint(id) — during which of my task
// executions (1-based) do I die?
type KillSpec struct {
	// Seed drives victim selection and kill points.
	Seed int64
	// Total is the worker-process count of the run.
	Total int
	// Kills is how many of the Total workers die (0 disables killing).
	Kills int
}

// Enabled reports whether the spec kills anyone.
func (k KillSpec) Enabled() bool { return k.Kills > 0 && k.Total > 0 }

// rank is the worker's position in the seeded kill lottery: workers are
// ordered by mix(seed ^ id) with the id as a tiebreaker, and the lowest
// Kills ranks die.
func (k KillSpec) rank(worker int) int {
	self := mix(uint64(k.Seed) ^ 0x6b696c6c00000000 ^ uint64(worker)) // "kill"
	r := 0
	for w := 0; w < k.Total; w++ {
		if w == worker {
			continue
		}
		h := mix(uint64(k.Seed) ^ 0x6b696c6c00000000 ^ uint64(w))
		if h < self || (h == self && w < worker) {
			r++
		}
	}
	return r
}

// Doomed reports whether the given worker id (0-based, < Total) is one
// of the Kills victims.
func (k KillSpec) Doomed(worker int) bool {
	if !k.Enabled() || worker < 0 || worker >= k.Total {
		return false
	}
	return k.rank(worker) < k.Kills
}

// KillPoint returns the 1-based task-execution ordinal at which a doomed
// worker kills itself: 1 or 2, so the death always lands inside an early
// phase while other task leases are still in flight. Zero for workers
// that are not doomed.
func (k KillSpec) KillPoint(worker int) int {
	if !k.Doomed(worker) {
		return 0
	}
	return 1 + int(mix(uint64(k.Seed)^0x706f696e74000000^uint64(worker))%2) // "point"
}

// String encodes the spec for transport (ParseKillSpec inverts it).
func (k KillSpec) String() string {
	return fmt.Sprintf("seed=%d,total=%d,kills=%d", k.Seed, k.Total, k.Kills)
}

// ParseKillSpec parses the String encoding. An empty string is the zero
// (disabled) spec.
func ParseKillSpec(s string) (KillSpec, error) {
	var k KillSpec
	if s == "" {
		return k, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return KillSpec{}, fmt.Errorf("faults: malformed kill spec %q", s)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return KillSpec{}, fmt.Errorf("faults: malformed kill spec %q: %w", s, err)
		}
		switch key {
		case "seed":
			k.Seed = n
		case "total":
			k.Total = int(n)
		case "kills":
			k.Kills = int(n)
		default:
			return KillSpec{}, fmt.Errorf("faults: unknown kill spec field %q", key)
		}
	}
	return k, nil
}

// KillSelf delivers an uncatchable SIGKILL to the current process — the
// chaos injection primitive. It never returns: no deferred cleanup, no
// checkpoint flush, exactly like a machine loss. Signal delivery is
// asynchronous, so it parks the goroutine until the kill lands.
func KillSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {}
}
