// Package faults is the fault-injection and retry layer of the pipeline
// runtime. The paper's premise is that the simulation budget B is the
// scarce resource: a production ensemble service cannot afford to lose a
// campaign to one crashed or divergent solver. This package provides
//
//   - a seeded, DETERMINISTIC fault-injection harness (Injector) that
//     wraps a dynsys.System and injects simulation panics, transient
//     errors, non-finite (divergent) trajectories, and artificial latency
//     at configurable rates — every decision is a pure function of the
//     seed and the simulation's parameter values, never of timing or
//     execution order, so campaigns are reproducible under any worker
//     count and across resumed runs;
//   - a RetryPolicy (retry.go) with bounded attempts, exponential backoff
//     with seeded jitter, and a per-attempt timeout, used by the
//     simulation fan-out to survive transient failures; and
//   - panic capture that converts a crashed simulation into a recorded
//     failure instead of a dead process.
//
// Failure taxonomy (see DESIGN.md "Fault tolerance & resumability"):
//
//   - transient — the run errors but a retry succeeds; accounted as a
//     retried simulation.
//   - divergent — the run completes but produces non-finite values; its
//     cells are quarantined at tensor ingest (tensor.Sparse
//     RejectNonFinite) and accounted as quarantined cells.
//   - fatal — the run panics or exhausts its retry budget; it is recorded
//     as a failed simulation and its cells are simply absent from the
//     sub-ensemble (the slice-sampling tensor-completion assumption: some
//     sampled slices never arrive).
package faults

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dynsys"
)

// Config configures deterministic fault injection. All rates are
// probabilities in [0, 1] evaluated independently per simulation (keyed by
// the simulation's parameter values and Seed).
type Config struct {
	// Seed drives every injection decision; identical seeds reproduce
	// identical fault patterns regardless of scheduling.
	Seed int64
	// TransientRate is the fraction of simulations that fail with a
	// retryable error on their first TransientAttempts attempts.
	TransientRate float64
	// TransientAttempts is how many consecutive attempts of an affected
	// simulation fail before it succeeds (default 1, so one retry
	// recovers it).
	TransientAttempts int
	// DivergentRate is the fraction of simulations whose trajectory is
	// replaced with NaNs — modelling a divergent solver whose output must
	// be quarantined downstream.
	DivergentRate float64
	// PanicRate is the fraction of simulations that panic (a fatal fault:
	// captured, recorded as a failed run, never retried).
	PanicRate float64
	// LatencyRate is the fraction of simulations delayed by Latency
	// before running (context-aware: cancellation interrupts the sleep).
	LatencyRate float64
	// Latency is the injected delay for latency-affected simulations.
	Latency time.Duration
	// Hook, when non-nil, is invoked at the start of every injected
	// simulation attempt. Test harnesses use it to count executed
	// simulations and to cancel campaigns mid-flight.
	Hook func()
}

// Stats is the injector's accounting, used by tests and reports to verify
// that the pipeline's failure accounting balances exactly against what was
// injected.
type Stats struct {
	// Attempts counts fallible simulation attempts observed.
	Attempts int
	// TransientFailures counts injected transient error returns (a single
	// simulation contributes TransientAttempts of these).
	TransientFailures int
	// TransientSims counts distinct simulations given transient faults.
	TransientSims int
	// DivergentSims counts distinct simulations whose output was made
	// non-finite.
	DivergentSims int
	// PanickedSims counts distinct simulations that panicked.
	PanickedSims int
	// DelayedSims counts distinct simulations that were delayed.
	DelayedSims int
}

// Injector injects faults per its Config. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu            sync.Mutex
	attempts      map[uint64]int
	transientSeen map[uint64]bool
	divergentSeen map[uint64]bool
	panicSeen     map[uint64]bool
	delaySeen     map[uint64]bool
	stats         Stats
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.TransientAttempts < 1 {
		cfg.TransientAttempts = 1
	}
	return &Injector{
		cfg:           cfg,
		attempts:      make(map[uint64]int),
		transientSeen: make(map[uint64]bool),
		divergentSeen: make(map[uint64]bool),
		panicSeen:     make(map[uint64]bool),
		delaySeen:     make(map[uint64]bool),
	}
}

// Stats returns a snapshot of the injection accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Wrap returns sys with fault injection on the fallible TrajectoryCtx
// path. The plain Trajectory path passes through untouched, so reference
// trajectories and ground-truth construction stay clean — only ensemble
// simulation runs (which go through dynsys.TrajectoryCtx) see faults.
func (in *Injector) Wrap(sys dynsys.System) dynsys.System {
	return &faultySystem{sys: sys, in: in}
}

// faultySystem decorates a System with injection; it implements
// dynsys.CtxSystem so the pipeline's fallible path picks it up.
type faultySystem struct {
	sys dynsys.System
	in  *Injector
}

func (f *faultySystem) Name() string           { return f.sys.Name() }
func (f *faultySystem) Params() []dynsys.Param { return f.sys.Params() }
func (f *faultySystem) StateDim() int          { return f.sys.StateDim() }

// Trajectory is the clean passthrough (reference/ground-truth path).
func (f *faultySystem) Trajectory(vals []float64, numSamples int) [][]float64 {
	return f.sys.Trajectory(vals, numSamples)
}

// Salts for the independent per-fault hash draws.
const (
	saltTransient = 0x7472616e7369656e // "transien"
	saltDivergent = 0x6469766572676500 // "diverge"
	saltPanic     = 0x70616e6963000000 // "panic"
	saltLatency   = 0x6c6174656e637900 // "latency"
)

// TrajectoryCtx implements the fallible simulation path with injection.
func (f *faultySystem) TrajectoryCtx(ctx context.Context, vals []float64, numSamples int) ([][]float64, error) {
	in := f.in
	cfg := in.cfg
	if cfg.Hook != nil {
		cfg.Hook()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := SimKey(cfg.Seed, vals)
	attempt := in.nextAttempt(key)

	// Artificial latency (context-aware).
	if cfg.LatencyRate > 0 && unit(key, saltLatency) < cfg.LatencyRate {
		in.noteOnce(in.delaySeen, key, func(s *Stats) { s.DelayedSims++ })
		if cfg.Latency > 0 {
			timer := time.NewTimer(cfg.Latency)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
	}
	// Simulation panic (fatal: the retry harness captures it and records a
	// failed run).
	if cfg.PanicRate > 0 && unit(key, saltPanic) < cfg.PanicRate {
		in.noteOnce(in.panicSeen, key, func(s *Stats) { s.PanickedSims++ })
		panic(fmt.Sprintf("faults: injected simulation panic (sim %016x attempt %d)", key, attempt))
	}
	// Transient failure on the first TransientAttempts attempts.
	if cfg.TransientRate > 0 && unit(key, saltTransient) < cfg.TransientRate && attempt <= cfg.TransientAttempts {
		in.noteOnce(in.transientSeen, key, func(s *Stats) { s.TransientSims++ })
		in.mu.Lock()
		in.stats.TransientFailures++
		in.mu.Unlock()
		return nil, &Transient{Err: fmt.Errorf("faults: injected transient failure (sim %016x attempt %d)", key, attempt)}
	}

	traj, err := dynsys.TrajectoryCtx(ctx, f.sys, vals, numSamples)
	if err != nil {
		return nil, err
	}
	// Divergence: replace the trajectory with NaNs so every derived cell
	// is non-finite and must be quarantined at ingest.
	if cfg.DivergentRate > 0 && unit(key, saltDivergent) < cfg.DivergentRate {
		in.noteOnce(in.divergentSeen, key, func(s *Stats) { s.DivergentSims++ })
		out := make([][]float64, len(traj))
		for i, st := range traj {
			row := make([]float64, len(st))
			for j := range row {
				row[j] = math.NaN()
			}
			out[i] = row
		}
		return out, nil
	}
	return traj, nil
}

// nextAttempt returns the 1-based attempt number for a simulation key.
func (in *Injector) nextAttempt(key uint64) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	in.stats.Attempts++
	return in.attempts[key]
}

// noteOnce records a per-sim statistic exactly once per key.
func (in *Injector) noteOnce(seen map[uint64]bool, key uint64, bump func(*Stats)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !seen[key] {
		seen[key] = true
		bump(&in.stats)
	}
}

// SimKey derives the deterministic 64-bit identity of one simulation from
// the injection seed and the simulation's parameter values. It is exported
// so retry jitter and test harnesses can key off the same identity.
func SimKey(seed int64, vals []float64) uint64 {
	h := mix(uint64(seed) ^ 0x4d32544446415553) // "M2TDFAUS"
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h = mix(h ^ binary.LittleEndian.Uint64(b[:]))
	}
	return h
}

// mix is the splitmix64 finaliser: a high-quality 64-bit mixer whose
// output is a pure function of its input.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps (key, salt) to a uniform float in [0, 1), independently per
// salt — the per-fault biased coin.
func unit(key, salt uint64) float64 {
	return float64(mix(key^mix(salt))>>11) / (1 << 53)
}
