package faults

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"testing"
	"time"
)

// The distributed runtime leans on RetryPolicy backoff schedules and
// KillSpec decisions being pure functions of their inputs: a coordinator
// and its worker child processes must agree on them without any shared
// state. These tests prove the property across a real process boundary —
// the test binary re-executes itself in a child mode that prints the
// schedules, and the parent compares them against in-process values.

const crossProcEnv = "M2TD_FAULTS_CROSSPROC_CHILD"

// TestMain intercepts the child mode before the test harness runs.
func TestMain(m *testing.M) {
	if os.Getenv(crossProcEnv) != "" {
		writeSchedules(os.Stdout)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeSchedules prints one line per (policy, key, attempt) backoff and
// per KillSpec decision, over a fixed probe grid.
func writeSchedules(w io.Writer) {
	for _, p := range probePolicies() {
		for _, key := range []uint64{0, 1, 0xdeadbeef, 1<<63 + 12345} {
			for attempt := 1; attempt <= 6; attempt++ {
				fmt.Fprintf(w, "backoff %d %d %d %d\n", p.MaxAttempts, key, attempt, int64(p.Backoff(key, attempt)))
			}
		}
	}
	for _, k := range []KillSpec{{Seed: 1, Total: 4, Kills: 2}, {Seed: 99, Total: 7, Kills: 3}} {
		for w2 := 0; w2 < k.Total; w2++ {
			fmt.Fprintf(w, "kill %d %d %d %t %d\n", k.Seed, k.Total, w2, k.Doomed(w2), k.KillPoint(w2))
		}
	}
}

func probePolicies() []RetryPolicy {
	return []RetryPolicy{
		{}, // zero policy: exercises normalization defaults
		{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond, JitterFrac: 0.5},
		{MaxAttempts: 8, BaseBackoff: 3 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, JitterFrac: 0.1},
	}
}

func TestBackoffScheduleIdenticalAcrossProcesses(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), crossProcEnv+"=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("child process: %v", err)
	}
	var local bytes.Buffer
	writeSchedules(&local)
	if !bytes.Equal(out, local.Bytes()) {
		t.Fatalf("cross-process schedule drift:\nchild:\n%s\nlocal:\n%s", out, local.Bytes())
	}
	// Sanity: the comparison covered real content, not two empty outputs.
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		lines++
	}
	if lines < 80 {
		t.Fatalf("schedule probe suspiciously small: %d lines", lines)
	}
}

func TestBackoffPureFunction(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, JitterFrac: 0.25}
	for key := uint64(0); key < 64; key++ {
		for attempt := 1; attempt <= 6; attempt++ {
			a, b := p.Backoff(key, attempt), p.Backoff(key, attempt)
			if a != b {
				t.Fatalf("Backoff(%d, %d) not stable: %v vs %v", key, attempt, a, b)
			}
			if a <= 0 {
				t.Fatalf("Backoff(%d, %d) = %v, want > 0", key, attempt, a)
			}
			if max := time.Duration(float64(p.MaxBackoff) * (1 + p.JitterFrac)); a > max {
				t.Fatalf("Backoff(%d, %d) = %v exceeds jittered cap %v", key, attempt, a, max)
			}
		}
	}
}
