// Package mapreduce is a small in-process MapReduce engine used to
// reproduce the paper's distributed M2TD (Algorithm 6) without a Hadoop
// cluster: mappers fan out over a configurable worker pool (the stand-in
// for the paper's "servers"), intermediate pairs are shuffled by key, and
// reducers process key groups in parallel.
//
// The engine is deliberately faithful to the MapReduce contract — mappers
// see one input record at a time, reducers see one key with all its values
// — so the D-M2TD phases written against it (package dist) follow the
// paper's map/reduce pseudocode rather than shared-memory shortcuts.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Pair is an intermediate key/value record emitted by a mapper.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Stats records per-phase wall-clock durations of one job run.
type Stats struct {
	Map     time.Duration
	Shuffle time.Duration
	Reduce  time.Duration
}

// Total returns the end-to-end job duration.
func (s Stats) Total() time.Duration { return s.Map + s.Shuffle + s.Reduce }

// Job describes one MapReduce computation from inputs of type I through
// intermediate pairs (K, V) to outputs of type R.
type Job[I any, K comparable, V any, R any] struct {
	// Map processes one input record and emits zero or more pairs.
	Map func(input I, emit func(K, V))
	// Reduce processes one key with all its values and emits zero or more
	// results.
	Reduce func(key K, values []V, emit func(R))
	// Workers is the parallelism for both phases ("server" count).
	// Values below 1 are treated as 1.
	Workers int
	// KeyLess optionally orders keys so reducer output is deterministic;
	// when nil, keys are processed in arbitrary order.
	KeyLess func(a, b K) bool
}

// Run executes the job over the inputs, returning all reducer outputs and
// phase statistics. When KeyLess is set, outputs are ordered by key
// (outputs for one key stay in emission order).
func (j *Job[I, K, V, R]) Run(inputs []I) ([]R, Stats) {
	if j.Map == nil || j.Reduce == nil {
		panic("mapreduce: Job requires both Map and Reduce")
	}
	workers := j.Workers
	if workers < 1 {
		workers = 1
	}
	var stats Stats

	// Map phase: each worker strides over inputs with a private buffer.
	start := time.Now()
	buffers := make([][]Pair[K, V], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Pair[K, V]
			emit := func(k K, v V) { local = append(local, Pair[K, V]{k, v}) }
			for i := w; i < len(inputs); i += workers {
				j.Map(inputs[i], emit)
			}
			buffers[w] = local
		}(w)
	}
	wg.Wait()
	stats.Map = time.Since(start)

	// Shuffle phase: group pairs by key. Buffers are merged in worker
	// order so each key's value list is deterministic given a fixed
	// worker count.
	start = time.Now()
	groups := make(map[K][]V)
	for _, buf := range buffers {
		for _, p := range buf {
			groups[p.Key] = append(groups[p.Key], p.Value)
		}
	}
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	if j.KeyLess != nil {
		sort.Slice(keys, func(a, b int) bool { return j.KeyLess(keys[a], keys[b]) })
	}
	stats.Shuffle = time.Since(start)

	// Reduce phase: workers stride over key groups; per-key outputs are
	// kept in key order when KeyLess is set.
	start = time.Now()
	outPerKey := make([][]R, len(keys))
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				var local []R
				emit := func(r R) { local = append(local, r) }
				j.Reduce(keys[i], groups[keys[i]], emit)
				outPerKey[i] = local
			}
		}(w)
	}
	wg.Wait()
	var out []R
	for _, rs := range outPerKey {
		out = append(out, rs...)
	}
	stats.Reduce = time.Since(start)
	return out, stats
}

// Validate reports whether the job is well-formed without running it.
func (j *Job[I, K, V, R]) Validate() error {
	if j.Map == nil {
		return fmt.Errorf("mapreduce: missing Map function")
	}
	if j.Reduce == nil {
		return fmt.Errorf("mapreduce: missing Reduce function")
	}
	return nil
}
