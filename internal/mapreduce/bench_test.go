package mapreduce

import (
	"strconv"
	"testing"
)

// BenchmarkShuffleHeavy measures a job dominated by the shuffle phase:
// many keys, trivial reduce.
func BenchmarkShuffleHeavy(b *testing.B) {
	inputs := make([]int, 50000)
	for i := range inputs {
		inputs[i] = i
	}
	for _, workers := range []int{1, 4} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			j := &Job[int, int, int, int]{
				Map:     func(v int, emit func(int, int)) { emit(v%1024, v) },
				Reduce:  func(key int, values []int, emit func(int)) { emit(len(values)) },
				Workers: workers,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j.Run(inputs)
			}
		})
	}
}

// BenchmarkReduceHeavy measures a job dominated by reduce-side compute.
func BenchmarkReduceHeavy(b *testing.B) {
	inputs := make([]int, 256)
	for i := range inputs {
		inputs[i] = i
	}
	for _, workers := range []int{1, 4} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			j := &Job[int, int, int, float64]{
				Map: func(v int, emit func(int, int)) { emit(v%16, v) },
				Reduce: func(key int, values []int, emit func(float64)) {
					var s float64
					for k := 0; k < 200000; k++ {
						s += float64(k%7) * 0.5
					}
					emit(s)
				},
				Workers: workers,
			}
			for i := 0; i < b.N; i++ {
				j.Run(inputs)
			}
		})
	}
}
