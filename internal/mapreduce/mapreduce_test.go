package mapreduce

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func wordCountJob(workers int) *Job[string, string, int, Pair[string, int]] {
	return &Job[string, string, int, Pair[string, int]]{
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(key string, values []int, emit func(Pair[string, int])) {
			total := 0
			for _, v := range values {
				total += v
			}
			emit(Pair[string, int]{key, total})
		},
		Workers: workers,
		KeyLess: func(a, b string) bool { return a < b },
	}
}

func TestWordCount(t *testing.T) {
	inputs := []string{"a b a", "b c", "a"}
	out, stats := wordCountJob(3).Run(inputs)
	want := []Pair[string, int]{{"a", 3}, {"b", 2}, {"c", 1}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("wordcount = %v, want %v", out, want)
	}
	if stats.Total() <= 0 {
		t.Fatal("stats not populated")
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	inputs := []string{"x y z", "x x", "z y x", "w"}
	base, _ := wordCountJob(1).Run(inputs)
	for _, w := range []int{2, 4, 8, 16} {
		got, _ := wordCountJob(w).Run(inputs)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: %v != %v", w, got, base)
		}
	}
}

func TestZeroWorkersTreatedAsOne(t *testing.T) {
	j := wordCountJob(0)
	out, _ := j.Run([]string{"a"})
	if len(out) != 1 || out[0].Key != "a" {
		t.Fatalf("out = %v", out)
	}
}

func TestEmptyInputs(t *testing.T) {
	out, _ := wordCountJob(2).Run(nil)
	if len(out) != 0 {
		t.Fatalf("empty input produced %v", out)
	}
}

func TestReducerSeesAllValuesForKey(t *testing.T) {
	j := &Job[int, int, int, int]{
		Map: func(v int, emit func(int, int)) {
			emit(v%3, v)
		},
		Reduce: func(key int, values []int, emit func(int)) {
			emit(len(values))
		},
		Workers: 4,
		KeyLess: func(a, b int) bool { return a < b },
	}
	inputs := make([]int, 30)
	for i := range inputs {
		inputs[i] = i
	}
	out, _ := j.Run(inputs)
	if !reflect.DeepEqual(out, []int{10, 10, 10}) {
		t.Fatalf("group sizes = %v", out)
	}
}

func TestMapRunsInParallel(t *testing.T) {
	var running, peak int64
	j := &Job[int, int, int, int]{
		Map: func(v int, emit func(int, int)) {
			cur := atomic.AddInt64(&running, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
					break
				}
			}
			// Busy wait a little so workers overlap.
			for i := 0; i < 100000; i++ {
				_ = i
			}
			atomic.AddInt64(&running, -1)
			emit(0, v)
		},
		Reduce:  func(key int, values []int, emit func(int)) { emit(len(values)) },
		Workers: 8,
	}
	inputs := make([]int, 64)
	out, _ := j.Run(inputs)
	if len(out) != 1 || out[0] != 64 {
		t.Fatalf("out = %v", out)
	}
	if atomic.LoadInt64(&peak) < 2 {
		t.Skip("no observable parallelism on this machine (single CPU?)")
	}
}

func TestValidate(t *testing.T) {
	j := &Job[int, int, int, int]{}
	if err := j.Validate(); err == nil {
		t.Fatal("missing Map accepted")
	}
	j.Map = func(int, func(int, int)) {}
	if err := j.Validate(); err == nil {
		t.Fatal("missing Reduce accepted")
	}
	j.Reduce = func(int, []int, func(int)) {}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicsWithoutFunctions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run without Map/Reduce did not panic")
		}
	}()
	j := &Job[int, int, int, int]{}
	j.Run([]int{1})
}

func TestMultipleEmitsPerReduce(t *testing.T) {
	j := &Job[int, int, int, int]{
		Map:     func(v int, emit func(int, int)) { emit(0, v) },
		Reduce:  func(key int, values []int, emit func(int)) { emit(key); emit(len(values)) },
		Workers: 2,
	}
	out, _ := j.Run([]int{5, 6})
	if len(out) != 2 || out[0] != 0 || out[1] != 2 {
		t.Fatalf("out = %v", out)
	}
}
