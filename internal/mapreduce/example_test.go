package mapreduce_test

import (
	"fmt"
	"strings"

	"repro/internal/mapreduce"
)

// ExampleJob_Run counts words across input lines with four workers.
func ExampleJob_Run() {
	job := &mapreduce.Job[string, string, int, string]{
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(word string, counts []int, emit func(string)) {
			emit(fmt.Sprintf("%s=%d", word, len(counts)))
		},
		Workers: 4,
		KeyLess: func(a, b string) bool { return a < b },
	}
	out, _ := job.Run([]string{"a b a", "b c"})
	fmt.Println(strings.Join(out, " "))
	// Output: a=2 b=2 c=1
}
