package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSimSetRoundTrip(t *testing.T) {
	s := testStore(t)
	sims := map[int][]float64{
		3:   {1.5, -2.25, 0},
		11:  {0.125},
		999: {},
		42:  {3, 4, 5, 6},
	}
	if err := s.SaveSimSet("sub1-sims", "fp-v1", sims); err != nil {
		t.Fatal(err)
	}
	fp, got, err := s.LoadSimSet("sub1-sims")
	if err != nil {
		t.Fatal(err)
	}
	if fp != "fp-v1" {
		t.Fatalf("fingerprint = %q, want fp-v1", fp)
	}
	if !reflect.DeepEqual(got, sims) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, sims)
	}
}

func TestSimSetOverwrite(t *testing.T) {
	s := testStore(t)
	if err := s.SaveSimSet("x", "a", map[int][]float64{1: {1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSimSet("x", "b", map[int][]float64{2: {2, 3}}); err != nil {
		t.Fatal(err)
	}
	fp, got, err := s.LoadSimSet("x")
	if err != nil {
		t.Fatal(err)
	}
	if fp != "b" || len(got) != 1 || got[2] == nil {
		t.Fatalf("overwrite not atomic/latest: fp=%q got=%v", fp, got)
	}
}

func TestSimSetNotFound(t *testing.T) {
	s := testStore(t)
	if _, _, err := s.LoadSimSet("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestSimSetCorruptionDetected(t *testing.T) {
	s := testStore(t)
	if err := s.SaveSimSet("victim", "fp", map[int][]float64{7: {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	path := s.path("victim")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the CRC footer must catch it.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadSimSet("victim"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after bit flip, got %v", err)
	}
}

func TestSimSetTruncationDetected(t *testing.T) {
	s := testStore(t)
	if err := s.SaveSimSet("victim", "fp", map[int][]float64{7: {1, 2, 3}, 9: {4}}); err != nil {
		t.Fatal(err)
	}
	path := s.path("victim")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadSimSet("victim"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after truncation, got %v", err)
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSimSet("keep", "fp", map[int][]float64{1: {1}}); err != nil {
		t.Fatal(err)
	}
	// Plant orphaned temp files as a crashed writer would leave them.
	for _, name := range []string{".tmp-keep-123", ".tmp-dead-9"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("re-open with orphaned temp files: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) >= 5 && e.Name()[:5] == ".tmp-" {
			t.Fatalf("orphaned temp file %q survived Open", e.Name())
		}
	}
	// The durable object is untouched.
	fp, got, err := s2.LoadSimSet("keep")
	if err != nil || fp != "fp" || got[1] == nil {
		t.Fatalf("durable object damaged by sweep: fp=%q got=%v err=%v", fp, got, err)
	}
}
