package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestBlobRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"accuracy":0.97,"num_sims":144}`)
	if err := s.SaveBlob("hdr", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadBlob("hdr")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("LoadBlob = %q, want %q", got, payload)
	}

	// Empty payloads round-trip too.
	if err := s.SaveBlob("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := s.LoadBlob("empty"); err != nil || len(got) != 0 {
		t.Fatalf("empty blob = %q, %v", got, err)
	}

	if _, err := s.LoadBlob("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob err = %v, want ErrNotFound", err)
	}
}

func TestBlobKindMismatchAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBlob("b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A blob is not loadable as a sparse tensor.
	if _, err := s.LoadSparse("b"); err == nil {
		t.Fatal("LoadSparse on a blob succeeded")
	}
	// Flip a payload byte: the CRC footer must catch it.
	path := filepath.Join(dir, "b.m2td")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadBlob("b"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted blob err = %v, want ErrCorrupt", err)
	}
}
