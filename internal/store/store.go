// Package store is a small block-based tensor store inspired by the
// TensorDB line of work the paper builds on (its references [17], [22]):
// ensemble tensors and Tucker decompositions are persisted to disk in a
// chunked binary format with checksums, under a named catalog directory.
//
// Large ensemble tensors are written and read block-by-block (BlockSize
// cells at a time), so the store streams rather than buffering whole
// tensors in an encoder, and every file carries a CRC32 footer that Load
// verifies before returning data.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// BlockSize is the number of cells per storage block.
const BlockSize = 4096

const (
	magic   = "M2TDSTOR"
	version = uint32(1)
)

// Kinds of stored objects.
const (
	kindSparse   = uint8(1)
	kindDense    = uint8(2)
	kindTucker   = uint8(3)
	kindSimSet   = uint8(4)
	kindMatrices = uint8(5)
	kindBlob     = uint8(6)
)

// ErrCorrupt is returned when a file fails checksum or structural
// validation.
var ErrCorrupt = errors.New("store: corrupt tensor file")

// ErrNotFound is returned when a named object does not exist.
var ErrNotFound = errors.New("store: object not found")

// Store is a directory-backed tensor catalog.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir. Orphaned
// temporary files left behind by a crash mid-write (the atomic
// temp+rename protocol means a partially written `.tmp-*` file is the
// only possible debris — named objects are always complete) are swept on
// open, so a catalog that survived a kill -9 comes back clean.
//
// Catalogs are shared between live processes (the distributed runtime's
// coordinator and every worker open the same directory), so the sweep is
// pid-aware: temp files are named `.tmp-<pid>-*`, and Open removes one
// only when its writing process is no longer alive. A worker opening the
// catalog mid-campaign therefore never deletes another worker's
// in-flight write; only genuine debris from killed processes is
// collected.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") && sweepable(e.Name()) {
			// Best-effort: a concurrent writer may have renamed it away.
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{dir: dir}, nil
}

// sweepable reports whether an orphan-sweep may remove the temp file:
// yes when its embedded writer pid is dead, or when the name predates
// the pid-tagged scheme entirely (nothing live can be writing it through
// this package).
func sweepable(name string) bool {
	rest := strings.TrimPrefix(name, ".tmp-")
	pidStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return true // legacy `.tmp-<random>` name: no owner to respect
	}
	pid, err := strconv.Atoi(pidStr)
	if err != nil || pid <= 0 {
		return true
	}
	return !pidAlive(pid)
}

// pidAlive reports whether a process with the given pid exists, via the
// POSIX null-signal probe. EPERM means the process exists but belongs to
// another user — still alive for sweep purposes.
func pidAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	return errors.Is(err, syscall.EPERM)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validateName rejects names that would escape the catalog directory.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty object name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("store: invalid object name %q", name)
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+".m2td")
}

// List returns the names of all stored objects, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".m2td") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".m2td"))
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes a stored object.
func (s *Store) Delete(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	return err
}

// crcWriter wraps a writer, checksumming everything written.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

// Write implements io.Writer, updating the running checksum.
func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

// crcReader wraps a reader, checksumming everything read.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.NewIEEE()}
}

// Read implements io.Reader, updating the running checksum.
func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// writeFile writes an object atomically: header, body via fn, CRC footer,
// then rename into place.
func (s *Store) writeFile(name string, kind uint8, fn func(w io.Writer) error) error {
	if err := validateName(name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, fmt.Sprintf(".tmp-%d-*", os.Getpid()))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)

	bw := bufio.NewWriter(tmp)
	cw := newCRCWriter(bw)
	if _, err := cw.Write([]byte(magic)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, version); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, kind); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := fn(cw); err != nil {
		tmp.Close()
		return err
	}
	// Footer: CRC of everything before it (not checksummed itself).
	if err := binary.Write(bw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return os.Rename(tmpName, s.path(name))
}

// readFile opens an object, validates magic/version/kind, passes the body
// reader to fn, and verifies the CRC footer afterwards.
func (s *Store) readFile(name string, wantKind uint8, fn func(r io.Reader) error) error {
	if err := validateName(name); err != nil {
		return err
	}
	f, err := os.Open(s.path(name))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if st.Size() < int64(len(magic))+4+1+4 {
		return ErrCorrupt
	}
	body := io.LimitReader(f, st.Size()-4)
	cr := newCRCReader(bufio.NewReader(body))

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, head); err != nil || string(head) != magic {
		return ErrCorrupt
	}
	var ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil || ver != version {
		return ErrCorrupt
	}
	var kind uint8
	if err := binary.Read(cr, binary.LittleEndian, &kind); err != nil {
		return ErrCorrupt
	}
	if kind != wantKind {
		return fmt.Errorf("store: object %q has kind %d, want %d", name, kind, wantKind)
	}
	if err := fn(cr); err != nil {
		return err
	}
	// Drain any remaining body bytes into the checksum (robustness against
	// partial readers), then verify the footer.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return ErrCorrupt
	}
	var want uint32
	if err := binary.Read(f, binary.LittleEndian, &want); err != nil {
		return ErrCorrupt
	}
	if cr.crc.Sum32() != want {
		return ErrCorrupt
	}
	return nil
}

// writeShape / readShape serialise tensor shapes.
func writeShape(w io.Writer, shape tensor.Shape) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint64(d)); err != nil {
			return err
		}
	}
	return nil
}

func readShape(r io.Reader) (tensor.Shape, error) {
	var order uint32
	if err := binary.Read(r, binary.LittleEndian, &order); err != nil {
		return nil, ErrCorrupt
	}
	if order > 64 {
		return nil, ErrCorrupt
	}
	shape := make(tensor.Shape, order)
	for i := range shape {
		var d uint64
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, ErrCorrupt
		}
		if d > 1<<40 {
			return nil, ErrCorrupt
		}
		shape[i] = int(d)
	}
	return shape, nil
}

// SaveSparse stores a sparse tensor in blocks of BlockSize cells.
func (s *Store) SaveSparse(name string, t *tensor.Sparse) error {
	return s.writeFile(name, kindSparse, func(w io.Writer) error {
		if err := writeShape(w, t.Shape); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		nnz := t.NNZ()
		if err := binary.Write(w, binary.LittleEndian, uint64(nnz)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		order := t.Order()
		for start := 0; start < nnz; start += BlockSize {
			end := start + BlockSize
			if end > nnz {
				end = nnz
			}
			// Block: cell count, then packed indices and values.
			if err := binary.Write(w, binary.LittleEndian, uint32(end-start)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			for e := start; e < end; e++ {
				idx, v := t.Entry(e)
				for k := 0; k < order; k++ {
					if err := binary.Write(w, binary.LittleEndian, uint32(idx[k])); err != nil {
						return fmt.Errorf("store: %w", err)
					}
				}
				if err := binary.Write(w, binary.LittleEndian, v); err != nil {
					return fmt.Errorf("store: %w", err)
				}
			}
		}
		return nil
	})
}

// LoadSparse reads a sparse tensor saved with SaveSparse.
func (s *Store) LoadSparse(name string) (*tensor.Sparse, error) {
	var out *tensor.Sparse
	err := s.readFile(name, kindSparse, func(r io.Reader) error {
		shape, err := readShape(r)
		if err != nil {
			return err
		}
		var nnz uint64
		if err := binary.Read(r, binary.LittleEndian, &nnz); err != nil {
			return ErrCorrupt
		}
		t := tensor.NewSparse(shape)
		order := shape.Order()
		idx := make([]int, order)
		var read uint64
		for read < nnz {
			var count uint32
			if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
				return ErrCorrupt
			}
			if count == 0 || uint64(count) > nnz-read {
				return ErrCorrupt
			}
			for e := uint32(0); e < count; e++ {
				for k := 0; k < order; k++ {
					var i uint32
					if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
						return ErrCorrupt
					}
					if int(i) >= shape[k] {
						return ErrCorrupt
					}
					idx[k] = int(i)
				}
				var v float64
				if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
					return ErrCorrupt
				}
				t.Append(idx, v)
			}
			read += uint64(count)
		}
		out = t
		return nil
	})
	return out, err
}

// SaveDense stores a dense tensor, streaming BlockSize cells at a time.
func (s *Store) SaveDense(name string, t *tensor.Dense) error {
	return s.writeFile(name, kindDense, func(w io.Writer) error {
		if err := writeShape(w, t.Shape); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for start := 0; start < len(t.Data); start += BlockSize {
			end := start + BlockSize
			if end > len(t.Data) {
				end = len(t.Data)
			}
			if err := binary.Write(w, binary.LittleEndian, t.Data[start:end]); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return nil
	})
}

// LoadDense reads a dense tensor saved with SaveDense.
func (s *Store) LoadDense(name string) (*tensor.Dense, error) {
	var out *tensor.Dense
	err := s.readFile(name, kindDense, func(r io.Reader) error {
		shape, err := readShape(r)
		if err != nil {
			return err
		}
		t := tensor.NewDense(shape)
		if err := binary.Read(r, binary.LittleEndian, t.Data); err != nil {
			return ErrCorrupt
		}
		out = t
		return nil
	})
	return out, err
}

// SaveSimSet stores a completed-simulation set — the checkpoint unit of
// the fault-tolerant pipeline runtime: a fingerprint identifying the
// generating configuration plus each completed simulation's per-timestamp
// cell values, keyed by the simulation's parameter-grid key. Entries are
// written in ascending key order so identical sets produce identical
// bytes, and the file inherits the store's atomic temp+rename+CRC
// protocol: a crash mid-save can never corrupt the previous checkpoint.
func (s *Store) SaveSimSet(name, fingerprint string, sims map[int][]float64) error {
	return s.writeFile(name, kindSimSet, func(w io.Writer) error {
		fp := []byte(fingerprint)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(fp))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := w.Write(fp); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		keys := make([]int, 0, len(sims))
		for k := range sims {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		if err := binary.Write(w, binary.LittleEndian, uint64(len(keys))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, k := range keys {
			cells := sims[k]
			if err := binary.Write(w, binary.LittleEndian, uint64(k)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(cells))); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, cells); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return nil
	})
}

// LoadSimSet reads a simulation set saved with SaveSimSet, returning its
// configuration fingerprint and completed-simulation map.
func (s *Store) LoadSimSet(name string) (string, map[int][]float64, error) {
	var (
		fingerprint string
		sims        map[int][]float64
	)
	err := s.readFile(name, kindSimSet, func(r io.Reader) error {
		var fpLen uint32
		if err := binary.Read(r, binary.LittleEndian, &fpLen); err != nil || fpLen > 1<<16 {
			return ErrCorrupt
		}
		fp := make([]byte, fpLen)
		if _, err := io.ReadFull(r, fp); err != nil {
			return ErrCorrupt
		}
		fingerprint = string(fp)
		var count uint64
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil || count > 1<<40 {
			return ErrCorrupt
		}
		sims = make(map[int][]float64, count)
		for i := uint64(0); i < count; i++ {
			var key uint64
			if err := binary.Read(r, binary.LittleEndian, &key); err != nil || key > 1<<62 {
				return ErrCorrupt
			}
			var n uint32
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil || n > 1<<30 {
				return ErrCorrupt
			}
			cells := make([]float64, n)
			if err := binary.Read(r, binary.LittleEndian, cells); err != nil {
				return ErrCorrupt
			}
			sims[int(key)] = cells
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	return fingerprint, sims, nil
}

// SaveMatrices stores an ordered list of dense matrices — the artifact
// unit the distributed runtime uses for factor matrices and Gram
// matrices. Like every object it inherits the atomic temp+rename+CRC
// protocol, so a reader either sees the complete list or ErrNotFound.
func (s *Store) SaveMatrices(name string, ms []*mat.Matrix) error {
	return s.writeFile(name, kindMatrices, func(w io.Writer) error {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ms))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, m := range ms {
			if err := binary.Write(w, binary.LittleEndian, uint64(m.Rows)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, uint64(m.Cols)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, m.Data); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return nil
	})
}

// LoadMatrices reads a matrix list saved with SaveMatrices.
func (s *Store) LoadMatrices(name string) ([]*mat.Matrix, error) {
	var out []*mat.Matrix
	err := s.readFile(name, kindMatrices, func(r io.Reader) error {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil || n > 256 {
			return ErrCorrupt
		}
		out = make([]*mat.Matrix, n)
		for i := range out {
			var rows, cols uint64
			if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
				return ErrCorrupt
			}
			if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
				return ErrCorrupt
			}
			if rows > 1<<24 || cols > 1<<24 {
				return ErrCorrupt
			}
			m := mat.New(int(rows), int(cols))
			if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
				return ErrCorrupt
			}
			out[i] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SaveDecomposition stores a Tucker decomposition (core plus factors).
func (s *Store) SaveDecomposition(name string, d tucker.Decomposition) error {
	return s.writeFile(name, kindTucker, func(w io.Writer) error {
		if err := writeShape(w, d.Core.Shape); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, d.Core.Data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(d.Factors))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, f := range d.Factors {
			if err := binary.Write(w, binary.LittleEndian, uint64(f.Rows)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, uint64(f.Cols)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := binary.Write(w, binary.LittleEndian, f.Data); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return nil
	})
}

// LoadDecomposition reads a decomposition saved with SaveDecomposition.
func (s *Store) LoadDecomposition(name string) (tucker.Decomposition, error) {
	var out tucker.Decomposition
	err := s.readFile(name, kindTucker, func(r io.Reader) error {
		shape, err := readShape(r)
		if err != nil {
			return err
		}
		core := tensor.NewDense(shape)
		if err := binary.Read(r, binary.LittleEndian, core.Data); err != nil {
			return ErrCorrupt
		}
		var nf uint32
		if err := binary.Read(r, binary.LittleEndian, &nf); err != nil || nf > 64 {
			return ErrCorrupt
		}
		factors := make([]*mat.Matrix, nf)
		ranks := make([]int, nf)
		for i := range factors {
			var rows, cols uint64
			if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
				return ErrCorrupt
			}
			if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
				return ErrCorrupt
			}
			if rows > 1<<24 || cols > 1<<24 {
				return ErrCorrupt
			}
			f := mat.New(int(rows), int(cols))
			if err := binary.Read(r, binary.LittleEndian, f.Data); err != nil {
				return ErrCorrupt
			}
			factors[i] = f
			ranks[i] = int(cols)
		}
		out = tucker.Decomposition{Core: core, Factors: factors, Ranks: ranks}
		return nil
	})
	return out, err
}
