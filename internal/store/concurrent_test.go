package store

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestMatricesRoundtrip(t *testing.T) {
	s := testStore(t)
	a := mat.New(3, 2)
	for i := range a.Data {
		a.Data[i] = float64(i) * 1.5
	}
	b := mat.New(1, 4)
	b.Data = []float64{-1, 0, 2.25, 9}
	if err := s.SaveMatrices("fac", []*mat.Matrix{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadMatrices("fac")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d matrices, want 2", len(got))
	}
	for i, want := range []*mat.Matrix{a, b} {
		if !got[i].Equal(want, 0) {
			t.Fatalf("matrix %d differs after roundtrip", i)
		}
	}
	if _, err := s.LoadMatrices("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: %v, want ErrNotFound", err)
	}
	if _, err := s.LoadSparse("fac"); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestMatricesCorruptionDetected(t *testing.T) {
	s := testStore(t)
	m := mat.New(4, 4)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	if err := s.SaveMatrices("fac", []*mat.Matrix{m}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "fac.m2td")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadMatrices("fac"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted object: %v, want ErrCorrupt", err)
	}
}

// deadPID returns a pid that belonged to a just-exited process.
func deadPID(t *testing.T) int {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot run helper process: %v", err)
	}
	pid := cmd.Process.Pid
	if pidAlive(pid) {
		t.Fatalf("pid %d of exited process reported alive", pid)
	}
	return pid
}

func TestOpenSweepSparesLiveWritersTemps(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(dir, fmt.Sprintf(".tmp-%d-123456", os.Getpid()))
	init := filepath.Join(dir, ".tmp-1-654321") // pid 1 exists on every host
	dead := filepath.Join(dir, fmt.Sprintf(".tmp-%d-777777", deadPID(t)))
	legacy := filepath.Join(dir, ".tmp-garbage")
	for _, p := range []string{live, init, dead, legacy} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{live, init} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("live writer's temp %s swept: %v", filepath.Base(p), err)
		}
	}
	for _, p := range []string{dead, legacy} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s not swept (err %v)", filepath.Base(p), err)
		}
	}
}

// TestConcurrentOpenDuringWrites drives the exact contention the
// distributed runtime creates: several "workers" (goroutines here; the
// pid-liveness rule makes the cross-process case strictly easier) write
// objects through the atomic temp+rename protocol while others
// repeatedly Open the same catalog, triggering the orphan sweep
// mid-write. No write may fail, no completed object may be lost or
// corrupted. Run under -race in CI.
func TestConcurrentOpenDuringWrites(t *testing.T) {
	dir := t.TempDir()
	const writers, objects, openers = 4, 8, 3
	var wg sync.WaitGroup
	errc := make(chan error, writers+openers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < objects; i++ {
				x := tensor.NewSparse(tensor.Shape{8, 8})
				for e := 0; e < 16; e++ {
					x.Append([]int{(w + e) % 8, (i + e) % 8}, float64(w*1000+i*100+e))
				}
				if err := s.SaveSparse(fmt.Sprintf("w%d-obj%d", w, i), x); err != nil {
					errc <- fmt.Errorf("writer %d obj %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for o := 0; o < openers; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := Open(dir); err != nil {
					errc <- fmt.Errorf("concurrent open: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != writers*objects {
		t.Fatalf("%d objects survived, want %d", len(names), writers*objects)
	}
	for _, name := range names {
		if _, err := s.LoadSparse(name); err != nil {
			t.Fatalf("object %s unreadable after concurrent writes: %v", name, err)
		}
	}
}
