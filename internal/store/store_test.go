package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
	"repro/internal/tucker"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomSparse(rng *rand.Rand, shape tensor.Shape, nnz int) *tensor.Sparse {
	total := shape.NumElements()
	if nnz > total {
		nnz = total
	}
	seen := map[int]bool{}
	s := tensor.NewSparse(shape)
	idx := make([]int, shape.Order())
	for len(seen) < nnz {
		lin := rng.Intn(total)
		if seen[lin] {
			continue
		}
		seen[lin] = true
		shape.MultiIndex(lin, idx)
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

func TestSparseRoundtrip(t *testing.T) {
	s := testStore(t)
	rng := rand.New(rand.NewSource(150))
	orig := randomSparse(rng, tensor.Shape{6, 5, 4}, 40)
	if err := s.SaveSparse("ens", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSparse("ens")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape.Equal(orig.Shape) || got.NNZ() != orig.NNZ() {
		t.Fatalf("shape/nnz mismatch: %v/%d vs %v/%d", got.Shape, got.NNZ(), orig.Shape, orig.NNZ())
	}
	if !got.ToDense().Equal(orig.ToDense(), 0) {
		t.Fatal("values differ after roundtrip")
	}
}

func TestSparseMultiBlock(t *testing.T) {
	// More cells than one block.
	s := testStore(t)
	rng := rand.New(rand.NewSource(151))
	orig := randomSparse(rng, tensor.Shape{30, 30, 30}, BlockSize+100)
	if err := s.SaveSparse("big", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSparse("big")
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != orig.NNZ() {
		t.Fatalf("NNZ %d != %d across block boundary", got.NNZ(), orig.NNZ())
	}
	if !got.ToDense().Equal(orig.ToDense(), 0) {
		t.Fatal("multi-block roundtrip corrupted values")
	}
}

func TestDenseRoundtrip(t *testing.T) {
	s := testStore(t)
	rng := rand.New(rand.NewSource(152))
	orig := tensor.NewDense(tensor.Shape{7, 9, 3})
	for i := range orig.Data {
		orig.Data[i] = rng.NormFloat64()
	}
	if err := s.SaveDense("truth", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDense("truth")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig, 0) {
		t.Fatal("dense roundtrip corrupted values")
	}
}

func TestDecompositionRoundtrip(t *testing.T) {
	s := testStore(t)
	rng := rand.New(rand.NewSource(153))
	x := randomSparse(rng, tensor.Shape{6, 5, 4}, 60)
	orig := tucker.HOSVD(x, []int{2, 3, 2})
	if err := s.SaveDecomposition("dec", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDecomposition("dec")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Core.Equal(orig.Core, 0) {
		t.Fatal("core corrupted")
	}
	for n := range orig.Factors {
		if !got.Factors[n].Equal(orig.Factors[n], 0) {
			t.Fatalf("factor %d corrupted", n)
		}
		if got.Ranks[n] != orig.Ranks[n] {
			t.Fatalf("rank %d = %d, want %d", n, got.Ranks[n], orig.Ranks[n])
		}
	}
	if !got.Reconstruct().Equal(orig.Reconstruct(), 1e-12) {
		t.Fatal("reconstruction differs after roundtrip")
	}
}

func TestListAndDelete(t *testing.T) {
	s := testStore(t)
	sp := tensor.NewSparse(tensor.Shape{2, 2})
	sp.Append([]int{0, 1}, 1)
	if err := s.SaveSparse("b", sp); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSparse("a", sp); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	names, _ = s.List()
	if len(names) != 1 {
		t.Fatalf("List after delete = %v", names)
	}
}

func TestLoadMissing(t *testing.T) {
	s := testStore(t)
	if _, err := s.LoadSparse("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing load: %v", err)
	}
}

func TestInvalidNames(t *testing.T) {
	s := testStore(t)
	sp := tensor.NewSparse(tensor.Shape{2})
	for _, bad := range []string{"", "..", "a/b", `a\b`} {
		if err := s.SaveSparse(bad, sp); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := testStore(t)
	rng := rand.New(rand.NewSource(154))
	orig := randomSparse(rng, tensor.Shape{5, 5}, 10)
	if err := s.SaveSparse("x", orig); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file.
	path := filepath.Join(s.Dir(), "x.m2td")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSparse("x"); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestTruncationDetected(t *testing.T) {
	s := testStore(t)
	rng := rand.New(rand.NewSource(155))
	orig := randomSparse(rng, tensor.Shape{5, 5}, 10)
	if err := s.SaveSparse("x", orig); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "x.m2td")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSparse("x"); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestKindMismatch(t *testing.T) {
	s := testStore(t)
	sp := tensor.NewSparse(tensor.Shape{2, 2})
	sp.Append([]int{1, 1}, 3)
	if err := s.SaveSparse("x", sp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDense("x"); err == nil {
		t.Fatal("kind mismatch not detected")
	}
}

func TestEmptySparse(t *testing.T) {
	s := testStore(t)
	if err := s.SaveSparse("empty", tensor.NewSparse(tensor.Shape{3, 3})); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSparse("empty")
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Fatalf("empty tensor loaded with %d cells", got.NNZ())
	}
}

func TestOverwrite(t *testing.T) {
	s := testStore(t)
	a := tensor.NewSparse(tensor.Shape{2})
	a.Append([]int{0}, 1)
	b := tensor.NewSparse(tensor.Shape{2})
	b.Append([]int{1}, 2)
	if err := s.SaveSparse("x", a); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSparse("x", b); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSparse("x")
	if err != nil {
		t.Fatal(err)
	}
	idx, v := got.Entry(0)
	if idx[0] != 1 || v != 2 {
		t.Fatal("overwrite did not replace contents")
	}
}

func TestOpenFailsOnFileCollision(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "notadir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file); err == nil {
		t.Fatal("Open over a plain file accepted")
	}
}

func TestDirAccessor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q", s.Dir())
	}
}

func TestListFailsOnMissingDir(t *testing.T) {
	s := &Store{dir: filepath.Join(t.TempDir(), "gone")}
	if _, err := s.List(); err == nil {
		t.Fatal("List on missing dir accepted")
	}
}

func TestDeleteInvalidName(t *testing.T) {
	s := testStore(t)
	if err := s.Delete("a/b"); err == nil {
		t.Fatal("path-traversal delete accepted")
	}
}

func TestLoadWithInvalidName(t *testing.T) {
	s := testStore(t)
	if _, err := s.LoadSparse(".."); err == nil {
		t.Fatal("invalid name load accepted")
	}
}

func TestCorruptHeaderVariants(t *testing.T) {
	s := testStore(t)
	sp := tensor.NewSparse(tensor.Shape{2, 2})
	sp.Append([]int{0, 0}, 1)
	if err := s.SaveSparse("x", sp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "x.m2td")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong magic.
	bad := append([]byte(nil), good...)
	copy(bad, "WRONGMAG")
	os.WriteFile(path, bad, 0o644)
	if _, err := s.LoadSparse("x"); err == nil {
		t.Fatal("wrong magic accepted")
	}
	// Wrong version.
	bad = append([]byte(nil), good...)
	bad[8] = 99
	os.WriteFile(path, bad, 0o644)
	if _, err := s.LoadSparse("x"); err == nil {
		t.Fatal("wrong version accepted")
	}
	// File shorter than any header.
	os.WriteFile(path, []byte("tiny"), 0o644)
	if _, err := s.LoadSparse("x"); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestDecompositionManyFactors(t *testing.T) {
	// Exercise the multi-factor encode/decode loop with a 4-mode core.
	s := testStore(t)
	rng := rand.New(rand.NewSource(156))
	x := randomSparse(rng, tensor.Shape{4, 3, 2, 5}, 50)
	orig := tucker.HOSVD(x, []int{2, 2, 2, 2})
	if err := s.SaveDecomposition("d4", orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDecomposition("d4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Factors) != 4 {
		t.Fatalf("%d factors", len(got.Factors))
	}
	if !got.Core.Equal(orig.Core, 0) {
		t.Fatal("core corrupted")
	}
}

func TestLoadDecompositionWrongKind(t *testing.T) {
	s := testStore(t)
	sp := tensor.NewSparse(tensor.Shape{2})
	sp.Append([]int{0}, 1)
	if err := s.SaveSparse("sp", sp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDecomposition("sp"); err == nil {
		t.Fatal("sparse loaded as decomposition")
	}
	d := tucker.HOSVD(sp, []int{1})
	if err := s.SaveDecomposition("dec", d); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSparse("dec"); err == nil {
		t.Fatal("decomposition loaded as sparse")
	}
}
