package store

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxBlobSize bounds LoadBlob allocations against corrupt length headers.
const maxBlobSize = 1 << 30

// SaveBlob stores an opaque byte payload — the catalog's escape hatch for
// small structured metadata (the campaign server persists JSON result
// headers next to their decompositions with it). Blobs inherit the
// store's atomic temp+rename+CRC protocol like every other kind: a reader
// sees the complete payload or ErrNotFound, never a torn write.
func (s *Store) SaveBlob(name string, data []byte) error {
	return s.writeFile(name, kindBlob, func(w io.Writer) error {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(data))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return nil
	})
}

// LoadBlob reads a payload saved with SaveBlob.
func (s *Store) LoadBlob(name string) ([]byte, error) {
	var out []byte
	err := s.readFile(name, kindBlob, func(r io.Reader) error {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil || n > maxBlobSize {
			return ErrCorrupt
		}
		out = make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return ErrCorrupt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
