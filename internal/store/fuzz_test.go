package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// FuzzLoadSparseRobustness feeds arbitrary bytes to the sparse loader: it
// must either return a clean error or a valid tensor — never panic.
func FuzzLoadSparseRobustness(f *testing.F) {
	// Seed with a valid file and a few mutations of it.
	dir := f.TempDir()
	s, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	sp := tensor.NewSparse(tensor.Shape{3, 2})
	sp.Append([]int{1, 1}, 2.5)
	sp.Append([]int{2, 0}, -1)
	if err := s.SaveSparse("seed", sp); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, "seed.m2td"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "x.m2td"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadSparse("x")
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				t.Fatal("existing file reported as not found")
			}
			return // clean rejection is the expected path for mutations
		}
		// Accepted files must decode to a well-formed tensor.
		if got == nil {
			t.Fatal("nil tensor with nil error")
		}
		got.Each(func(idx []int, v float64) {
			for k, i := range idx {
				if i < 0 || i >= got.Shape[k] {
					t.Fatalf("out-of-range index %v survived load", idx)
				}
			}
		})
	})
}
