// Package ode provides ordinary-differential-equation integrators used by
// the dynamical-system simulators: a fixed-step classical Runge–Kutta
// (RK4) method and an adaptive Dormand–Prince RK45 method.
//
// Systems are expressed as a derivative function dy = f(t, y) writing into
// a caller-provided slice, which keeps the hot integration loops
// allocation-free.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// Derivative computes dy/dt at time t for state y, writing the result into
// dst. Implementations must not retain y or dst.
type Derivative func(t float64, y, dst []float64)

// ErrStepUnderflow is returned by the adaptive integrator when the error
// controller drives the step size below the representable minimum,
// usually a sign the system is too stiff for an explicit method.
var ErrStepUnderflow = errors.New("ode: adaptive step size underflow")

// RK4 integrates y' = f(t, y) from (t0, y0) to t1 using n fixed steps of
// the classical 4th-order Runge–Kutta method and returns the final state.
func RK4(f Derivative, t0, t1 float64, y0 []float64, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("ode: RK4 requires positive step count, got %d", n))
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	h := (t1 - t0) / float64(n)
	t := t0
	for s := 0; s < n; s++ {
		rk4Step(f, t, h, y, k1, k2, k3, k4, tmp)
		t = t0 + float64(s+1)*h
	}
	return y
}

// rk4Step advances y in place by one RK4 step of size h.
func rk4Step(f Derivative, t, h float64, y, k1, k2, k3, k4, tmp []float64) {
	dim := len(y)
	f(t, y, k1)
	for i := 0; i < dim; i++ {
		tmp[i] = y[i] + h/2*k1[i]
	}
	f(t+h/2, tmp, k2)
	for i := 0; i < dim; i++ {
		tmp[i] = y[i] + h/2*k2[i]
	}
	f(t+h/2, tmp, k3)
	for i := 0; i < dim; i++ {
		tmp[i] = y[i] + h*k3[i]
	}
	f(t+h, tmp, k4)
	for i := 0; i < dim; i++ {
		y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// Trajectory integrates with RK4 and records the state at numSamples
// evenly spaced timestamps spanning (t0, t1], taking stepsPerSample RK4
// steps between consecutive samples. The returned slice has numSamples
// rows, each a copy of the state.
func Trajectory(f Derivative, t0, t1 float64, y0 []float64, numSamples, stepsPerSample int) [][]float64 {
	if numSamples <= 0 || stepsPerSample <= 0 {
		panic(fmt.Sprintf("ode: Trajectory requires positive sample counts, got %d, %d", numSamples, stepsPerSample))
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	out := make([][]float64, numSamples)
	dt := (t1 - t0) / float64(numSamples)
	h := dt / float64(stepsPerSample)
	for s := 0; s < numSamples; s++ {
		base := t0 + float64(s)*dt
		for q := 0; q < stepsPerSample; q++ {
			rk4Step(f, base+float64(q)*h, h, y, k1, k2, k3, k4, tmp)
		}
		out[s] = append([]float64(nil), y...)
	}
	return out
}

// Dormand–Prince RK5(4) coefficients.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// 5th-order solution weights (same as the last A row) and the
	// embedded 4th-order weights for error estimation.
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// RK45 integrates y' = f(t, y) from (t0, y0) to t1 with adaptive
// Dormand–Prince steps, holding the per-step mixed error below tol.
// It returns the final state.
func RK45(f Derivative, t0, t1 float64, y0 []float64, tol float64) ([]float64, error) {
	if tol <= 0 {
		panic(fmt.Sprintf("ode: RK45 requires positive tolerance, got %g", tol))
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	var k [7][]float64
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	y5 := make([]float64, dim)

	t := t0
	span := t1 - t0
	if span == 0 {
		return y, nil
	}
	h := span / 100 // initial guess; the controller adapts immediately
	dir := math.Copysign(1, span)
	h = math.Copysign(math.Abs(h), dir)
	const maxSteps = 10_000_000
	for step := 0; step < maxSteps; step++ {
		if (dir > 0 && t >= t1) || (dir < 0 && t <= t1) {
			return y, nil
		}
		if (dir > 0 && t+h > t1) || (dir < 0 && t+h < t1) {
			h = t1 - t
		}
		// Evaluate the seven stages.
		f(t, y, k[0])
		for s := 1; s < 7; s++ {
			for i := 0; i < dim; i++ {
				acc := y[i]
				for j := 0; j < s; j++ {
					acc += h * dpA[s][j] * k[j][i]
				}
				tmp[i] = acc
			}
			f(t+dpC[s]*h, tmp, k[s])
		}
		// 5th-order solution and embedded error estimate.
		var errNorm float64
		for i := 0; i < dim; i++ {
			var v5, v4 float64
			for s := 0; s < 7; s++ {
				v5 += dpB5[s] * k[s][i]
				v4 += dpB4[s] * k[s][i]
			}
			y5[i] = y[i] + h*v5
			scale := tol * (1 + math.Max(math.Abs(y[i]), math.Abs(y5[i])))
			e := h * (v5 - v4) / scale
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(dim))
		if errNorm <= 1 {
			t += h
			copy(y, y5)
		}
		// PI-free classic step-size update with safety factor.
		factor := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -0.2)
		factor = math.Min(5, math.Max(0.2, factor))
		h *= factor
		if math.Abs(h) < 1e-14*math.Max(math.Abs(t), 1) {
			return nil, ErrStepUnderflow
		}
	}
	return nil, fmt.Errorf("ode: RK45 exceeded %d steps", maxSteps)
}
