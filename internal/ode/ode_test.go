package ode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// expDecay: y' = -y, exact solution y(t) = y0·e^{-t}.
func expDecay(t float64, y, dst []float64) { dst[0] = -y[0] }

// harmonic oscillator: y” = -y as a 2-state system.
func harmonic(t float64, y, dst []float64) {
	dst[0] = y[1]
	dst[1] = -y[0]
}

func TestRK4ExponentialDecay(t *testing.T) {
	got := RK4(expDecay, 0, 1, []float64{1}, 100)
	want := math.Exp(-1)
	if math.Abs(got[0]-want) > 1e-8 {
		t.Fatalf("RK4 e^-1 = %v, want %v", got[0], want)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving the step size should reduce error by ~2^4 = 16.
	exact := math.Exp(-2)
	err := func(n int) float64 {
		y := RK4(expDecay, 0, 2, []float64{1}, n)
		return math.Abs(y[0] - exact)
	}
	e1, e2 := err(20), err(40)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 {
		t.Fatalf("convergence ratio = %v, want ≈16 (4th order)", ratio)
	}
}

func TestRK4HarmonicOscillatorPeriod(t *testing.T) {
	// After one full period 2π the oscillator returns to its start.
	y := RK4(harmonic, 0, 2*math.Pi, []float64{1, 0}, 1000)
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]) > 1e-6 {
		t.Fatalf("after period: %v, want [1 0]", y)
	}
}

func TestRK4EnergyConservation(t *testing.T) {
	// Harmonic oscillator conserves E = (y² + y'²)/2.
	y := RK4(harmonic, 0, 10, []float64{0.5, 0.25}, 2000)
	e0 := (0.5*0.5 + 0.25*0.25) / 2
	e1 := (y[0]*y[0] + y[1]*y[1]) / 2
	if math.Abs(e1-e0) > 1e-8 {
		t.Fatalf("energy drifted: %v -> %v", e0, e1)
	}
}

func TestRK4InvalidStepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RK4 with n=0 did not panic")
		}
	}()
	RK4(expDecay, 0, 1, []float64{1}, 0)
}

func TestRK4DoesNotMutateInitialState(t *testing.T) {
	y0 := []float64{1, 0}
	RK4(harmonic, 0, 1, y0, 10)
	if y0[0] != 1 || y0[1] != 0 {
		t.Fatal("RK4 mutated the initial state")
	}
}

func TestTrajectorySamples(t *testing.T) {
	traj := Trajectory(expDecay, 0, 1, []float64{1}, 4, 25)
	if len(traj) != 4 {
		t.Fatalf("got %d samples, want 4", len(traj))
	}
	for s, y := range traj {
		tt := float64(s+1) * 0.25
		if math.Abs(y[0]-math.Exp(-tt)) > 1e-8 {
			t.Fatalf("sample %d = %v, want %v", s, y[0], math.Exp(-tt))
		}
	}
}

func TestTrajectoryMatchesRK4Endpoint(t *testing.T) {
	traj := Trajectory(harmonic, 0, 3, []float64{1, 0}, 6, 10)
	direct := RK4(harmonic, 0, 3, []float64{1, 0}, 60)
	last := traj[len(traj)-1]
	for i := range direct {
		if math.Abs(last[i]-direct[i]) > 1e-12 {
			t.Fatalf("Trajectory endpoint %v != RK4 %v", last, direct)
		}
	}
}

func TestTrajectoryInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trajectory with zero samples did not panic")
		}
	}()
	Trajectory(expDecay, 0, 1, []float64{1}, 0, 1)
}

func TestRK45ExponentialDecay(t *testing.T) {
	got, err := RK45(expDecay, 0, 1, []float64{1}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-math.Exp(-1)) > 1e-8 {
		t.Fatalf("RK45 e^-1 = %v", got[0])
	}
}

func TestRK45ZeroSpan(t *testing.T) {
	got, err := RK45(expDecay, 2, 2, []float64{5}, 1e-8)
	if err != nil || got[0] != 5 {
		t.Fatalf("zero-span integration: %v, %v", got, err)
	}
}

func TestRK45Backward(t *testing.T) {
	// Integrate backwards: y(0) from y(1) = e^{-1} should give 1.
	got, err := RK45(expDecay, 1, 0, []float64{math.Exp(-1)}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-7 {
		t.Fatalf("backward integration = %v, want 1", got[0])
	}
}

func TestRK45HarmonicAccuracy(t *testing.T) {
	got, err := RK45(harmonic, 0, 2*math.Pi, []float64{1, 0}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-6 || math.Abs(got[1]) > 1e-6 {
		t.Fatalf("RK45 after period: %v", got)
	}
}

func TestRK45InvalidTolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RK45 with tol=0 did not panic")
		}
	}()
	RK45(expDecay, 0, 1, []float64{1}, 0)
}

// Property: RK4 and RK45 agree on smooth linear systems for random spans
// and initial conditions.
func TestRK4RK45AgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y0 := []float64{2*rng.Float64() - 1, 2*rng.Float64() - 1}
		span := 0.5 + 2*rng.Float64()
		a := RK4(harmonic, 0, span, y0, 2000)
		b, err := RK45(harmonic, 0, span, y0, 1e-11)
		if err != nil {
			return false
		}
		return math.Abs(a[0]-b[0]) < 1e-6 && math.Abs(a[1]-b[1]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(50))}); err != nil {
		t.Error(err)
	}
}

// Property: linearity — integrating c·y0 gives c times the result of y0
// for the linear decay system.
func TestRK4LinearityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y0 := rng.Float64() + 0.1
		c := rng.Float64()*3 + 0.5
		a := RK4(expDecay, 0, 1, []float64{y0}, 50)
		b := RK4(expDecay, 0, 1, []float64{c * y0}, 50)
		return math.Abs(b[0]-c*a[0]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Error(err)
	}
}
