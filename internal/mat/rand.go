package mat

import "math/rand"

// Random returns an r×c matrix with entries drawn uniformly from [-1, 1).
// All randomness in this module flows through explicit *rand.Rand values so
// experiments are reproducible bit-for-bit.
func Random(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomOrthonormal returns an r×c matrix (c ≤ r) with orthonormal columns,
// obtained by orthonormalising a random Gaussian matrix. Useful for
// constructing synthetic low-rank tensors with known factors in tests.
func RandomOrthonormal(rng *rand.Rand, r, c int) *Matrix {
	if c > r {
		panic("mat: RandomOrthonormal requires c <= r")
	}
	g := New(r, c)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return Orthonormalize(g)
}

// RandomSymmetric returns an n×n symmetric matrix with entries in [-1, 1).
func RandomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := 2*rng.Float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// RandomSPD returns a random symmetric positive-definite n×n matrix
// (aᵀa + n·I for random a), handy for exercising LU and Solve.
func RandomSPD(rng *rand.Rand, n int) *Matrix {
	a := Random(rng, n, n)
	spd := MulTransA(a, a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}
