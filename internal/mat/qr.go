package mat

import "math"

// QRResult holds a thin QR factorisation a = Q·R where Q is m×n with
// orthonormal columns and R is n×n upper triangular (for m ≥ n).
type QRResult struct {
	Q *Matrix
	R *Matrix
}

// QR computes the thin Householder QR factorisation of a (m×n, m ≥ n).
// For m < n the full m×m Q is returned with the m×n R.
func QR(a *Matrix) QRResult {
	m, n := a.Rows, a.Cols
	r := a.Clone()
	k := n
	if m < k {
		k = m
	}
	// Store Householder vectors to accumulate Q afterwards.
	vs := make([][]float64, 0, k)
	for j := 0; j < k; j++ {
		// Build the Householder vector for column j below the diagonal.
		v := make([]float64, m-j)
		var norm float64
		for i := j; i < m; i++ {
			v[i-j] = r.At(i, j)
			norm += v[i-j] * v[i-j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		if v[0] >= 0 {
			v[0] += norm
		} else {
			v[0] -= norm
		}
		vnorm := VecNorm(v)
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		// Apply the reflector to the trailing block of R.
		for c := j; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i-j] * r.At(i, c)
			}
			dot *= 2
			for i := j; i < m; i++ {
				r.Set(i, c, r.At(i, c)-dot*v[i-j])
			}
		}
		vs = append(vs, v)
	}
	// Accumulate Q by applying reflectors to the identity, in reverse.
	qcols := k
	q := New(m, qcols)
	for j := 0; j < qcols; j++ {
		q.Set(j, j, 1)
	}
	for j := k - 1; j >= 0; j-- {
		v := vs[j]
		if v == nil {
			continue
		}
		for c := 0; c < qcols; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i-j] * q.At(i, c)
			}
			dot *= 2
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-dot*v[i-j])
			}
		}
	}
	// Extract the upper-triangular R (k×n).
	rOut := New(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			rOut.Set(i, j, r.At(i, j))
		}
	}
	return QRResult{Q: q, R: rOut}
}

// Orthonormalize returns a matrix whose columns form an orthonormal basis
// for the column space of a, via modified Gram–Schmidt with
// re-orthogonalisation. Zero (dependent) columns are replaced by zeros so
// the output shape always matches the input; callers that need a strict
// basis should check column norms.
func Orthonormalize(a *Matrix) *Matrix {
	m, n := a.Rows, a.Cols
	q := a.Clone()
	for j := 0; j < n; j++ {
		// Two passes of Gram–Schmidt ("twice is enough").
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < j; p++ {
				var dot float64
				for i := 0; i < m; i++ {
					dot += q.At(i, p) * q.At(i, j)
				}
				for i := 0; i < m; i++ {
					q.Set(i, j, q.At(i, j)-dot*q.At(i, p))
				}
			}
		}
		norm := ColNorm(q, j)
		if norm < 1e-12 {
			for i := 0; i < m; i++ {
				q.Set(i, j, 0)
			}
			continue
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, q.At(i, j)/norm)
		}
	}
	return q
}
