// Package mat provides dense matrix types and the linear-algebra kernels
// required by tensor decomposition: matrix products, Gram matrices,
// Householder QR, a cyclic Jacobi symmetric eigensolver, a one-sided Jacobi
// SVD, and an LU linear solver.
//
// The package is self-contained (standard library only) and tuned for the
// matrix shapes that arise in HOSVD of ensemble tensors: factor matrices are
// short and wide or tall and thin with both dimensions at most a few
// hundred, so O(n^3) dense algorithms with good numerical robustness (Jacobi
// methods) are preferred over blocked or randomized schemes.
//
// All matrices are row-major, addressed as Data[i*Cols+j].
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialised r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps the given backing slice (not copied) as an r×c matrix.
// len(data) must equal r*c.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice data length %d != %d×%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix from row slices. All rows must share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Dims returns the row and column counts.
func (m *Matrix) Dims() (int, int) { return m.Rows, m.Cols }

// IsSquare reports whether the matrix is square.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Equal reports whether two matrices have identical shape and all entries
// within tol of each other.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%d×%d)", m.Rows, m.Cols)
	if m.Rows*m.Cols > 100 {
		return b.String()
	}
	b.WriteString("[\n")
	for i := 0; i < m.Rows; i++ {
		b.WriteString("  ")
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
		b.WriteString("\n")
	}
	b.WriteString("]")
	return b.String()
}

// SubMatrix returns a copy of the block with rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: SubMatrix [%d:%d, %d:%d] out of range for %d×%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// FirstColumns returns a copy of the leading k columns. If k exceeds the
// column count, the result is zero-padded on the right; this is the shape
// contract HOSVD relies on when a requested rank exceeds a mode size.
func (m *Matrix) FirstColumns(k int) *Matrix {
	out := New(m.Rows, k)
	kc := k
	if m.Cols < kc {
		kc = m.Cols
	}
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:kc], m.Row(i)[:kc])
	}
	return out
}
