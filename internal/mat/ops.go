package mat

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Add returns a + b. Shapes must match.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a - b. Shapes must match.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// Average returns (a + b) / 2, the element-wise mean used by M2TD-AVG to
// fuse pivot-mode factor matrices.
func Average(a, b *Matrix) *Matrix {
	checkSameShape("Average", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = (v + b.Data[i]) / 2
	}
	return out
}

// mulBlockK is the k-panel width of the blocked matmul kernel: b's rows
// are streamed panel by panel so a panel of b stays cache-resident while
// a block of output rows accumulates against it.
const mulBlockK = 128

// Mul returns the matrix product a·b. It runs on the package-default
// worker pool; see MulWorkers.
func Mul(a, b *Matrix) *Matrix { return MulWorkers(a, b, 0) }

// MulWorkers is the blocked, row-parallel matrix product: output rows are
// partitioned across workers (disjoint writes), and within a row block the
// k dimension is processed in ascending panels, so every output element
// accumulates its k contributions in exactly the serial ikj order —
// bit-identical results for any worker count. Fan-out is grained by the
// autotuned per-row cost, so the small I_n×I_n products in the
// eigensolver path never spawn goroutines they cannot amortise.
func MulWorkers(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	parallel.ForGrain(a.Rows, workers, parallel.AutoGrain(float64(a.Cols)*float64(b.Cols)), func(i0, i1 int) {
		for kk := 0; kk < a.Cols; kk += mulBlockK {
			kend := kk + mulBlockK
			if kend > a.Cols {
				kend = a.Cols
			}
			for i := i0; i < i1; i++ {
				arow := a.Row(i)
				orow := out.Row(i)
				for k := kk; k < kend; k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					brow := b.Row(k)
					for j := range brow {
						orow[j] += aik * brow[j]
					}
				}
			}
		}
	})
	return out
}

// MulTransA returns aᵀ·b. It runs on the package-default worker pool; see
// MulTransAWorkers.
func MulTransA(a, b *Matrix) *Matrix { return MulTransAWorkers(a, b, 0) }

// MulTransAWorkers is aᵀ·b with output rows (a's columns) partitioned
// across workers. Each worker walks k in ascending order for its own
// output rows, matching the serial accumulation order exactly.
func MulTransAWorkers(a, b *Matrix, workers int) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulTransA shape mismatch (%d×%d)ᵀ · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	parallel.ForGrain(a.Cols, workers, parallel.AutoGrain(float64(a.Rows)*float64(b.Cols)), func(i0, i1 int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := i0; i < i1; i++ {
				aki := arow[i]
				if aki == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bkj := range brow {
					orow[j] += aki * bkj
				}
			}
		}
	})
	return out
}

// MulTransB returns a·bᵀ. It runs on the package-default worker pool; see
// MulTransBWorkers.
func MulTransB(a, b *Matrix) *Matrix { return MulTransBWorkers(a, b, 0) }

// MulTransBWorkers is a·bᵀ with output rows partitioned across workers;
// each row is an independent set of dot products, so results are
// bit-identical for any worker count.
func MulTransBWorkers(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransB shape mismatch %d×%d · (%d×%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	parallel.ForGrain(a.Rows, workers, parallel.AutoGrain(float64(b.Rows)*float64(a.Cols)), func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %d×%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		var s float64
		for k, v := range arow {
			s += v * x[k]
		}
		out[i] = s
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	parallel.ForGrain(a.Rows, 0, parallel.AutoGrain(float64(a.Cols)), func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			for j := 0; j < a.Cols; j++ {
				out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
			}
		}
	})
	return out
}

// Gram returns a·aᵀ (the row Gram matrix). HOSVD uses this on mode-n
// matricizations: left singular vectors of X are eigenvectors of X·Xᵀ.
// It runs on the package-default worker pool; see GramWorkers.
func Gram(a *Matrix) *Matrix { return MulTransB(a, a) }

// GramWorkers is Gram with the accumulation fanned out over the given
// worker count (rows of the output are computed independently).
func GramWorkers(a *Matrix, workers int) *Matrix { return MulTransBWorkers(a, a, workers) }

// FrobeniusNorm returns the Frobenius norm ‖a‖F.
func FrobeniusNorm(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowNorm returns the Euclidean norm of row i, the "energy" used by
// M2TD-SELECT's row-selection rule (Algorithm 5).
func RowNorm(a *Matrix, i int) float64 {
	var s float64
	for _, v := range a.Row(i) {
		s += v * v
	}
	return math.Sqrt(s)
}

// ColNorm returns the Euclidean norm of column j.
func ColNorm(a *Matrix, j int) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		v := a.Data[i*a.Cols+j]
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// VecNorm returns the Euclidean norm of a vector.
func VecNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ConcatRows returns the matrix [a; b] stacking b's rows below a's.
// Column counts must match.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: ConcatRows column mismatch %d != %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// ConcatCols returns the matrix [a b] appending b's columns after a's.
// Row counts must match. M2TD-CONCAT concatenates pivot-mode matricizations
// this way before extracting singular vectors.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: ConcatCols row mismatch %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// IsOrthonormalCols reports whether the columns of a are orthonormal
// within tol (aᵀa ≈ I).
func IsOrthonormalCols(a *Matrix, tol float64) bool {
	g := MulTransA(a, a)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(g.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
