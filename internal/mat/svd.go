package mat

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition a = U·diag(σ)·Vᵀ,
// with singular values sorted in decreasing order, U m×k and V n×k where
// k = min(m, n).
type SVDResult struct {
	U      *Matrix
	Values []float64
	V      *Matrix
}

// svdMaxSweeps bounds one-sided Jacobi sweeps; convergence is quadratic.
const svdMaxSweeps = 64

// SVD computes a thin singular value decomposition via the one-sided Jacobi
// method applied to the columns of a (or of aᵀ when m < n, transposing the
// roles of U and V afterwards). One-sided Jacobi computes every singular
// value to high relative accuracy, which matters for the accuracy metric in
// the M2TD experiments where reconstruction errors span many orders of
// magnitude.
func SVD(a *Matrix) SVDResult {
	if a.Rows >= a.Cols {
		u, s, v := onesidedJacobi(a)
		return SVDResult{U: u, Values: s, V: v}
	}
	u, s, v := onesidedJacobi(Transpose(a))
	return SVDResult{U: v, Values: s, V: u}
}

// onesidedJacobi factors a (m×n, m ≥ n) as U·diag(σ)·Vᵀ by orthogonalising
// the columns of a working copy with plane rotations accumulated into V.
func onesidedJacobi(a *Matrix) (*Matrix, []float64, *Matrix) {
	m, n := a.Rows, a.Cols
	w := a.Clone()
	v := Identity(n)

	var frob float64
	for _, x := range w.Data {
		frob += x * x
	}
	tol := 1e-30 * (frob + 1e-300)

	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Inner products of columns p and q.
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if gamma*gamma <= tol*math.Max(alpha*beta, 1e-300) || gamma == 0 {
					continue
				}
				rotated = true
				// Jacobi rotation that zeroes the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Column norms of the rotated matrix are the singular values.
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		sigma[j] = ColNorm(w, j)
	}
	// Sort in decreasing order, permuting columns of w (→U) and v together.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return sigma[idx[x]] > sigma[idx[y]] })

	u := New(m, n)
	vOut := New(n, n)
	sOut := make([]float64, n)
	for newCol, oldCol := range idx {
		sOut[newCol] = sigma[oldCol]
		if sigma[oldCol] > 1e-300 {
			inv := 1 / sigma[oldCol]
			for i := 0; i < m; i++ {
				u.Set(i, newCol, w.At(i, oldCol)*inv)
			}
		}
		for i := 0; i < n; i++ {
			vOut.Set(i, newCol, v.At(i, oldCol))
		}
	}
	canonicalizeSVDSigns(u, vOut)
	return u, sOut, vOut
}

// canonicalizeSVDSigns flips paired columns of U and V so each U column's
// largest-magnitude entry is positive, keeping U·Σ·Vᵀ unchanged while making
// the factorisation deterministic.
func canonicalizeSVDSigns(u, v *Matrix) {
	for j := 0; j < u.Cols; j++ {
		maxAbs, maxVal := 0.0, 0.0
		for i := 0; i < u.Rows; i++ {
			if ab := math.Abs(u.At(i, j)); ab > maxAbs {
				maxAbs = ab
				maxVal = u.At(i, j)
			}
		}
		if maxVal < 0 {
			for i := 0; i < u.Rows; i++ {
				u.Set(i, j, -u.At(i, j))
			}
			if j < v.Cols {
				for i := 0; i < v.Rows; i++ {
					v.Set(i, j, -v.At(i, j))
				}
			}
		}
	}
}

// LeadingLeftSingularVectors returns the k leading left singular vectors of
// a as the columns of an m×k matrix.
//
// They are computed as the leading eigenvectors of the row Gram matrix
// a·aᵀ (m×m). For HOSVD matricizations m = Iₙ is small while the column
// count is the product of all other mode sizes, so the Gram route avoids
// ever rotating the (potentially enormous) unfolding. Callers that already
// hold a Gram matrix should use LeadingEigenvectors directly.
func LeadingLeftSingularVectors(a *Matrix, k int) *Matrix {
	return LeadingEigenvectors(Gram(a), k)
}

// Rank1Update adds s·x·yᵀ to m in place. Used to accumulate Gram matrices
// column-by-column from sparse matricizations.
func Rank1Update(m *Matrix, s float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("mat: Rank1Update shape mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		sxi := s * xi
		for j, yj := range y {
			row[j] += sxi * yj
		}
	}
}
