package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got, want := Add(a, b), FromRows([][]float64{{6, 8}, {10, 12}}); !got.Equal(want, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got, want := Sub(b, a), FromRows([][]float64{{4, 4}, {4, 4}}); !got.Equal(want, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got, want := Scale(2, a), FromRows([][]float64{{2, 4}, {6, 8}}); !got.Equal(want, 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got, want := Average(a, b), FromRows([][]float64{{3, 4}, {5, 6}}); !got.Equal(want, 0) {
		t.Fatalf("Average = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(2, 3)
	for name, fn := range map[string]func(){
		"Add":        func() { Add(a, b) },
		"Sub":        func() { Sub(a, b) },
		"Average":    func() { Average(a, b) },
		"Mul":        func() { Mul(b, b) },
		"MulTransA":  func() { MulTransA(a, New(3, 2)) },
		"MulTransB":  func() { MulTransB(a, b) },
		"MulVec":     func() { MulVec(a, []float64{1}) },
		"ConcatRows": func() { ConcatRows(a, b) },
		"ConcatCols": func() { ConcatCols(a, New(3, 1)) },
		"Dot":        func() { Dot([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Random(rng, 4, 6)
	if !Mul(Identity(4), a).Equal(a, 1e-14) {
		t.Fatal("I·a != a")
	}
	if !Mul(a, Identity(6)).Equal(a, 1e-14) {
		t.Fatal("a·I != a")
	}
}

func TestMulTransVariantsAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Random(rng, 5, 3)
	b := Random(rng, 5, 4)
	if !MulTransA(a, b).Equal(Mul(Transpose(a), b), 1e-12) {
		t.Fatal("MulTransA disagrees with explicit transpose product")
	}
	c := Random(rng, 6, 3)
	if !MulTransB(a, c).Equal(Mul(a, Transpose(c)), 1e-12) {
		t.Fatal("MulTransB disagrees with explicit transpose product")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MulVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Random(rng, 4, 7)
	if !Transpose(Transpose(a)).Equal(a, 0) {
		t.Fatal("transpose is not an involution")
	}
	if Transpose(a).Rows != 7 || Transpose(a).Cols != 4 {
		t.Fatal("transpose dims wrong")
	}
}

func TestGram(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Random(rng, 4, 9)
	g := Gram(a)
	if !g.Equal(Mul(a, Transpose(a)), 1e-12) {
		t.Fatal("Gram != a·aᵀ")
	}
	if !g.Equal(Transpose(g), 1e-12) {
		t.Fatal("Gram not symmetric")
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{3, 4}, {0, 0}})
	if got := FrobeniusNorm(a); math.Abs(got-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := RowNorm(a, 0); math.Abs(got-5) > 1e-14 {
		t.Fatalf("RowNorm(0) = %v, want 5", got)
	}
	if got := RowNorm(a, 1); got != 0 {
		t.Fatalf("RowNorm(1) = %v, want 0", got)
	}
	if got := ColNorm(a, 0); math.Abs(got-3) > 1e-14 {
		t.Fatalf("ColNorm(0) = %v, want 3", got)
	}
	if got := VecNorm([]float64{1, 2, 2}); math.Abs(got-3) > 1e-14 {
		t.Fatalf("VecNorm = %v, want 3", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestConcat(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	rows := ConcatRows(a, b)
	if rows.Rows != 3 || rows.At(2, 1) != 6 || rows.At(0, 0) != 1 {
		t.Fatalf("ConcatRows = %v", rows)
	}
	c := FromRows([][]float64{{7}, {8}})
	d := FromRows([][]float64{{9, 10}, {11, 12}})
	cols := ConcatCols(c, d)
	if cols.Cols != 3 || cols.At(1, 0) != 8 || cols.At(0, 2) != 10 {
		t.Fatalf("ConcatCols = %v", cols)
	}
}

func TestIsOrthonormalCols(t *testing.T) {
	if !IsOrthonormalCols(Identity(3), 1e-14) {
		t.Fatal("identity should be orthonormal")
	}
	bad := FromRows([][]float64{{1, 1}, {0, 1}})
	if IsOrthonormalCols(bad, 1e-10) {
		t.Fatal("non-orthogonal matrix passed the check")
	}
}

func TestRank1Update(t *testing.T) {
	m := New(2, 3)
	Rank1Update(m, 2, []float64{1, 2}, []float64{3, 4, 5})
	want := FromRows([][]float64{{6, 8, 10}, {12, 16, 20}})
	if !m.Equal(want, 1e-14) {
		t.Fatalf("Rank1Update = %v, want %v", m, want)
	}
}

// Property: matrix multiplication is associative and distributes over
// addition, for random small matrices.
func TestMulPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	assoc := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 3, 4)
		b := Random(rng, 4, 5)
		c := Random(rng, 5, 2)
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)), 1e-10)
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	distrib := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 3, 4)
		b := Random(rng, 4, 2)
		c := Random(rng, 4, 2)
		return Mul(a, Add(b, c)).Equal(Add(Mul(a, b), Mul(a, c)), 1e-10)
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

// Property: ‖a·x‖ ≤ ‖a‖F·‖x‖ (Frobenius norm bounds the spectral norm).
func TestOperatorNormBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 4, 6)
		x := make([]float64, 6)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		return VecNorm(MulVec(a, x)) <= FrobeniusNorm(a)*VecNorm(x)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Hadamard(a, b)
	want := FromRows([][]float64{{5, 12}, {21, 32}})
	if !got.Equal(want, 0) {
		t.Fatalf("Hadamard = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Hadamard shape mismatch did not panic")
		}
	}()
	Hadamard(a, New(3, 2))
}

func TestPseudoInverseSymInMat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := RandomSPD(rng, 4)
	p := PseudoInverseSym(a, 1e-12)
	if !Mul(a, p).Equal(Identity(4), 1e-8) {
		t.Fatal("pinv of SPD != inverse")
	}
	// Rank-deficient PSD matrix: the Penrose identities hold.
	x := Random(rng, 4, 2)
	psd := MulTransB(x, x) // rank ≤ 2
	pp := PseudoInverseSym(psd, 1e-10)
	if !Mul(Mul(psd, pp), psd).Equal(psd, 1e-8) {
		t.Fatal("a·pinv·a != a for rank-deficient PSD")
	}
}

func TestPseudoInverseInMat(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Wide matrix: right inverse.
	a := Random(rng, 3, 5)
	p := PseudoInverse(a, 1e-12)
	if !Mul(a, p).Equal(Identity(3), 1e-8) {
		t.Fatal("a·pinv != I for full-row-rank wide matrix")
	}
	// Zero matrix: pinv is zero.
	z := PseudoInverse(New(3, 2), 1e-12)
	if FrobeniusNorm(z) != 0 {
		t.Fatal("pinv of zero matrix not zero")
	}
}

func TestRank1UpdateSkipsZeroAndPanics(t *testing.T) {
	m := New(2, 2)
	Rank1Update(m, 1, []float64{0, 1}, []float64{2, 3})
	if m.At(0, 0) != 0 || m.At(1, 1) != 3 {
		t.Fatalf("Rank1Update = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Rank1Update shape mismatch did not panic")
		}
	}()
	Rank1Update(m, 1, []float64{1}, []float64{1, 2})
}

func TestRandomOrthonormalPanicsWideInput(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	defer func() {
		if recover() == nil {
			t.Fatal("RandomOrthonormal(c>r) did not panic")
		}
	}()
	RandomOrthonormal(rng, 2, 3)
}
