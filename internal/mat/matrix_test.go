package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewZeroInitialised(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", m.Data)
	}
	// FromSlice wraps without copying.
	data[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("FromSlice copied data; expected aliasing")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %d×%d, want 3×2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("FromRows(nil) = %d×%d, want 0×0", empty.Rows, empty.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestSetAtRoundtrip(t *testing.T) {
	m := New(5, 7)
	m.Set(3, 6, 2.5)
	if m.At(3, 6) != 2.5 {
		t.Fatalf("At after Set = %v, want 2.5", m.At(3, 6))
	}
}

func TestRowAliasesAndColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	r[0] = 40
	if m.At(1, 0) != 40 {
		t.Fatal("Row should alias storage")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col(2) = %v, want [3 6]", c)
	}
	c[0] = 99
	if m.At(0, 2) == 99 {
		t.Fatal("Col should copy, not alias")
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 0) != 7 || m.At(1, 2) != 9 {
		t.Fatalf("SetRow result %v", m.Row(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetRow with wrong length did not panic")
		}
	}()
	m.SetRow(0, []float64{1})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should deep-copy")
	}
}

func TestEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 2.0000001}, {3, 4}})
	if !a.Equal(b, 1e-5) {
		t.Fatal("matrices should be equal within tol")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("matrices should differ at tight tol")
	}
	c := New(2, 3)
	if a.Equal(c, 1) {
		t.Fatal("shape mismatch must not be equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if !strings.Contains(small.String(), "1") {
		t.Fatalf("small String() = %q should include entries", small.String())
	}
	large := New(20, 20)
	if strings.Contains(large.String(), "[") {
		t.Fatalf("large String() should elide entries, got %q", large.String())
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	s := m.SubMatrix(1, 3, 1, 3)
	want := FromRows([][]float64{{6, 7}, {10, 11}})
	if !s.Equal(want, 0) {
		t.Fatalf("SubMatrix = %v, want %v", s, want)
	}
}

func TestSubMatrixOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SubMatrix did not panic")
		}
	}()
	m.SubMatrix(0, 3, 0, 1)
}

func TestFirstColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	f := m.FirstColumns(2)
	want := FromRows([][]float64{{1, 2}, {4, 5}})
	if !f.Equal(want, 0) {
		t.Fatalf("FirstColumns(2) = %v, want %v", f, want)
	}
	// Requesting more columns than exist zero-pads.
	g := m.FirstColumns(5)
	if g.Cols != 5 {
		t.Fatalf("FirstColumns(5).Cols = %d, want 5", g.Cols)
	}
	if g.At(0, 3) != 0 || g.At(1, 4) != 0 {
		t.Fatal("padding columns must be zero")
	}
	if g.At(0, 2) != 3 {
		t.Fatal("original columns must be preserved")
	}
}

func TestDimsIsSquare(t *testing.T) {
	m := New(3, 3)
	r, c := m.Dims()
	if r != 3 || c != 3 || !m.IsSquare() {
		t.Fatal("Dims/IsSquare broken for square matrix")
	}
	if New(2, 3).IsSquare() {
		t.Fatal("2×3 reported square")
	}
}

func TestRandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Random(rng, 10, 10)
	for _, v := range m.Data {
		if v < -1 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Random entry %v out of [-1, 1)", v)
		}
	}
}

func TestRandomOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := RandomOrthonormal(rng, 8, 5)
	if !IsOrthonormalCols(q, 1e-10) {
		t.Fatal("RandomOrthonormal columns not orthonormal")
	}
}

func TestRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := RandomSymmetric(rng, 6)
	if !s.Equal(Transpose(s), 0) {
		t.Fatal("RandomSymmetric not symmetric")
	}
}

func TestRandomSPDIsPositiveDefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := RandomSPD(rng, 6)
	eig := SymEig(s)
	for _, v := range eig.Values {
		if v <= 0 {
			t.Fatalf("SPD matrix has non-positive eigenvalue %v", v)
		}
	}
}
