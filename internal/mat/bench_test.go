package mat

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchMatrices(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return Random(rng, n, n), Random(rng, n, n)
}

func BenchmarkMul64(b *testing.B) {
	x, y := benchMatrices(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulTransB64(b *testing.B) {
	x, y := benchMatrices(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTransB(x, y)
	}
}

func BenchmarkGramWide(b *testing.B) {
	// HOSVD shape: few rows, many columns.
	rng := rand.New(rand.NewSource(2))
	x := Random(rng, 20, 4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gram(x)
	}
}

func BenchmarkSymEig(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 64} {
		a := RandomSymmetric(rng, n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SymEig(a)
			}
		})
	}
}

func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 64} {
		a := Random(rng, n, n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SVD(a)
			}
		})
	}
}

func BenchmarkQR(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := Random(rng, 128, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QR(a)
	}
}

func BenchmarkLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := RandomSPD(rng, 32)
	rhs := make([]float64, 32)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKhatriRao(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := Random(rng, 64, 8)
	y := Random(rng, 64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KhatriRao(x, y)
	}
}
