package mat

import (
	"fmt"
	"math"
)

// KhatriRao returns the column-wise Khatri–Rao product a ⊙ b: for matrices
// a (I×R) and b (J×R), the result is (I·J)×R with column r equal to the
// Kronecker product of a's and b's r-th columns. Row ordering follows the
// matricization convention used by CP-ALS: row index = i·J + j.
func KhatriRao(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: KhatriRao column mismatch %d != %d", a.Cols, b.Cols))
	}
	out := New(a.Rows*b.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := out.Row(i*b.Rows + j)
			for r := range orow {
				orow[r] = arow[r] * brow[r]
			}
		}
	}
	return out
}

// Hadamard returns the element-wise product a ∘ b. Shapes must match.
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// PseudoInverseSym returns the Moore–Penrose pseudo-inverse of a symmetric
// positive semi-definite matrix via its eigendecomposition, inverting only
// eigenvalues above tol·λ_max. CP-ALS uses this to invert the Hadamard
// product of factor Gram matrices, which turns singular when factors are
// collinear.
func PseudoInverseSym(a *Matrix, tol float64) *Matrix {
	eig := SymEig(a)
	n := a.Rows
	cutoff := tol * math.Max(math.Abs(eig.Values[0]), 1e-300)
	// pinv = V·diag(1/λ)·Vᵀ over eigenvalues above the cutoff.
	scaled := New(n, n)
	for j := 0; j < n; j++ {
		if eig.Values[j] <= cutoff {
			continue
		}
		inv := 1 / eig.Values[j]
		for i := 0; i < n; i++ {
			scaled.Set(i, j, eig.Vectors.At(i, j)*inv)
		}
	}
	return MulTransB(scaled, eig.Vectors)
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a general
// matrix via its SVD, inverting singular values above tol·σ_max.
func PseudoInverse(a *Matrix, tol float64) *Matrix {
	svd := SVD(a)
	k := len(svd.Values)
	cutoff := tol * math.Max(svd.Values[0], 1e-300)
	// pinv = V·diag(1/σ)·Uᵀ.
	scaled := New(svd.V.Rows, k)
	for j := 0; j < k; j++ {
		if svd.Values[j] <= cutoff {
			continue
		}
		inv := 1 / svd.Values[j]
		for i := 0; i < svd.V.Rows; i++ {
			scaled.Set(i, j, svd.V.At(i, j)*inv)
		}
	}
	return MulTransB(scaled, svd.U)
}
