package mat_test

import (
	"fmt"

	"repro/internal/mat"
)

func ExampleMul() {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b := mat.FromRows([][]float64{{5, 6}, {7, 8}})
	c := mat.Mul(a, b)
	fmt.Println(c.Row(0), c.Row(1))
	// Output: [19 22] [43 50]
}

func ExampleSVD() {
	// diag(3, 2) embedded in a tall matrix: singular values 3 and 2.
	a := mat.FromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	r := mat.SVD(a)
	fmt.Printf("%.0f %.0f\n", r.Values[0], r.Values[1])
	// Output: 3 2
}

func ExampleSolve() {
	a := mat.FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := mat.Solve(a, []float64{5, 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f\n", x[0], x[1])
	// Output: 1 3
}

func ExampleKhatriRao() {
	a := mat.FromRows([][]float64{{1, 2}})
	b := mat.FromRows([][]float64{{3, 4}, {5, 6}})
	kr := mat.KhatriRao(a, b)
	fmt.Println(kr.Row(0), kr.Row(1))
	// Output: [3 8] [5 12]
}

func ExampleRowNorm() {
	// The "energy" M2TD-SELECT uses to pick factor rows.
	u := mat.FromRows([][]float64{{3, 4}})
	fmt.Println(mat.RowNorm(u, 0))
	// Output: 5
}
