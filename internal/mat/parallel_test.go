package mat

// Regression tests: the row-partitioned, k-blocked matmul kernels must be
// bit-identical for workers=1 and workers=N, and the blocked serial path
// must match a naive reference exactly (the k-panel order preserves each
// output element's accumulation order).

import (
	"math/rand"
	"strconv"
	"testing"
)

func randMat(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func bitsEqual(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, v, b.Data[i])
		}
	}
}

func TestMulWorkersBitStable(t *testing.T) {
	// Cols > mulBlockK exercises multiple k panels.
	a := randMat(37, 300, 1)
	b := randMat(300, 29, 2)
	want := MulWorkers(a, b, 1)
	for _, w := range []int{2, 4, 8, 64} {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			bitsEqual(t, "Mul", want, MulWorkers(a, b, w))
		})
	}
}

func TestMulBlockedMatchesNaiveOrder(t *testing.T) {
	// The blocked kernel must reproduce the plain ikj accumulation order
	// bit for bit: for every output element the k contributions are added
	// in ascending k regardless of panel boundaries.
	a := randMat(13, 517, 3) // deliberately not a multiple of the panel
	b := randMat(517, 11, 4)
	naive := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := naive.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += aik * brow[j]
			}
		}
	}
	bitsEqual(t, "Mul-blocked-vs-naive", naive, Mul(a, b))
}

func TestMulTransAWorkersBitStable(t *testing.T) {
	a := randMat(150, 23, 5)
	b := randMat(150, 31, 6)
	want := MulTransAWorkers(a, b, 1)
	for _, w := range []int{2, 4, 8} {
		bitsEqual(t, "MulTransA w="+strconv.Itoa(w), want, MulTransAWorkers(a, b, w))
	}
}

func TestMulTransBWorkersBitStable(t *testing.T) {
	a := randMat(41, 90, 7)
	b := randMat(33, 90, 8)
	want := MulTransBWorkers(a, b, 1)
	for _, w := range []int{2, 4, 8} {
		bitsEqual(t, "MulTransB w="+strconv.Itoa(w), want, MulTransBWorkers(a, b, w))
	}
}

func TestGramWorkersBitStable(t *testing.T) {
	a := randMat(60, 45, 9)
	want := GramWorkers(a, 1)
	for _, w := range []int{2, 8} {
		bitsEqual(t, "Gram w="+strconv.Itoa(w), want, GramWorkers(a, w))
	}
	bitsEqual(t, "Gram default", want, Gram(a))
}
