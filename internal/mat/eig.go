package mat

import (
	"math"
	"sort"
)

// EigResult holds a symmetric eigendecomposition a = V·diag(λ)·Vᵀ with
// eigenvalues sorted in decreasing order and eigenvectors as the columns
// of V in matching order.
type EigResult struct {
	Values  []float64
	Vectors *Matrix
}

// jacobiMaxSweeps bounds the number of cyclic Jacobi sweeps. Convergence is
// quadratic once off-diagonal mass is small; 64 sweeps is far beyond what
// any conditioned input needs and guards against non-termination on NaNs.
const jacobiMaxSweeps = 64

// SymEig computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. Only the lower triangle is read; the input
// is not modified. Eigenvalues are returned in decreasing order.
//
// Jacobi is chosen over QL/QR iteration because it is simple, numerically
// robust (small relative errors even for tiny eigenvalues), and the Gram
// matrices HOSVD feeds it are at most a few hundred rows.
func SymEig(a *Matrix) EigResult {
	if !a.IsSquare() {
		panic("mat: SymEig requires a square matrix")
	}
	n := a.Rows
	// Work on a symmetrised copy so tiny asymmetries from floating-point
	// Gram accumulation do not bias the rotations.
	w := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}
	var frob float64
	for _, x := range w.Data {
		frob += x * x
	}
	tol := 1e-28 * (frob + 1e-300)

	for sweep := 0; sweep < jacobiMaxSweeps && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle zeroing w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e30 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Update rows/columns p and q of w.
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := w.At(i, p)
					aiq := w.At(i, q)
					w.Set(i, p, c*aip-s*aiq)
					w.Set(p, i, c*aip-s*aiq)
					w.Set(i, q, s*aip+c*aiq)
					w.Set(q, i, s*aip+c*aiq)
				}
				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)

				// Accumulate the rotation into the eigenvector matrix.
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by decreasing eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newCol, v.At(i, oldCol))
		}
	}
	canonicalizeColumnSigns(sortedVecs)
	return EigResult{Values: sortedVals, Vectors: sortedVecs}
}

// LeadingEigenvectors returns the k eigenvectors of the symmetric matrix a
// with the largest eigenvalues, as the columns of an n×k matrix. If k
// exceeds n the result is zero-padded on the right.
func LeadingEigenvectors(a *Matrix, k int) *Matrix {
	eig := SymEig(a)
	return eig.Vectors.FirstColumns(k)
}

// canonicalizeColumnSigns flips each column so its largest-magnitude entry
// is positive. Eigenvectors are only defined up to sign; fixing it makes
// decompositions deterministic and comparable across code paths (AVG and
// SELECT fuse factor matrices from two decompositions and would otherwise
// average/compare vectors with arbitrarily opposite signs).
func canonicalizeColumnSigns(v *Matrix) {
	for j := 0; j < v.Cols; j++ {
		maxAbs, maxVal := 0.0, 0.0
		for i := 0; i < v.Rows; i++ {
			if ab := math.Abs(v.At(i, j)); ab > maxAbs {
				maxAbs = ab
				maxVal = v.At(i, j)
			}
		}
		if maxVal < 0 {
			for i := 0; i < v.Rows; i++ {
				v.Set(i, j, -v.At(i, j))
			}
		}
	}
}
