package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func reconstructSVD(r SVDResult) *Matrix {
	k := len(r.Values)
	us := r.U.Clone()
	for j := 0; j < k; j++ {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*r.Values[j])
		}
	}
	return MulTransB(us, r.V)
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{5, 3}, {6, 6}, {3, 5}, {1, 1}, {8, 2}} {
		a := Random(rng, dims[0], dims[1])
		qr := QR(a)
		recon := Mul(qr.Q, qr.R)
		if !recon.Equal(a, 1e-10) {
			t.Errorf("QR(%d×%d): Q·R != a (err %g)", dims[0], dims[1], FrobeniusNorm(Sub(recon, a)))
		}
		if !IsOrthonormalCols(qr.Q, 1e-10) {
			t.Errorf("QR(%d×%d): Q columns not orthonormal", dims[0], dims[1])
		}
		// R upper triangular.
		for i := 0; i < qr.R.Rows; i++ {
			for j := 0; j < i && j < qr.R.Cols; j++ {
				if math.Abs(qr.R.At(i, j)) > 1e-12 {
					t.Errorf("QR(%d×%d): R[%d,%d] = %v below diagonal", dims[0], dims[1], i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still reconstruct.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	qr := QR(a)
	if !Mul(qr.Q, qr.R).Equal(a, 1e-10) {
		t.Fatal("QR of rank-deficient matrix does not reconstruct")
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := Random(rng, 7, 4)
	q := Orthonormalize(a)
	if !IsOrthonormalCols(q, 1e-10) {
		t.Fatal("Orthonormalize output not orthonormal")
	}
	// Column space preserved: each original column is in span(q).
	proj := Mul(q, MulTransA(q, a))
	if !proj.Equal(a, 1e-8) {
		t.Fatal("Orthonormalize changed the column space")
	}
}

func TestOrthonormalizeDependentColumns(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	q := Orthonormalize(a)
	if n := ColNorm(q, 0); math.Abs(n-1) > 1e-10 {
		t.Fatalf("first column norm = %v, want 1", n)
	}
	if n := ColNorm(q, 1); n > 1e-10 {
		t.Fatalf("dependent column norm = %v, want 0", n)
	}
}

func TestSymEigDiagonal(t *testing.T) {
	d := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	eig := SymEig(d)
	want := []float64{3, 2, -1}
	for i, v := range want {
		if math.Abs(eig.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", eig.Values, want)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	eig := SymEig(a)
	if math.Abs(eig.Values[0]-3) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", eig.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v0 := eig.Vectors.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("leading eigenvector = %v", v0)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 5, 10, 25} {
		a := RandomSymmetric(rng, n)
		eig := SymEig(a)
		// a ≈ V·diag(λ)·Vᵀ
		vd := eig.Vectors.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vd.Set(i, j, vd.At(i, j)*eig.Values[j])
			}
		}
		recon := MulTransB(vd, eig.Vectors)
		if !recon.Equal(a, 1e-9) {
			t.Errorf("n=%d: V·Λ·Vᵀ != a (err %g)", n, FrobeniusNorm(Sub(recon, a)))
		}
		if !IsOrthonormalCols(eig.Vectors, 1e-10) {
			t.Errorf("n=%d: eigenvectors not orthonormal", n)
		}
		// Sorted decreasing.
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-12 {
				t.Errorf("n=%d: eigenvalues not sorted: %v", n, eig.Values)
			}
		}
	}
}

func TestSymEigNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SymEig of non-square matrix did not panic")
		}
	}()
	SymEig(New(2, 3))
}

func TestLeadingEigenvectors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := RandomSPD(rng, 8)
	full := SymEig(a)
	lead := LeadingEigenvectors(a, 3)
	if lead.Rows != 8 || lead.Cols != 3 {
		t.Fatalf("dims = %d×%d, want 8×3", lead.Rows, lead.Cols)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 8; i++ {
			if math.Abs(lead.At(i, j)-full.Vectors.At(i, j)) > 1e-12 {
				t.Fatal("LeadingEigenvectors disagrees with SymEig columns")
			}
		}
	}
	// Padding when k > n.
	pad := LeadingEigenvectors(a, 10)
	if pad.Cols != 10 || pad.At(0, 9) != 0 {
		t.Fatal("LeadingEigenvectors should zero-pad beyond n")
	}
}

func TestSVDKnownMatrix(t *testing.T) {
	// diag(3, 2) embedded in 3×2: singular values are 3, 2.
	a := FromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	r := SVD(a)
	if math.Abs(r.Values[0]-3) > 1e-12 || math.Abs(r.Values[1]-2) > 1e-12 {
		t.Fatalf("singular values = %v, want [3 2]", r.Values)
	}
}

func TestSVDReconstructionAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, dims := range [][2]int{{4, 4}, {6, 3}, {3, 6}, {1, 5}, {5, 1}, {10, 7}} {
		a := Random(rng, dims[0], dims[1])
		r := SVD(a)
		if !reconstructSVD(r).Equal(a, 1e-9) {
			t.Errorf("SVD(%d×%d) does not reconstruct", dims[0], dims[1])
		}
		if !IsOrthonormalCols(r.U, 1e-9) {
			t.Errorf("SVD(%d×%d): U not orthonormal", dims[0], dims[1])
		}
		if !IsOrthonormalCols(r.V, 1e-9) {
			t.Errorf("SVD(%d×%d): V not orthonormal", dims[0], dims[1])
		}
		for i := 1; i < len(r.Values); i++ {
			if r.Values[i] > r.Values[i-1]+1e-12 {
				t.Errorf("SVD(%d×%d): singular values not sorted: %v", dims[0], dims[1], r.Values)
			}
		}
		for _, s := range r.Values {
			if s < 0 {
				t.Errorf("SVD(%d×%d): negative singular value %v", dims[0], dims[1], s)
			}
		}
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	r := SVD(New(3, 2))
	for _, s := range r.Values {
		if s != 0 {
			t.Fatalf("zero matrix singular values = %v", r.Values)
		}
	}
}

func TestSVDRankOne(t *testing.T) {
	// x·yᵀ has exactly one nonzero singular value ‖x‖·‖y‖.
	x := []float64{1, 2, 2}
	y := []float64{3, 4}
	a := New(3, 2)
	Rank1Update(a, 1, x, y)
	r := SVD(a)
	if math.Abs(r.Values[0]-15) > 1e-10 { // ‖x‖=3, ‖y‖=5
		t.Fatalf("rank-1 leading singular value = %v, want 15", r.Values[0])
	}
	if r.Values[1] > 1e-10 {
		t.Fatalf("rank-1 second singular value = %v, want 0", r.Values[1])
	}
}

func TestLeadingLeftSingularVectorsMatchSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := Random(rng, 5, 40)
	u := LeadingLeftSingularVectors(a, 3)
	svd := SVD(a)
	// Compare subspaces via projector difference (vectors may differ in sign
	// even after canonicalisation when ties occur, so compare U·Uᵀ).
	p1 := MulTransB(u, u)
	u2 := svd.U.FirstColumns(3)
	p2 := MulTransB(u2, u2)
	if !p1.Equal(p2, 1e-8) {
		t.Fatal("Gram-route leading left singular vectors span a different subspace than SVD")
	}
}

func TestSVDSingularValuesMatchEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Random(rng, 6, 9)
	svd := SVD(a)
	eig := SymEig(Gram(a))
	for i := range svd.Values {
		if math.Abs(svd.Values[i]*svd.Values[i]-eig.Values[i]) > 1e-9 {
			t.Fatalf("σ² %v != Gram eigenvalues %v", svd.Values, eig.Values[:len(svd.Values)])
		}
	}
}

// Property: the Frobenius norm equals the 2-norm of the singular values.
func TestSVDFrobeniusIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 4, 5)
		r := SVD(a)
		return math.Abs(FrobeniusNorm(a)-VecNorm(r.Values)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Error(err)
	}
}

// Property: best rank-k truncation error equals the tail singular values
// (Eckart–Young).
func TestEckartYoungQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 5, 6)
		r := SVD(a)
		k := 2
		uk := r.U.FirstColumns(k)
		vk := r.V.FirstColumns(k)
		us := uk.Clone()
		for j := 0; j < k; j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*r.Values[j])
			}
		}
		trunc := MulTransB(us, vk)
		var tail float64
		for _, s := range r.Values[k:] {
			tail += s * s
		}
		err := FrobeniusNorm(Sub(a, trunc))
		return math.Abs(err-math.Sqrt(tail)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Error(err)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 8, 20} {
		a := RandomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: Solve differs at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("Solve of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := LU(New(2, 3)); err == nil {
		t.Fatal("LU of non-square matrix should error")
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-6)) > 1e-12 {
		t.Fatalf("Det = %v, want -6", f.Det())
	}
}

func TestInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := RandomSPD(rng, 5)
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).Equal(Identity(5), 1e-9) {
		t.Fatal("a·a⁻¹ != I")
	}
}

// Property: Solve returns a vector satisfying a·x = b to high precision.
func TestSolveResidualQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		a := RandomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := MulVec(a, x)
		for i := range res {
			res[i] -= b[i]
		}
		return VecNorm(res) < 1e-9*(VecNorm(b)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Error(err)
	}
}
