package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Solve and Invert when the matrix has no
// usable pivot (is singular to working precision).
var ErrSingular = errors.New("mat: matrix is singular")

// LUResult holds an LU factorisation with partial pivoting: P·a = L·U,
// stored compactly (L's unit diagonal implicit) with the pivot permutation.
type LUResult struct {
	lu    *Matrix
	pivot []int
	signs int // +1 or -1, parity of the permutation (for Det)
}

// LU factors a square matrix with partial pivoting.
func LU(a *Matrix) (*LUResult, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("mat: LU requires a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	signs := 1
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(lu.At(i, k)); ab > maxAbs {
				maxAbs = ab
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		pivot[k] = p
		if p != k {
			signs = -signs
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := lu.At(i, k) * inv
			lu.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return &LUResult{lu: lu, pivot: pivot, signs: signs}, nil
}

// SolveVec solves a·x = b for a single right-hand side using the
// factorisation.
func (f *LUResult) SolveVec(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveVec rhs length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LUResult) Det() float64 {
	d := float64(f.signs)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves a·x = b and returns x. The triple-pendulum simulator calls
// this each integration step to invert the 3×3 mass matrix.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// Invert returns a⁻¹.
func Invert(a *Matrix) (*Matrix, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.SolveVec(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
