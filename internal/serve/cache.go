package serve

import (
	"container/list"

	m2td "repro"
	"repro/api"
)

// cacheEntry is one finished campaign in the decomposition LRU: the
// producing job's identity, the wire result header, and the slim report
// Predict evaluates. Entries reconstructed from the durable store after a
// restart carry a nil report until first predicted against.
type cacheEntry struct {
	jobID  string
	info   *api.DecompositionInfo
	report *m2td.Report
}

// lruCache is a fingerprint-keyed LRU over finished decompositions,
// guarded by the server mutex. It sits in front of the durable store:
// eviction only costs the next identical submission a store read, never a
// recompute.
type lruCache struct {
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // fingerprint → element
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the entry for a fingerprint and marks it most recent.
func (c *lruCache) get(key string) *cacheEntry {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry
}

// put inserts or refreshes an entry, evicting the least recent beyond
// capacity.
func (c *lruCache) put(key string, e *cacheEntry) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruItem).key)
	}
}

// len reports the live entry count.
func (c *lruCache) len() int { return c.order.Len() }
