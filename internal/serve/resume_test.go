package serve

import (
	"context"
	"testing"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestKilledCampaignResumesFromCheckpoint is the serving half of the
// kill-and-recover guarantee: a campaign that dies mid-flight (here via
// its own deadline, with fault-injected simulation latency making the
// deadline bite) leaves a checkpoint behind, and resubmitting the
// identical campaign resumes from it instead of starting over.
func TestKilledCampaignResumesFromCheckpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Store:           st,
		Registry:        obs.NewRegistry(),
		Parallel:        1,
		CheckpointEvery: 1,
		ConfigHook: func(cfg *m2td.Config) {
			// Slow every simulation down so the first attempt cannot
			// finish inside its deadline. The hook runs after
			// fingerprinting and is identical across attempts, so the
			// checkpoint stays compatible.
			cfg.Faults = &faults.Config{Seed: 1, LatencyRate: 1, Latency: 10 * time.Millisecond}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	hs := newClientFor(t, s)

	spec := tinySpec()
	spec.TimeoutMS = 150 // well under sims × 10ms

	sub, err := hs.Submit(ctx, api.SubmitRequest{Campaign: spec})
	if err != nil {
		t.Fatal(err)
	}
	stFirst, err := hs.Wait(ctx, sub.JobID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stFirst.State != api.StateFailed {
		t.Fatalf("deadline-bitten campaign state %s, want failed", stFirst.State)
	}
	if stFirst.Error == nil || stFirst.Error.Code != api.CodeJobFailed {
		t.Fatalf("failed campaign error %+v", stFirst.Error)
	}
	if _, err := hs.Result(ctx, sub.JobID); !isCode(err, api.CodeJobFailed) {
		t.Fatalf("result of failed campaign err %v", err)
	}

	// Identical campaign, no deadline: a fresh job (the failure cleared
	// the in-flight entry) that resumes from the checkpoint.
	spec.TimeoutMS = 0
	sub2, err := hs.Submit(ctx, api.SubmitRequest{Campaign: spec})
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Coalesced || sub2.CacheHit || sub2.StoreHit || sub2.JobID == sub.JobID {
		t.Fatalf("resubmission should run fresh: %+v", sub2)
	}
	st2, err := hs.Wait(ctx, sub2.JobID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != api.StateDone {
		t.Fatalf("resumed campaign state %s (err %v)", st2.State, st2.Error)
	}
	res, err := hs.Result(ctx, sub2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decomposition.RestoredSims == 0 {
		t.Fatal("resumed campaign restored 0 simulations — checkpoint was not used")
	}
	if res.Decomposition.RestoredSims >= res.Decomposition.NumSims {
		t.Fatalf("restored %d of %d sims — first attempt should not have finished",
			res.Decomposition.RestoredSims, res.Decomposition.NumSims)
	}
}
