package serve

import "container/heap"

// jobQueue is the campaign priority queue: higher Priority pops first,
// FIFO (submission sequence) within a priority. It is guarded by the
// server mutex.
type jobQueue struct {
	items []*job
}

// Len reports the queued-job count.
func (q *jobQueue) Len() int { return len(q.items) }

// before is the queue order: priority descending, then sequence
// ascending.
func (q *jobQueue) before(a, b *job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// push enqueues a job.
func (q *jobQueue) push(j *job) { heap.Push((*jobHeap)(q), j) }

// pop dequeues the next job to run (nil when empty).
func (q *jobQueue) pop() *job {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop((*jobHeap)(q)).(*job)
}

// position returns a job's 1-based run position among queued jobs, or 0
// when it is not queued. Linear scan — status is not a hot path.
func (q *jobQueue) position(j *job) int {
	found := false
	pos := 1
	for _, other := range q.items {
		if other == j {
			found = true
			continue
		}
		if q.before(other, j) {
			pos++
		}
	}
	if !found {
		return 0
	}
	return pos
}

// jobHeap adapts jobQueue to container/heap.
type jobHeap jobQueue

func (h *jobHeap) Len() int { return len(h.items) }
func (h *jobHeap) Less(a, b int) bool {
	return (*jobQueue)(h).before(h.items[a], h.items[b])
}
func (h *jobHeap) Swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.items[a].heapIndex = a
	h.items[b].heapIndex = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(h.items)
	h.items = append(h.items, j)
}
func (h *jobHeap) Pop() any {
	last := len(h.items) - 1
	j := h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	j.heapIndex = -1
	return j
}
