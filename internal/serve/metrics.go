package serve

import (
	"repro/internal/obs"
)

// latencyBounds buckets request and job latencies (seconds): sub-ms
// cache hits through multi-minute campaigns.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// metrics is the server's observability surface: server-wide counters
// and latency histograms, plus get-or-create per-tenant instruments.
// Counters are the single source of truth — the typed /v1/stats endpoint
// reads the same values Prometheus scrapes.
type metrics struct {
	reg *obs.Registry

	submits       *obs.Counter
	coalesced     *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	storeHits     *obs.Counter
	quotaRejected *obs.Counter
	queueRejected *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter

	requestSeconds *obs.Histogram
	jobSeconds     *obs.Histogram

	tenantSubmits        *obs.KeyedCounter
	tenantCacheHits      *obs.KeyedCounter
	tenantRequestSeconds *obs.KeyedHistogram
}

// Per-tenant metric base names. The registry has no label support, so
// the sanitized tenant is folded into the metric name by the Keyed*
// instruments — but these bases are the compile-time vocabulary
// (metrichygiene): m2td_serve_tenant_submits_total_<tenant>, etc.
const (
	tenantSubmitsBase        = "m2td_serve_tenant_submits_total"
	tenantCacheHitsBase      = "m2td_serve_tenant_cache_hits_total"
	tenantRequestSecondsBase = "m2td_serve_tenant_request_seconds"
)

func newMetrics(reg *obs.Registry, s *Server) *metrics {
	m := &metrics{
		reg:            reg,
		submits:        reg.Counter("m2td_serve_submits_total", "campaign submissions accepted for admission"),
		coalesced:      reg.Counter("m2td_serve_coalesced_total", "submissions attached to an identical in-flight campaign"),
		cacheHits:      reg.Counter("m2td_serve_cache_hits_total", "submissions served from the decomposition LRU"),
		cacheMisses:    reg.Counter("m2td_serve_cache_misses_total", "submissions that missed the decomposition LRU"),
		storeHits:      reg.Counter("m2td_serve_store_hits_total", "submissions served from the durable store"),
		quotaRejected:  reg.Counter("m2td_serve_quota_rejected_total", "submissions rejected by per-tenant quota"),
		queueRejected:  reg.Counter("m2td_serve_queue_rejected_total", "submissions rejected by the full queue"),
		jobsDone:       reg.Counter("m2td_serve_jobs_done_total", "campaigns finished successfully"),
		jobsFailed:     reg.Counter("m2td_serve_jobs_failed_total", "campaigns that failed"),
		requestSeconds: reg.Histogram("m2td_serve_request_seconds", "HTTP request latency", latencyBounds),
		jobSeconds:     reg.Histogram("m2td_serve_job_seconds", "submit-to-done campaign latency", latencyBounds),

		tenantSubmits:        reg.KeyedCounter(tenantSubmitsBase, "per-tenant submits"),
		tenantCacheHits:      reg.KeyedCounter(tenantCacheHitsBase, "per-tenant cache hits"),
		tenantRequestSeconds: reg.KeyedHistogram(tenantRequestSecondsBase, "per-tenant HTTP request latency", latencyBounds),
	}
	reg.FuncGauge("m2td_serve_queue_depth", "queued campaigns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.queue.Len())
	})
	reg.FuncGauge("m2td_serve_running", "running campaigns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.running)
	})
	reg.FuncGauge("m2td_serve_cache_entries", "live decomposition LRU entries", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.cache.len())
	})
	return m
}
