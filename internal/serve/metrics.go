package serve

import (
	"strings"

	"repro/internal/obs"
)

// latencyBounds buckets request and job latencies (seconds): sub-ms
// cache hits through multi-minute campaigns.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// metrics is the server's observability surface: server-wide counters
// and latency histograms, plus get-or-create per-tenant instruments.
// Counters are the single source of truth — the typed /v1/stats endpoint
// reads the same values Prometheus scrapes.
type metrics struct {
	reg *obs.Registry

	submits       *obs.Counter
	coalesced     *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	storeHits     *obs.Counter
	quotaRejected *obs.Counter
	queueRejected *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter

	requestSeconds *obs.Histogram
	jobSeconds     *obs.Histogram
}

func newMetrics(reg *obs.Registry, s *Server) *metrics {
	m := &metrics{
		reg:            reg,
		submits:        reg.Counter("m2td_serve_submits_total", "campaign submissions accepted for admission"),
		coalesced:      reg.Counter("m2td_serve_coalesced_total", "submissions attached to an identical in-flight campaign"),
		cacheHits:      reg.Counter("m2td_serve_cache_hits_total", "submissions served from the decomposition LRU"),
		cacheMisses:    reg.Counter("m2td_serve_cache_misses_total", "submissions that missed the decomposition LRU"),
		storeHits:      reg.Counter("m2td_serve_store_hits_total", "submissions served from the durable store"),
		quotaRejected:  reg.Counter("m2td_serve_quota_rejected_total", "submissions rejected by per-tenant quota"),
		queueRejected:  reg.Counter("m2td_serve_queue_rejected_total", "submissions rejected by the full queue"),
		jobsDone:       reg.Counter("m2td_serve_jobs_done_total", "campaigns finished successfully"),
		jobsFailed:     reg.Counter("m2td_serve_jobs_failed_total", "campaigns that failed"),
		requestSeconds: reg.Histogram("m2td_serve_request_seconds", "HTTP request latency", latencyBounds),
		jobSeconds:     reg.Histogram("m2td_serve_job_seconds", "submit-to-done campaign latency", latencyBounds),
	}
	reg.FuncGauge("m2td_serve_queue_depth", "queued campaigns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.queue.Len())
	})
	reg.FuncGauge("m2td_serve_running", "running campaigns", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.running)
	})
	reg.FuncGauge("m2td_serve_cache_entries", "live decomposition LRU entries", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.cache.len())
	})
	return m
}

// tenantCounter returns the get-or-create per-tenant counter for one
// kind ("submits", "cache_hits", "requests"). The registry has no label
// support, so the sanitized tenant is folded into the metric name.
func (m *metrics) tenantCounter(kind, tenant string) *obs.Counter {
	return m.reg.Counter("m2td_serve_tenant_"+kind+"_total_"+sanitizeTenant(tenant),
		"per-tenant "+strings.ReplaceAll(kind, "_", " "))
}

// tenantHistogram returns the get-or-create per-tenant request-latency
// histogram.
func (m *metrics) tenantHistogram(tenant string) *obs.Histogram {
	return m.reg.Histogram("m2td_serve_tenant_request_seconds_"+sanitizeTenant(tenant),
		"per-tenant HTTP request latency", latencyBounds)
}

// sanitizeTenant maps a free-form tenant identity onto Prometheus
// metric-name characters.
func sanitizeTenant(tenant string) string {
	if tenant == "" {
		return "anon"
	}
	var b strings.Builder
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
