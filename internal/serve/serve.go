// Package serve hosts the campaign server: a long-running HTTP/JSON
// service (the `tensorstore serve` subcommand) that accepts M2TD campaign
// submissions over the typed /v1/ API (package api), runs them through the
// m2td facade on a bounded executor pool, and serves decompositions and
// predictions back — the systems layer the paper's D-M2TD formulation and
// the TuckerMPI line of work argue for on top of a one-shot library.
//
// The serving pipeline, front to back:
//
//   - admission: per-tenant quotas (a tenant may hold at most TenantQuota
//     queued+running campaigns) and a bounded server-wide priority queue —
//     higher Priority runs first, FIFO within a priority.
//   - coalescing: submissions are keyed by m2td.Config.Fingerprint; a
//     campaign identical to one already queued or running attaches to it
//     as a waiter instead of enqueueing duplicate work.
//   - caching: finished decompositions sit in an in-memory LRU keyed by
//     the same fingerprint, and are persisted to the crash-safe store
//     (decomposition + JSON result header), so identical submissions after
//     an eviction — or a process restart — are served without recompute.
//   - execution: Executors goroutines drain the queue, running each
//     campaign via m2td.RunCtx with the store-backed checkpoint machinery
//     enabled (a timed-out or killed campaign resumes from its checkpoint
//     on resubmission) and per-job deadlines; large campaigns are
//     transparently dispatched onto Config.Distributed.
//   - shutdown: draining a server rejects new submissions with
//     CodeShuttingDown while queued and running campaigns finish, bounded
//     by the caller's context.
//
// Every serving decision is observable through the internal/obs registry
// (Prometheus /metrics plus pprof, mounted next to the API routes):
// submission/coalescing/cache counters — server-wide and per tenant —
// queue depth and running gauges, and request/job latency histograms.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/dynsys"
	"repro/internal/obs"
	"repro/internal/store"
)

// Runner executes one campaign; the default is m2td.RunCtx. Tests swap in
// fakes to exercise the serving machinery without simulating.
type Runner func(ctx context.Context, cfg m2td.Config) (*m2td.Report, error)

// Options configures a Server. The zero value of every field selects a
// sensible default; Store is required.
type Options struct {
	// Store is the durable catalog decompositions, result headers, and
	// campaign checkpoints persist into (required).
	Store *store.Store
	// MaxQueue bounds the queued-campaign count (default 1024); beyond it
	// submissions are rejected with CodeQueueFull.
	MaxQueue int
	// TenantQuota bounds one tenant's queued+running campaigns (default
	// 64); beyond it that tenant's submissions are rejected with
	// CodeQuotaExceeded. Coalesced waiters don't count — attaching to
	// in-flight work is free.
	TenantQuota int
	// CacheSize bounds the in-memory decomposition LRU (default 128
	// entries). Evicted results remain served from the store.
	CacheSize int
	// Executors is the concurrent-campaign limit (default 2).
	Executors int
	// JobTimeout bounds each campaign's wall clock when the submission
	// does not set its own TimeoutMS (default: none).
	JobTimeout time.Duration
	// CheckpointEvery overrides the campaign checkpoint interval in
	// completed simulations (default: the m2td default, 64).
	CheckpointEvery int
	// Parallel is the per-campaign kernel worker-pool size passed through
	// to m2td.Config.Parallel (0 = all CPUs).
	Parallel int
	// DistSims, when > 0, auto-dispatches campaigns whose parameter space
	// holds at least that many simulations onto the multi-process
	// distributed engine with DistWorkers workers. Explicit
	// CampaignSpec.Distributed always wins.
	DistSims    int
	DistWorkers int
	// Registry receives the serving metrics (nil = obs.Default). Tests
	// hosting several servers should give each its own registry: metric
	// registration is get-or-create, so two servers sharing a registry
	// share (and double-count) instruments.
	Registry *obs.Registry
	// Runner overrides campaign execution (default m2td.RunCtx).
	Runner Runner
	// ConfigHook, when non-nil, mutates each campaign's resolved config
	// just before execution — the test seam for fault injection and
	// checkpoint tuning. It runs after fingerprinting: mutations must not
	// change the result, only how it is computed.
	ConfigHook func(*m2td.Config)
}

func (o Options) withDefaults() Options {
	if o.MaxQueue == 0 {
		o.MaxQueue = 1024
	}
	if o.TenantQuota == 0 {
		o.TenantQuota = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.Executors == 0 {
		o.Executors = 2
	}
	if o.DistWorkers == 0 {
		o.DistWorkers = 2
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	return o
}

// Server is the campaign server. Construct with New, launch executors
// with Start, mount Handler on an http.Server, and stop with Shutdown.
type Server struct {
	opts    Options
	st      *store.Store
	runner  Runner
	metrics *metrics

	mu         sync.Mutex
	jobs       map[string]*job // by job ID
	inflight   map[string]*job // fingerprint → queued/running job
	queue      jobQueue
	cache      *lruCache
	tenantLoad map[string]int
	running    int
	draining   bool
	seq        int64

	wake      chan struct{}
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	started   bool
}

// New builds a Server over opts.Store.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("serve: Options.Store is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		st:         opts.Store,
		runner:     opts.Runner,
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		cache:      newLRU(opts.CacheSize),
		tenantLoad: make(map[string]int),
		wake:       make(chan struct{}, 1),
	}
	if s.runner == nil {
		s.runner = func(ctx context.Context, cfg m2td.Config) (*m2td.Report, error) {
			return m2td.RunCtx(ctx, cfg)
		}
	}
	s.metrics = newMetrics(opts.Registry, s)
	return s, nil
}

// Start launches the executor pool under ctx. Cancelling ctx hard-stops
// the executors; prefer Shutdown for a graceful drain.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.runCtx, s.cancelRun = context.WithCancel(ctx)
	for i := 0; i < s.opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor(s.runCtx)
	}
}

// Shutdown drains the server: new submissions are rejected with
// CodeShuttingDown while queued and running campaigns finish. When ctx
// expires first, the remaining work is cancelled and queued jobs fail
// with CodeShuttingDown. Executors are always stopped and joined before
// Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}

	var err error
drain:
	for {
		s.mu.Lock()
		idle := s.queue.Len() == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-time.After(20 * time.Millisecond):
		}
	}
	s.cancelRun()
	s.failQueued(&api.Error{Code: api.CodeShuttingDown, Message: "server shut down before the campaign ran"})
	s.wg.Wait()
	return err
}

// failQueued fails every still-queued job (forced-shutdown path) so no
// waiter blocks forever.
func (s *Server) failQueued(cause *api.Error) {
	s.mu.Lock()
	var stranded []*job
	for s.queue.Len() > 0 {
		stranded = append(stranded, s.queue.pop())
	}
	s.mu.Unlock()
	for _, j := range stranded {
		s.fail(j, cause)
	}
}

// executor drains the queue until ctx is cancelled.
func (s *Server) executor(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			if s.queue.Len() == 0 || ctx.Err() != nil {
				s.mu.Unlock()
				break
			}
			j := s.queue.pop()
			j.state = api.StateRunning
			j.startedAt = time.Now()
			s.running++
			s.mu.Unlock()
			s.run(ctx, j)
		}
	}
}

// signal wakes one executor without blocking.
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// fingerprintHash is the compact store-name form of a config fingerprint.
func fingerprintHash(fp string) string {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return fmt.Sprintf("%016x", h.Sum64())
}

// submit is the admission path: coalesce → cache → store → quota/queue.
// It returns the response or a typed error.
func (s *Server) submit(tenant string, priority int, cfg m2td.Config, timeoutMS int64) (*api.SubmitResponse, *api.Error) {
	fp := cfg.Fingerprint()
	hash := fingerprintHash(fp)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &api.Error{Code: api.CodeShuttingDown, Message: "server is draining"}
	}
	s.metrics.submits.Inc()
	s.metrics.tenantSubmits.WithKey(tenant).Inc()

	// In-flight dedupe: identical campaign already queued or running.
	if j := s.inflight[fp]; j != nil {
		j.waiters++
		s.metrics.coalesced.Inc()
		resp := &api.SubmitResponse{JobID: j.id, State: j.state, Fingerprint: fp, Coalesced: true}
		s.mu.Unlock()
		return resp, nil
	}

	// LRU cache in front of the store.
	if e := s.cache.get(fp); e != nil {
		s.metrics.cacheHits.Inc()
		s.metrics.tenantCacheHits.WithKey(tenant).Inc()
		resp := &api.SubmitResponse{JobID: e.jobID, State: api.StateDone, Fingerprint: fp, CacheHit: true}
		s.mu.Unlock()
		return resp, nil
	}
	s.metrics.cacheMisses.Inc()
	s.mu.Unlock()

	// Durable store behind the cache: a prior process may have finished
	// this campaign. Probed outside the lock (disk I/O).
	if info, ok := s.loadHeader(hash); ok {
		s.mu.Lock()
		// Re-check under the lock: a concurrent submit may have raced us.
		if j := s.inflight[fp]; j != nil {
			j.waiters++
			s.metrics.coalesced.Inc()
			resp := &api.SubmitResponse{JobID: j.id, State: j.state, Fingerprint: fp, Coalesced: true}
			s.mu.Unlock()
			return resp, nil
		}
		if e := s.cache.get(fp); e != nil {
			resp := &api.SubmitResponse{JobID: e.jobID, State: api.StateDone, Fingerprint: fp, CacheHit: true}
			s.mu.Unlock()
			return resp, nil
		}
		j := s.newJobLocked(tenant, fp, hash, priority, cfg, timeoutMS)
		j.state = api.StateDone
		j.finishedAt = j.submittedAt
		j.info = info
		close(j.done)
		s.cache.put(fp, &cacheEntry{jobID: j.id, info: info})
		s.metrics.storeHits.Inc()
		resp := &api.SubmitResponse{JobID: j.id, State: api.StateDone, Fingerprint: fp, StoreHit: true}
		s.mu.Unlock()
		return resp, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Same race re-check before enqueueing new work.
	if j := s.inflight[fp]; j != nil {
		j.waiters++
		s.metrics.coalesced.Inc()
		return &api.SubmitResponse{JobID: j.id, State: j.state, Fingerprint: fp, Coalesced: true}, nil
	}
	if s.draining {
		return nil, &api.Error{Code: api.CodeShuttingDown, Message: "server is draining"}
	}
	if s.tenantLoad[tenant] >= s.opts.TenantQuota {
		s.metrics.quotaRejected.Inc()
		return nil, &api.Error{
			Code:    api.CodeQuotaExceeded,
			Message: fmt.Sprintf("tenant %q holds %d campaigns (quota %d)", tenant, s.tenantLoad[tenant], s.opts.TenantQuota),
		}
	}
	if s.queue.Len() >= s.opts.MaxQueue {
		s.metrics.queueRejected.Inc()
		return nil, &api.Error{
			Code:    api.CodeQueueFull,
			Message: fmt.Sprintf("queue holds %d campaigns (max %d)", s.queue.Len(), s.opts.MaxQueue),
		}
	}
	j := s.newJobLocked(tenant, fp, hash, priority, cfg, timeoutMS)
	s.inflight[fp] = j
	s.tenantLoad[tenant]++
	s.queue.push(j)
	s.signal()
	return &api.SubmitResponse{JobID: j.id, State: api.StateQueued, Fingerprint: fp}, nil
}

// newJobLocked allocates and registers a job record (s.mu held).
func (s *Server) newJobLocked(tenant, fp, hash string, priority int, cfg m2td.Config, timeoutMS int64) *job {
	s.seq++
	j := &job{
		id:          fmt.Sprintf("j%d", s.seq),
		seq:         s.seq,
		tenant:      tenant,
		fingerprint: fp,
		hash:        hash,
		priority:    priority,
		cfg:         cfg,
		timeoutMS:   timeoutMS,
		state:       api.StateQueued,
		waiters:     1,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// buildConfig maps a wire CampaignSpec onto a validated m2td.Config,
// canonicalizing free-form names so aliases coalesce onto one
// fingerprint. The server's posture differs from the library default in
// one way: accuracy evaluation is skipped unless the submission asks for
// a sampled estimate — the exact metric simulates the entire space.
func (s *Server) buildConfig(spec api.CampaignSpec) (m2td.Config, error) {
	cfg := m2td.Config{
		Resolution:         spec.Resolution,
		TimeSamples:        spec.TimeSamples,
		Rank:               spec.Rank,
		Pivot:              spec.Pivot,
		PivotDensity:       spec.PivotDensity,
		SubEnsembleDensity: spec.SubEnsembleDensity,
		ZeroJoin:           spec.ZeroJoin,
		Seed:               spec.Seed,
		Parallel:           s.opts.Parallel,
	}
	if spec.System != "" {
		sys, err := m2td.ParseSystem(spec.System)
		if err != nil {
			return m2td.Config{}, err
		}
		cfg.System = sys
	}
	if spec.Method != "" {
		method, err := m2td.ParseMethod(spec.Method)
		if err != nil {
			return m2td.Config{}, err
		}
		cfg.Method = method
	}
	if spec.Resolution < 0 || spec.Resolution > 256 {
		return m2td.Config{}, fmt.Errorf("resolution %d outside [0, 256]", spec.Resolution)
	}
	if spec.TimeSamples < 0 || spec.Rank < 0 || spec.AccuracySampleSims < 0 || spec.TimeoutMS < 0 {
		return m2td.Config{}, fmt.Errorf("negative sizes are invalid")
	}
	if d := spec.PivotDensity; d < 0 || d > 1 {
		return m2td.Config{}, fmt.Errorf("pivot_density %v outside (0, 1]", d)
	}
	if d := spec.SubEnsembleDensity; d < 0 || d > 1 {
		return m2td.Config{}, fmt.Errorf("sub_density %v outside (0, 1]", d)
	}
	if f := spec.Sketch.KeepFrac; f < 0 || f > 1 {
		return m2td.Config{}, fmt.Errorf("sketch keep_frac %v outside (0, 1]", f)
	}
	if spec.Sketch.KeepFrac > 0 {
		cfg.Sketch = m2td.SketchConfig{KeepFrac: spec.Sketch.KeepFrac, Seed: spec.Sketch.Seed}
	}
	switch {
	case spec.AccuracySampleSims > 0:
		cfg.AccuracySampleSims = spec.AccuracySampleSims
	default:
		cfg.SkipAccuracy = true
	}
	if d := spec.Distributed; d != nil {
		workers := d.Workers
		if workers < 1 {
			workers = 1
		}
		if d.Shards < 0 || d.Shards > 1024 || workers > 64 {
			return m2td.Config{}, fmt.Errorf("distributed spec out of range")
		}
		cfg.Distributed = &m2td.DistributedConfig{Workers: workers, Shards: d.Shards}
	} else if s.opts.DistSims > 0 {
		if total, err := totalSims(cfg); err == nil && total >= s.opts.DistSims {
			cfg.Distributed = &m2td.DistributedConfig{Workers: s.opts.DistWorkers}
		}
	}
	return cfg, nil
}

// totalSims sizes a campaign's parameter space for the auto-dispatch
// threshold: resolution^numParams.
func totalSims(cfg m2td.Config) (int, error) {
	name := string(cfg.System)
	if name == "" {
		name = "double-pendulum"
	}
	sys, err := dynsys.ByName(name)
	if err != nil {
		return 0, err
	}
	res := cfg.Resolution
	if res == 0 {
		res = 12
	}
	total := 1
	for range sys.Params() {
		total *= res
		if total > 1<<40 {
			return 1 << 40, nil
		}
	}
	return total, nil
}

// checkpointDir is the campaign's checkpoint catalog, keyed by config
// hash under the store directory (the store's object listing skips
// subdirectories).
func (s *Server) checkpointDir(hash string) string {
	return filepath.Join(s.st.Dir(), "ckpt-"+hash)
}

// statusLocked snapshots a job as its wire status (s.mu held).
func (s *Server) statusLocked(j *job) api.JobStatus {
	st := api.JobStatus{
		ID:            j.id,
		Tenant:        j.tenant,
		State:         j.state,
		Fingerprint:   j.fingerprint,
		Waiters:       j.waiters,
		Distributed:   j.cfg.Distributed != nil,
		SubmittedAtMS: j.submittedAt.UnixMilli(),
		Error:         j.err,
	}
	if !j.startedAt.IsZero() {
		st.StartedAtMS = j.startedAt.UnixMilli()
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAtMS = j.finishedAt.UnixMilli()
	}
	if j.state == api.StateQueued {
		st.QueuePosition = s.queue.position(j)
	}
	return st
}

// jobByID fetches a job.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobList snapshots every job, most recent first.
func (s *Server) jobList() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.jobs))
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	sort.Slice(js, func(a, b int) bool { return js[a].seq > js[b].seq })
	for _, j := range js {
		out = append(out, s.statusLocked(j))
	}
	return out
}

// stats snapshots the serving counters as the typed wire struct.
func (s *Server) stats() api.StatsResponse {
	s.mu.Lock()
	depth, running, draining := s.queue.Len(), s.running, s.draining
	s.mu.Unlock()
	m := s.metrics
	return api.StatsResponse{
		Submits:       m.submits.Value(),
		Coalesced:     m.coalesced.Value(),
		CacheHits:     m.cacheHits.Value(),
		CacheMisses:   m.cacheMisses.Value(),
		StoreHits:     m.storeHits.Value(),
		QuotaRejected: m.quotaRejected.Value(),
		QueueRejected: m.queueRejected.Value(),
		JobsDone:      m.jobsDone.Value(),
		JobsFailed:    m.jobsFailed.Value(),
		QueueDepth:    int64(depth),
		Running:       int64(running),
		Draining:      draining,
	}
}
