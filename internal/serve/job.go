package serve

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/tucker"
)

// job is one campaign's lifecycle record. Mutable fields are guarded by
// the server mutex; done closes exactly once, at the terminal transition.
type job struct {
	id          string
	seq         int64
	tenant      string
	fingerprint string
	hash        string
	priority    int
	cfg         m2td.Config
	timeoutMS   int64

	state       api.JobState
	waiters     int
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	err         *api.Error
	info        *api.DecompositionInfo
	report      *m2td.Report
	heapIndex   int
	done        chan struct{}

	loadOnce sync.Once
	loadErr  error
}

// run executes one campaign on an executor goroutine. The job is already
// in StateRunning.
func (s *Server) run(ctx context.Context, j *job) {
	cfg := j.cfg
	cfg.CheckpointDir = s.checkpointDir(j.hash)
	cfg.Resume = true
	if s.opts.CheckpointEvery > 0 {
		cfg.CheckpointEvery = s.opts.CheckpointEvery
	}
	if s.opts.ConfigHook != nil {
		s.opts.ConfigHook(&cfg)
	}
	timeout := time.Duration(j.timeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.opts.JobTimeout
	}
	rctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	report, err := s.runner(rctx, cfg)
	if err != nil {
		s.fail(j, &api.Error{Code: api.CodeJobFailed, Message: err.Error()})
		return
	}
	s.complete(j, report)
}

// complete finishes a job successfully: the decomposition and its JSON
// result header are persisted to the store, a slim report (space + core +
// factors — what Predict needs) goes into the LRU, and waiters unblock.
func (s *Server) complete(j *job, report *m2td.Report) {
	info := infoFromReport(report)
	if err := s.persist(j, report, info); err != nil {
		s.fail(j, &api.Error{Code: api.CodeInternal, Message: "persist result: " + err.Error()})
		return
	}
	slim := slimReport(report)

	s.mu.Lock()
	j.state = api.StateDone
	j.finishedAt = time.Now()
	j.info = info
	j.report = slim
	s.running--
	delete(s.inflight, j.fingerprint)
	if s.tenantLoad[j.tenant] > 0 {
		s.tenantLoad[j.tenant]--
	}
	s.cache.put(j.fingerprint, &cacheEntry{jobID: j.id, info: info, report: slim})
	s.metrics.jobsDone.Inc()
	s.metrics.jobSeconds.Observe(j.finishedAt.Sub(j.submittedAt).Seconds())
	s.mu.Unlock()
	close(j.done)
}

// fail moves a job to StateFailed and unblocks waiters.
func (s *Server) fail(j *job, cause *api.Error) {
	s.mu.Lock()
	if j.state == api.StateRunning {
		s.running--
	}
	j.state = api.StateFailed
	j.finishedAt = time.Now()
	j.err = cause
	delete(s.inflight, j.fingerprint)
	if s.tenantLoad[j.tenant] > 0 {
		s.tenantLoad[j.tenant]--
	}
	s.metrics.jobsFailed.Inc()
	s.mu.Unlock()
	close(j.done)
}

// decName and hdrName are the store objects one finished campaign
// occupies: the decomposition and its JSON result header.
func decName(hash string) string { return "dec-" + hash }
func hdrName(hash string) string { return "hdr-" + hash }

// persist writes the campaign result to the durable store. The header is
// written after the decomposition: a header implies its decomposition is
// readable, so loadHeader is the store-hit probe.
func (s *Server) persist(j *job, report *m2td.Report, info *api.DecompositionInfo) error {
	dec := report.Decomposition
	ranks := make([]int, len(dec.Core.Shape))
	copy(ranks, dec.Core.Shape)
	if err := s.st.SaveDecomposition(decName(j.hash), tucker.Decomposition{
		Core: dec.Core, Factors: dec.Factors, Ranks: ranks,
	}); err != nil {
		return err
	}
	info.StoreName = decName(j.hash)
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	return s.st.SaveBlob(hdrName(j.hash), data)
}

// loadHeader probes the store for a prior run's result header.
func (s *Server) loadHeader(hash string) (*api.DecompositionInfo, bool) {
	data, err := s.st.LoadBlob(hdrName(hash))
	if err != nil {
		return nil, false
	}
	var info api.DecompositionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, false
	}
	return &info, true
}

// infoFromReport summarises a finished run as the wire result struct.
func infoFromReport(report *m2td.Report) *api.DecompositionInfo {
	dec := report.Decomposition
	info := &api.DecompositionInfo{
		NumSims:      report.NumSims,
		JoinCells:    report.JoinCells,
		SimMS:        report.SimTime.Milliseconds(),
		DecompMS:     report.DecompTime.Milliseconds(),
		RestoredSims: report.RestoredSims,
		Distributed:  report.Distributed != nil,
		Sketched:     report.SketchStats != nil,
	}
	if !math.IsNaN(report.Accuracy) {
		info.Accuracy = report.Accuracy
		info.AccuracyValid = true
	}
	if dec != nil && dec.Core != nil {
		info.CoreShape = append([]int(nil), dec.Core.Shape...)
		info.Ranks = append([]int(nil), dec.Core.Shape...)
	}
	return info
}

// slimReport strips a run report down to what Predict needs — the space
// and the core+factors — so cached entries don't pin join tensors or
// partitions in memory.
func slimReport(report *m2td.Report) *m2td.Report {
	if report.Decomposition == nil {
		return nil
	}
	return &m2td.Report{
		Space: report.Space,
		Decomposition: &core.Result{
			Core:    report.Decomposition.Core,
			Factors: report.Decomposition.Factors,
		},
	}
}

// reportFor returns a job's predictable report, reconstructing it from
// the durable store the first time a restart-era job is asked to predict.
func (s *Server) reportFor(j *job) (*m2td.Report, error) {
	s.mu.Lock()
	if j.report != nil {
		r := j.report
		s.mu.Unlock()
		return r, nil
	}
	// The cache may still hold the slim report under this fingerprint.
	if e := s.cache.get(j.fingerprint); e != nil && e.report != nil {
		j.report = e.report
		r := j.report
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	j.loadOnce.Do(func() {
		dec, err := s.st.LoadDecomposition(decName(j.hash))
		if err != nil {
			j.loadErr = err
			return
		}
		cfg := j.cfg
		system := string(cfg.System)
		if system == "" {
			system = "double-pendulum"
		}
		res := cfg.Resolution
		if res == 0 {
			res = 12
		}
		samples := cfg.TimeSamples
		if samples == 0 {
			samples = res
		}
		space, err := eval.SpaceFor(system, res, samples)
		if err != nil {
			j.loadErr = err
			return
		}
		slim := &m2td.Report{
			Space:         space,
			Decomposition: &core.Result{Core: dec.Core, Factors: dec.Factors},
		}
		s.mu.Lock()
		j.report = slim
		if e := s.cache.get(j.fingerprint); e != nil {
			e.report = slim
		}
		s.mu.Unlock()
	})
	if j.loadErr != nil {
		return nil, j.loadErr
	}
	s.mu.Lock()
	r := j.report
	s.mu.Unlock()
	return r, nil
}
