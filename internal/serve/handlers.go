package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; campaign specs and predict
// parameter vectors are tiny.
const maxBodyBytes = 1 << 20

// maxWait caps the status long-poll hold.
const maxWait = 5 * time.Minute

// Handler returns the server's full HTTP surface: the typed /v1/ API
// routes plus the obs diagnostics endpoints (/metrics, /debug/vars,
// /debug/pprof/) on one mux. Request latency is recorded server-wide and
// per tenant before the response is written.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.RouteSubmit, s.handleSubmit)
	mux.HandleFunc(api.RouteJobs, s.handleJobs)
	mux.HandleFunc(api.RouteStatus, s.handleStatus)
	mux.HandleFunc(api.RouteResult, s.handleResult)
	mux.HandleFunc(api.RoutePredict, s.handlePredict)
	mux.HandleFunc(api.RouteStats, s.handleStats)
	mux.HandleFunc(api.RouteHealth, s.handleHealth)
	diag := obs.Mux(s.opts.Registry)
	mux.Handle("/metrics", diag)
	mux.Handle("/debug/", diag)
	return s.instrument(mux)
}

// instrument wraps the mux with the latency histograms.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		elapsed := time.Since(start).Seconds()
		s.metrics.requestSeconds.Observe(elapsed)
		if tenant := r.Header.Get(api.TenantHeader); tenant != "" {
			s.metrics.tenantRequestSeconds.WithKey(tenant).Observe(elapsed)
		}
	})
}

// writeJSON writes a 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding a wire struct cannot fail; a broken connection surfaces to
	// the client, not to us.
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes the typed error envelope with its mapped status. The
// code→status mapping lives in the api package (api.HTTPStatus), where
// wirecompat keeps it exhaustive — the server adds nothing to it.
func writeErr(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(api.HTTPStatus(e.Code))
	_ = json.NewEncoder(w).Encode(e)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, &api.Error{Code: api.CodeInvalidRequest, Message: "decode submit request: " + err.Error()})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get(api.TenantHeader)
	}
	if tenant == "" {
		tenant = "anon"
	}
	cfg, err := s.buildConfig(req.Campaign)
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInvalidRequest, Message: err.Error()})
		return
	}
	resp, apiErr := s.submit(tenant, req.Priority, cfg, req.Campaign.TimeoutMS)
	if apiErr != nil {
		writeErr(w, apiErr)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, api.JobsResponse{Jobs: s.jobList()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeErr(w, &api.Error{Code: api.CodeNotFound, Message: "no such job"})
		return
	}
	if waitArg := r.URL.Query().Get("wait"); waitArg != "" {
		wait, err := time.ParseDuration(waitArg)
		if err != nil || wait < 0 {
			writeErr(w, &api.Error{Code: api.CodeInvalidRequest, Message: "bad wait duration"})
			return
		}
		if wait > maxWait {
			wait = maxWait
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeErr(w, &api.Error{Code: api.CodeNotFound, Message: "no such job"})
		return
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	info := j.info
	s.mu.Unlock()
	switch st.State {
	case api.StateDone:
		writeJSON(w, api.ResultResponse{Job: st, Decomposition: info})
	case api.StateFailed:
		msg := "campaign failed"
		if st.Error != nil {
			msg = st.Error.Message
		}
		writeErr(w, &api.Error{Code: api.CodeJobFailed, Message: msg})
	default:
		writeErr(w, &api.Error{Code: api.CodeNotDone, Message: "campaign has not finished"})
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeErr(w, &api.Error{Code: api.CodeNotFound, Message: "no such job"})
		return
	}
	var req api.PredictRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, &api.Error{Code: api.CodeInvalidRequest, Message: "decode predict request: " + err.Error()})
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state != api.StateDone {
		writeErr(w, &api.Error{Code: api.CodeNotDone, Message: "campaign has not finished"})
		return
	}
	report, err := s.reportFor(j)
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInternal, Message: "load decomposition: " + err.Error()})
		return
	}
	values, err := report.Predict(req.Params)
	if err != nil {
		writeErr(w, &api.Error{Code: api.CodeInvalidRequest, Message: err.Error()})
		return
	}
	writeJSON(w, api.PredictResponse{JobID: j.id, Values: values})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, api.HealthResponse{OK: true, Version: api.Version, Draining: draining})
}
