package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
)

// cannedReport fabricates a minimal successful run report (order-3 core
// and factors), enough for the persist path; tests that predict use the
// real runner instead.
func cannedReport() *m2td.Report {
	factors := make([]*mat.Matrix, 3)
	for i := range factors {
		f := mat.New(2, 1)
		f.Data[0] = 1
		factors[i] = f
	}
	c := tensor.NewDense(tensor.Shape{1, 1, 1})
	c.Data[0] = 3.5
	return &m2td.Report{
		NumSims:       4,
		JoinCells:     8,
		Decomposition: &core.Result{Core: c, Factors: factors},
	}
}

// newTestServer spins up a Server over a fresh store and an
// httptest.Server around its handler. mutate tweaks Options before New.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server, *api.Client) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Store: st, Registry: obs.NewRegistry(), Executors: 2, Parallel: 1}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		s.wg.Wait()
	})
	return s, hs, api.NewClient(hs.URL)
}

// newClientFor wraps an already-started Server in an httptest server and
// returns a typed client against it.
func newClientFor(t *testing.T, s *Server) *api.Client {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return api.NewClient(hs.URL)
}

// tinySpec is a fast real campaign (a few dozen sims, sub-second).
func tinySpec() api.CampaignSpec {
	return api.CampaignSpec{System: "double-pendulum", Resolution: 4, TimeSamples: 3, Rank: 2}
}

func TestSubmitRunResultPredict(t *testing.T) {
	_, _, c := newTestServer(t, nil)
	ctx := context.Background()

	sub, err := c.Submit(ctx, api.SubmitRequest{Tenant: "team-a", Campaign: tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	if sub.JobID == "" || sub.Coalesced || sub.CacheHit {
		t.Fatalf("fresh submit: %+v", sub)
	}
	st, err := c.Wait(ctx, sub.JobID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("job state %s (err %v)", st.State, st.Error)
	}
	res, err := c.Result(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decomposition
	if d == nil || d.NumSims == 0 || len(d.CoreShape) == 0 || d.StoreName == "" {
		t.Fatalf("result: %+v", d)
	}
	if d.AccuracyValid {
		t.Fatal("server default should skip accuracy")
	}
	pred, err := c.Predict(ctx, sub.JobID, []float64{0.5, -0.5, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Values) != 3 {
		t.Fatalf("predicted %d values, want 3 timestamps", len(pred.Values))
	}
}

func TestMalformedAndInvalidSubmissions(t *testing.T) {
	_, hs, c := newTestServer(t, nil)
	ctx := context.Background()

	// Raw garbage body → 400 with the typed envelope.
	resp, err := http.Post(hs.URL+api.PathPrefix+"campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var envelope api.Error
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Code != api.CodeInvalidRequest {
		t.Fatalf("envelope %s (%v)", body, err)
	}

	// Unknown system and out-of-range knobs → typed invalid_request.
	for name, spec := range map[string]api.CampaignSpec{
		"system":  {System: "no-such-system"},
		"method":  {Method: "no-such-method"},
		"density": {PivotDensity: 2},
		"sketch":  {Sketch: api.SketchSpec{KeepFrac: -0.5}},
	} {
		_, err := c.Submit(ctx, api.SubmitRequest{Campaign: spec})
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidRequest {
			t.Fatalf("%s: err %v, want invalid_request", name, err)
		}
	}

	// Unknown job → 404 not_found on every job route.
	if _, err := c.Status(ctx, "nope", 0); !isCode(err, api.CodeNotFound) {
		t.Fatalf("status err %v", err)
	}
	if _, err := c.Result(ctx, "nope"); !isCode(err, api.CodeNotFound) {
		t.Fatalf("result err %v", err)
	}
	if _, err := c.Predict(ctx, "nope", nil); !isCode(err, api.CodeNotFound) {
		t.Fatalf("predict err %v", err)
	}
}

func isCode(err error, code api.ErrorCode) bool {
	var apiErr *api.Error
	return errors.As(err, &apiErr) && apiErr.Code == code
}

// blockingRunner returns a Runner that parks until released, so tests
// can hold campaigns in StateRunning deterministically.
func blockingRunner() (Runner, chan struct{}) {
	release := make(chan struct{})
	return func(ctx context.Context, cfg m2td.Config) (*m2td.Report, error) {
		select {
		case <-release:
			return cannedReport(), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, release
}

func TestQuotaRejection(t *testing.T) {
	runner, release := blockingRunner()
	_, _, c := newTestServer(t, func(o *Options) {
		o.TenantQuota = 1
		o.Runner = runner
	})
	defer close(release)
	ctx := context.Background()

	first := tinySpec()
	if _, err := c.Submit(ctx, api.SubmitRequest{Tenant: "t1", Campaign: first}); err != nil {
		t.Fatal(err)
	}
	// A DIFFERENT campaign from the same tenant trips the quota (an
	// identical one would coalesce for free).
	second := tinySpec()
	second.Seed = 99
	_, err := c.Submit(ctx, api.SubmitRequest{Tenant: "t1", Campaign: second})
	if !isCode(err, api.CodeQuotaExceeded) {
		t.Fatalf("same-tenant second submit err %v, want quota_exceeded", err)
	}
	// Another tenant is unaffected.
	third := tinySpec()
	third.Seed = 77
	if _, err := c.Submit(ctx, api.SubmitRequest{Tenant: "t2", Campaign: third}); err != nil {
		t.Fatalf("cross-tenant submit: %v", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuotaRejected != 1 {
		t.Fatalf("quota_rejected = %d, want 1", stats.QuotaRejected)
	}
}

func TestCoalescingObservableViaMetrics(t *testing.T) {
	runner, release := blockingRunner()
	_, hs, c := newTestServer(t, func(o *Options) { o.Runner = runner })
	ctx := context.Background()

	spec := tinySpec()
	a, err := c.Submit(ctx, api.SubmitRequest{Tenant: "t1", Campaign: spec})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, api.SubmitRequest{Tenant: "t2", Campaign: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Coalesced || b.JobID != a.JobID || b.Fingerprint != a.Fingerprint {
		t.Fatalf("identical submit did not coalesce: %+v vs %+v", a, b)
	}
	close(release)
	st, err := c.Wait(ctx, a.JobID, 5*time.Second)
	if err != nil || st.State != api.StateDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}
	if st.Waiters != 2 {
		t.Fatalf("waiters = %d, want 2", st.Waiters)
	}

	// The dedupe is observable in both the typed stats and Prometheus.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Coalesced != 1 || stats.Submits != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	prom := fetch(t, hs.URL+"/metrics")
	if !strings.Contains(prom, "m2td_serve_coalesced_total 1") {
		t.Fatalf("/metrics missing coalesced counter:\n%s", prom)
	}
	if !strings.Contains(prom, "m2td_serve_tenant_submits_total_t1 1") {
		t.Fatalf("/metrics missing per-tenant counter:\n%s", prom)
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCacheHitMissAndStoreFallback(t *testing.T) {
	runs := 0
	s, _, c := newTestServer(t, func(o *Options) {
		o.CacheSize = 1
		o.Runner = func(ctx context.Context, cfg m2td.Config) (*m2td.Report, error) {
			runs++
			return cannedReport(), nil
		}
	})
	ctx := context.Background()

	specA, specB := tinySpec(), tinySpec()
	specB.Seed = 2

	a, err := c.Submit(ctx, api.SubmitRequest{Campaign: specA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, a.JobID, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Identical resubmission: LRU hit, no recompute, terminal at submit.
	a2, err := c.Submit(ctx, api.SubmitRequest{Campaign: specA})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.CacheHit || a2.State != api.StateDone || a2.JobID != a.JobID {
		t.Fatalf("cache hit: %+v", a2)
	}

	// A different campaign evicts A from the size-1 LRU...
	b, err := c.Submit(ctx, api.SubmitRequest{Campaign: specB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, b.JobID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// ...so A now comes back from the durable store, still without
	// recompute.
	a3, err := c.Submit(ctx, api.SubmitRequest{Campaign: specA})
	if err != nil {
		t.Fatal(err)
	}
	if !a3.StoreHit || a3.State != api.StateDone {
		t.Fatalf("store hit: %+v", a3)
	}
	if runs != 2 {
		t.Fatalf("runner ran %d times, want 2", runs)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.StoreHits != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	_ = s
}

// TestStoreHitAcrossRestart proves results survive a process restart: a
// second server over the same store directory serves the decomposition
// without recompute, and predictions still work (the decomposition is
// reloaded from disk).
func TestStoreHitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Options{Store: st1, Registry: obs.NewRegistry(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	s1.Start(ctx1)
	hs1 := httptest.NewServer(s1.Handler())
	c1 := api.NewClient(hs1.URL)
	sub, err := c1.Submit(ctx, api.SubmitRequest{Campaign: tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Wait(ctx, sub.JobID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	want, err := c1.Predict(ctx, sub.JobID, []float64{0.5, -0.5, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	cancel1()
	s1.wg.Wait()

	// "Restart": fresh server, same directory, empty caches.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{Store: st2, Registry: obs.NewRegistry(), Parallel: 1,
		Runner: func(context.Context, m2td.Config) (*m2td.Report, error) {
			t.Error("restarted server recomputed a stored campaign")
			return nil, errors.New("unexpected recompute")
		}})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(ctx)
	s2.Start(ctx2)
	hs2 := httptest.NewServer(s2.Handler())
	defer func() { hs2.Close(); cancel2(); s2.wg.Wait() }()
	c2 := api.NewClient(hs2.URL)

	sub2, err := c2.Submit(ctx, api.SubmitRequest{Campaign: tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.StoreHit || sub2.State != api.StateDone {
		t.Fatalf("restart submit: %+v", sub2)
	}
	got, err := c2.Predict(ctx, sub2.JobID, []float64{0.5, -0.5, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values {
		if diff := got.Values[i] - want.Values[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("prediction drifted across restart: %v vs %v", got.Values, want.Values)
		}
	}
}

func TestPriorityOrderAndQueueFull(t *testing.T) {
	runner, release := blockingRunner()
	var order []int64
	s, _, c := newTestServer(t, func(o *Options) {
		o.Executors = 1
		o.MaxQueue = 2
		o.Runner = func(ctx context.Context, cfg m2td.Config) (*m2td.Report, error) {
			order = append(order, cfg.Seed)
			return runner(ctx, cfg)
		}
	})
	ctx := context.Background()

	submit := func(seed int64, priority int) (*api.SubmitResponse, error) {
		spec := tinySpec()
		spec.Seed = seed
		return c.Submit(ctx, api.SubmitRequest{Priority: priority, Campaign: spec})
	}
	// Seed 1 occupies the single executor; 2 (low) and 3 (high) queue.
	if _, err := submit(1, 0); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := submit(2, 0); err != nil {
		t.Fatal(err)
	}
	last, err := submit(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Queue (cap 2) is full now.
	if _, err := submit(4, 0); !isCode(err, api.CodeQueueFull) {
		t.Fatalf("overflow submit err %v, want queue_full", err)
	}
	st, err := c.Status(ctx, last.JobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueuePosition != 1 {
		t.Fatalf("high-priority queue position %d, want 1", st.QueuePosition)
	}
	close(release)
	if _, err := c.Wait(ctx, last.JobID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(order)
		s.mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("run order %v, want [1 3 2] (priority beats FIFO)", order)
	}
}

func waitRunning(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		running := s.running
		s.mu.Unlock()
		if running >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached %d running jobs", want)
}

func TestGracefulDrain(t *testing.T) {
	runner, release := blockingRunner()
	s, _, c := newTestServer(t, func(o *Options) { o.Runner = runner })
	ctx := context.Background()

	sub, err := c.Submit(ctx, api.SubmitRequest{Campaign: tinySpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)

	drained := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		drained <- s.Shutdown(sctx)
	}()

	// Draining servers reject new work with the typed code.
	deadline := time.Now().Add(5 * time.Second)
	for {
		spec := tinySpec()
		spec.Seed = 42
		_, err = c.Submit(ctx, api.SubmitRequest{Campaign: spec})
		if isCode(err, api.CodeShuttingDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining submit err %v, want shutting_down", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The in-flight campaign still finishes.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := c.Status(ctx, sub.JobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("in-flight job after drain: %s", st.State)
	}
	health, err := c.Health(ctx)
	if err != nil || !health.Draining {
		t.Fatalf("health: %+v, %v", health, err)
	}
}

func TestBuildConfigDistributedDispatch(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: st, Registry: obs.NewRegistry(), DistSims: 100, DistWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// double-pendulum has 4 params: 4^4 = 256 ≥ 100 → auto-dispatch.
	cfg, err := s.buildConfig(api.CampaignSpec{System: "double-pendulum", Resolution: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Distributed == nil || cfg.Distributed.Workers != 3 {
		t.Fatalf("auto dispatch: %+v", cfg.Distributed)
	}
	// 3^4 = 81 < 100 → serial.
	cfg, err = s.buildConfig(api.CampaignSpec{System: "double-pendulum", Resolution: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Distributed != nil {
		t.Fatalf("small campaign dispatched: %+v", cfg.Distributed)
	}
	// Explicit spec always wins.
	cfg, err = s.buildConfig(api.CampaignSpec{Resolution: 3, Distributed: &api.DistSpec{Workers: 2, Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Distributed == nil || cfg.Distributed.Workers != 2 || cfg.Distributed.Shards != 4 {
		t.Fatalf("explicit dispatch: %+v", cfg.Distributed)
	}
	// Aliases collapse onto one fingerprint.
	c1, err := s.buildConfig(api.CampaignSpec{System: "LORENZ", Method: "M2TD-SELECT", Resolution: 3})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.buildConfig(api.CampaignSpec{System: "lorenz", Method: "select", Resolution: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatalf("aliases did not collapse:\n%q\n%q", c1.Fingerprint(), c2.Fingerprint())
	}
}
