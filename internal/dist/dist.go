// Package dist implements D-M2TD, the paper's 3-phase distributed
// formulation of Multi-Task Tensor Decomposition (Algorithm 6 /
// Section VI-D), on the in-process MapReduce engine:
//
//   - Phase 1 — parallel sub-tensor decomposition: sub-ensemble cells are
//     shuffled by sub-tensor id κ ∈ {1, 2}; the reducer for each κ
//     assembles its sub-tensor and computes the per-mode factor matrices
//     (and matricization Gram matrices, needed for CONCAT fusion).
//   - Phase 2 — parallel JE-stitching: cells from both sub-tensors are
//     shuffled by their shared pivot configuration; each reducer joins (or
//     zero-joins) its pivot group and emits the corresponding join-tensor
//     cells.
//   - Phase 3 — parallel core recovery, in two interchangeable
//     formulations: the default shards the join tensor's cells across
//     reducers, each projecting its shard through the factor matrices
//     (exact, since the core is linear in J's cells); Options.FiberPhase3
//     selects the paper-literal variant instead, which shuffles cells by
//     their all-but-mode-0 index so each reducer multiplies one fiber by
//     U(0)ᵀ. Both compute the identical core (tested).
//
// Workers plays the role of the paper's server count.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures a distributed decomposition.
type Options struct {
	core.Options
	// Workers is the parallelism of every phase (the paper's server
	// count). Values below 1 are treated as 1.
	Workers int
	// FiberPhase3 selects the paper-literal Phase 3 (join cells shuffled
	// by all-but-mode-0 index, one reducer per fiber) instead of the
	// default cell-sharded formulation. Both compute the same core.
	FiberPhase3 bool
}

// Result augments the serial M2TD result with per-phase MapReduce
// statistics (Table III's time split).
type Result struct {
	*core.Result
	Phase1 mapreduce.Stats
	Phase2 mapreduce.Stats
	Phase3 mapreduce.Stats
}

// taggedCell is one sub-ensemble cell labelled with its sub-tensor id.
type taggedCell struct {
	kappa int // 1 or 2
	idx   []int
	val   float64
}

// subFactors is Phase 1's per-sub-tensor output.
type subFactors struct {
	kappa   int
	factors []*mat.Matrix // per sub-mode, rank-truncated
	grams   []*mat.Matrix // per sub-mode matricization Gram
}

// Decompose runs D-M2TD over a PF-partitioned pair of sub-ensembles,
// producing the same decomposition as core.Decompose (up to floating-point
// summation order in Phase 3).
func Decompose(p *partition.Result, opts Options) (*Result, error) {
	switch opts.Method {
	case core.AVG, core.CONCAT, core.SELECT:
	default:
		return nil, fmt.Errorf("dist: unknown M2TD method %q", opts.Method)
	}
	if len(opts.Ranks) != p.Space.Order() {
		return nil, fmt.Errorf("dist: %d ranks for order-%d space", len(opts.Ranks), p.Space.Order())
	}
	if opts.Sketch.KeepFrac != 0 {
		return nil, fmt.Errorf("dist: sketching is not supported by D-M2TD (sketch locally with core.DecomposeCtx instead)")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	ranks := tucker.ClipRanks(p.Space.Shape(), opts.Ranks)
	cfg := p.Config

	cells := collectCells(p)

	// ---- Phase 1: parallel sub-tensor decomposition ----
	subs := map[int]*partition.SubEnsemble{1: p.Sub1, 2: p.Sub2}
	subRanks := func(kappa int) []int {
		sub := subs[kappa]
		rs := make([]int, len(sub.Modes))
		for i, m := range sub.Modes {
			rs[i] = ranks[m]
		}
		return rs
	}
	phase1 := &mapreduce.Job[taggedCell, int, taggedCell, subFactors]{
		Map: func(c taggedCell, emit func(int, taggedCell)) {
			emit(c.kappa, c)
		},
		Reduce: func(kappa int, cs []taggedCell, emit func(subFactors)) {
			sub := subs[kappa]
			x := tensor.NewSparse(sub.Tensor.Shape)
			sortCells(cs)
			for _, c := range cs {
				x.Append(c.idx, c.val)
			}
			rs := subRanks(kappa)
			out := subFactors{kappa: kappa}
			for n := 0; n < x.Order(); n++ {
				g := tensor.ModeGram(x, n)
				out.grams = append(out.grams, g)
				out.factors = append(out.factors, mat.LeadingEigenvectors(g, rs[n]))
			}
			emit(out)
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	p1out, p1stats := phase1.Run(cells)
	byKappa := map[int]subFactors{}
	for _, sf := range p1out {
		byKappa[sf.kappa] = sf
	}

	// Fuse pivot factors and collect free factors (driver-side: tiny
	// matrices only) via the engine-independent kernel (join.go).
	factors := FuseFactors(opts.Method, cfg, p.Space.Order(), ranks,
		byKappa[1].factors, byKappa[1].grams, byKappa[2].factors, byKappa[2].grams)

	// ---- Phase 2: parallel JE-stitching ----
	j, p2stats := stitchPhase(p, cells, workers, opts.ZeroJoin)

	// ---- Phase 3: parallel core recovery ----
	var coreT *tensor.Dense
	var p3stats mapreduce.Stats
	if opts.FiberPhase3 {
		coreT, p3stats = corePhaseFiber(j, factors, workers)
	} else {
		coreT, p3stats = corePhase(j, factors, workers)
	}

	return &Result{
		Result: &core.Result{
			Factors:       factors,
			Core:          coreT,
			Join:          j,
			SubDecompTime: p1stats.Total(),
			StitchTime:    p2stats.Total(),
			CoreTime:      p3stats.Total(),
		},
		Phase1: p1stats,
		Phase2: p2stats,
		Phase3: p3stats,
	}, nil
}

// collectCells flattens both sub-ensembles into tagged cell records — the
// input file of Algorithm 6.
func collectCells(p *partition.Result) []taggedCell {
	var cells []taggedCell
	p.Sub1.Tensor.Each(func(idx []int, v float64) {
		cells = append(cells, taggedCell{kappa: 1, idx: append([]int(nil), idx...), val: v})
	})
	p.Sub2.Tensor.Each(func(idx []int, v float64) {
		cells = append(cells, taggedCell{kappa: 2, idx: append([]int(nil), idx...), val: v})
	})
	return cells
}

// sortCells orders cells by (kappa, lexicographic index) so reducers are
// deterministic regardless of worker count.
func sortCells(cs []taggedCell) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].kappa != cs[b].kappa {
			return cs[a].kappa < cs[b].kappa
		}
		ia, ib := cs[a].idx, cs[b].idx
		for i := range ia {
			if ia[i] != ib[i] {
				return ia[i] < ib[i]
			}
		}
		return false
	})
}
