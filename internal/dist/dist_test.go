package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tucker"
)

var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

func tinyPartition(t *testing.T, freeFrac float64, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = freeFrac
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedMatchesSerial(t *testing.T) {
	p := tinyPartition(t, 1, 120)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range core.Methods() {
		serial, err := core.Decompose(p, core.Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			d, err := Decompose(p, Options{
				Options: core.Options{Method: m, Ranks: ranks},
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m, workers, err)
			}
			if d.Join.NNZ() != serial.Join.NNZ() {
				t.Fatalf("%s workers=%d: join NNZ %d != serial %d", m, workers, d.Join.NNZ(), serial.Join.NNZ())
			}
			if !d.Core.Equal(serial.Core, 1e-9) {
				t.Fatalf("%s workers=%d: distributed core differs from serial", m, workers)
			}
			for mode := range d.Factors {
				if !d.Factors[mode].Equal(serial.Factors[mode], 1e-9) {
					t.Fatalf("%s workers=%d: factor %d differs", m, workers, mode)
				}
			}
		}
	}
}

func TestDistributedZeroJoinMatchesSerial(t *testing.T) {
	p := tinyPartition(t, 0.4, 121)
	ranks := tucker.UniformRanks(5, 2)
	serial, err := core.Decompose(p, core.Options{Method: core.SELECT, Ranks: ranks, ZeroJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(p, Options{
		Options: core.Options{Method: core.SELECT, Ranks: ranks, ZeroJoin: true},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Join.NNZ() != serial.Join.NNZ() {
		t.Fatalf("zero-join NNZ %d != serial %d", d.Join.NNZ(), serial.Join.NNZ())
	}
	if !d.Core.Equal(serial.Core, 1e-9) {
		t.Fatal("distributed zero-join core differs from serial")
	}
}

func TestDistributedDeterministicAcrossRuns(t *testing.T) {
	p := tinyPartition(t, 1, 122)
	ranks := tucker.UniformRanks(5, 2)
	opts := Options{Options: core.Options{Method: core.SELECT, Ranks: ranks}, Workers: 4}
	a, err := Decompose(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Core.Equal(b.Core, 0) {
		t.Fatal("repeated distributed runs differ bit-for-bit")
	}
}

func TestDistributedPhaseStats(t *testing.T) {
	p := tinyPartition(t, 1, 123)
	d, err := Decompose(p, Options{
		Options: core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(5, 2)},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range []struct {
		name  string
		total int64
	}{
		{"phase1", int64(d.Phase1.Total())},
		{"phase2", int64(d.Phase2.Total())},
		{"phase3", int64(d.Phase3.Total())},
	} {
		if st.total <= 0 {
			t.Fatalf("phase %d (%s) has no recorded time", i+1, st.name)
		}
	}
}

func TestDistributedRejectsBadOptions(t *testing.T) {
	p := tinyPartition(t, 1, 124)
	if _, err := Decompose(p, Options{Options: core.Options{Method: "nope", Ranks: tucker.UniformRanks(5, 2)}}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Decompose(p, Options{Options: core.Options{Method: core.AVG, Ranks: []int{1}}}); err == nil {
		t.Fatal("bad rank count accepted")
	}
}

func TestDistributedReconstructionAccuracy(t *testing.T) {
	// End-to-end: the distributed pipeline's reconstruction must
	// approximate the ground truth (relative error < 1).
	p := tinyPartition(t, 1, 125)
	d, err := Decompose(p, Options{
		Options: core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(5, 3)},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := p.Space.GroundTruth()
	relErr := d.Reconstruct().Sub(y).Norm() / y.Norm()
	if relErr >= 1 {
		t.Fatalf("distributed reconstruction relative error %v", relErr)
	}
}

func TestFiberPhase3MatchesDefault(t *testing.T) {
	p := tinyPartition(t, 1, 126)
	ranks := tucker.UniformRanks(5, 3)
	def, err := Decompose(p, Options{
		Options: core.Options{Method: core.SELECT, Ranks: ranks},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := Decompose(p, Options{
		Options:     core.Options{Method: core.SELECT, Ranks: ranks},
		Workers:     4,
		FiberPhase3: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fib.Core.Equal(def.Core, 1e-9) {
		t.Fatal("fiber-shuffled Phase 3 differs from cell-sharded Phase 3")
	}
	serial, err := core.Decompose(p, core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if !fib.Core.Equal(serial.Core, 1e-9) {
		t.Fatal("fiber-shuffled Phase 3 differs from serial core")
	}
}

func TestFiberPhase3AcrossWorkerCounts(t *testing.T) {
	p := tinyPartition(t, 0.5, 127)
	ranks := tucker.UniformRanks(5, 2)
	var first *Result
	for _, w := range []int{1, 3, 7} {
		res, err := Decompose(p, Options{
			Options:     core.Options{Method: core.AVG, Ranks: ranks, ZeroJoin: true},
			Workers:     w,
			FiberPhase3: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if first == nil {
			first = res
			continue
		}
		if !res.Core.Equal(first.Core, 1e-9) {
			t.Fatalf("workers=%d: core differs", w)
		}
	}
}
