package dist

import (
	"repro/internal/mapreduce"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// joinCell is one join-tensor cell in original mode order.
type joinCell struct {
	idx []int
	val float64
}

// stitchPhase is Phase 2: cells from both sub-tensors are shuffled by
// pivot configuration; each reducer joins its group into join-tensor
// cells.
func stitchPhase(p *partition.Result, cells []taggedCell, workers int, zero bool) (*tensor.Sparse, mapreduce.Stats) {
	space := p.Space
	cfg := p.Config
	k := len(cfg.Pivots)
	shape := space.Shape()

	// Pivot key: linearised pivot coordinates (identical for both
	// sub-tensors since pivots lead the mode order on each side).
	pivotSizes := make([]int, k)
	for i, m := range cfg.Pivots {
		pivotSizes[i] = shape[m]
	}
	pivotKeyOf := func(idx []int) int {
		key := 0
		for i := 0; i < k; i++ {
			key = key*pivotSizes[i] + idx[i]
		}
		return key
	}

	// Full free grids, enumerated once for zero-join reducers.
	free1All := enumerate(shape, cfg.Free1)
	free2All := enumerate(shape, cfg.Free2)

	job := &mapreduce.Job[taggedCell, int, taggedCell, joinCell]{
		Map: func(c taggedCell, emit func(int, taggedCell)) {
			emit(pivotKeyOf(c.idx), c)
		},
		Reduce: func(key int, group []taggedCell, emit func(joinCell)) {
			sortCells(group)
			var side1, side2 []taggedCell
			for _, c := range group {
				if c.kappa == 1 {
					side1 = append(side1, c)
				} else {
					side2 = append(side2, c)
				}
			}
			pivotIdx := make([]int, k)
			rem := key
			for i := k - 1; i >= 0; i-- {
				pivotIdx[i] = rem % pivotSizes[i]
				rem /= pivotSizes[i]
			}
			emitCell := func(f1, f2 []int, v float64) {
				full := make([]int, space.Order())
				for i, m := range cfg.Pivots {
					full[m] = pivotIdx[i]
				}
				for i, m := range cfg.Free1 {
					full[m] = f1[i]
				}
				for i, m := range cfg.Free2 {
					full[m] = f2[i]
				}
				emit(joinCell{idx: full, val: v})
			}
			// Matched pairs.
			for _, c1 := range side1 {
				for _, c2 := range side2 {
					emitCell(c1.idx[k:], c2.idx[k:], (c1.val+c2.val)/2)
				}
			}
			if !zero {
				return
			}
			// Zero-join extensions against unsampled partners.
			sampled1 := sampledSet(side1, k)
			sampled2 := sampledSet(side2, k)
			for _, f2 := range free2All {
				if sampled2[localKey(f2)] {
					continue
				}
				for _, c1 := range side1 {
					emitCell(c1.idx[k:], f2, c1.val/2)
				}
			}
			for _, f1 := range free1All {
				if sampled1[localKey(f1)] {
					continue
				}
				for _, c2 := range side2 {
					emitCell(f1, c2.idx[k:], c2.val/2)
				}
			}
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	out, stats := job.Run(cells)
	j := tensor.NewSparse(shape)
	for _, c := range out {
		j.Append(c.idx, c.val)
	}
	return j, stats
}

// corePhase is Phase 3: the join tensor's cells are sharded across
// reducers; each computes its shard's projection through the factor
// matrices and the driver sums the partial cores (exact, since the core is
// linear in J's cells).
func corePhase(j *tensor.Sparse, factors []*mat.Matrix, workers int) (*tensor.Dense, mapreduce.Stats) {
	order := j.Order()
	type indexedCell struct {
		pos  int
		cell joinCell
	}
	cells := make([]indexedCell, 0, j.NNZ())
	j.Each(func(idx []int, v float64) {
		cells = append(cells, indexedCell{
			pos:  len(cells),
			cell: joinCell{idx: append([]int(nil), idx...), val: v},
		})
	})
	transposed := tensor.TransposeAll(factors)

	job := &mapreduce.Job[indexedCell, int, joinCell, *tensor.Dense]{
		Map: func(c indexedCell, emit func(int, joinCell)) {
			emit(c.pos%workers, c.cell)
		},
		Reduce: func(shard int, group []joinCell, emit func(*tensor.Dense)) {
			x := tensor.NewSparse(j.Shape)
			for _, c := range group {
				x.Append(c.idx, c.val)
			}
			emit(tensor.MultiTTMSparse(x, transposed))
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	partials, stats := job.Run(cells)
	if len(partials) == 0 {
		// Empty join tensor: the core is the all-zero tensor at the target
		// ranks.
		coreShape := make(tensor.Shape, order)
		for n := 0; n < order; n++ {
			coreShape[n] = factors[n].Cols
		}
		return tensor.NewDense(coreShape), stats
	}
	total := partials[0]
	for _, pc := range partials[1:] {
		total = total.Add(pc)
	}
	return total, stats
}

// enumerate lists every coordinate combination over the given modes.
func enumerate(shape tensor.Shape, modes []int) [][]int {
	var out [][]int
	cur := make([]int, len(modes))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(modes) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < shape[modes[pos]]; i++ {
			cur[pos] = i
			walk(pos + 1)
		}
	}
	walk(0)
	return out
}

// sampledSet returns the set of free coordinates present in one side of a
// pivot group.
func sampledSet(side []taggedCell, k int) map[int]bool {
	out := make(map[int]bool, len(side))
	for _, c := range side {
		out[localKey(c.idx[k:])] = true
	}
	return out
}

const localRadix = 1 << 20

func localKey(idx []int) int {
	key := 0
	for _, i := range idx {
		key = key*localRadix + i
	}
	return key
}
