package dist

import (
	"repro/internal/mapreduce"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// joinCell is one join-tensor cell in original mode order.
type joinCell struct {
	idx []int
	val float64
}

// stitchPhase is Phase 2: cells from both sub-tensors are shuffled by
// pivot configuration; each reducer joins its group into join-tensor
// cells via the engine-independent JoinSpec kernel (join.go).
func stitchPhase(p *partition.Result, cells []taggedCell, workers int, zero bool) (*tensor.Sparse, mapreduce.Stats) {
	spec := NewJoinSpec(p, zero)

	// Full free grids, enumerated once for zero-join reducers.
	var free1All, free2All [][]int
	if spec.ZeroJoin {
		free1All, free2All = spec.FreeGrids()
	}

	job := &mapreduce.Job[taggedCell, int, taggedCell, joinCell]{
		Map: func(c taggedCell, emit func(int, taggedCell)) {
			emit(spec.PivotKey(c.idx), c)
		},
		Reduce: func(key int, group []taggedCell, emit func(joinCell)) {
			sortCells(group)
			var side1, side2 []Cell
			for _, c := range group {
				if c.kappa == 1 {
					side1 = append(side1, Cell{Idx: c.idx, Val: c.val})
				} else {
					side2 = append(side2, Cell{Idx: c.idx, Val: c.val})
				}
			}
			spec.JoinGroup(key, side1, side2, free1All, free2All, func(idx []int, v float64) {
				emit(joinCell{idx: idx, val: v})
			})
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	out, stats := job.Run(cells)
	j := tensor.NewSparse(spec.Shape)
	for _, c := range out {
		j.Append(c.idx, c.val)
	}
	return j, stats
}

// corePhase is Phase 3: the join tensor's cells are sharded across
// reducers; each computes its shard's projection through the factor
// matrices and the driver sums the partial cores (exact, since the core is
// linear in J's cells).
func corePhase(j *tensor.Sparse, factors []*mat.Matrix, workers int) (*tensor.Dense, mapreduce.Stats) {
	order := j.Order()
	type indexedCell struct {
		pos  int
		cell joinCell
	}
	cells := make([]indexedCell, 0, j.NNZ())
	j.Each(func(idx []int, v float64) {
		cells = append(cells, indexedCell{
			pos:  len(cells),
			cell: joinCell{idx: append([]int(nil), idx...), val: v},
		})
	})
	transposed := tensor.TransposeAll(factors)

	job := &mapreduce.Job[indexedCell, int, joinCell, *tensor.Dense]{
		Map: func(c indexedCell, emit func(int, joinCell)) {
			emit(c.pos%workers, c.cell)
		},
		Reduce: func(shard int, group []joinCell, emit func(*tensor.Dense)) {
			x := tensor.NewSparse(j.Shape)
			for _, c := range group {
				x.Append(c.idx, c.val)
			}
			emit(tensor.MultiTTMSparse(x, transposed))
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	partials, stats := job.Run(cells)
	if len(partials) == 0 {
		// Empty join tensor: the core is the all-zero tensor at the target
		// ranks.
		coreShape := make(tensor.Shape, order)
		for n := 0; n < order; n++ {
			coreShape[n] = factors[n].Cols
		}
		return tensor.NewDense(coreShape), stats
	}
	total := partials[0]
	for _, pc := range partials[1:] {
		total = total.Add(pc)
	}
	return total, stats
}

// enumerate lists every coordinate combination over the given modes.
func enumerate(shape tensor.Shape, modes []int) [][]int {
	var out [][]int
	cur := make([]int, len(modes))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(modes) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < shape[modes[pos]]; i++ {
			cur[pos] = i
			walk(pos + 1)
		}
	}
	walk(0)
	return out
}

const localRadix = 1 << 20

func localKey(idx []int) int {
	key := 0
	for _, i := range idx {
		key = key*localRadix + i
	}
	return key
}
