package dist

import (
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// This file is the engine-independent heart of Phases 1–2: the pivot-key
// geometry, the per-group JE-stitch kernel, and the pivot-factor fusion.
// Both D-M2TD engines — the in-process MapReduce one in this package and
// the multi-process internal/distnet one — call these same functions, so
// their outputs agree cell-for-cell by construction.

// Cell is one sub-tensor cell in SUB-LOCAL index order (pivot modes
// leading, as partition.SubEnsemble tensors are laid out).
type Cell struct {
	Idx []int
	Val float64
}

// SortCells orders cells lexicographically by index — the deterministic
// within-group order every stitch engine must present to JoinGroup.
func SortCells(cs []Cell) {
	sort.Slice(cs, func(a, b int) bool {
		ia, ib := cs[a].Idx, cs[b].Idx
		for i := range ia {
			if ia[i] != ib[i] {
				return ia[i] < ib[i]
			}
		}
		return false
	})
}

// JoinSpec describes the JE-stitch geometry of a PF-partitioned pair:
// the full space shape, which full-space modes are pivots and which are
// each side's free modes, and whether zero-join extensions are emitted.
// It is a pure value (JSON-serializable by the distributed runtime), and
// every method on it is a pure function — the determinism contract's
// foundation.
type JoinSpec struct {
	Shape    tensor.Shape `json:"shape"`
	Pivots   []int        `json:"pivots"`
	Free1    []int        `json:"free1"`
	Free2    []int        `json:"free2"`
	ZeroJoin bool         `json:"zero_join,omitempty"`
}

// NewJoinSpec derives the spec for a partitioned pair.
func NewJoinSpec(p *partition.Result, zeroJoin bool) JoinSpec {
	return JoinSpec{
		Shape:    p.Space.Shape(),
		Pivots:   p.Config.Pivots,
		Free1:    p.Config.Free1,
		Free2:    p.Config.Free2,
		ZeroJoin: zeroJoin,
	}
}

// PivotSizes returns the pivot modes' dimensions in pivot order.
func (s JoinSpec) PivotSizes() []int {
	sizes := make([]int, len(s.Pivots))
	for i, m := range s.Pivots {
		sizes[i] = s.Shape[m]
	}
	return sizes
}

// PivotKey linearises a sub-local index's pivot coordinates — identical
// for both sub-tensors since pivots lead the mode order on each side.
// Keys are dense in [0, ∏ pivot sizes), so key % shards is a balanced,
// timing-independent shard assignment.
func (s JoinSpec) PivotKey(idx []int) int {
	key := 0
	for i, size := range s.PivotSizes() {
		key = key*size + idx[i]
	}
	return key
}

// DecodePivotKey inverts PivotKey into pivot-mode coordinates.
func (s JoinSpec) DecodePivotKey(key int) []int {
	sizes := s.PivotSizes()
	idx := make([]int, len(sizes))
	rem := key
	for i := len(sizes) - 1; i >= 0; i-- {
		idx[i] = rem % sizes[i]
		rem /= sizes[i]
	}
	return idx
}

// FreeGrids enumerates both sides' full free-coordinate grids — the
// universe the zero-join extension subtracts sampled coordinates from.
// Callers stitching many groups should compute them once.
func (s JoinSpec) FreeGrids() (free1, free2 [][]int) {
	return enumerate(s.Shape, s.Free1), enumerate(s.Shape, s.Free2)
}

// JoinGroup stitches one pivot group: side1 and side2 hold the group's
// cells from each sub-tensor, sorted with SortCells; free1All/free2All
// are the FreeGrids (only consulted when ZeroJoin is set; nil is fine
// otherwise). Join cells are emitted in full-space index order derived
// deterministically from the inputs: matched pairs first (side1-major),
// then side2's zero-join extensions, then side1's.
func (s JoinSpec) JoinGroup(key int, side1, side2 []Cell, free1All, free2All [][]int, emit func(idx []int, val float64)) {
	k := len(s.Pivots)
	pivotIdx := s.DecodePivotKey(key)
	emitCell := func(f1, f2 []int, v float64) {
		full := make([]int, len(s.Shape))
		for i, m := range s.Pivots {
			full[m] = pivotIdx[i]
		}
		for i, m := range s.Free1 {
			full[m] = f1[i]
		}
		for i, m := range s.Free2 {
			full[m] = f2[i]
		}
		emit(full, v)
	}
	// Matched pairs.
	for _, c1 := range side1 {
		for _, c2 := range side2 {
			emitCell(c1.Idx[k:], c2.Idx[k:], (c1.Val+c2.Val)/2)
		}
	}
	if !s.ZeroJoin {
		return
	}
	// Zero-join extensions against unsampled partners.
	sampled1 := sampledCellSet(side1, k)
	sampled2 := sampledCellSet(side2, k)
	for _, f2 := range free2All {
		if sampled2[localKey(f2)] {
			continue
		}
		for _, c1 := range side1 {
			emitCell(c1.Idx[k:], f2, c1.Val/2)
		}
	}
	for _, f1 := range free1All {
		if sampled1[localKey(f1)] {
			continue
		}
		for _, c2 := range side2 {
			emitCell(f1, c2.Idx[k:], c2.Val/2)
		}
	}
}

// sampledCellSet returns the set of free coordinates present in one side
// of a pivot group.
func sampledCellSet(side []Cell, k int) map[int]bool {
	out := make(map[int]bool, len(side))
	for _, c := range side {
		out[localKey(c.Idx[k:])] = true
	}
	return out
}

// FuseFactors fuses Phase 1's per-sub-tensor outputs into the full
// factor list (Algorithm 6 line "fuse pivot factors"): pivot-mode
// factors are fused per the method — AVG averages, CONCAT re-solves the
// summed Grams, SELECT row-selects — and each side's free-mode factors
// are taken as-is. sub1F/sub2F and sub1G/sub2G are each sub-tensor's
// per-sub-local-mode factor and Gram matrices; ranks are the full-space
// clipped ranks (CONCAT's re-solve needs them).
func FuseFactors(method core.Method, cfg partition.Config, order int, ranks []int, sub1F, sub1G, sub2F, sub2G []*mat.Matrix) []*mat.Matrix {
	k := len(cfg.Pivots)
	factors := make([]*mat.Matrix, order)
	for i, m := range cfg.Pivots {
		switch method {
		case core.AVG:
			factors[m] = mat.Average(sub1F[i], sub2F[i])
		case core.CONCAT:
			g := mat.Add(sub1G[i], sub2G[i])
			factors[m] = mat.LeadingEigenvectors(g, ranks[m])
		case core.SELECT:
			factors[m] = core.RowSelect(sub1F[i], sub2F[i])
		}
	}
	for i, m := range cfg.Free1 {
		factors[m] = sub1F[k+i]
	}
	for i, m := range cfg.Free2 {
		factors[m] = sub2F[k+i]
	}
	return factors
}
