package dist

import (
	"repro/internal/mapreduce"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// corePhaseFiber is the paper-literal Phase 3 (Algorithm 6): for the first
// mode product, join-tensor cells are shuffled by their
// all-but-mode-0 index; each reducer receives one mode-0 fiber
// J(·, p₂, …, p_M) and multiplies it by U(0)ᵀ, emitting the cells of
// Y = J ×₀ U(0)ᵀ. The remaining (much smaller) mode products run densely
// on the driver, as the paper's cost analysis assumes — the first product
// dominates because it touches every cell of J.
//
// corePhase (cells sharded, partial cores summed) computes the identical
// result with better balance; this variant exists to mirror the paper's
// pseudocode and is selected with Options.FiberPhase3.
func corePhaseFiber(j *tensor.Sparse, factors []*mat.Matrix, workers int) (*tensor.Dense, mapreduce.Stats) {
	order := j.Order()
	u0t := mat.Transpose(factors[0])

	// Output shape after the first product.
	midShape := j.Shape.Clone()
	midShape[0] = u0t.Rows

	type fiberCell struct {
		i0  int
		val float64
	}
	type outCell struct {
		idx []int
		val float64
	}
	type input struct {
		idx []int
		val float64
	}
	var cells []input
	j.Each(func(idx []int, v float64) {
		cells = append(cells, input{idx: append([]int(nil), idx...), val: v})
	})

	// Key: linearised all-but-mode-0 coordinates.
	restShape := make(tensor.Shape, order-1)
	copy(restShape, j.Shape[1:])
	keyOf := func(idx []int) int {
		key := 0
		for k := 1; k < order; k++ {
			key = key*j.Shape[k] + idx[k]
		}
		return key
	}

	job := &mapreduce.Job[input, int, fiberCell, outCell]{
		Map: func(c input, emit func(int, fiberCell)) {
			emit(keyOf(c.idx), fiberCell{i0: c.idx[0], val: c.val})
		},
		Reduce: func(key int, fiber []fiberCell, emit func(outCell)) {
			// Reconstruct the shared coordinates from the key.
			rest := make([]int, order-1)
			rem := key
			for k := order - 2; k >= 0; k-- {
				rest[k] = rem % restShape[k]
				rem /= restShape[k]
			}
			// Multiply the sparse fiber by U(0)ᵀ.
			for r := 0; r < u0t.Rows; r++ {
				var s float64
				row := u0t.Row(r)
				for _, fc := range fiber {
					s += row[fc.i0] * fc.val
				}
				idx := make([]int, order)
				idx[0] = r
				copy(idx[1:], rest)
				emit(outCell{idx: idx, val: s})
			}
		},
		Workers: workers,
		KeyLess: func(a, b int) bool { return a < b },
	}
	out, stats := job.Run(cells)

	// Assemble Y densely and finish the remaining mode products on the
	// driver.
	y := tensor.NewDense(midShape)
	for _, c := range out {
		//lint:allow quarantine -- kernel scatter into a freshly allocated intermediate; cell values are mapreduce products of quarantined inputs
		y.Data[midShape.LinearIndex(c.idx)] = c.val
	}
	cur := y
	for n := 1; n < order; n++ {
		cur = tensor.TTM(cur, n, mat.Transpose(factors[n]))
	}
	return cur, stats
}
