package distnet

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/tucker"
)

// BenchmarkDistNet measures the full multi-process campaign — process
// spawn, IPC, store round-trips, and the three phases — against worker
// count: the paper's Table III phase-time-vs-servers curve with real IPC
// overhead included (BENCH_8).
func BenchmarkDistNet(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := tinyPartition(b, 1, 300)
			ranks := tucker.UniformRanks(5, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := Options{
					Method: core.SELECT, Ranks: ranks,
					Workers: workers, Shards: 4,
					WorkDir: b.TempDir(),
				}
				res, err := Decompose(context.Background(), p, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Core == nil {
					b.Fatal("no core")
				}
			}
		})
	}
}
