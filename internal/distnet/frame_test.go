package distnet

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte(`{"worker":3}`), bytes.Repeat([]byte("x"), 1<<16)}
	for ft := frameHello; ft <= frameShutdown; ft++ {
		for _, p := range payloads {
			var buf bytes.Buffer
			if err := writeFrame(&buf, ft, p); err != nil {
				t.Fatalf("write type %d: %v", ft, err)
			}
			gt, gp, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("read type %d: %v", ft, err)
			}
			if gt != ft || !bytes.Equal(gp, p) {
				t.Fatalf("roundtrip type %d: got type %d payload %d bytes", ft, gt, len(gp))
			}
		}
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameTask, make([]byte, maxFramePayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	base := func() []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, frameResult, []byte(`{"id":"p2-j0"}`)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Flipping any single byte must surface as an error — errBadFrame for
	// magic/CRC/type damage, a truncation error when the flipped length
	// promises more bytes than exist — never as a silent misparse.
	for pos := 0; pos < len(base()); pos++ {
		raw := base()
		raw[pos] ^= 0x40
		if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Fatalf("flip at byte %d read successfully", pos)
		}
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHeartbeat, []byte(`{"worker":1}`)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := readFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation to %d bytes read successfully", cut)
		}
		if cut > 9 && !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation to %d bytes: got %v, want truncated-frame error", cut, err)
		}
	}
}

func TestFrameRejectsUnknownType(t *testing.T) {
	for _, ft := range []frameType{0, frameShutdown + 1, 200} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, ft, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readFrame(&buf); !errors.Is(err, errBadFrame) {
			t.Fatalf("type %d: got %v, want errBadFrame", ft, err)
		}
	}
}
