// Package distnet is the multi-process D-M2TD engine: a coordinator and
// N worker child processes executing the paper's 3-phase distributed
// decomposition (Algorithm 6) over real process boundaries, with
// phase-level fault tolerance.
//
// The division of labour keeps the network control-plane-only:
//
//   - Control plane: a hand-rolled length-prefixed, CRC-checked frame
//     protocol over localhost TCP (this file) carrying small JSON
//     messages — hello, task lease, heartbeat, result, shutdown.
//   - Data plane: sub-tensor shards, factor matrices, and every task
//     output move as internal/store objects in a shared catalog
//     directory, inheriting the store's atomic temp+rename+CRC
//     protocol. A task that finds its output already durable skips
//     recomputation, so a re-leased or resumed task costs nothing once
//     its artifact landed.
//
// Fault tolerance (DESIGN.md §13): the coordinator leases one task at a
// time to each worker, tracks heartbeats against a lease deadline, and
// on worker death, lease expiry, or a corrupt frame quarantines the
// worker and re-leases only that worker's task to a survivor, with
// faults.RetryPolicy's bounded attempts and seeded-jitter backoff. The
// engine degrades gracefully down to a single surviving worker.
//
// Determinism contract: shard assignment (pivot key modulo the fixed
// shard count) and merge order (ascending shard index) are pure
// functions of the partition and Options.Shards — never of worker
// identity, scheduling, or timing — so the factors, core, and join
// tensor are bit-identical regardless of which workers died mid-phase.
package distnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: magic "M2TN" (4 bytes) | type (1) | payload length
// (uint32 LE) | payload | CRC32-IEEE footer (uint32 LE) over
// type+length+payload. The magic makes cross-protocol accidents fail
// fast; the CRC makes a torn or corrupted frame a detectable event the
// coordinator can quarantine on, not silent garbage.
const frameMagic = "M2TN"

type frameType uint8

const (
	frameHello frameType = iota + 1
	frameTask
	frameResult
	frameTaskErr
	frameHeartbeat
	frameShutdown
)

// maxFramePayload bounds control messages; bulk data never crosses the
// socket (it moves through the store), so anything larger is corruption.
const maxFramePayload = 1 << 20

var errBadFrame = errors.New("distnet: corrupt frame")

// writeFrame writes one frame. The payload is the caller's JSON message.
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("distnet: frame payload %d bytes exceeds limit", len(payload))
	}
	var hdr [9]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = byte(t)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:9])
	crc.Write(payload)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(foot[:])
	return err
}

// readFrame reads and validates one frame. Any structural violation —
// bad magic, oversized length, unknown type, CRC mismatch — returns
// errBadFrame; the peer is speaking garbage and must be quarantined.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if string(hdr[:4]) != frameMagic {
		return 0, nil, errBadFrame
	}
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxFramePayload {
		return 0, nil, errBadFrame
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("distnet: truncated frame: %w", err)
	}
	payload, foot := buf[:n], buf[n:]
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:9])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(foot) {
		return 0, nil, errBadFrame
	}
	t := frameType(hdr[4])
	if t < frameHello || t > frameShutdown {
		return 0, nil, errBadFrame
	}
	return t, payload, nil
}
