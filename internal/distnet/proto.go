package distnet

import (
	"fmt"
	"hash/crc32"

	"repro/internal/dist"
)

// Control-plane messages (JSON frame payloads) and the catalog naming
// scheme shared by coordinator and workers.

// helloMsg is the worker's first frame after connecting.
type helloMsg struct {
	Worker  int    `json:"worker"`
	PID     int    `json:"pid"`
	Metrics string `json:"metrics,omitempty"` // bound obs endpoint, if serving
}

// jobSpec is the run-wide geometry every task carries: the stitch spec
// and the fixed shard count. Both are pure values — two workers given
// the same spec compute byte-identical artifacts.
type jobSpec struct {
	Join   dist.JoinSpec `json:"join"`
	Shards int           `json:"shards"`
}

// taskMsg leases one task to a worker.
type taskMsg struct {
	ID    string  `json:"id"`
	Kind  string  `json:"kind"` // taskFactor | taskStitch | taskCore
	Kappa int     `json:"kappa,omitempty"`
	Mode  int     `json:"mode,omitempty"` // sub-local mode (factor tasks)
	Rank  int     `json:"rank,omitempty"`
	Shard int     `json:"shard,omitempty"`
	In    string  `json:"in,omitempty"` // input object (core tasks)
	Out   string  `json:"out"`
	Spec  jobSpec `json:"spec"`
}

const (
	taskFactor = "factor"
	taskStitch = "stitch"
	taskCore   = "core"
)

// resultMsg reports a completed (or failed, via frameTaskErr) task.
type resultMsg struct {
	ID      string `json:"id"`
	Worker  int    `json:"worker"`
	Skipped bool   `json:"skipped,omitempty"` // output was already durable
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// heartbeatMsg extends the worker's lease.
type heartbeatMsg struct {
	Worker int    `json:"worker"`
	Task   string `json:"task,omitempty"`
}

// Catalog object names. Inputs are written by the coordinator before
// spawning; every task writes exactly one output object.
const (
	objSub1    = "in-sub1"
	objSub2    = "in-sub2"
	objFactors = "factors"
)

func factorOut(kappa, mode int) string { return fmt.Sprintf("p1-k%d-m%d", kappa, mode) }
func stitchOut(shard int) string       { return fmt.Sprintf("p2-j%d", shard) }
func coreOut(shard int) string         { return fmt.Sprintf("p3-c%d", shard) }

// taskKey seeds the re-lease backoff jitter for a task: a pure function
// of the task's identity, so coordinator restarts sleep identically.
func taskKey(id string) uint64 {
	return uint64(crc32.ChecksumIEEE([]byte(id)))<<1 | 1
}

// Environment variables carrying a worker's configuration from the
// coordinator (or a test harness) to the child process. MaybeWorker
// reads them; the coordinator's spawner writes them.
const (
	envAddr    = "M2TD_DISTNET_ADDR"
	envDir     = "M2TD_DISTNET_DIR"
	envID      = "M2TD_DISTNET_ID"
	envBeat    = "M2TD_DISTNET_BEAT"
	envKill    = "M2TD_DISTNET_KILL"
	envMetrics = "M2TD_DISTNET_METRICS"
	envCorrupt = "M2TD_DISTNET_CORRUPT"
)
