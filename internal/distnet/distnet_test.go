package distnet

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/tucker"
)

// TestMain lets the coordinator self-exec this test binary as a worker
// process: when the distnet environment is present, MaybeWorker takes
// over and never returns.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

func tinyPartition(t testing.TB, freeFrac float64, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = freeFrac
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runDistNet(t *testing.T, p *partition.Result, opts Options) *Result {
	t.Helper()
	if opts.WorkDir == "" {
		opts.WorkDir = t.TempDir()
	}
	res, err := Decompose(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameDecomposition(t *testing.T, label string, a, b *core.Result, tol float64) {
	t.Helper()
	if a.Join.NNZ() != b.Join.NNZ() {
		t.Fatalf("%s: join NNZ %d != %d", label, a.Join.NNZ(), b.Join.NNZ())
	}
	if !a.Core.Equal(b.Core, tol) {
		t.Fatalf("%s: cores differ (tol %g)", label, tol)
	}
	for m := range a.Factors {
		if !a.Factors[m].Equal(b.Factors[m], tol) {
			t.Fatalf("%s: factor %d differs (tol %g)", label, m, tol)
		}
	}
}

func TestDistNetMatchesSerial(t *testing.T) {
	p := tinyPartition(t, 1, 220)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range core.Methods() {
		serial, err := core.Decompose(p, core.Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		d := runDistNet(t, p, Options{Method: m, Ranks: ranks, Workers: 2})
		sameDecomposition(t, string(m), d.Result, serial, 1e-9)
	}
}

func TestDistNetZeroJoinMatchesSerial(t *testing.T) {
	p := tinyPartition(t, 0.4, 221)
	ranks := tucker.UniformRanks(5, 2)
	serial, err := core.Decompose(p, core.Options{Method: core.SELECT, Ranks: ranks, ZeroJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	d := runDistNet(t, p, Options{Method: core.SELECT, Ranks: ranks, ZeroJoin: true, Workers: 2, Shards: 3})
	sameDecomposition(t, "zero-join", d.Result, serial, 1e-9)
}

// TestDistNetWorkerCountInvariance is the determinism contract: with
// Shards pinned, the worker count must not change a single bit.
func TestDistNetWorkerCountInvariance(t *testing.T) {
	p := tinyPartition(t, 1, 222)
	ranks := tucker.UniformRanks(5, 2)
	base := Options{Method: core.SELECT, Ranks: ranks, Shards: 4}

	one := base
	one.Workers = 1
	a := runDistNet(t, p, one)

	three := base
	three.Workers = 3
	b := runDistNet(t, p, three)

	sameDecomposition(t, "workers 1 vs 3", a.Result, b.Result, 0)
}

// TestDistNetKillAndRecover SIGKILLs k of 3 workers mid-task at seeded
// injection points and requires the surviving fleet to produce output
// bit-identical to an unkilled run.
func TestDistNetKillAndRecover(t *testing.T) {
	p := tinyPartition(t, 1, 223)
	ranks := tucker.UniformRanks(5, 2)
	base := Options{Method: core.AVG, Ranks: ranks, Workers: 3, Shards: 4}
	clean := runDistNet(t, p, base)

	for _, kills := range []int{1, 2} {
		opts := base
		opts.Kill = faults.KillSpec{Seed: 42, Kills: kills}
		d := runDistNet(t, p, opts)

		sameDecomposition(t, "killed vs clean", d.Result, clean.Result, 0)
		lost := d.Phase1.WorkersLost + d.Phase2.WorkersLost + d.Phase3.WorkersLost
		if lost != kills {
			t.Fatalf("kills=%d: %d workers lost, want exactly %d", kills, lost, kills)
		}
		requeues := d.Phase1.Requeues + d.Phase2.Requeues + d.Phase3.Requeues
		if requeues < kills {
			t.Fatalf("kills=%d: only %d requeues, want >= %d", kills, requeues, kills)
		}
		quarantined := 0
		for _, w := range d.Workers {
			if w.Quarantined {
				quarantined++
			}
		}
		if quarantined != kills {
			t.Fatalf("kills=%d: roster shows %d quarantined workers", kills, quarantined)
		}
	}
}

// TestDistNetResume reruns a finished campaign in the same catalog: every
// task must be satisfied by its durable artifact, not recomputed.
func TestDistNetResume(t *testing.T) {
	p := tinyPartition(t, 1, 224)
	opts := Options{Method: core.SELECT, Ranks: tucker.UniformRanks(5, 2), Workers: 2, WorkDir: t.TempDir()}
	first := runDistNet(t, p, opts)
	second := runDistNet(t, p, opts)

	sameDecomposition(t, "resume", second.Result, first.Result, 0)
	for _, ph := range []struct {
		name string
		st   PhaseStats
	}{{"phase1", second.Phase1}, {"phase2", second.Phase2}, {"phase3", second.Phase3}} {
		if ph.st.Skipped != ph.st.Tasks {
			t.Fatalf("resume %s: %d of %d tasks skipped, want all", ph.name, ph.st.Skipped, ph.st.Tasks)
		}
	}
}

// TestDistNetCorruptFrameQuarantine makes worker 0 answer its first task
// with a CRC-corrupted frame: the coordinator must quarantine it and
// finish correctly on the survivor.
func TestDistNetCorruptFrameQuarantine(t *testing.T) {
	p := tinyPartition(t, 1, 225)
	ranks := tucker.UniformRanks(5, 2)
	base := Options{Method: core.AVG, Ranks: ranks, Workers: 2, Shards: 3}
	clean := runDistNet(t, p, base)

	opts := base
	opts.WorkerEnv = []string{envCorrupt + "=0"}
	d := runDistNet(t, p, opts)

	sameDecomposition(t, "corrupt vs clean", d.Result, clean.Result, 0)
	lost := d.Phase1.WorkersLost + d.Phase2.WorkersLost + d.Phase3.WorkersLost
	if lost != 1 {
		t.Fatalf("%d workers lost, want exactly the corrupting one", lost)
	}
}

func TestDistNetMetricsAndTrace(t *testing.T) {
	p := tinyPartition(t, 1, 226)
	trace := obs.New("campaign")
	opts := Options{
		Method: core.SELECT, Ranks: tucker.UniformRanks(5, 2),
		Workers: 2, Metrics: true, Span: trace.Root(),
	}
	d := runDistNet(t, p, opts)
	trace.Finish()

	if len(d.Workers) != 2 {
		t.Fatalf("roster has %d workers, want 2", len(d.Workers))
	}
	for _, w := range d.Workers {
		if w.MetricsAddr == "" {
			t.Fatalf("worker %d reported no metrics endpoint", w.ID)
		}
		if w.PID <= 0 {
			t.Fatalf("worker %d reported pid %d", w.ID, w.PID)
		}
	}
	for _, name := range []string{"phase1", "phase2", "phase3"} {
		ps := trace.Root().Find(name)
		if ps == nil {
			t.Fatalf("trace has no %s span", name)
		}
		if got := ps.Counter("tasks"); got <= 0 {
			t.Fatalf("%s span records %d tasks", name, got)
		}
		if len(ps.Children()) != int(ps.Counter("tasks")) {
			t.Fatalf("%s span has %d task children for %d tasks", name, len(ps.Children()), ps.Counter("tasks"))
		}
	}
}

func TestDistNetOptionValidation(t *testing.T) {
	p := tinyPartition(t, 1, 227)
	ranks := tucker.UniformRanks(5, 2)
	ctx := context.Background()

	if _, err := Decompose(ctx, p, Options{Method: "bogus", Ranks: ranks, WorkDir: t.TempDir()}); err == nil {
		t.Fatal("bogus method accepted")
	}
	if _, err := Decompose(ctx, p, Options{Method: core.AVG, Ranks: ranks[:2], WorkDir: t.TempDir()}); err == nil {
		t.Fatal("short rank list accepted")
	}
	if _, err := Decompose(ctx, p, Options{Method: core.AVG, Ranks: ranks}); err == nil {
		t.Fatal("missing WorkDir accepted")
	}
	if _, err := Decompose(ctx, p, Options{
		Method: core.AVG, Ranks: ranks, WorkDir: t.TempDir(),
		Workers: 2, Kill: faults.KillSpec{Seed: 1, Kills: 2},
	}); err == nil {
		t.Fatal("kill plan dooming every worker accepted")
	}
}
