package distnet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The coordinator side of the engine: spawn worker processes, accept
// their connections, and drive each phase through a single-goroutine
// event loop that leases tasks, tracks heartbeats, and re-leases work
// lost to dead, hung, or garbage-speaking workers.

// task is one unit of phase work as the coordinator tracks it.
type task struct {
	msg      taskMsg
	attempts int // leases so far (bounded by Retry.MaxAttempts)
	done     bool
	result   resultMsg
}

// eventKind discriminates the coordinator's event-loop messages.
type eventKind int

const (
	evHello eventKind = iota + 1
	evBeat
	evDone
	evTaskErr
	evDead
	evRequeue
	evProcExit
)

type event struct {
	kind   eventKind
	wc     *workerConn
	res    resultMsg
	taskID string // evRequeue
	reason string // evDead detail, for the trace
}

// workerConn is one connected worker. Mutable fields are guarded by the
// engine mutex; wmu serialises frame writes (lease sends vs shutdown
// broadcast).
type workerConn struct {
	id      int
	conn    net.Conn
	wmu     sync.Mutex
	pid     int
	metrics string

	tasks       int
	quarantined bool
	lastBeat    time.Time
	inflight    *task
}

// send marshals msg and writes one frame to the worker.
func (w *workerConn) send(t frameType, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	//lint:allow locks -- w.wmu is the frame-write serialization mutex; holding it across exactly one frame write is its entire purpose
	return writeFrame(w.conn, t, payload)
}

// engine owns the listener, the worker processes, and the event loop
// state shared by the three phases.
type engine struct {
	opts Options
	lis  net.Listener

	events chan event
	done   chan struct{} // closed at shutdown; unblocks emitters

	mu        sync.Mutex
	workers   map[int]*workerConn
	connected int // hellos seen; == opts.Workers means no future joins

	procs     []*exec.Cmd
	procsLive atomic.Int32
	procWG    sync.WaitGroup
	acceptWG  sync.WaitGroup
	stopCtx   func() bool
}

// newEngine binds the listener, spawns the worker fleet, and starts
// accepting connections. The context cancels the whole engine: listener,
// connections, and (via their closed sockets) the event loop.
func newEngine(ctx context.Context, opts Options) (*engine, error) {
	lis, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("distnet: listen %s: %w", opts.Addr, err)
	}
	e := &engine{
		opts:    opts,
		lis:     lis,
		events:  make(chan event, 256),
		done:    make(chan struct{}),
		workers: make(map[int]*workerConn),
	}
	e.stopCtx = context.AfterFunc(ctx, func() { lis.Close() })

	argv := opts.WorkerArgv
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			lis.Close()
			return nil, fmt.Errorf("distnet: self-exec worker: %w", err)
		}
		argv = []string{exe}
	}
	for id := 0; id < opts.Workers; id++ {
		if err := e.spawn(argv, id); err != nil {
			e.shutdown()
			return nil, err
		}
	}

	e.acceptWG.Add(1)
	go e.acceptLoop(ctx)
	return e, nil
}

// spawn starts worker id as a child process configured through the
// M2TD_DISTNET_* environment.
func (e *engine) spawn(argv []string, id int) error {
	cmd := exec.Command(argv[0], argv[1:]...)
	env := append(os.Environ(),
		envAddr+"="+e.lis.Addr().String(),
		envDir+"="+e.opts.WorkDir,
		fmt.Sprintf("%s=%d", envID, id),
		envBeat+"="+e.opts.HeartbeatInterval.String(),
	)
	if e.opts.Kill.Enabled() {
		env = append(env, envKill+"="+e.opts.Kill.String())
	}
	if e.opts.Metrics {
		env = append(env, envMetrics+"=1")
	}
	env = append(env, e.opts.WorkerEnv...)
	cmd.Env = env
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("distnet: spawn worker %d: %w", id, err)
	}
	e.procs = append(e.procs, cmd)
	e.procsLive.Add(1)
	e.procWG.Add(1)
	go func() {
		_ = cmd.Wait()
		e.procsLive.Add(-1)
		e.emit(event{kind: evProcExit})
		e.procWG.Done()
	}()
	return nil
}

// emit delivers an event unless the engine is already shutting down.
func (e *engine) emit(ev event) {
	select {
	case e.events <- ev:
	case <-e.done:
	}
}

// acceptLoop admits worker connections until the listener closes.
func (e *engine) acceptLoop(ctx context.Context) {
	defer e.acceptWG.Done()
	for {
		conn, err := e.lis.Accept()
		if err != nil {
			return // listener closed: engine shutdown or ctx cancel
		}
		e.acceptWG.Add(1)
		go func() {
			defer e.acceptWG.Done()
			e.handshake(ctx, conn)
		}()
	}
}

// handshake reads the hello frame, registers the worker, and starts its
// read loop. A peer that doesn't present a valid hello promptly is
// dropped before it ever becomes a worker.
func (e *engine) handshake(ctx context.Context, conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	t, payload, err := readFrame(conn)
	if err != nil || t != frameHello {
		conn.Close()
		return
	}
	var hello helloMsg
	if err := json.Unmarshal(payload, &hello); err != nil {
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	wc := &workerConn{
		id:       hello.Worker,
		conn:     conn,
		pid:      hello.PID,
		metrics:  hello.Metrics,
		lastBeat: time.Now(),
	}
	e.mu.Lock()
	if _, dup := e.workers[wc.id]; dup {
		e.mu.Unlock()
		conn.Close() // impostor or restart; the original holds the slot
		return
	}
	e.workers[wc.id] = wc
	e.connected++
	e.mu.Unlock()

	e.emit(event{kind: evHello, wc: wc})
	e.readLoop(ctx, conn, wc)
}

// readLoop turns a worker's frames into events. Any read error — EOF
// from a SIGKILLed process, a CRC-corrupt frame, a protocol violation —
// becomes evDead: the worker is quarantined, never re-trusted.
func (e *engine) readLoop(ctx context.Context, conn net.Conn, wc *workerConn) {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		t, payload, err := readFrame(conn)
		if err != nil {
			e.emit(event{kind: evDead, wc: wc, reason: fmt.Sprintf("read: %v", err)})
			conn.Close()
			return
		}
		switch t {
		case frameHeartbeat:
			// Advisory: drop rather than block if the loop is busy.
			select {
			case e.events <- event{kind: evBeat, wc: wc}:
			default:
			}
		case frameResult:
			var res resultMsg
			if err := json.Unmarshal(payload, &res); err != nil {
				e.emit(event{kind: evDead, wc: wc, reason: "bad result payload"})
				conn.Close()
				return
			}
			e.emit(event{kind: evDone, wc: wc, res: res})
		case frameTaskErr:
			var res resultMsg
			if err := json.Unmarshal(payload, &res); err != nil {
				e.emit(event{kind: evDead, wc: wc, reason: "bad error payload"})
				conn.Close()
				return
			}
			e.emit(event{kind: evTaskErr, wc: wc, res: res})
		default:
			e.emit(event{kind: evDead, wc: wc, reason: fmt.Sprintf("unexpected frame type %d", t)})
			conn.Close()
			return
		}
	}
}

// runPhase executes one phase's tasks to completion. Leases go to idle
// live workers FIFO; a lost worker's in-flight task is re-leased to a
// survivor after RetryPolicy backoff; the phase fails only when a task
// exhausts its attempts or every worker process is gone.
func (e *engine) runPhase(ctx context.Context, name string, tasks []*task) (PhaseStats, error) {
	start := time.Now()
	stats := PhaseStats{Tasks: len(tasks)}
	byID := make(map[string]*task, len(tasks))
	queue := make([]*task, 0, len(tasks))
	for _, t := range tasks {
		byID[t.msg.ID] = t
		queue = append(queue, t)
	}
	remaining := len(tasks)
	pendingRequeues := 0
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	var phaseErr error
	fail := func(err error) {
		if phaseErr == nil {
			phaseErr = err
		}
	}

	// quarantine removes a worker from rotation (idempotent) and
	// schedules its in-flight task, if any, for re-lease.
	quarantine := func(wc *workerConn, reason string) *task {
		e.mu.Lock()
		defer e.mu.Unlock()
		if wc.quarantined {
			return nil
		}
		wc.quarantined = true
		stats.WorkersLost++
		wc.conn.Close()
		t := wc.inflight
		wc.inflight = nil
		return t
	}

	requeue := func(t *task) {
		if t == nil || t.done {
			return
		}
		if t.attempts >= e.opts.Retry.MaxAttempts {
			fail(fmt.Errorf("distnet: %s: task %s failed after %d attempts", name, t.msg.ID, t.attempts))
			return
		}
		stats.Requeues++
		pendingRequeues++
		id := t.msg.ID
		delay := e.opts.Retry.Backoff(taskKey(id), t.attempts)
		timers = append(timers, time.AfterFunc(delay, func() {
			e.emit(event{kind: evRequeue, taskID: id})
		}))
	}

	// assign leases queued tasks to idle live workers. Sends happen
	// outside the lock; a failed send is an immediate death signal.
	assign := func() {
		type lease struct {
			wc *workerConn
			t  *task
		}
		var leases []lease
		e.mu.Lock()
		ids := make([]int, 0, len(e.workers))
		for id := range e.workers {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if len(queue) == 0 {
				break
			}
			wc := e.workers[id]
			if wc.quarantined || wc.inflight != nil {
				continue
			}
			t := queue[0]
			queue = queue[1:]
			t.attempts++
			wc.inflight = t
			wc.tasks++
			wc.lastBeat = time.Now()
			leases = append(leases, lease{wc, t})
		}
		e.mu.Unlock()
		for _, l := range leases {
			if err := l.wc.send(frameTask, l.t.msg); err != nil {
				e.emit(event{kind: evDead, wc: l.wc, reason: fmt.Sprintf("send: %v", err)})
			}
		}
	}

	ticker := time.NewTicker(e.opts.HeartbeatInterval)
	defer ticker.Stop()

	for remaining > 0 && phaseErr == nil {
		assign()

		// No live workers and no process left to produce one: the
		// degradation ladder has run out of rungs.
		e.mu.Lock()
		live := 0
		for _, wc := range e.workers {
			if !wc.quarantined {
				live++
			}
		}
		allJoined := e.connected >= e.opts.Workers
		e.mu.Unlock()
		if live == 0 && (allJoined || e.procsLive.Load() == 0) {
			return stats, fmt.Errorf("distnet: %s: all %d workers lost with %d tasks outstanding", name, e.opts.Workers, remaining)
		}

		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-ticker.C:
			// Lease audit: a worker holding a task whose heartbeats
			// stopped (without its socket dying) is hung — quarantine.
			var expired []*workerConn
			e.mu.Lock()
			for _, wc := range e.workers {
				if !wc.quarantined && wc.inflight != nil && time.Since(wc.lastBeat) > e.opts.LeaseTimeout {
					expired = append(expired, wc)
				}
			}
			e.mu.Unlock()
			for _, wc := range expired {
				requeue(quarantine(wc, "lease expired"))
			}
		case ev := <-e.events:
			switch ev.kind {
			case evHello, evProcExit:
				// Roster changed; the next assign()/liveness check sees it.
			case evBeat:
				e.mu.Lock()
				ev.wc.lastBeat = time.Now()
				e.mu.Unlock()
			case evDone:
				e.mu.Lock()
				t := ev.wc.inflight
				if t != nil && t.msg.ID == ev.res.ID {
					ev.wc.inflight = nil
					ev.wc.lastBeat = time.Now()
					if !t.done {
						t.done = true
						t.result = ev.res
						remaining--
						if ev.res.Skipped {
							stats.Skipped++
						}
					}
				}
				e.mu.Unlock()
			case evTaskErr:
				e.mu.Lock()
				t := ev.wc.inflight
				if t != nil && t.msg.ID == ev.res.ID {
					ev.wc.inflight = nil
					ev.wc.lastBeat = time.Now()
				} else {
					t = nil
				}
				e.mu.Unlock()
				requeue(t)
			case evDead:
				requeue(quarantine(ev.wc, ev.reason))
			case evRequeue:
				if t := byID[ev.taskID]; t != nil {
					pendingRequeues--
					if !t.done {
						queue = append(queue, t)
					}
				}
			}
		}
	}
	stats.Duration = time.Since(start)
	if phaseErr != nil {
		return stats, phaseErr
	}
	e.tracePhase(name, tasks, stats)
	return stats, nil
}

// tracePhase records the phase on the configured span: deterministic
// task counts as counters, scheduling-dependent values as gauges, and
// one child span per task — created post hoc in task order, so the
// trace skeleton is identical no matter which workers served or died.
func (e *engine) tracePhase(name string, tasks []*task, stats PhaseStats) {
	if e.opts.Span == nil {
		return
	}
	ps := e.opts.Span.Start(name)
	ps.Set("tasks", int64(stats.Tasks))
	ps.SetGauge("skipped", int64(stats.Skipped))
	ps.SetGauge("requeues", int64(stats.Requeues))
	ps.SetGauge("workers_lost", int64(stats.WorkersLost))
	for _, t := range tasks {
		ts := ps.Start("task:" + t.msg.ID)
		ts.SetGauge("worker", int64(t.result.Worker))
		ts.SetGauge("attempts", int64(t.attempts))
		ts.SetGauge("dur_ns", t.result.DurNS)
		ts.Finish()
	}
	ps.Finish()
}

// roster snapshots the worker fleet for Result.Workers, in id order.
func (e *engine) roster() []WorkerInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]int, 0, len(e.workers))
	for id := range e.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]WorkerInfo, 0, len(ids))
	for _, id := range ids {
		wc := e.workers[id]
		out = append(out, WorkerInfo{
			ID: wc.id, PID: wc.pid, MetricsAddr: wc.metrics,
			Tasks: wc.tasks, Quarantined: wc.quarantined,
		})
	}
	return out
}

// shutdown tears the engine down: polite shutdown frames first, then the
// listener and sockets, then — after a short grace — SIGKILL for any
// worker process that didn't exit on its own.
func (e *engine) shutdown() {
	close(e.done)
	e.mu.Lock()
	conns := make([]*workerConn, 0, len(e.workers))
	for _, wc := range e.workers {
		conns = append(conns, wc)
	}
	e.mu.Unlock()
	for _, wc := range conns {
		if !wc.quarantined {
			_ = wc.send(frameShutdown, struct{}{})
		}
	}
	e.lis.Close()
	if e.stopCtx != nil {
		e.stopCtx()
	}

	exited := make(chan struct{})
	go func() {
		e.procWG.Wait()
		close(exited)
	}()
	select {
	case <-exited:
	case <-time.After(3 * time.Second):
		for _, cmd := range e.procs {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
		<-exited
	}

	for _, wc := range conns {
		wc.conn.Close()
	}
	e.acceptWG.Wait()

	// Drain any events emitted between close(e.done) checks and now.
	for {
		select {
		case <-e.events:
		default:
			return
		}
	}
}
