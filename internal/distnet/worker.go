package distnet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/mapreduce"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
)

// The worker side of the engine. A worker is a whole child process: it
// dials the coordinator, says hello, and executes one leased task at a
// time, heartbeating throughout. Every task's output goes through the
// shared store catalog, so a task whose artifact is already durable
// (left by this worker's previous life, or by a sibling that finished
// before being quarantined) is acknowledged as Skipped without
// recomputation — the resume path that makes kill-and-recover cheap.

// WorkerConfig is a worker process's environment-derived configuration.
type WorkerConfig struct {
	Addr string // coordinator address
	Dir  string // shared store catalog
	ID   int
	Beat time.Duration // heartbeat period

	Kill    faults.KillSpec // seeded chaos plan; this worker checks its own doom
	Metrics bool            // serve per-worker obs endpoints
	Corrupt bool            // test hook: first result goes out CRC-corrupted
}

// MaybeWorker turns the current process into a distnet worker when the
// M2TD_DISTNET_ADDR environment variable is set, and never returns in
// that case. Binaries that can be spawned by the coordinator's self-exec
// mode (cmd/m2tdworker, cmd/m2tdbench, the test binaries' TestMain) must
// call it first thing in main.
func MaybeWorker() {
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	cfg := WorkerConfig{
		Addr:    addr,
		Dir:     os.Getenv(envDir),
		Beat:    250 * time.Millisecond,
		Metrics: os.Getenv(envMetrics) != "",
		Corrupt: os.Getenv(envCorrupt) != "" && os.Getenv(envCorrupt) == os.Getenv(envID),
	}
	var err error
	if cfg.ID, err = strconv.Atoi(os.Getenv(envID)); err != nil {
		fmt.Fprintf(os.Stderr, "m2td worker: bad %s: %v\n", envID, err)
		os.Exit(1)
	}
	if cfg.Kill, err = faults.ParseKillSpec(os.Getenv(envKill)); err != nil {
		fmt.Fprintf(os.Stderr, "m2td worker: bad %s: %v\n", envKill, err)
		os.Exit(1)
	}
	if b := os.Getenv(envBeat); b != "" {
		if d, err := time.ParseDuration(b); err == nil && d > 0 {
			cfg.Beat = d
		}
	}
	//lint:allow ctxprop -- process entry point: the worker's root context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err = RunWorker(ctx, cfg)
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "m2td worker %d: %v\n", cfg.ID, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// sender serialises frame writes between the task loop and the
// heartbeat goroutine.
type sender struct {
	mu   sync.Mutex
	conn net.Conn
}

func (s *sender) send(t frameType, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow locks -- s.mu is the frame-write serialization mutex; holding it across exactly one frame write is its entire purpose
	return writeFrame(s.conn, t, payload)
}

// sendCorrupt writes a result-typed frame whose CRC footer is
// deliberately wrong — the chaos hook behind Corrupt. The coordinator
// must detect it and quarantine this worker.
func (s *sender) sendCorrupt() {
	payload := []byte(`{"id":"garbage"}`)
	var hdr [9]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = byte(frameResult)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:9])
	crc.Write(payload)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32()^0xffffffff)
	// Assemble the whole corrupt frame first so the serialized section is
	// one write, like every healthy frame.
	frame := make([]byte, 0, len(hdr)+len(payload)+len(foot))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload...)
	frame = append(frame, foot[:]...)
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow locks -- s.mu is the frame-write serialization mutex; holding it across exactly one frame write is its entire purpose
	_, _ = s.conn.Write(frame)
}

// workerState caches run-constant artifacts across tasks: the input
// sub-tensors, the fused factor list, and the zero-join free grids.
type workerState struct {
	cfg WorkerConfig
	st  *store.Store

	subs       map[int]*tensor.Sparse
	factors    []*mat.Matrix
	free1      [][]int
	free2      [][]int
	gridsReady bool

	executed int // tasks begun, the kill-point ordinal clock
}

// RunWorker connects to the coordinator and serves tasks until a
// shutdown frame, connection loss, or ctx cancellation.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	st, err := store.Open(cfg.Dir)
	if err != nil {
		return err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("distnet: dial coordinator: %w", err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	s := &sender{conn: conn}
	hello := helloMsg{Worker: cfg.ID, PID: os.Getpid()}
	if cfg.Metrics {
		srv, err := obs.ServeMetrics("127.0.0.1:0", obs.NewRegistry())
		if err != nil {
			return err
		}
		defer srv.Close()
		hello.Metrics = srv.Addr
	}
	if err := s.send(frameHello, hello); err != nil {
		return fmt.Errorf("distnet: hello: %w", err)
	}

	// Heartbeats flow on their own goroutine so a long compute doesn't
	// starve the lease.
	var curTask atomic.Value
	curTask.Store("")
	beatsDone := make(chan struct{})
	defer close(beatsDone)
	go func() {
		tick := time.NewTicker(cfg.Beat)
		defer tick.Stop()
		for {
			select {
			case <-beatsDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				id, _ := curTask.Load().(string)
				if s.send(frameHeartbeat, heartbeatMsg{Worker: cfg.ID, Task: id}) != nil {
					return
				}
			}
		}
	}()

	w := &workerState{cfg: cfg, st: st, subs: make(map[int]*tensor.Sparse)}
	for {
		t, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator gone or we were told to stop
			}
			return fmt.Errorf("distnet: read: %w", err)
		}
		switch t {
		case frameTask:
			var task taskMsg
			if err := json.Unmarshal(payload, &task); err != nil {
				return fmt.Errorf("distnet: task payload: %w", err)
			}
			curTask.Store(task.ID)
			res, err := w.exec(ctx, task)
			curTask.Store("")
			if err != nil {
				if serr := s.send(frameTaskErr, resultMsg{ID: task.ID, Worker: cfg.ID, Err: err.Error()}); serr != nil {
					return serr
				}
				continue
			}
			if cfg.Corrupt {
				s.sendCorrupt()
				return nil // a corrupting worker exits after its sabotage
			}
			if err := s.send(frameResult, res); err != nil {
				return err
			}
		case frameShutdown:
			return nil
		default:
			return fmt.Errorf("distnet: unexpected frame type %d from coordinator", t)
		}
	}
}

// exec runs one leased task. The chaos clock ticks per task begun: a
// doomed worker SIGKILLs itself at its seeded kill point, after the
// compute but before the durable save — the worst moment, guaranteeing
// the coordinator must re-lease.
func (w *workerState) exec(ctx context.Context, task taskMsg) (resultMsg, error) {
	start := time.Now()
	w.executed++
	doomed := w.cfg.Kill.Doomed(w.cfg.ID) && w.executed == w.cfg.Kill.KillPoint(w.cfg.ID)

	if w.outputDurable(task) {
		if doomed {
			faults.KillSelf()
		}
		return resultMsg{ID: task.ID, Worker: w.cfg.ID, Skipped: true, DurNS: time.Since(start).Nanoseconds()}, nil
	}

	var err error
	switch task.Kind {
	case taskFactor:
		err = w.execFactor(task, doomed)
	case taskStitch:
		err = w.execStitch(task, doomed)
	case taskCore:
		err = w.execCore(task, doomed)
	default:
		err = fmt.Errorf("distnet: unknown task kind %q", task.Kind)
	}
	if err != nil {
		return resultMsg{}, err
	}
	if ctx.Err() != nil {
		return resultMsg{}, ctx.Err()
	}
	return resultMsg{ID: task.ID, Worker: w.cfg.ID, DurNS: time.Since(start).Nanoseconds()}, nil
}

// outputDurable reports whether the task's output object already loads
// cleanly — the resume check.
func (w *workerState) outputDurable(task taskMsg) bool {
	var err error
	switch task.Kind {
	case taskFactor:
		_, err = w.st.LoadMatrices(task.Out)
	case taskStitch:
		_, err = w.st.LoadSparse(task.Out)
	case taskCore:
		_, err = w.st.LoadDense(task.Out)
	default:
		return false
	}
	return err == nil
}

// sub loads (and caches) one input sub-tensor.
func (w *workerState) sub(kappa int) (*tensor.Sparse, error) {
	if x, ok := w.subs[kappa]; ok {
		return x, nil
	}
	name := objSub1
	if kappa == 2 {
		name = objSub2
	}
	x, err := w.st.LoadSparse(name)
	if err != nil {
		return nil, fmt.Errorf("distnet: input %s: %w", name, err)
	}
	w.subs[kappa] = x
	return x, nil
}

// execFactor is Phase 1: one (sub-tensor, mode) pair — the mode's Gram
// matrix and its leading eigenvectors, saved together (CONCAT fusion
// needs the Gram).
func (w *workerState) execFactor(task taskMsg, doomed bool) error {
	x, err := w.sub(task.Kappa)
	if err != nil {
		return err
	}
	g := tensor.ModeGram(x, task.Mode)
	f := mat.LeadingEigenvectors(g, task.Rank)
	if doomed {
		faults.KillSelf()
	}
	return w.st.SaveMatrices(task.Out, []*mat.Matrix{g, f})
}

// execStitch is Phase 2 for one shard: both sub-tensors' cells whose
// pivot key lands in the shard, grouped by pivot key and stitched with
// the same JoinSpec kernel the in-process engine uses. Shard membership
// is key % Shards — a pure function of the cell, so every group lives
// wholly in exactly one shard no matter who computes it.
func (w *workerState) execStitch(task taskMsg, doomed bool) error {
	spec := task.Spec.Join
	if spec.ZeroJoin && !w.gridsReady {
		w.free1, w.free2 = spec.FreeGrids()
		w.gridsReady = true
	}

	type wcell struct {
		kappa int
		cell  dist.Cell
	}
	type joined struct {
		idx []int
		val float64
	}
	var cells []wcell
	for kappa := 1; kappa <= 2; kappa++ {
		x, err := w.sub(kappa)
		if err != nil {
			return err
		}
		k := kappa
		x.Each(func(idx []int, v float64) {
			if spec.PivotKey(idx)%task.Spec.Shards != task.Shard {
				return
			}
			cells = append(cells, wcell{kappa: k, cell: dist.Cell{Idx: append([]int(nil), idx...), Val: v}})
		})
	}

	job := &mapreduce.Job[wcell, int, wcell, joined]{
		Map: func(c wcell, emit func(int, wcell)) {
			emit(spec.PivotKey(c.cell.Idx), c)
		},
		Reduce: func(key int, group []wcell, emit func(joined)) {
			var side1, side2 []dist.Cell
			for _, c := range group {
				if c.kappa == 1 {
					side1 = append(side1, c.cell)
				} else {
					side2 = append(side2, c.cell)
				}
			}
			dist.SortCells(side1)
			dist.SortCells(side2)
			spec.JoinGroup(key, side1, side2, w.free1, w.free2, func(idx []int, v float64) {
				emit(joined{idx: idx, val: v})
			})
		},
		Workers: 1, // in-process parallelism is the coordinator's job here
		KeyLess: func(a, b int) bool { return a < b },
	}
	out, _ := job.Run(cells)
	j := tensor.NewSparse(spec.Shape)
	for _, c := range out {
		j.Append(c.idx, c.val)
	}
	if doomed {
		faults.KillSelf()
	}
	return w.st.SaveSparse(task.Out, j)
}

// execCore is Phase 3 for one shard: project the shard's join cells
// through the fused factors. The partial cores sum exactly (the core is
// linear in J's cells); the coordinator does the summing in shard order.
func (w *workerState) execCore(task taskMsg, doomed bool) error {
	x, err := w.st.LoadSparse(task.In)
	if err != nil {
		return fmt.Errorf("distnet: input %s: %w", task.In, err)
	}
	if w.factors == nil {
		fs, err := w.st.LoadMatrices(objFactors)
		if err != nil {
			return fmt.Errorf("distnet: input %s: %w", objFactors, err)
		}
		w.factors = fs
	}
	partial := tensor.MultiTTMSparse(x, tensor.TransposeAll(w.factors))
	if doomed {
		faults.KillSelf()
	}
	return w.st.SaveDense(task.Out, partial)
}
