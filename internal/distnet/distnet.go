package distnet

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures a multi-process distributed decomposition.
type Options struct {
	// Method selects the pivot fusion (core.AVG / CONCAT / SELECT).
	Method core.Method
	// Ranks are the per-mode Tucker ranks over the full space.
	Ranks []int
	// ZeroJoin selects zero-join JE-stitching.
	ZeroJoin bool

	// Workers is the worker-process count (default 1). The engine
	// tolerates losing up to Workers-1 of them mid-run.
	Workers int
	// Shards is the task count for phases 2 and 3 — THE determinism
	// unit: shard assignment is pivot-key % Shards and merge order is
	// ascending shard index, so two runs with equal Shards produce
	// bit-identical results regardless of worker count or deaths.
	// Default: Workers.
	Shards int
	// Addr is the coordinator's listen address (default "127.0.0.1:0").
	Addr string
	// WorkDir is the shared store catalog directory (required). Rerun
	// with the same WorkDir and inputs to resume: tasks whose outputs
	// are already durable are skipped.
	WorkDir string
	// WorkerArgv is the worker command line. Empty means self-exec: the
	// current executable is spawned and must call MaybeWorker at
	// process start (cmd/m2tdworker, cmd/m2tdbench, and the test
	// binaries do).
	WorkerArgv []string
	// WorkerEnv appends extra environment entries to spawned workers
	// (chaos/test hooks).
	WorkerEnv []string
	// Metrics makes each worker serve its own obs endpoints on a
	// self-picked port, reported back in its hello and surfaced on
	// Result.Workers.
	Metrics bool

	// Kill is the seeded chaos plan forwarded to workers (zero = no
	// kills). Kills must be < Workers.
	Kill faults.KillSpec
	// Retry bounds task re-leases after a worker loss: MaxAttempts per
	// task, backoff with seeded jitter between leases. The zero value
	// defaults to max(3, Kill.Kills+2) attempts.
	Retry faults.RetryPolicy
	// LeaseTimeout quarantines a worker whose heartbeats stop without
	// its connection dying (default 10s). SIGKILLed workers are caught
	// faster, by the closed socket.
	LeaseTimeout time.Duration
	// HeartbeatInterval is the workers' beat period and the
	// coordinator's lease-check period (default 250ms).
	HeartbeatInterval time.Duration

	// Span, when non-nil, receives per-phase child spans with
	// deterministic task counters and scheduling gauges (requeues,
	// workers lost, per-task worker/attempt/duration).
	Span *obs.Span
}

// normalize fills defaults and validates the parts that don't need the
// partition.
func (o Options) normalize() (Options, error) {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Shards < 1 {
		o.Shards = o.Workers
	}
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 10 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.WorkDir == "" {
		return o, fmt.Errorf("distnet: WorkDir is required (the shared artifact catalog)")
	}
	if o.Kill.Kills > 0 {
		if o.Kill.Total == 0 {
			o.Kill.Total = o.Workers
		}
		if o.Kill.Kills >= o.Workers {
			return o, fmt.Errorf("distnet: Kill.Kills %d must leave at least one of %d workers alive", o.Kill.Kills, o.Workers)
		}
	}
	if o.Retry.MaxAttempts <= 0 {
		o.Retry.MaxAttempts = 3
		if o.Kill.Kills+2 > o.Retry.MaxAttempts {
			o.Retry.MaxAttempts = o.Kill.Kills + 2
		}
	}
	return o, nil
}

// PhaseStats describes one phase's execution. Tasks is deterministic
// (a counter); the rest depend on scheduling and are reported as
// gauges on the trace.
type PhaseStats struct {
	// Tasks is the phase's task count (pure function of the config).
	Tasks int
	// Skipped counts tasks satisfied by an already-durable artifact.
	Skipped int
	// Requeues counts task re-leases after worker loss or task error.
	Requeues int
	// WorkersLost counts workers quarantined during the phase.
	WorkersLost int
	// Duration is the phase's wall-clock time.
	Duration time.Duration
}

// WorkerInfo describes one worker process as the coordinator saw it.
type WorkerInfo struct {
	ID          int
	PID         int
	MetricsAddr string
	Tasks       int
	Quarantined bool
}

// Result augments the serial M2TD result with per-phase engine
// statistics and the worker roster.
type Result struct {
	*core.Result
	Phase1, Phase2, Phase3 PhaseStats
	Workers                []WorkerInfo
}

// Decompose runs D-M2TD over a PF-partitioned pair on real worker
// processes. See the package comment for the protocol and the
// determinism contract.
func Decompose(ctx context.Context, p *partition.Result, opts Options) (*Result, error) {
	switch opts.Method {
	case core.AVG, core.CONCAT, core.SELECT:
	default:
		return nil, fmt.Errorf("distnet: unknown M2TD method %q", opts.Method)
	}
	if len(opts.Ranks) != p.Space.Order() {
		return nil, fmt.Errorf("distnet: %d ranks for order-%d space", len(opts.Ranks), p.Space.Order())
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}

	st, err := store.Open(opts.WorkDir)
	if err != nil {
		return nil, err
	}
	// Data-plane inputs first, so a worker connecting early finds them.
	if err := st.SaveSparse(objSub1, p.Sub1.Tensor); err != nil {
		return nil, err
	}
	if err := st.SaveSparse(objSub2, p.Sub2.Tensor); err != nil {
		return nil, err
	}

	ranks := tucker.ClipRanks(p.Space.Shape(), opts.Ranks)
	spec := jobSpec{Join: dist.NewJoinSpec(p, opts.ZeroJoin), Shards: opts.Shards}

	eng, err := newEngine(ctx, opts)
	if err != nil {
		return nil, err
	}
	defer eng.shutdown()

	// ---- Phase 1: parallel sub-tensor decomposition ----
	var p1tasks []*task
	subs := []*partition.SubEnsemble{p.Sub1, p.Sub2}
	for si, sub := range subs {
		kappa := si + 1
		for n, m := range sub.Modes {
			p1tasks = append(p1tasks, &task{msg: taskMsg{
				ID: factorOut(kappa, n), Kind: taskFactor,
				Kappa: kappa, Mode: n, Rank: ranks[m],
				Out: factorOut(kappa, n), Spec: spec,
			}})
		}
	}
	p1stats, err := eng.runPhase(ctx, "phase1", p1tasks)
	if err != nil {
		return nil, err
	}

	// Fuse pivot factors driver-side (tiny matrices only) and persist
	// the fused list — phase 3's shared input.
	loadSub := func(kappa, modes int) (fs, gs []*mat.Matrix, err error) {
		for n := 0; n < modes; n++ {
			ms, err := st.LoadMatrices(factorOut(kappa, n))
			if err != nil {
				return nil, nil, fmt.Errorf("distnet: phase 1 artifact %s: %w", factorOut(kappa, n), err)
			}
			gs, fs = append(gs, ms[0]), append(fs, ms[1])
		}
		return fs, gs, nil
	}
	f1, g1, err := loadSub(1, len(p.Sub1.Modes))
	if err != nil {
		return nil, err
	}
	f2, g2, err := loadSub(2, len(p.Sub2.Modes))
	if err != nil {
		return nil, err
	}
	factors := dist.FuseFactors(opts.Method, p.Config, p.Space.Order(), ranks, f1, g1, f2, g2)
	if err := st.SaveMatrices(objFactors, factors); err != nil {
		return nil, err
	}

	// ---- Phase 2: parallel JE-stitching, sharded by pivot key ----
	var p2tasks []*task
	for s := 0; s < opts.Shards; s++ {
		p2tasks = append(p2tasks, &task{msg: taskMsg{
			ID: stitchOut(s), Kind: taskStitch, Shard: s, Out: stitchOut(s), Spec: spec,
		}})
	}
	p2stats, err := eng.runPhase(ctx, "phase2", p2tasks)
	if err != nil {
		return nil, err
	}
	// Merge join shards in ascending shard order — worker-independent.
	j := tensor.NewSparse(p.Space.Shape())
	for s := 0; s < opts.Shards; s++ {
		shard, err := st.LoadSparse(stitchOut(s))
		if err != nil {
			return nil, fmt.Errorf("distnet: phase 2 artifact %s: %w", stitchOut(s), err)
		}
		shard.Each(func(idx []int, v float64) { j.Append(idx, v) })
	}

	// ---- Phase 3: parallel core recovery over the join shards ----
	var p3tasks []*task
	for s := 0; s < opts.Shards; s++ {
		p3tasks = append(p3tasks, &task{msg: taskMsg{
			ID: coreOut(s), Kind: taskCore, Shard: s, In: stitchOut(s), Out: coreOut(s), Spec: spec,
		}})
	}
	p3stats, err := eng.runPhase(ctx, "phase3", p3tasks)
	if err != nil {
		return nil, err
	}
	// Sum partial cores in ascending shard order (exact: the core is
	// linear in J's cells; fixed order keeps the float sum bitwise
	// stable).
	var coreT *tensor.Dense
	for s := 0; s < opts.Shards; s++ {
		partial, err := st.LoadDense(coreOut(s))
		if err != nil {
			return nil, fmt.Errorf("distnet: phase 3 artifact %s: %w", coreOut(s), err)
		}
		if coreT == nil {
			coreT = partial
		} else {
			coreT = coreT.Add(partial)
		}
	}

	return &Result{
		Result: &core.Result{
			Factors:       factors,
			Core:          coreT,
			Join:          j,
			SubDecompTime: p1stats.Duration,
			StitchTime:    p2stats.Duration,
			CoreTime:      p3stats.Duration,
		},
		Phase1:  p1stats,
		Phase2:  p2stats,
		Phase3:  p3stats,
		Workers: eng.roster(),
	}, nil
}
