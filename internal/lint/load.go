package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools/go/packages:
// `go list -export -deps -json` compiles every dependency and reports the
// path of its export data, the target packages' sources are parsed with
// go/parser, and go/types resolves imports through a gc-export-data
// importer fed from those files. Fully offline and cache-friendly — the
// go build cache makes repeat runs cheap.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listError
	DepsErrors []*listError
}

type listError struct {
	Pos string
	Err string
}

// Load lists, compiles, parses, and type-checks the packages matching
// patterns, resolving them relative to dir (normally the module root).
// Test files are not loaded: the invariants police library code, and
// tests legitimately use wall clocks, context.Background, and exact
// float comparisons (bit-stability assertions).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			targets = append(targets, &p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := exportImporter{importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})}

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter wraps the gc importer, special-casing "unsafe" (which
// has no export data file).
type exportImporter struct{ base types.Importer }

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.base.Import(path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	allows := make(map[string]map[int][]*allowDirective)
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		allows[path] = parseAllows(fset, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:   lp.ImportPath,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		allows: allows,
	}, nil
}

// ModuleRoot returns the directory containing the enclosing module's
// go.mod, resolved from dir ("" = current directory). Used by the CLI
// and the tests so the loader always runs with module-root-relative
// patterns.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD = %q)", gomod)
	}
	return filepath.Dir(gomod), nil
}
