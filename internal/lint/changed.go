package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// ChangedPatterns maps `git diff --name-only <ref>` onto the package
// patterns whose directories contain changed .go files — the diff-aware
// mode behind `m2tdlint -changed <ref>`. The returned patterns are
// module-root-relative ("./internal/serve"); an empty slice means no Go
// package changed since ref and the caller can report clean without
// loading anything.
//
// Directories that no longer exist (a deleted package) and testdata
// trees (the golden packages' deliberate violations) are skipped.
func ChangedPatterns(root, ref string) ([]string, error) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--", "*.go")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %v\n%s", ref, err, stderr.String())
	}
	dirs := make(map[string]bool)
	for _, line := range strings.Split(stdout.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasSuffix(line, ".go") {
			continue
		}
		if strings.Contains(line, "testdata/") {
			continue
		}
		dir := filepath.Dir(line)
		if info, err := os.Stat(filepath.Join(root, dir)); err != nil || !info.IsDir() {
			continue // package deleted since ref
		}
		dirs[dir] = true
	}
	patterns := make([]string, 0, len(dirs))
	for dir := range dirs {
		if dir == "." {
			patterns = append(patterns, ".")
			continue
		}
		patterns = append(patterns, "./"+filepath.ToSlash(dir))
	}
	sort.Strings(patterns)
	return patterns, nil
}
