package lint

import (
	"go/ast"
	"go/types"
)

// obsPkgPath identifies the observability package whose Span type the
// analyzer polices. The golden testdata packages import the real
// package, so the same type-identity match covers them.
const obsPkgPath = "repro/internal/obs"

// Spans enforces the span lifecycle and the counter/gauge taxonomy from
// DESIGN.md §7:
//
//   - every obs span created by Start must be finished in the same
//     function (Finish, possibly deferred, or WithVitals whose returned
//     closure is invoked) or handed off (passed as an argument, stored
//     in a struct/field, or returned) — otherwise the span never records
//     a duration and the trace tree silently reports a running span;
//   - a WithVitals finisher bound to a variable must actually be invoked;
//   - deterministic counters (Add/Set) must not record timing-derived
//     values (time.Now/Since, Span.Duration, parallel.Strips/Tasks):
//     those are gauge-class vitals (SetGauge/AddGauge) and would break
//     the byte-identical Skeleton() contract if they entered counters.
var Spans = &Analyzer{
	Name: "spans",
	Doc: "require obs spans to be finished or handed off in their creating " +
		"function, and keep timing-derived values out of deterministic counters",
	Run: runSpans,
}

func runSpans(p *Pass) {
	if isToolPkg(p.Pkg.Path) || p.Pkg.Path == obsPkgPath {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanLifecycles(p, fd)
		}
		checkCounterTaxonomy(p, file)
	}
}

// isSpanMethodCall reports whether call invokes the named method on
// obs.Span (or *obs.Span).
func isSpanMethodCall(p *Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	return methodReceiverIs(fn, obsPkgPath, "Span")
}

// parentAt returns the k-th ancestor from a walk stack (1 = immediate
// parent), or nil.
func parentAt(stack []ast.Node, k int) ast.Node {
	if len(stack) < k {
		return nil
	}
	return stack[len(stack)-k]
}

// checkSpanLifecycles verifies every span started in fd is finished or
// handed off within fd (including its nested function literals).
func checkSpanLifecycles(p *Pass, fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanMethodCall(p, call, "Start") {
			return
		}
		switch parent := parentAt(stack, 1).(type) {
		case *ast.AssignStmt:
			checkBoundSpan(p, fd, call, parent)
		case *ast.ExprStmt:
			p.Reportf(call.Pos(), "result of Start is discarded; the child span can never be finished")
		case *ast.SelectorExpr:
			// Chained call: s.Start("x").Finish() or
			// s.Start("x").WithVitals(...).
			if vitalsCall, ok2 := parentAt(stack, 2).(*ast.CallExpr); ok2 {
				switch parent.Sel.Name {
				case "Finish":
					return
				case "WithVitals":
					if !vitalsCallResolved(p, fd, vitalsCall, parentAt(stack, 3)) {
						p.Reportf(vitalsCall.Pos(), "WithVitals finisher is never invoked; the span never records its gauges or finishes")
					}
					return
				}
			}
			p.Reportf(call.Pos(), "span from chained Start call is never finished; bind it to a variable and defer its Finish")
		default:
			// Argument position, composite literal, return, etc.: the
			// span is handed off at birth.
		}
	})
}

// checkBoundSpan handles `v := s.Start(...)` (and `v = …`): the bound
// span must be finished or handed off somewhere in fd.
func checkBoundSpan(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, assign *ast.AssignStmt) {
	if len(assign.Lhs) == 1 {
		if _, isIdent := ast.Unparen(assign.Lhs[0]).(*ast.Ident); !isIdent {
			return // stored straight into a field/slice: handed off
		}
	}
	obj, blank := singleAssignTarget(p, assign, call)
	if blank {
		p.Reportf(call.Pos(), "span from Start is discarded; it can never be finished")
		return
	}
	if obj == nil {
		p.Reportf(call.Pos(), "span from Start is not bound to a single variable; bind it so it can be finished")
		return
	}
	if !spanIsResolved(p, fd, obj) {
		p.Reportf(call.Pos(), "span %q is started but never finished or handed off in this function; defer its Finish (or invoke its WithVitals closure)", obj.Name())
	}
}

// singleAssignTarget returns the object bound when assign has exactly
// one LHS identifier and rhs as its sole RHS. blank reports a blank
// identifier target.
func singleAssignTarget(p *Pass, assign *ast.AssignStmt, rhs ast.Expr) (obj types.Object, blank bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != rhs {
		return nil, false
	}
	id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if id.Name == "_" {
		return nil, true
	}
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o, false
	}
	return p.Pkg.Info.Uses[id], false
}

// spanIsResolved reports whether the span object is finished or handed
// off somewhere in fd.
func spanIsResolved(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	resolved := false
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if resolved {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Pkg.Info.Uses[id] != obj {
			return
		}
		switch parent := parentAt(stack, 1).(type) {
		case *ast.SelectorExpr:
			methodCall, ok := parentAt(stack, 2).(*ast.CallExpr)
			if !ok || parent.X != ast.Expr(id) {
				return
			}
			switch parent.Sel.Name {
			case "Finish":
				resolved = true
			case "WithVitals":
				if vitalsCallResolved(p, fd, methodCall, parentAt(stack, 3)) {
					resolved = true
				}
			}
		case *ast.CallExpr:
			// Passed as an argument (not the callee): handed off.
			for _, arg := range parent.Args {
				if arg == ast.Expr(id) {
					resolved = true
				}
			}
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.ReturnStmt:
			resolved = true // stored or returned: ownership transferred
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == ast.Expr(id) {
					resolved = true // reassigned elsewhere (field, channel, …)
				}
			}
		}
	})
	return resolved
}

// vitalsCallResolved reports whether the closure returned by a WithVitals
// call is invoked (immediately, via a bound variable, or handed off).
// parent is the WithVitals call's enclosing node.
func vitalsCallResolved(p *Pass, fd *ast.FuncDecl, vitalsCall *ast.CallExpr, parent ast.Node) bool {
	switch pn := parent.(type) {
	case *ast.CallExpr:
		// Immediate invocation — span.WithVitals(nil)(), possibly under
		// a defer — or passed as an argument: both resolve the closure.
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		// `defer span.WithVitals(nil)` defers the snapshot, then drops
		// the finisher on the floor.
		return false
	case *ast.AssignStmt:
		obj, blank := singleAssignTarget(p, pn, vitalsCall)
		if blank {
			return false
		}
		if obj == nil {
			return true // multi-assign or field store: assume handed off
		}
		return finisherInvoked(p, fd, obj)
	case *ast.ExprStmt:
		return false // result dropped on the floor
	default:
		return true // return value, composite literal, …: handed off
	}
}

// finisherInvoked reports whether the bound WithVitals closure is called
// (directly or deferred) or escapes from fd.
func finisherInvoked(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	invoked := false
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if invoked {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Pkg.Info.Uses[id] != obj {
			return
		}
		switch parent := parentAt(stack, 1).(type) {
		case *ast.CallExpr:
			invoked = true // called, or passed along as an argument
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.ReturnStmt:
			invoked = true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == ast.Expr(id) {
					invoked = true
				}
			}
		}
	})
	return invoked
}

// ---- counter/gauge taxonomy ----------------------------------------------

// checkCounterTaxonomy flags deterministic-counter updates (Span.Add /
// Span.Set) whose value expression derives from timing or scheduling.
func checkCounterTaxonomy(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSpanMethodCall(p, call, "Add") && !isSpanMethodCall(p, call, "Set") {
			return true
		}
		if len(call.Args) < 2 {
			return true
		}
		if src := nondeterministicSource(p, call.Args[1]); src != "" {
			fn := calleeFunc(p.Pkg.Info, call)
			p.Reportf(call.Args[1].Pos(), "%s records a timing-derived value (%s) as a deterministic counter; use SetGauge/AddGauge (DESIGN.md §7 taxonomy)", fn.Name(), src)
		}
		return true
	})
}

// nondeterministicSource scans expr for calls whose results depend on
// timing or scheduling, returning a description of the first offender.
func nondeterministicSource(p *Pass, expr ast.Expr) string {
	offender := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if offender != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && bannedClockFuncs[fn.Name()]:
			offender = "time." + fn.Name()
		case methodReceiverIs(fn, obsPkgPath, "Span") && fn.Name() == "Duration":
			offender = "Span.Duration"
		case isParallelPoolCounter(fn):
			offender = fn.Pkg().Name() + "." + fn.Name()
		}
		return true
	})
	return offender
}

// isParallelPoolCounter matches the worker-pool accounting functions
// whose values depend on the worker count and scheduling.
func isParallelPoolCounter(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "repro/internal/parallel" {
		return false
	}
	return fn.Name() == "Strips" || fn.Name() == "Tasks"
}
