package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestFixRoundTrip proves the -fix pipeline end to end on the fixable
// golden package: run wirecompat, apply every suggested fix, reload the
// repaired sources, and re-run to zero findings. The golden package is
// copied into a temp directory inside testdata/src so the edits never
// touch the checked-in sources, the loader still sees a module-local
// package, and the copy's import path still ends in "api" (the
// wire-contract suffix rule).
func TestFixRoundTrip(t *testing.T) {
	root, err := lint.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	srcDir := filepath.Join(root, "internal", "lint", "testdata", "src", "fixable", "api")

	tmpParent, err := os.MkdirTemp(filepath.Join(root, "internal", "lint", "testdata", "src"), "fixtmp-*")
	if err != nil {
		t.Fatalf("creating temp golden copy: %v", err)
	}
	defer os.RemoveAll(tmpParent)
	dstDir := filepath.Join(tmpParent, "api")
	if err := os.Mkdir(dstDir, 0o755); err != nil {
		t.Fatalf("creating temp api dir: %v", err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixable golden package: %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatalf("copying %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), b, 0o644); err != nil {
			t.Fatalf("copying %s: %v", e.Name(), err)
		}
	}

	pattern := "./internal/lint/testdata/src/" + filepath.Base(tmpParent) + "/api"
	pkgs, err := lint.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading temp golden copy: %v", err)
	}
	diags := lint.RunPackages(pkgs, []*lint.Analyzer{lint.WireCompat})
	if len(diags) == 0 {
		t.Fatal("fixable golden package produced no findings")
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Fatalf("finding without a suggested fix: %s", d)
		}
	}

	fixed, err := lint.ApplyFixes(pkgs, diags)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(fixed) == 0 {
		t.Fatal("ApplyFixes produced no edited files")
	}
	for path, content := range fixed {
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatalf("writing fixed %s: %v", path, err)
		}
	}

	pkgs, err = lint.Load(root, pattern)
	if err != nil {
		t.Fatalf("reloading after fixes: %v", err)
	}
	after := lint.RunPackages(pkgs, []*lint.Analyzer{lint.WireCompat})
	for _, d := range after {
		t.Errorf("finding survived -fix: %s", d)
	}
}
