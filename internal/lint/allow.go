package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
//
// Grammar (one directive per comment):
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// A directive suppresses matching diagnostics reported on its own line
// (trailing-comment form) and on the line immediately below (own-line
// form, the usual choice when the annotated statement is long). The
// reason after " -- " is mandatory; a directive without one, or naming
// an analyzer that does not exist, is itself reported, so the tree can
// never accumulate unexplained or stale-named suppressions.
type allowDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
}

const allowPrefix = "//lint:allow"

// parseAllows scans a file's comments for //lint:allow directives and
// indexes them by the line(s) they cover.
func parseAllows(fset *token.FileSet, file *ast.File) map[int][]*allowDirective {
	out := make(map[int][]*allowDirective)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			d := &allowDirective{pos: pos}
			names, reason, ok := strings.Cut(rest, "--")
			if !ok {
				// Reason missing: keep the names so suppression still
				// matches (the hygiene diagnostic is the enforcement),
				// but record the empty reason for validateDirectives.
				names, reason = rest, ""
			}
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					d.analyzers = append(d.analyzers, n)
				}
			}
			d.reason = strings.TrimSpace(reason)
			// A directive covers its own line (trailing form) and the
			// line below (own-line form above a statement).
			out[pos.Line] = append(out[pos.Line], d)
			out[pos.Line+1] = append(out[pos.Line+1], d)
		}
	}
	return out
}

// allowed reports whether a diagnostic from analyzer at position is
// covered by a directive.
func (pkg *Package) allowed(analyzer string, pos token.Position) bool {
	byLine := pkg.allows[pos.Filename]
	for _, d := range byLine[pos.Line] {
		for _, n := range d.analyzers {
			if n == analyzer {
				return true
			}
		}
	}
	return false
}

// validateDirectives enforces directive hygiene: every //lint:allow must
// carry a " -- reason" and must name only real analyzers.
func (pkg *Package) validateDirectives() []Diagnostic {
	seen := make(map[*allowDirective]bool)
	var diags []Diagnostic
	for _, byLine := range pkg.allows {
		for _, ds := range byLine {
			for _, d := range ds {
				if seen[d] {
					continue
				}
				seen[d] = true
				if d.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "m2tdlint",
						Message:  `lint:allow directive is missing its justification ("//lint:allow <analyzer> -- <reason>")`,
					})
				}
				if len(d.analyzers) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "m2tdlint",
						Message:  "lint:allow directive names no analyzer",
					})
				}
				for _, n := range d.analyzers {
					if ByName(n) == nil {
						diags = append(diags, Diagnostic{
							Pos:      d.pos,
							Analyzer: "m2tdlint",
							Message:  "lint:allow directive names unknown analyzer " + n,
						})
					}
				}
			}
		}
	}
	return diags
}
