package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Locks enforces the mutex discipline of the serving/distributed layers
// (DESIGN.md §15): in the lock-disciplined packages (internal/serve,
// internal/distnet — suffix rule, like every analyzer here),
//
//  1. every sync.Mutex/RWMutex acquisition must be released on all
//     paths out of the function — by a defer or a provably matched
//     Unlock on every branch; and
//  2. no lock may be held across a blocking operation: a channel send
//     or receive, a select without a default, net.Conn / io.Reader /
//     io.Writer IO, an internal/store method (disk IO), WaitGroup.Wait,
//     time.Sleep, or a subprocess wait.
//
// Rule 2 propagates one call level deep through a per-function summary:
// calling a same-package function whose own body performs a blocking
// primitive counts as blocking at the call site (writeFrame wrapping
// conn writes is the canonical case). The propagation is deliberately
// NOT transitive — one level catches the helper-wrapper idiom without
// turning the analyzer into a whole-program solver.
//
// The checker is a path-sensitive abstract interpretation of each
// function body (and each func literal as its own scope): branches are
// analyzed separately and merged, terminated paths (return, break,
// panic) drop out of the merge, and loop bodies are assumed balanced —
// a lock still held at the end of an iteration that was not held at
// entry is reported. Deliberate write-serialization mutexes held across
// a single frame write carry //lint:allow locks justifications.
var Locks = &Analyzer{
	Name: "locks",
	Doc: "require every mutex acquisition in serve/distnet to be released on all paths " +
		"and never held across a blocking operation (channel ops, conn/store IO, waits)",
	Run: runLocks,
}

func runLocks(p *Pass) {
	if !isLockDisciplinePkg(p.Pkg.Path) || isToolPkg(p.Pkg.Path) {
		return
	}
	lk := &locksRunner{
		p:             p,
		blocks:        make(map[*types.Func]string),
		reportedLeak:  make(map[token.Pos]bool),
		reportedBlock: make(map[token.Pos]bool),
	}
	lk.summarize()
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lk.analyze(n.Body)
				}
			case *ast.FuncLit:
				// Every literal is its own scope: goroutine bodies and
				// closures never inherit the creator's held set (we cannot
				// know when they run), but their own acquisitions must
				// still balance.
				lk.analyze(n.Body)
			}
			return true
		})
	}
}

type locksRunner struct {
	p *Pass
	// blocks maps same-package functions to a description of the direct
	// blocking primitive their body contains ("" absent) — the one-level
	// summary.
	blocks        map[*types.Func]string
	reportedLeak  map[token.Pos]bool // keyed by acquisition pos
	reportedBlock map[token.Pos]bool // keyed by blocking-site pos
}

// heldLock is one live acquisition.
type heldLock struct {
	pos      token.Pos // acquisition site
	reported bool      // a blocking op was already reported for this region
}

// lockState is the abstract state: the set of held locks, the keys a
// pending defer will release, and whether the path has terminated.
type lockState struct {
	held         map[string]heldLock
	deferCovered map[string]bool
	terminated   bool
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]heldLock), deferCovered: make(map[string]bool)}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.deferCovered {
		c.deferCovered[k] = true
	}
	c.terminated = st.terminated
	return c
}

// summarize computes the one-level blocking summary for every
// package-level function. Goroutine bodies are skipped — work a callee
// hands off to another goroutine does not block the caller.
func (lk *locksRunner) summarize() {
	for _, file := range lk.p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := lk.p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if desc := lk.bodyBlocks(fd.Body); desc != "" {
				lk.blocks[fn] = desc
			}
		}
	}
}

// bodyBlocks scans one function body for a direct blocking primitive,
// returning its description or "". Goroutine launches are skipped (work
// handed to another goroutine does not block the caller), and so is a
// select WITH a default clause in its entirety — its comm ops are
// non-blocking attempts by construction, the signal() idiom.
func (lk *locksRunner) bodyBlocks(body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if d := lk.directBlocking(n); d != "" {
				desc = d
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc = "channel receive"
			}
		case *ast.SendStmt:
			desc = "channel send"
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc = "select without default"
				return false
			}
			// Non-blocking select: the comm clauses cannot block, but a
			// clause BODY still can — scan those alone.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						if d := lk.bodyBlocks(&ast.BlockStmt{List: []ast.Stmt{s}}); d != "" {
							desc = d
						}
					}
				}
			}
			return false
		}
		return true
	})
	return desc
}

// analyze runs the abstract interpretation over one function scope.
func (lk *locksRunner) analyze(body *ast.BlockStmt) {
	st := newLockState()
	lk.stmts(body.List, st)
	if !st.terminated {
		lk.leaks(st) // falling off the end of the function
	}
}

func (lk *locksRunner) stmts(list []ast.Stmt, st *lockState) {
	for _, s := range list {
		lk.stmt(s, st)
	}
}

func (lk *locksRunner) stmt(s ast.Stmt, st *lockState) {
	if st.terminated || s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		lk.stmts(s.List, st)
	case *ast.ExprStmt:
		lk.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lk.expr(e, st)
		}
		for _, e := range s.Lhs {
			lk.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lk.expr(e, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		lk.expr(s.X, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lk.expr(e, st)
		}
		lk.leaks(st)
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treating them
		// as path terminators keeps the merge sound for the dominant
		// `if cond { mu.Unlock(); break }` shape.
		st.terminated = true
	case *ast.DeferStmt:
		if key, op := lk.mutexOp(s.Call); op == lockOpUnlock {
			st.deferCovered[key] = true
			return
		}
		// The deferred call's arguments evaluate now; the call itself
		// runs at return, outside this analysis.
		for _, e := range s.Call.Args {
			lk.expr(e, st)
		}
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			lk.expr(e, st)
		}
	case *ast.SendStmt:
		lk.expr(s.Chan, st)
		lk.expr(s.Value, st)
		lk.blockingAt(st, s.Arrow, "channel send")
	case *ast.IfStmt:
		lk.stmt(s.Init, st)
		lk.expr(s.Cond, st)
		then := st.clone()
		lk.stmt(s.Body, then)
		alt := st.clone()
		if s.Else != nil {
			lk.stmt(s.Else, alt)
		}
		lk.merge(st, then, alt)
	case *ast.SwitchStmt:
		lk.stmt(s.Init, st)
		lk.expr(s.Tag, st)
		lk.branches(st, s.Body, false)
	case *ast.TypeSwitchStmt:
		lk.stmt(s.Init, st)
		lk.branches(st, s.Body, false)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			lk.blockingAt(st, s.Select, "select without default")
		}
		lk.branches(st, s.Body, true)
	case *ast.ForStmt:
		lk.stmt(s.Init, st)
		lk.expr(s.Cond, st)
		lk.loopBody(s.Body, s.Post, st)
	case *ast.RangeStmt:
		lk.expr(s.X, st)
		lk.loopBody(s.Body, nil, st)
	case *ast.LabeledStmt:
		lk.stmt(s.Stmt, st)
	}
}

// loopBody analyzes a loop body once for blocking ops and intra-body
// balance, assumes the loop leaves the held set unchanged, and reports
// any lock acquired inside the body that survives to the iteration's
// end — a loop-carried leak compounds every iteration.
func (lk *locksRunner) loopBody(body *ast.BlockStmt, post ast.Stmt, st *lockState) {
	inner := st.clone()
	lk.stmts(body.List, inner)
	lk.stmt(post, inner)
	if inner.terminated {
		return
	}
	for key, h := range inner.held {
		if _, atEntry := st.held[key]; !atEntry && !inner.deferCovered[key] {
			lk.leakAt(key, h.pos, "still held at the end of the loop iteration")
		}
	}
}

// branches analyzes each clause of a switch/select body independently
// against the entry state and merges the surviving exits. For comm
// clauses the comm statement itself is part of the clause.
func (lk *locksRunner) branches(st *lockState, body *ast.BlockStmt, isSelect bool) {
	exits := []*lockState{}
	hasDefault := false
	for _, clause := range body.List {
		c := st.clone()
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				lk.expr(e, c)
			}
			lk.stmts(cl.Body, c)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			if cl.Comm != nil {
				// The blocking nature of the comm op is accounted for at
				// the select statement itself; still evaluate for nested
				// calls and lock ops.
				lk.commExprs(cl.Comm, c)
			}
			lk.stmts(cl.Body, c)
		}
		exits = append(exits, c)
	}
	if !hasDefault || isSelect {
		// A switch without default may run no clause at all; a select
		// always runs exactly one, but keeping the entry state in the
		// merge only widens the held set we already have.
		exits = append(exits, st.clone())
	}
	lk.merge(st, exits...)
}

// commExprs evaluates a select comm statement's sub-expressions without
// re-reporting its channel op (the select itself was the blocking site).
func (lk *locksRunner) commExprs(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.SendStmt:
		lk.expr(s.Chan, st)
		lk.expr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				lk.expr(u.X, st)
				continue
			}
			lk.expr(e, st)
		}
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			lk.expr(u.X, st)
			return
		}
		lk.expr(s.X, st)
	}
}

// merge folds the non-terminated branch exits back into st: held is the
// union (a lock held on any surviving path is a liability), deferCovered
// the intersection (a defer on one branch does not save the other).
func (lk *locksRunner) merge(st *lockState, exits ...*lockState) {
	live := exits[:0]
	for _, e := range exits {
		if !e.terminated {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		st.terminated = true
		return
	}
	held := make(map[string]heldLock)
	for _, e := range live {
		for k, v := range e.held {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	}
	covered := make(map[string]bool)
	for k := range live[0].deferCovered {
		all := true
		for _, e := range live[1:] {
			if !e.deferCovered[k] {
				all = false
				break
			}
		}
		if all {
			covered[k] = true
		}
	}
	st.held = held
	st.deferCovered = covered
	st.terminated = false
}

// expr walks an expression in evaluation order, applying mutex ops and
// reporting blocking calls. Func literals are separate scopes and are
// skipped here.
func (lk *locksRunner) expr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, op := lk.mutexOp(n); op != lockOpNone {
				switch op {
				case lockOpLock:
					if _, dup := st.held[key]; !dup {
						st.held[key] = heldLock{pos: n.Pos()}
					}
				case lockOpUnlock:
					delete(st.held, key)
				}
				return true
			}
			if desc := lk.blockingCall(n); desc != "" {
				lk.blockingAt(st, n.Pos(), desc)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lk.blockingAt(st, n.OpPos, "channel receive")
			}
		}
		return true
	})
}

type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpLock
	lockOpUnlock
)

// mutexOp classifies a call as a sync.Mutex/RWMutex acquisition or
// release and returns the canonical receiver key ("s.mu", with ":r" for
// the read side of an RWMutex).
func (lk *locksRunner) mutexOp(call *ast.CallExpr) (string, lockOp) {
	fn := calleeFunc(lk.p.Pkg.Info, call)
	if fn == nil {
		return "", lockOpNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", lockOpNone
	}
	recv := sig.Recv().Type()
	if !isNamedType(recv, "sync", "Mutex") && !isNamedType(recv, "sync", "RWMutex") {
		return "", lockOpNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockOpNone
	}
	key := lockExprKey(sel.X)
	switch fn.Name() {
	case "Lock":
		return key, lockOpLock
	case "Unlock":
		return key, lockOpUnlock
	case "RLock":
		return key + ":r", lockOpLock
	case "RUnlock":
		return key + ":r", lockOpUnlock
	}
	return "", lockOpNone
}

// lockExprKey renders a lock receiver canonically (s.mu, e.mu, mu).
// Anything fancier than ident/selector chains degrades to a positional
// key, trading alias precision for never crashing.
func lockExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockExprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lockExprKey(e.X) + "[]"
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

// directBlocking classifies calls that block by themselves: conn/stream
// IO, store persistence, waits, sleeps, subprocess joins.
func (lk *locksRunner) directBlocking(call *ast.CallExpr) string {
	fn := calleeFunc(lk.p.Pkg.Info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		switch {
		case isPkgFunc(fn, "time", "Sleep"):
			return "time.Sleep"
		case isPkgFunc(fn, "io", "ReadFull"), isPkgFunc(fn, "io", "ReadAtLeast"),
			isPkgFunc(fn, "io", "Copy"), isPkgFunc(fn, "io", "ReadAll"):
			return "io." + fn.Name()
		}
		return ""
	}
	recv := sig.Recv().Type()
	name := fn.Name()
	switch {
	case netConnTypeOf(recv) != "" && (name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo"):
		return netConnTypeOf(recv) + "." + name + " (network IO)"
	case (isNamedType(recv, "io", "Reader") || isNamedType(recv, "io", "Writer") ||
		isNamedType(recv, "io", "ReadWriter")) && (name == "Read" || name == "Write"):
		return "io stream " + name
	case isNamedType(recv, "sync", "WaitGroup") && name == "Wait":
		return "WaitGroup.Wait"
	case isNamedType(recv, "sync", "Cond") && name == "Wait":
		return "Cond.Wait"
	case isStoreReceiver(recv):
		return "store." + name + " (disk IO)"
	case isNamedType(recv, "os/exec", "Cmd") && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "exec.Cmd." + name
	case isNamedType(recv, "net/http", "Client") && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "http.Client." + name
	}
	return ""
}

// isStoreReceiver reports whether t is the durable store type — every
// method on it is disk IO under the temp+rename+CRC protocol.
func isStoreReceiver(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && isStorePkg(obj.Pkg().Path()) && obj.Name() == "Store"
}

// blockingCall is directBlocking plus the one-level summary: a call to a
// same-package function whose body blocks counts as blocking here.
func (lk *locksRunner) blockingCall(call *ast.CallExpr) string {
	if desc := lk.directBlocking(call); desc != "" {
		return desc
	}
	fn := calleeFunc(lk.p.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != lk.p.Pkg.Path {
		return ""
	}
	if desc, ok := lk.blocks[fn]; ok {
		return fmt.Sprintf("call to %s (which performs %s)", fn.Name(), desc)
	}
	return ""
}

// blockingAt reports a blocking operation while locks are held — once
// per held region, so a multi-write frame sequence yields one finding.
func (lk *locksRunner) blockingAt(st *lockState, pos token.Pos, desc string) {
	if len(st.held) == 0 {
		return
	}
	fresh := false
	keys := make([]string, 0, len(st.held))
	for k, h := range st.held {
		keys = append(keys, strings.TrimSuffix(k, ":r"))
		if !h.reported {
			fresh = true
			h.reported = true
			st.held[k] = h
		}
	}
	if !fresh || lk.reportedBlock[pos] {
		return
	}
	lk.reportedBlock[pos] = true
	sort.Strings(keys)
	lk.p.Reportf(pos, "%s while holding %s; release the lock before blocking (or justify a deliberate write-serialization mutex)",
		desc, strings.Join(keys, ", "))
}

// leaks reports every held, non-defer-covered lock at a path exit.
func (lk *locksRunner) leaks(st *lockState) {
	for key, h := range st.held {
		if !st.deferCovered[key] {
			lk.leakAt(key, h.pos, "may still be held when the function returns")
		}
	}
}

// leakAt reports one leaked acquisition, deduped by acquisition site so
// a lock leaking down several branches reads as one finding.
func (lk *locksRunner) leakAt(key string, pos token.Pos, how string) {
	if lk.reportedLeak[pos] {
		return
	}
	lk.reportedLeak[pos] = true
	lk.p.Reportf(pos, "%s acquired here %s; unlock on every path or defer the unlock",
		strings.TrimSuffix(key, ":r"), how)
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}
