package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each golden package under testdata/src/<name> carries positive cases
// (lines with `// want "re"` expectations), negative cases (conforming
// code with no expectation — any diagnostic there fails the test), a
// justified //lint:allow suppression, and — in the determinism package —
// directive-hygiene cases. The harness requires an exact bijection
// between diagnostics and expectations, so both firing and silence are
// asserted.

func TestDeterminismGolden(t *testing.T) {
	// The directory is named "tucker" so its import path ends in a
	// kernel-package name and opts into the determinism suffix rule —
	// including the hash-only tier, which bans the math/rand import
	// outright.
	linttest.Run(t, "tucker", lint.Determinism)
}

func TestDeterminismSeededTierGolden(t *testing.T) {
	// "ensemble" is deterministic but NOT hash-only: explicit seeded
	// generators stay legal there while the global source is banned.
	linttest.Run(t, "ensemble", lint.Determinism)
}

func TestCtxPropGolden(t *testing.T) {
	linttest.Run(t, "ctxprop", lint.CtxProp)
}

func TestSpansGolden(t *testing.T) {
	linttest.Run(t, "spanhygiene", lint.Spans)
}

func TestFloatCmpGolden(t *testing.T) {
	linttest.Run(t, "floatcmp", lint.FloatCmp)
}

func TestQuarantineGolden(t *testing.T) {
	linttest.Run(t, "quarantine", lint.Quarantine)
}

func TestLocksGolden(t *testing.T) {
	// The sub-path's final element is "serve", opting the golden package
	// into the lock-discipline suffix rule.
	linttest.Run(t, "locks/serve", lint.Locks)
}

func TestGoroLeakGolden(t *testing.T) {
	linttest.Run(t, "goroleak", lint.GoroLeak)
}

func TestWireCompatAPIGolden(t *testing.T) {
	linttest.Run(t, "wirecompat/api", lint.WireCompat)
}

func TestWireCompatServeGolden(t *testing.T) {
	linttest.Run(t, "wirecompat/serve", lint.WireCompat)
}

func TestAtomicStoreGolden(t *testing.T) {
	linttest.Run(t, "atomicstore", lint.AtomicStore)
}

func TestMetricHygieneGolden(t *testing.T) {
	linttest.Run(t, "metrichygiene", lint.MetricHygiene)
}
