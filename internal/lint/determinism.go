package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the bit-stability contract of the kernel packages
// (internal/{tensor,mat,tucker,core,stitch,parallel,ensemble}): their
// results must be identical for any worker count and across runs, which
// the workers=1-vs-N regression suites assert via math.Float64bits. Three
// sources of silent nondeterminism are banned there:
//
//   - ranging over a map (iteration order is randomized by the runtime);
//   - the global math/rand (and math/rand/v2) source — all randomness
//     must flow through an explicit, seeded *rand.Rand;
//   - reading the wall clock (time.Now/Since/Until) — wall time may only
//     feed gauges, never values, and those reads are confined to
//     annotated sites (conventionally obs.go files).
//
// The hash-only tier (util.go's hashOnlyPkgs: tensor, tucker, core,
// stitch, parallel) goes further: importing math/rand at all is banned
// there. Those packages fan per-entry loops out over arbitrary worker
// counts, so even an explicit seeded *rand.Rand — whose draws depend on
// traversal order — cannot produce bit-stable results; randomness must be
// a counter-based hash of seed + index (DESIGN.md §12).
//
// Escape hatch: //lint:allow determinism -- <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, global math/rand, and wall-clock reads in the " +
		"bit-stable kernel packages",
	Run: runDeterminism,
}

// bannedClockFuncs are package-level time functions that read the wall
// clock or scheduler state.
var bannedClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randConstructors are the only package-level math/rand symbols the
// kernels may touch: deterministic construction of explicit generators.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !isDeterministicPkg(p.Pkg.Path) {
		return
	}
	hashOnly := isHashOnlyPkg(p.Pkg.Path)
	for _, file := range p.Pkg.Files {
		if hashOnly {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s in a hash-only kernel package; randomness there must be a counter-based hash of seed + index (DESIGN.md §12)", path)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						p.Reportf(n.Range, "range over a map has nondeterministic iteration order in a bit-stable kernel package; iterate sorted keys instead")
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(p.Pkg.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				if sig == nil || sig.Recv() != nil {
					return true // methods on explicit *rand.Rand values are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if bannedClockFuncs[fn.Name()] {
						p.Reportf(n.Pos(), "time.%s reads the wall clock in a bit-stable kernel package; wall time is gauge-class observability and belongs behind an annotated obs helper", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					// In hash-only packages the import diagnostic already
					// covers every use; per-call reports would be noise.
					if !hashOnly && !randConstructors[fn.Name()] {
						p.Reportf(n.Pos(), "%s.%s uses the global random source; thread an explicit seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
}
