// Package lint is m2tdlint: a suite of custom static analyzers encoding
// this repository's correctness invariants — determinism of the kernel
// packages, context propagation, obs span hygiene, floating-point
// comparison discipline, tensor quarantine safety, and (since the
// serving/distributed layers landed) lock discipline, goroutine
// lifecycles, the typed wire contract, atomic artifact persistence, and
// metric-name hygiene.
//
// The suite is intentionally built on the standard library alone
// (go/ast, go/types, and `go list -export` for dependency export data)
// so the module stays zero-dependency: the analyzers mirror the
// golang.org/x/tools/go/analysis Analyzer/Pass shape, and
// internal/lint/linttest mirrors analysistest's `// want "regexp"`
// golden convention, without importing either.
//
// Suppressions are explicit and must be justified:
//
//	expr // lint:allow <analyzer> -- <reason>
//
// (written as a //-comment; see allow.go). A directive without a reason,
// or naming an unknown analyzer, is itself a diagnostic, so the tree can
// never accumulate unexplained escapes. DESIGN.md §8 documents every
// rule, its rationale, and the suppression policy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the suite could be
// ported to the real multichecker framework if the dependency ever
// becomes available.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All is the registry of every analyzer in the suite, in stable order.
var All = []*Analyzer{
	Determinism,
	CtxProp,
	Spans,
	FloatCmp,
	Quarantine,
	Locks,
	GoroLeak,
	WireCompat,
	AtomicStore,
	MetricHygiene,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message. Fix, when non-nil, carries a textual
// edit that removes the finding (`m2tdlint -fix` applies it).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fix      *SuggestedFix
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// is a pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a set of edits that, applied together, resolve one
// diagnostic. Mirrors analysis.SuggestedFix: edits are textual, so the
// fixed tree must be re-parsed and re-verified (the -fix flag reruns the
// suite after applying).
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// String renders the conventional file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (e.g. "repro/internal/tucker").
	Path string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info

	// allows maps file name → line → allow directives active there.
	allows map[string]map[int][]*allowDirective
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a justified
// //lint:allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFixf(pos, nil, format, args...)
}

// ReportFixf is Reportf carrying a suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// TypeOf returns the type of an expression (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// RunPackages applies each analyzer to each package and returns the
// combined findings sorted by position. Directive hygiene (unknown
// analyzer names, missing justifications) is validated here as well, so
// every invocation of the suite — the CLI, the golden tests, and the
// repo self-check — enforces the "no unexplained suppressions" policy.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.validateDirectives()...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
