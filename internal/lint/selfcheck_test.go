package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the acceptance gate: the full analyzer suite over
// the whole module must produce zero findings. This is the in-process
// equivalent of `go run ./cmd/m2tdlint ./...` exiting 0, so a violation
// introduced anywhere in the tree (e.g. a stray time.Now() in
// internal/tucker) fails `go test ./...` as well as the CI lint job.
//
// Note that ./... does not match the golden packages — Go tooling skips
// testdata directories in wildcard expansion — so their deliberate
// violations stay confined to the golden tests above.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := lint.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	diags := lint.RunPackages(pkgs, lint.All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
