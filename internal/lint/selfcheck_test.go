package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestSuiteComplete pins the analyzer roster: a rule silently dropped
// from lint.All would leave TestRepoIsClean green while enforcing
// nothing. The list is the contract — extend it when a PR adds a rule.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"determinism", "ctxprop", "spans", "floatcmp", "quarantine",
		"locks", "goroleak", "wirecompat", "atomicstore", "metrichygiene",
	}
	if len(lint.All) != len(want) {
		t.Fatalf("lint.All has %d analyzers, want %d", len(lint.All), len(want))
	}
	for i, name := range want {
		if lint.All[i].Name != name {
			t.Errorf("lint.All[%d] = %q, want %q", i, lint.All[i].Name, name)
		}
		if lint.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
}

// TestRepoIsClean is the acceptance gate: the full analyzer suite over
// the whole module must produce zero findings. This is the in-process
// equivalent of `go run ./cmd/m2tdlint ./...` exiting 0, so a violation
// introduced anywhere in the tree (e.g. a stray time.Now() in
// internal/tucker) fails `go test ./...` as well as the CI lint job.
//
// Note that ./... does not match the golden packages — Go tooling skips
// testdata directories in wildcard expansion — so their deliberate
// violations stay confined to the golden tests above.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := lint.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	diags := lint.RunPackages(pkgs, lint.All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
