// Package ensemble is the seeded-tier determinism golden package: its
// directory name opts into the bit-stable kernel suffix rule (util.go's
// deterministicPkgs) but NOT the hash-only tier, so it checks the
// original contract — the global math/rand source is banned per call,
// while explicit seeded *rand.Rand generators (and their constructors)
// remain legitimate. repro/internal/ensemble and internal/mat live under
// exactly these rules.
package ensemble

import "math/rand"

// positive case: the global source couples results to process-wide state.

func jitter() float64 {
	return rand.Float64() // want `\[determinism\] rand\.Float64 uses the global random source`
}

// negative cases: deterministic construction of an explicit generator and
// draws through it are the sanctioned seeded-tier pattern.

func seeded() float64 {
	rng := rand.New(rand.NewSource(7))
	return rng.Float64()
}

func sample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
