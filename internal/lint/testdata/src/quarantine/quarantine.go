// Package quarantine is the backing-slice golden package. It imports the
// real repro/internal/tensor package, so the analyzer's type-identity
// matching (Sparse.Vals/Idx, Dense.Data) is exercised against the actual
// types — and the lookalike struct below proves the match is by type,
// not by field name.
package quarantine

import "repro/internal/tensor"

// positive: direct writes to tensor backing slices outside
// internal/tensor bypass the quarantine and plan invalidation.

func writeVals(sp *tensor.Sparse) {
	sp.Vals[0] = 1 // want `\[quarantine\] direct write to Sparse\.Vals`
}

func bumpVals(sp *tensor.Sparse) {
	sp.Vals[0] += 2 // want `\[quarantine\] direct write to Sparse\.Vals`
}

func incVals(sp *tensor.Sparse) {
	sp.Vals[0]++ // want `\[quarantine\] direct write to Sparse\.Vals`
}

func reassignIdx(sp *tensor.Sparse) {
	sp.Idx = sp.Idx[:0] // want `\[quarantine\] direct write to Sparse\.Idx`
}

func writeDense(d *tensor.Dense) {
	d.Data[3] = 4 // want `\[quarantine\] direct write to Dense\.Data`
}

func copyInto(sp *tensor.Sparse, src []float64) {
	copy(sp.Vals, src) // want `\[quarantine\] copy into Sparse\.Vals`
}

// negative: reads, iteration, copying OUT of a backing slice, and the
// quarantine-checked setters.

func readVals(sp *tensor.Sparse) float64 {
	var s float64
	for _, v := range sp.Vals {
		s += v
	}
	return s + sp.Vals[0]
}

func appendCell(sp *tensor.Sparse) {
	sp.Append([]int{0, 0}, 1.5)
}

func copyOut(sp *tensor.Sparse, dst []float64) {
	copy(dst, sp.Vals)
}

// negative: same-named fields on unrelated types are not tensor backing
// slices (type-identity, not name, drives the match).

type lookalike struct {
	Vals []float64
	Data []float64
}

func writeLookalike(l *lookalike) {
	l.Vals[0] = 1
	l.Data[0] = 2
}

// suppression: a kernel write carrying its finiteness/invalidaton proof.

func annotatedWrite(sp *tensor.Sparse) {
	//lint:allow quarantine -- golden suppression case: the literal is finite and InvalidatePlans runs below
	sp.Vals[0] = 3
	sp.InvalidatePlans()
}
