// Package tucker is the hash-only determinism golden package: its
// directory name opts into both the bit-stable kernel suffix rule
// (util.go's deterministicPkgs) and the stricter hash-only tier
// (hashOnlyPkgs), so the determinism analyzer treats it exactly like
// repro/internal/tucker. Deliberate violations below never reach
// `go build ./...` — wildcards skip testdata — but the package compiles,
// so linttest can load and type-check it through the real pipeline.
//
// The seeded-tier cases (explicit *rand.Rand allowed, global source
// banned per call) live in the sibling "ensemble" golden package.
package tucker

import (
	"math/rand" // want `\[determinism\] import of math/rand in a hash-only kernel package`
	"time"

	_ "math/rand/v2" //lint:allow determinism -- golden suppression case: justified import directives silence the hash-only ban
)

// positive cases: map iteration, wall-clock reads, and the math/rand
// import itself are all banned in hash-only kernel packages.

func sumMap(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `\[determinism\] range over a map`
		s += v
	}
	return s
}

func stamp() time.Time {
	return time.Now() // want `\[determinism\] time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[determinism\] time\.Since reads the wall clock`
}

// rand uses produce no per-call diagnostics in the hash-only tier — the
// import diagnostic above covers every one of them, so these lines must
// stay silent for the want bijection to hold.

func jitter() float64 {
	return rand.Float64()
}

func seeded() float64 {
	rng := rand.New(rand.NewSource(7))
	return rng.Float64()
}

// negative cases: slice iteration and time arithmetic that never reads
// the clock are fine.

func sumSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func double(d time.Duration) time.Duration {
	return 2 * d
}

// suppression: a justified //lint:allow directive silences the
// diagnostic on its line.

func annotated() int64 {
	return time.Now().UnixNano() //lint:allow determinism -- golden suppression case: wall time feeds a gauge in the real tree
}

// directive hygiene: a directive missing its "-- reason", or naming an
// analyzer that does not exist, is itself a diagnostic — these cannot be
// suppressed (validateDirectives bypasses the allow index).

/* want `\[m2tdlint\] lint:allow directive is missing its justification` */ //lint:allow determinism

/* want `\[m2tdlint\] lint:allow directive names unknown analyzer nosuchcheck` */ //lint:allow nosuchcheck -- hygiene golden case
