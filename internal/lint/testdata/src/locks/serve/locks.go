// Package serve exercises the locks analyzer. The directory name ends
// in "serve" so the import path opts into the lock-discipline suffix
// rule. Positive cases carry want expectations; conforming functions
// prove silence; one deliberate write-serialization mutex carries a
// justified suppression.
package serve

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	ch   chan int
	n    int
}

// Negative: defer-released, no blocking ops.
func (s *server) good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Negative: explicit unlock balanced on both branches.
func (s *server) goodBranches(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// Negative: RWMutex read side, defer-released.
func (s *server) goodRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// Negative: a non-blocking signal (select with default) under the lock.
func (s *server) goodSignal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// Negative: the goroutine body is its own scope and balances its own
// acquisition.
func (s *server) goodGoroutine(done chan struct{}) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
		close(done)
	}()
}

// Positive: the early return leaks the acquisition.
func (s *server) leakOnReturn(b bool) int {
	s.mu.Lock() // want `s\.mu acquired here may still be held when the function returns`
	if b {
		return 1
	}
	s.mu.Unlock()
	return 0
}

// Positive: a lock acquired inside the loop body survives the iteration.
func (s *server) leakInLoop(xs []int) {
	for range xs {
		s.mu.Lock() // want `still held at the end of the loop iteration`
		s.n++
	}
	s.mu.Unlock()
}

// Positive: channel send under the lock.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// Positive: channel receive under the lock.
func (s *server) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while holding s\.mu`
}

// Positive: select without default blocks under the lock.
func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding s\.mu`
	case <-s.ch:
	}
}

// Positive: network IO under the lock; the second write is the same
// held region, so only the first site reports.
func (s *server) writeUnderLock(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.conn.Write(buf) // want `net\.Conn\.Write \(network IO\) while holding s\.mu`
	_, _ = s.conn.Write(buf)
}

// Positive: time.Sleep under the lock.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// writeOut performs conn IO directly — the one-level summary marks it
// blocking.
func (s *server) writeOut(buf []byte) error {
	_, err := s.conn.Write(buf)
	return err
}

// Positive: blocking one call level deep through the helper.
func (s *server) helperUnderLock(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.writeOut(buf) // want `call to writeOut \(which performs net\.Conn\.Write \(network IO\)\) while holding s\.mu`
}

// Suppressed: a deliberate write-serialization mutex, justified.
func (s *server) serializedWrite(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow locks -- golden case: deliberate write-serialization mutex held across one frame write
	_, _ = s.conn.Write(buf)
}
