// Package spanhygiene is the span-lifecycle and counter-taxonomy golden
// package. It imports the real repro/internal/obs and
// repro/internal/parallel packages, so the analyzer's type-identity
// matching (obs.Span methods, parallel pool counters) is exercised end
// to end rather than against stand-ins.
package spanhygiene

import (
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// positive: discarded and leaked spans.

func discarded(s *obs.Span) {
	s.Start("discarded") // want `\[spans\] result of Start is discarded`
}

func leaked(s *obs.Span) {
	child := s.Start("leak") // want `\[spans\] span "child" is started but never finished`
	child.Add("cells", 1)
}

func chainedLeak(s *obs.Span) int64 {
	return s.Start("peek").Counter("cells") // want `\[spans\] span from chained Start call is never finished`
}

func deferredSnapshot(s *obs.Span) {
	defer s.Start("vitals").WithVitals(nil) // want `\[spans\] WithVitals finisher is never invoked`
}

func boundFinisherUnused(s *obs.Span) {
	fin := s.Start("vitals").WithVitals(nil) // want `\[spans\] WithVitals finisher is never invoked`
	if fin == nil {
		panic("unreachable")
	}
}

// negative: finished, deferred, chained-finish, invoked-finisher, and
// handed-off spans.

func finished(s *obs.Span) {
	child := s.Start("ok")
	child.Finish()
}

func deferred(s *obs.Span) {
	child := s.Start("ok")
	defer child.Finish()
	child.Add("cells", 3)
}

func chainedFinish(s *obs.Span) {
	s.Start("ok").Finish()
}

func vitalsInvoked(s *obs.Span) {
	defer s.Start("ok").WithVitals(nil)()
}

func boundFinisherInvoked(s *obs.Span) {
	fin := s.Start("ok").WithVitals(nil)
	fin()
}

func handedOff(s *obs.Span, sink func(*obs.Span)) {
	child := s.Start("given")
	sink(child)
}

func returned(s *obs.Span) *obs.Span {
	return s.Start("escapes")
}

// counter/gauge taxonomy: timing- and scheduling-derived values must go
// through the gauge channel, never the deterministic counters.

func badCounterClock(s *obs.Span, t0 time.Time) {
	s.Set("elapsed_ns", int64(time.Since(t0))) // want `\[spans\] Set records a timing-derived value \(time\.Since\)`
}

func badCounterDuration(s *obs.Span, child *obs.Span) {
	s.Add("dur_ns", int64(child.Duration())) // want `\[spans\] Add records a timing-derived value \(Span\.Duration\)`
}

func badCounterStrips(s *obs.Span) {
	s.Set("strips", parallel.Strips()) // want `\[spans\] Set records a timing-derived value \(parallel\.Strips\)`
}

func goodGauges(s *obs.Span, t0 time.Time) {
	s.SetGauge("elapsed_ns", int64(time.Since(t0)))
	s.AddGauge("strips", parallel.Strips())
	s.Add("cells", 42)
}
