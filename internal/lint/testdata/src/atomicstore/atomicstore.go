// Package atomicstore exercises the atomicstore analyzer: direct file
// creation/renaming is banned in library packages — durable bytes go
// through internal/store.
package atomicstore

import "os"

// Positive: the three banned entry points.
func persist(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `direct os\.WriteFile in a library package is a torn-write hazard`
}

func create(path string) error {
	f, err := os.Create(path) // want `direct os\.Create in a library package is a torn-write hazard`
	if err != nil {
		return err
	}
	return f.Close()
}

func commit(tmp, final string) error {
	return os.Rename(tmp, final) // want `direct os\.Rename in a library package is a torn-write hazard`
}

// Negative: reading is outside the durability contract.
func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Negative: removal is not a torn-write hazard.
func drop(path string) error {
	return os.Remove(path)
}

// Suppressed: a justified direct write.
func scratch(path string, b []byte) error {
	//lint:allow atomicstore -- golden case: non-durable scratch file, recovery never reads it
	return os.WriteFile(path, b, 0o600)
}
