// Package metrichygiene exercises the metrichygiene analyzer against
// the real repro/internal/obs registry: metric names must be
// compile-time constants; per-key series go through Keyed* instruments.
package metrichygiene

import "repro/internal/obs"

var reg = obs.NewRegistry()

const submitsName = "m2td_golden_submits_total"

// Negative: constant names, via const and literal.
var (
	submits = reg.Counter(submitsName, "golden submits")
	seconds = reg.Histogram("m2td_golden_seconds", "golden latency", nil)
	depth   = reg.Gauge("m2td_golden_depth", "golden depth")
)

// Negative: a keyed family with a constant base; the runtime key is the
// sanctioned dynamic part.
var perTenant = reg.KeyedCounter("m2td_golden_tenant_total", "golden per-tenant")

func recordTenant(tenant string) {
	perTenant.WithKey(tenant).Inc()
}

// Positive: a runtime-assembled metric name.
func dynamicName(kind string) {
	reg.Counter("m2td_golden_"+kind+"_total", "golden dynamic").Inc() // want `metric name passed to Registry\.Counter is not a compile-time constant`
}

// Positive: the keyed BASE must be constant too.
func dynamicBase(base string) *obs.KeyedHistogram {
	return reg.KeyedHistogram(base, "golden dynamic base", nil) // want `metric name passed to Registry\.KeyedHistogram is not a compile-time constant`
}

// Suppressed: a justified dynamic name.
func scratchGauge(name string) {
	//lint:allow metrichygiene -- golden case: test-scoped registry, name never exported
	reg.Gauge(name, "golden scratch").Set(1)
}
