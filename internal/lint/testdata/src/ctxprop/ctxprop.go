// Package ctxprop is the context-propagation golden package: it
// exercises both rules — the F-vs-FCtx sibling rule inside ctx-holding
// functions, and the ban on minting root contexts in library code.
package ctxprop

import "context"

// do/doCtx is the sibling pair rule 1 polices.

func do() {}

func doCtx(ctx context.Context) { _ = ctx }

// positive: a ctx-holding caller invoking the base variant drops its
// context on the floor.

func badCaller(ctx context.Context) {
	do() // want `\[ctxprop\] do drops the caller's context; call doCtx`
}

// negative: the Ctx variant called with the caller's context.

func goodCaller(ctx context.Context) {
	doCtx(ctx)
}

// negative: callers without a context may use the base variant.

func plainCaller() {
	do()
}

// negative: the sanctioned self-implementation pattern — the Ctx variant
// wrapping its own base primitive (the parallel.ForCtx shape).

func run() {}

func runCtx(ctx context.Context) {
	_ = ctx
	run()
}

// methods: the sibling rule applies to named receiver types too.

type worker struct{}

func (worker) work() {}

func (worker) workCtx(ctx context.Context) { _ = ctx }

func badMethodCaller(ctx context.Context, w worker) {
	w.work() // want `\[ctxprop\] work drops the caller's context; call workCtx`
}

func goodMethodCaller(ctx context.Context, w worker) {
	w.workCtx(ctx)
}

// rule 2: library code must not mint fresh root contexts.

func badRoot() context.Context {
	return context.Background() // want `\[ctxprop\] context\.Background mints a fresh root context`
}

func badTODO() context.Context {
	return context.TODO() // want `\[ctxprop\] context\.TODO mints a fresh root context`
}

// suppression: the documented legacy-wrapper escape hatch.

func legacyWrapper() context.Context {
	return context.Background() //lint:allow ctxprop -- golden suppression case: deliberate legacy wrapper root
}
