// Golden cases for rule 3: functions handling net connections must take
// a context so connection loops die when the coordinator cancels.
package ctxprop

import (
	"context"
	"net"
)

// positive: a net.Conn parameter without a ctx cannot be cancelled.

func badConnHandler(conn net.Conn) { // want `\[ctxprop\] badConnHandler handles a net\.Conn without a context\.Context parameter`
	_ = conn
}

// positive: concrete conn types (and pointers to them) count too.

func badTCPHandler(c *net.TCPConn, id int) { // want `\[ctxprop\] badTCPHandler handles a net\.TCPConn without a context\.Context parameter`
	_, _ = c, id
}

// positive: methods are held to the same rule as functions.

type server struct{}

func (server) serve(conn net.Conn) { // want `\[ctxprop\] serve handles a net\.Conn without a context\.Context parameter`
	_ = conn
}

// negative: conn alongside a ctx is the sanctioned handler shape.

func goodConnHandler(ctx context.Context, conn net.Conn) {
	_, _ = ctx, conn
}

func (server) serveCtx(ctx context.Context, conn net.Conn) {
	_, _ = ctx, conn
}

// negative: non-conn net types don't trigger the rule.

func goodListener(l net.Listener) {
	_ = l
}

// suppression: the escape hatch applies at the declaration line.

func legacyConnHandler(conn net.Conn) { //lint:allow ctxprop -- golden suppression case: pre-runtime legacy handler
	_ = conn
}
