// Package api carries ONLY fixable wirecompat violations: untagged
// exported fields whose suggested fixes insert snake_case json tags.
// The fix round-trip test copies this package, applies the fixes, and
// re-runs the analyzer to prove the result is clean.
package api

type Report struct {
	ID      string `json:"id"`
	JobName string // want `exported field Report\.JobName of wire struct has no json tag`
	MaxIter int    // want `exported field Report\.MaxIter of wire struct has no json tag`
	HTTPUrl string // want `exported field Report\.HTTPUrl of wire struct has no json tag`
}
