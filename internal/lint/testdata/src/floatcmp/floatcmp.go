// Package floatcmp is the float-comparison golden package.
package floatcmp

// positive: ==/!= between two computed floating-point values.

func eq(a, b float64) bool {
	return a == b // want `\[floatcmp\] == between two computed floating-point values`
}

func neq(a, b float64) bool {
	return a != b // want `\[floatcmp\] != between two computed floating-point values`
}

func eq32(a, b float32) bool {
	return a == b // want `\[floatcmp\] == between two computed floating-point values`
}

// negative: sentinel comparisons against exact compile-time constants,
// integer equality, and tolerance-style comparisons.

func isZero(a float64) bool {
	return a == 0
}

func isUnit(a float64) bool {
	return 1.0 == a
}

func intEq(a, b int) bool {
	return a == b
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// suppression: deliberate bit-exact identity carries a justification.

func exactMatch(a, b float64) bool {
	return a == b //lint:allow floatcmp -- golden suppression case: intentional bit-exact identity
}
