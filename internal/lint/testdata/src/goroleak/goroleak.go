// Package goroleak exercises the goroleak analyzer: every goroutine in
// a library package must be tied to a lifecycle.
package goroleak

import (
	"context"
	"sync"
)

// Negative: WaitGroup join.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Negative: cancellation-scoped via ctx.Done.
func cancelScoped(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// Negative: drains a quit channel owned by the launcher.
func quitChannel(quit chan struct{}) {
	go func() {
		<-quit
	}()
}

// Negative: ranges over a work channel — closing it ends the goroutine.
func rangesOverChannel(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// Negative: signals its own completion by closing a channel.
func ownedClose(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// worker drains its task channel — a named callee whose body satisfies
// the literal rules one level deep.
func worker(tasks chan int) {
	for range tasks {
	}
}

// Negative: `go f(...)` with a same-package callee that is tied.
func namedCallee(tasks chan int) {
	go worker(tasks)
}

func fireAndForget() {}

// Negative: Add textually precedes the launch; Done lives elsewhere.
func addPrecedes(wg *sync.WaitGroup) {
	wg.Add(1)
	go fireAndForget()
}

// Positive: nothing ties the literal to any lifecycle.
func leakyLiteral() {
	go func() { // want `goroutine launched here has no lifecycle tie`
		fireAndForget()
	}()
}

// Positive: an untied named callee with no preceding Add.
func leakyNamed() {
	go fireAndForget() // want `goroutine launched here has no lifecycle tie`
}

// Suppressed: a justified fire-and-forget.
func suppressed() {
	//lint:allow goroleak -- golden case: deliberate fire-and-forget for the suppression path
	go fireAndForget()
}
