// Package serve exercises the wirecompat analyzer's handler-side rule:
// error paths return the typed envelope, never a bare body.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

type envelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Negative: the typed envelope with an explicit status.
func good(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(envelope{Code: "invalid_request", Message: "bad"})
}

// Positive: http.Error loses the code vocabulary.
func badError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses the typed api\.Error envelope`
}

// Positive: a bare printf body is not a wire payload.
func badPrintf(w http.ResponseWriter, err error) {
	fmt.Fprintf(w, "error: %v", err) // want `fmt\.Fprintf writes a bare body to an http\.ResponseWriter`
}

// Negative: Fprintf to a non-ResponseWriter stays legal.
func logLine(buf fmt.Stringer) string {
	return fmt.Sprintf("ok: %v", buf)
}

// Suppressed: the metrics text exposition is the one sanctioned bare
// writer.
func metricsPage(w http.ResponseWriter) {
	//lint:allow wirecompat -- golden case: Prometheus text exposition, not an error path
	fmt.Fprintf(w, "m2td_golden_total %d\n", 1)
}
