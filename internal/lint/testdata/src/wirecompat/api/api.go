// Package api exercises the wirecompat analyzer's api-side rules: json
// tags on wire structs, no any on the wire, and ErrorCode mapping
// exhaustiveness. The directory name ends in "api" so the import path
// opts into the wire-contract suffix rule.
package api

type ErrorCode string

const (
	CodeOK  ErrorCode = "ok"
	CodeBad ErrorCode = "bad"
	// Positive: in the vocabulary but absent from both the HTTPStatus
	// switch and the ErrorCodes registry.
	CodeGone ErrorCode = "gone" // want `CodeGone has no case in HTTPStatus` `CodeGone is missing from the ErrorCodes registry`
)

var ErrorCodes = []ErrorCode{CodeOK, CodeBad}

func HTTPStatus(code ErrorCode) int {
	switch code {
	case CodeOK:
		return 200
	case CodeBad:
		return 400
	}
	return 500
}

// Negative: every exported field tagged, concrete types only.
type Good struct {
	ID    string   `json:"id"`
	Sizes []int    `json:"sizes"`
	Err   *GoodErr `json:"err,omitempty"`
}

type GoodErr struct {
	Code ErrorCode `json:"code"`
}

// Positive: one untagged exported field (fixable) and one any field.
type Partial struct {
	ID      string `json:"id"`
	JobName string // want `exported field Partial\.JobName of wire struct has no json tag`
	Extra   any    `json:"extra"` // want `field Partial\.Extra is any/interface\{\} on the wire`
}

// Negative: zero json tags — not a wire struct, a plain options bag.
type Options struct {
	Name    string
	Retries int
}

// Negative: unexported fields need no tag.
type Mixed struct {
	ID       string `json:"id"`
	internal int
}

// Suppressed: a justified untagged field.
type Suppressed struct {
	ID string `json:"id"`
	//lint:allow wirecompat -- golden case: legacy field frozen without a tag
	Legacy string
}
