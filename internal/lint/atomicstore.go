package lint

import (
	"go/ast"
)

// AtomicStore bans direct file mutation in library packages: durable
// bytes flow through internal/store, whose temp+rename+CRC protocol is
// what makes kill-and-recover safe (DESIGN.md §11). An os.Create or
// os.WriteFile sprinkled into a library package is a torn-write hazard
// the recovery scan cannot see.
//
// internal/store itself is exempt — it IS the protocol — and so are
// command/example packages, whose output files (reports, CSVs,
// rendered plots) are operator-facing artifacts outside the durability
// contract.
var AtomicStore = &Analyzer{
	Name: "atomicstore",
	Doc: "ban direct os.Create/os.WriteFile/os.Rename in library packages; " +
		"durable artifacts go through internal/store's temp+rename+CRC protocol",
	Run: runAtomicStore,
}

// bannedFileFuncs maps the os entry points that create or move files to
// the store capability that replaces them.
var bannedFileFuncs = map[string]string{
	"Create":    "store.SaveBlob / SaveDecomposition",
	"WriteFile": "store.SaveBlob / SaveDecomposition",
	"Rename":    "the store's internal commit step",
}

func runAtomicStore(p *Pass) {
	if isToolPkg(p.Pkg.Path) || isStorePkg(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			for name, instead := range bannedFileFuncs {
				if isPkgFunc(fn, "os", name) {
					p.Reportf(call.Pos(), "direct os.%s in a library package is a torn-write hazard; durable bytes go through internal/store (%s)",
						name, instead)
				}
			}
			return true
		})
	}
}
