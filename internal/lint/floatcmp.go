package lint

import (
	"go/ast"
	"go/token"
)

// FloatCmp enforces the floating-point comparison discipline behind the
// bit-stability story: library code must not compare two computed
// floating-point values with == or != — rounding makes such comparisons
// flaky, and the repository's parity suites compare via math.Float64bits
// or tolerance helpers (mat.Matrix.Equal, tensor.Dense.Equal) instead.
//
// Comparisons against compile-time constants (x == 0, frac != 1) are
// permitted: they are sentinel checks for values that were assigned
// exactly, not approximate-equality tests. Intentional exact comparisons
// between computed values (e.g. IEEE-754 edge-case handling) carry a
// //lint:allow floatcmp -- <reason> annotation.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between two non-constant floating-point expressions " +
		"in library code",
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if isToolPkg(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloatType(p.TypeOf(cmp.X)) || !isFloatType(p.TypeOf(cmp.Y)) {
				return true
			}
			if p.isConstant(cmp.X) || p.isConstant(cmp.Y) {
				return true // sentinel check against an exact constant
			}
			p.Reportf(cmp.OpPos, "%s between two computed floating-point values; compare math.Float64bits or use a tolerance helper", cmp.Op)
			return true
		})
	}
}

// isConstant reports whether the type checker evaluated e to a
// compile-time constant.
func (p *Pass) isConstant(e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
