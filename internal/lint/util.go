package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ---- package classification ----------------------------------------------

// deterministicPkgs are the base names of the kernel packages whose
// results must be bit-identical at any worker count (DESIGN.md §8). A
// package qualifies when its import path contains an "internal/" element
// and its final element is in this set — the suffix rule lets the golden
// testdata packages under internal/lint/testdata/src/ opt in by name.
var deterministicPkgs = map[string]bool{
	"tensor":   true,
	"mat":      true,
	"tucker":   true,
	"core":     true,
	"stitch":   true,
	"parallel": true,
	"ensemble": true,
}

// isDeterministicPkg reports whether the import path names one of the
// bit-stable kernel packages.
func isDeterministicPkg(path string) bool {
	if !strings.Contains(path, "internal/") {
		return false
	}
	return deterministicPkgs[path[strings.LastIndex(path, "/")+1:]]
}

// hashOnlyPkgs is the stricter tier within deterministicPkgs: packages
// whose randomness must be COUNTER-BASED — a pure hash of seed + index
// (the internal/faults discipline, adopted by tucker.Sketch) — because
// their kernels fan entry loops out over arbitrary worker counts. Even an
// explicit seeded *rand.Rand is banned there: its stateful consumption
// order couples every draw to the traversal order, which is exactly what
// the bit-stability contract forbids. The math/rand import itself is the
// violation. mat and ensemble stay in the seeded tier — their generators
// are threaded explicitly and consumed serially (sampling plans, test
// fixtures), which the determinism contract permits.
var hashOnlyPkgs = map[string]bool{
	"tensor":   true,
	"tucker":   true,
	"core":     true,
	"stitch":   true,
	"parallel": true,
}

// isHashOnlyPkg reports whether the import path names one of the
// hash-only kernel packages (same suffix rule as isDeterministicPkg).
func isHashOnlyPkg(path string) bool {
	if !strings.Contains(path, "internal/") {
		return false
	}
	return hashOnlyPkgs[path[strings.LastIndex(path, "/")+1:]]
}

// isToolPkg reports whether the import path is a command or example —
// process entry points where wall clocks, context.Background, and
// operator-facing output are legitimate.
func isToolPkg(path string) bool {
	return strings.Contains(path, "/cmd/") || strings.Contains(path, "/examples/") ||
		strings.HasPrefix(path, "cmd/") || strings.HasPrefix(path, "examples/")
}

// isTensorPkg reports whether the import path is the tensor package
// itself (whose methods implement the quarantine and may touch backing
// slices freely).
func isTensorPkg(path string) bool {
	return strings.HasSuffix(path, "internal/tensor") || path == "repro/internal/tensor"
}

// pathBase is the final import-path element — the hook every suffix rule
// hangs off, so golden testdata packages opt into a rule by directory
// name exactly as the PR 5 analyzers allow.
func pathBase(path string) string {
	return path[strings.LastIndex(path, "/")+1:]
}

// lockDisciplinePkgs are the concurrency-heavy serving/distributed
// packages the locks analyzer polices: the admission pipeline's server
// mutex and the lease engine's roster/frame mutexes must never be held
// across a blocking operation or leak past a return path.
var lockDisciplinePkgs = map[string]bool{
	"serve":   true,
	"distnet": true,
}

// isLockDisciplinePkg reports whether the import path names one of the
// lock-disciplined packages (suffix rule, like isDeterministicPkg).
func isLockDisciplinePkg(path string) bool {
	if !strings.Contains(path, "internal/") {
		return false
	}
	return lockDisciplinePkgs[pathBase(path)]
}

// isAPIPkg reports whether the import path's final element is "api" —
// the wire-contract package(s) wirecompat polices for json-tag and
// error-code completeness.
func isAPIPkg(path string) bool { return pathBase(path) == "api" }

// isServePkg reports whether the import path's final element is "serve"
// — the HTTP handler package whose error paths must use the typed
// envelope.
func isServePkg(path string) bool { return pathBase(path) == "serve" }

// isStorePkg reports whether the import path names the sanctioned
// durable-store implementation, the one place direct os file mutation is
// legitimate (it IS the temp+rename+CRC protocol).
func isStorePkg(path string) bool { return pathBase(path) == "store" }

// isObsPkg reports whether the import path names the obs package itself,
// whose Keyed* instrument constructors legitimately build metric names
// at runtime (from a constant base plus a sanitized key).
func isObsPkg(path string) bool { return pathBase(path) == "obs" }

// ---- stack-tracking AST walk ---------------------------------------------

// walkStack traverses root depth-first, invoking fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// ---- type helpers --------------------------------------------------------

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isFloatType reports whether t's core type is a floating-point basic
// type (incl. untyped float).
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// methodReceiverIs reports whether fn is a method whose receiver's named
// type is pkgPath.typeName.
func methodReceiverIs(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), pkgPath, typeName)
}

// firstParamIsContext reports whether fn's first (non-receiver) parameter
// is a context.Context.
func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// lookupMethod finds a method by name on t's named type (value or
// pointer receiver), or nil.
func lookupMethod(t types.Type, name string) *types.Func {
	n := namedOf(t)
	if n == nil {
		return nil
	}
	for i := 0; i < n.NumMethods(); i++ {
		if m := n.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// rootSelector unwraps index and slice expressions down to the base
// selector, e.g. s.Vals[i:j][k] → s.Vals. Returns nil when the base is
// not a selector.
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// enclosingFuncDecl returns the innermost enclosing *ast.FuncDecl from a
// walk stack, or nil.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
