// Package linttest is the golden-test harness for the m2tdlint analyzer
// suite, mirroring golang.org/x/tools/go/analysis/analysistest's
// conventions without the dependency: each package under
// internal/lint/testdata/src/<name> is loaded through the real
// lint.Load path (so golden packages type-check against the actual
// repro/internal/obs and repro/internal/tensor packages), the requested
// analyzers run, and the diagnostics are matched line-by-line against
//
//	// want "regexp" ["regexp" ...]
//
// comments in the golden sources. A line may carry several expectations;
// each must be matched by a distinct diagnostic. Diagnostics are matched
// against their "[analyzer] message" rendering, so expectations can pin
// the analyzer with `\[determinism\]` or just match message text.
//
// Unmatched diagnostics and unsatisfied expectations are both test
// failures, so the golden packages simultaneously prove that the
// analyzers fire on violations (positive cases) and stay silent on
// conforming code (negative cases).
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one parsed `// want "re"` clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the golden package internal/lint/testdata/src/<name>, applies
// the analyzers, and asserts the diagnostics equal the package's `// want`
// expectations.
func Run(t *testing.T, name string, analyzers ...*lint.Analyzer) {
	t.Helper()
	root, err := lint.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pattern := "./internal/lint/testdata/src/" + name
	pkgs, err := lint.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading golden package %s: %v", pattern, err)
	}
	diags := lint.RunPackages(pkgs, analyzers)

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		if !claim(wants, d.Pos.Filename, d.Pos.Line, rendered) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose
// regexp matches rendered, reporting whether one existed.
func claim(wants []*expectation, file string, line int, rendered string) bool {
	for _, w := range wants {
		if w.matched || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(rendered) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts every `// want "re" ...` comment from the loaded
// packages' files, keyed by the comment's own line.
func collectWants(pkgs []*lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					// Both //-comments and /* */-comments may carry wants;
					// the block form lets a want share a line with a
					// //lint:allow directive (the hygiene golden cases).
					text := c.Text
					if strings.HasPrefix(text, "//") {
						text = strings.TrimPrefix(text, "//")
					} else {
						text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
					}
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") && text != "want" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					res, err := parseWantPatterns(strings.TrimPrefix(text, "want"))
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					for _, re := range res {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns parses a sequence of Go-quoted regexp literals
// ("..." or `...`) from the remainder of a want comment.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("want comment: expected quoted regexp at %q", s)
		}
		pattern, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("want comment: unquoting %s: %v", quoted, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("want comment: compiling %q: %v", pattern, err)
		}
		res = append(res, re)
		s = s[len(quoted):]
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment carries no pattern")
	}
	return res, nil
}
