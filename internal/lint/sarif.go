package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, so CI findings render as inline PR annotations on
// code-scanning-aware forges. The structs cover exactly the subset of
// the schema the suite emits: one run, one rule per analyzer, one result
// per diagnostic with a single physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes diags as a SARIF 2.1.0 log. File paths are written
// relative to root (repo-relative URIs are what turns results into PR
// annotations); analyzers supplies the rule table, and the synthetic
// "m2tdlint" rule covers directive-hygiene diagnostics.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := []sarifRule{{
		ID:               "m2tdlint",
		ShortDescription: sarifMessage{Text: "lint:allow directive hygiene: every suppression names a real analyzer and carries a justification"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "m2tdlint", Rules: rules}},
			Results: results,
		}},
	})
}
