package lint

import (
	"go/ast"
)

// MetricHygiene requires every obs metric name to be a compile-time
// constant at its registration site. A name assembled at runtime
// ("m2td_serve_tenant_" + kind + "_" + tenant) is an unbounded
// cardinality risk and makes the dashboard vocabulary ungreppable —
// you cannot audit what a deploy exports by reading the code.
//
// Per-key series (per-tenant counters, per-phase histograms) are still
// first-class: obs.Registry.KeyedCounter/KeyedHistogram take a constant
// base name and derive sanitized per-key children get-or-create. The
// obs package itself is exempt — its Keyed* constructors are the one
// sanctioned place a name is concatenated.
var MetricHygiene = &Analyzer{
	Name: "metrichygiene",
	Doc: "require obs metric names to be compile-time constants; per-key series " +
		"go through the Keyed* instruments, never string concatenation",
	Run: runMetricHygiene,
}

// registryNameMethods are the obs.Registry methods whose first argument
// is a metric (or base) name.
var registryNameMethods = map[string]bool{
	"Counter":        true,
	"Gauge":          true,
	"FuncGauge":      true,
	"Histogram":      true,
	"KeyedCounter":   true,
	"KeyedHistogram": true,
}

func runMetricHygiene(p *Pass) {
	if isToolPkg(p.Pkg.Path) || isObsPkg(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !registryNameMethods[fn.Name()] {
				return true
			}
			if !methodReceiverIs(fn, "repro/internal/obs", "Registry") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
				return true // compile-time constant — the contract
			}
			p.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s is not a compile-time constant; "+
				"use a const name (per-key series go through Keyed* instruments)", fn.Name())
			return true
		})
	}
}
