package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxProp enforces the context-first discipline introduced by the
// fault-tolerant runtime (DESIGN.md §6): cancellation and stage
// deadlines only work if the context actually reaches the kernels.
//
// Three rules:
//
//  1. Inside any function that receives a context.Context, calling a
//     function or method F when a sibling FCtx(ctx, ...) variant exists
//     drops the caller's context on the floor — the FCtx variant must be
//     called instead. (This is exactly the bug the PR 4 facade fixed in
//     legacy Decompose, which silently lost the worker pool's context.)
//
//  2. Library code must not mint fresh root contexts via
//     context.Background()/context.TODO(): roots belong to process entry
//     points (cmd/, examples/) and tests. The documented legacy wrappers
//     (Run, Baseline, tucker.HOOI, ...) are the deliberate exceptions and
//     carry //lint:allow ctxprop annotations.
//
//  3. A function or method that takes a net connection (any net.*Conn
//     type) must also take a context.Context: connection-handling loops
//     are exactly the code that must die when the coordinator's context
//     is cancelled (the internal/distnet RPC server/handler pattern), and
//     a conn parameter without a ctx parameter cannot be cancelled.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "require ctx-taking functions to call Ctx variants of their callees, " +
		"forbid context.Background/TODO in library code, " +
		"and require conn-handling functions to accept a context",
	Run: runCtxProp,
}

func runCtxProp(p *Pass) {
	if isToolPkg(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		// Rule 3 is a per-declaration property, checked off the call walk.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			conn := ""
			for _, field := range fd.Type.Params.List {
				if n := netConnTypeOf(p.TypeOf(field.Type)); n != "" {
					conn = n
					break
				}
			}
			if conn != "" && !funcTakesContext(p, fd) {
				p.Reportf(fd.Pos(), "%s handles a %s without a context.Context parameter; connection loops must be cancellable — thread the coordinator's ctx through", fd.Name.Name, conn)
			}
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil {
				return
			}

			// Rule 2: no fresh root contexts in library code.
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				p.Reportf(call.Pos(), "context.%s mints a fresh root context in library code; accept a ctx parameter (or annotate a deliberate legacy wrapper)", fn.Name())
				return
			}

			// Rule 1: only applies inside functions that hold a context.
			decl := enclosingFuncDecl(stack)
			if decl == nil || !funcTakesContext(p, decl) {
				return
			}
			if strings.HasSuffix(fn.Name(), "Ctx") {
				return
			}
			if decl.Name.Name == fn.Name()+"Ctx" {
				// The Ctx variant implementing itself on top of the base
				// primitive (e.g. ForCtx wrapping For with strip polling)
				// is the sanctioned pattern, not a dropped context.
				return
			}
			variant := ctxVariantOf(fn)
			if variant == nil {
				return
			}
			p.Reportf(call.Pos(), "%s drops the caller's context; call %s with the function's ctx instead", fn.Name(), variant.Name())
		})
	}
}

// netConnTypeOf returns the display name ("net.Conn", "net.TCPConn", ...)
// when t is — or points to — one of package net's connection types, and ""
// otherwise. The *Conn suffix convention covers Conn itself, the concrete
// TCPConn/UDPConn/UnixConn/IPConn, and PacketConn.
func netConnTypeOf(t types.Type) string {
	n := namedOf(t)
	if n == nil {
		return ""
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return ""
	}
	if !strings.HasSuffix(obj.Name(), "Conn") {
		return ""
	}
	return "net." + obj.Name()
}

// funcTakesContext reports whether the declared function has a parameter
// of type context.Context.
func funcTakesContext(p *Pass, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if isContextType(p.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// ctxVariantOf finds a sibling of fn named fn.Name()+"Ctx" whose first
// parameter is a context.Context: same package scope for functions, same
// named receiver type for methods. Standard-library callees are skipped —
// the convention is this module's.
func ctxVariantOf(fn *types.Func) *types.Func {
	if fn.Pkg() == nil || isStdlibPath(fn.Pkg().Path()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	name := fn.Name() + "Ctx"
	var candidate *types.Func
	if sig.Recv() != nil {
		candidate = lookupMethod(sig.Recv().Type(), name)
	} else {
		candidate, _ = fn.Pkg().Scope().Lookup(name).(*types.Func)
	}
	if candidate == nil || !firstParamIsContext(candidate) {
		return nil
	}
	return candidate
}

// isStdlibPath reports whether an import path belongs to the standard
// library (no dot in the first element, and not this module's "repro").
func isStdlibPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".") && first != "repro"
}
