package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every `go` statement in library packages to be tied
// to a lifecycle. A goroutine with no tie outlives its phase: it holds
// tensor buffers after the job report is written, keeps accepting on a
// closed coordinator, or leaks one stack per request under the serving
// layer. A launch counts as tied when any of these hold:
//
//   - the goroutine body calls sync.WaitGroup.Done (or Wait) — joined;
//   - the body selects on / calls <-ctx.Done() — cancellation-scoped;
//   - the body receives from (or ranges over) a named channel — a quit
//     or work channel owned by the launcher drains it;
//   - the body closes a channel — it signals its own completion;
//   - a sync.WaitGroup.Add call textually precedes the launch in the
//     enclosing function — the launcher registered it for joining.
//
// For `go f(...)` with a same-package callee, f's body is checked
// against the same rules (one level deep, like the locks summaries).
// Command and example packages are exempt — a process entry point's
// goroutines die with the process.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "require every goroutine launched in library packages to be tied to a lifecycle " +
		"(WaitGroup join, context cancellation, quit channel, or owned close)",
	Run: runGoroLeak,
}

func runGoroLeak(p *Pass) {
	if isToolPkg(p.Pkg.Path) {
		return
	}
	g := &goroRunner{p: p, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = fd
				}
			}
		}
	}
	for _, file := range p.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			if g.tied(gs, enclosingFuncBody(stack)) {
				return
			}
			p.Reportf(gs.Pos(), "goroutine launched here has no lifecycle tie "+
				"(no WaitGroup join, ctx.Done, quit-channel receive, or owned close); it can outlive its phase")
		})
	}
}

type goroRunner struct {
	p     *Pass
	decls map[*types.Func]*ast.FuncDecl
}

// tied decides whether one launch satisfies the lifecycle contract.
func (g *goroRunner) tied(gs *ast.GoStmt, encl ast.Node) bool {
	if encl != nil && g.addPrecedes(encl, gs.Pos()) {
		return true
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return g.bodyTied(lit.Body)
	}
	fn := calleeFunc(g.p.Pkg.Info, gs.Call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == g.p.Pkg.Path {
		if fd := g.decls[fn]; fd != nil && fd.Body != nil {
			return g.bodyTied(fd.Body)
		}
	}
	return false
}

// bodyTied scans a goroutine body (or same-package callee body) for any
// of the lifecycle markers. Channel parameters of a named callee count
// the same as captured channels — either way the launcher owns an end.
func (g *goroRunner) bodyTied(body *ast.BlockStmt) bool {
	info := g.p.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				switch {
				case methodReceiverIs(fn, "sync", "WaitGroup") && (fn.Name() == "Done" || fn.Name() == "Wait"):
					found = true
				case methodReceiverIs(fn, "context", "Context") && fn.Name() == "Done":
					found = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				switch ast.Unparen(n.X).(type) {
				case *ast.Ident, *ast.SelectorExpr:
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// addPrecedes reports whether a WaitGroup.Add call appears before pos in
// the launching function — the Add-then-go idiom registers the goroutine
// with a join point even when Done lives in the callee.
func (g *goroRunner) addPrecedes(encl ast.Node, pos token.Pos) bool {
	info := g.p.Pkg.Info
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if fn := calleeFunc(info, call); methodReceiverIs(fn, "sync", "WaitGroup") && fn.Name() == "Add" {
			found = true
		}
		return true
	})
	return found
}

// enclosingFuncBody returns the innermost enclosing function body node
// (decl or literal) from a walk stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
