package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes materialises every diagnostic's suggested fix as new file
// contents, keyed by absolute file path. Only diagnostics carrying a Fix
// contribute; callers write the returned bytes and re-run the suite —
// fixes are textual, so re-verification is the correctness check, not
// this function.
//
// Overlapping edits within one file are an error (two fixes fighting
// over the same bytes cannot both be right); identical duplicate edits
// are collapsed.
func ApplyFixes(pkgs []*Package, diags []Diagnostic) (map[string][]byte, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages to fix")
	}
	fset := pkgs[0].Fset

	type edit struct {
		start, end int
		newText    string
	}
	byFile := make(map[string][]edit)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			start := fset.Position(e.Pos)
			end := start
			if e.End != token.NoPos {
				end = fset.Position(e.End)
			}
			if start.Filename == "" || end.Filename != start.Filename || end.Offset < start.Offset {
				return nil, fmt.Errorf("lint: fix for %s has an invalid edit range", d)
			}
			byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, e.NewText})
		}
	}

	out := make(map[string][]byte, len(byFile))
	for path, edits := range byFile {
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s to apply fixes: %v", path, err)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		// Validate (and dedupe) before mutating anything.
		kept := edits[:0]
		for i, e := range edits {
			if e.end > len(content) {
				return nil, fmt.Errorf("lint: fix edit beyond end of %s", path)
			}
			if i > 0 && e == edits[i-1] {
				continue // same fix suggested twice (e.g. two diagnostics, one cure)
			}
			if len(kept) > 0 && e.start < kept[len(kept)-1].end {
				return nil, fmt.Errorf("lint: overlapping fix edits in %s at offset %d", path, e.start)
			}
			kept = append(kept, e)
		}
		// Apply back to front so earlier offsets stay valid.
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			content = append(content[:e.start], append([]byte(e.newText), content[e.end:]...)...)
		}
		out[path] = content
	}
	return out, nil
}
