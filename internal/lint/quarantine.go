package lint

import (
	"go/ast"
)

// tensorPkgPath is the package whose backing slices the analyzer guards.
const tensorPkgPath = "repro/internal/tensor"

// Quarantine guards the divergence-quarantine and kernel-plan-cache
// contracts of internal/tensor (DESIGN.md §6): NaN/±Inf may only enter a
// tensor through quarantine-checked setters (Sparse.Append, Dense.Set),
// and code that mutates Idx/Vals directly must call InvalidatePlans
// before the next kernel invocation.
//
// Outside the tensor package, any direct write to a tensor's backing
// slices — assigning or element-writing Sparse.Vals / Sparse.Idx /
// Dense.Data, or using them as a copy destination — bypasses both
// protections and is flagged. Legitimate kernel writes (values proven
// finite, plans invalidated or the tensor freshly built) carry a
// //lint:allow quarantine -- <reason> annotation stating that proof.
var Quarantine = &Analyzer{
	Name: "quarantine",
	Doc: "forbid direct writes to tensor backing slices (Sparse.Vals/Idx, " +
		"Dense.Data) outside internal/tensor",
	Run: runQuarantine,
}

func runQuarantine(p *Pass) {
	if isTensorPkg(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if field, kind := backingSliceRef(p, lhs); field != "" {
						p.Reportf(lhs.Pos(), "direct write to %s.%s bypasses the %s; use the quarantine-checked setters or annotate with the finiteness/invalidations proof", kind, field, bypassed(kind))
					}
				}
			case *ast.IncDecStmt:
				if field, kind := backingSliceRef(p, n.X); field != "" {
					p.Reportf(n.X.Pos(), "direct write to %s.%s bypasses the %s; use the quarantine-checked setters or annotate with the finiteness/invalidations proof", kind, field, bypassed(kind))
				}
			case *ast.CallExpr:
				// copy(t.Vals[...], src) mutates the backing slice too.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && p.ObjectOf(id) != nil && p.ObjectOf(id).Pkg() == nil && len(n.Args) == 2 {
					if field, kind := backingSliceRef(p, n.Args[0]); field != "" {
						p.Reportf(n.Args[0].Pos(), "copy into %s.%s mutates the backing slice directly, bypassing the %s; annotate with the finiteness/invalidations proof", kind, field, bypassed(kind))
					}
				}
			}
			return true
		})
	}
}

// bypassed names the protection a direct write to the given tensor kind
// skips.
func bypassed(kind string) string {
	if kind == "Dense" {
		return "Set quarantine (RejectNonFinite)"
	}
	return "Append quarantine and plan invalidation (RejectNonFinite/InvalidatePlans)"
}

// backingSliceRef reports whether expr is (an index/slice of) a tensor
// backing-slice field, returning the field name and owning kind
// ("Sparse" or "Dense"), or "", "".
func backingSliceRef(p *Pass, expr ast.Expr) (field, kind string) {
	sel := rootSelector(expr)
	if sel == nil {
		return "", ""
	}
	recv := p.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "Vals", "Idx":
		if isNamedType(recv, tensorPkgPath, "Sparse") {
			return sel.Sel.Name, "Sparse"
		}
	case "Data":
		if isNamedType(recv, tensorPkgPath, "Dense") {
			return sel.Sel.Name, "Dense"
		}
	}
	return "", ""
}
