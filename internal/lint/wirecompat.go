package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
	"unicode"
)

// WireCompat polices the wire contract between the campaign server and
// its clients (DESIGN.md §15). In api packages (final path element
// "api"):
//
//   - every exported field of a wire struct — a struct with at least one
//     json-tagged field — must carry a json tag, so renames are a
//     deliberate wire-version decision, not a Go refactor side effect
//     (fixable: -fix inserts the snake_case tag);
//   - no wire struct field may be typed any/interface{} — the envelope
//     is versioned and typed, an untyped field is an unreviewable schema;
//   - if the package defines an ErrorCode type, every ErrorCode constant
//     must have a case in the HTTPStatus mapping and appear in the
//     ErrorCodes registry (when one exists) — clients switch on codes,
//     an unmapped code collapses to a default status and loses meaning.
//
// In serve packages, handler error paths must return the typed envelope:
// http.Error and fmt.Fprint* straight onto an http.ResponseWriter are
// banned (the Prometheus text exposition carries a justified allow).
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc: "require json tags and concrete types on api wire structs, exhaustive " +
		"ErrorCode→HTTP status mapping, and typed error envelopes in serve handlers",
	Run: runWireCompat,
}

func runWireCompat(p *Pass) {
	if isToolPkg(p.Pkg.Path) {
		return
	}
	if isAPIPkg(p.Pkg.Path) {
		checkWireStructs(p)
		checkErrorCodes(p)
	}
	if isServePkg(p.Pkg.Path) {
		checkBareResponses(p)
	}
}

// checkWireStructs enforces the json-tag and no-any rules on every wire
// struct in the package.
func checkWireStructs(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !isWireStruct(st) {
				return true
			}
			for _, field := range st.Fields.List {
				checkWireField(p, ts.Name.Name, st, field)
			}
			return true
		})
	}
}

// isWireStruct reports whether a struct participates in the wire format:
// at least one field carries a json tag. Plain in-process structs (the
// Client, option bags) stay out of scope.
func isWireStruct(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if jsonTagOf(f) != "" {
			return true
		}
	}
	return false
}

// jsonTagOf extracts the json struct tag value, or "".
func jsonTagOf(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	raw := strings.Trim(f.Tag.Value, "`")
	return reflect.StructTag(raw).Get("json")
}

// checkWireField reports an exported, untagged field (with a suggested
// snake_case fix) and any any/interface{}-typed field.
func checkWireField(p *Pass, structName string, st *ast.StructType, field *ast.Field) {
	if len(field.Names) == 0 {
		return // embedded
	}
	exported := false
	for _, name := range field.Names {
		if name.IsExported() {
			exported = true
		}
	}
	if !exported {
		return
	}
	if jsonTagOf(field) == "" {
		fieldName := field.Names[0].Name
		var fix *SuggestedFix
		if field.Tag == nil && len(field.Names) == 1 {
			fix = &SuggestedFix{
				Message: "add a snake_case json tag",
				Edits: []TextEdit{{
					Pos:     field.Type.End(),
					NewText: " `json:\"" + snakeCase(fieldName) + "\"`",
				}},
			}
		}
		p.ReportFixf(field.Pos(), fix,
			"exported field %s.%s of wire struct has no json tag; tag every wire field so renames are wire-version decisions",
			structName, fieldName)
	}
	if tv, ok := p.Pkg.Info.Types[field.Type]; ok && tv.Type != nil {
		if iface, ok := types.Unalias(tv.Type).Underlying().(*types.Interface); ok && iface.Empty() {
			p.Reportf(field.Pos(), "field %s.%s is any/interface{} on the wire; the envelope is typed — declare a concrete schema",
				structName, field.Names[0].Name)
		}
	}
}

// snakeCase converts an exported Go field name to its wire-conventional
// snake_case form (JobID → job_id, MaxWorkers → max_workers).
func snakeCase(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			// Break before an upper that follows a lower/digit, or that
			// starts a new word after an acronym run (JobID → job_id).
			if i > 0 && (!unicode.IsUpper(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// checkErrorCodes enforces the exhaustive code→status mapping: every
// constant of the package's ErrorCode type must be a case in HTTPStatus
// and a member of the ErrorCodes registry literal (when one exists).
func checkErrorCodes(p *Pass) {
	info := p.Pkg.Info

	var codeType *types.TypeName
	var codeTypePos *ast.Ident
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if ok && ts.Name.Name == "ErrorCode" {
				if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					codeType = tn
					codeTypePos = ts.Name
				}
			}
			return true
		})
	}
	if codeType == nil {
		return // package defines no error-code vocabulary
	}

	// All constants of the ErrorCode type, in declaration order.
	type codeConst struct {
		obj *types.Const
		id  *ast.Ident
	}
	var consts []codeConst
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				if c, ok := info.Defs[name].(*types.Const); ok &&
					namedOf(c.Type()) != nil && namedOf(c.Type()).Obj() == codeType {
					consts = append(consts, codeConst{c, name})
				}
			}
			return true
		})
	}
	if len(consts) == 0 {
		return
	}

	// Uses of each constant inside HTTPStatus switch cases and the
	// ErrorCodes composite literal.
	inSwitch := make(map[*types.Const]bool)
	inRegistry := make(map[*types.Const]bool)
	var haveHTTPStatus, haveRegistry bool
	collect := func(root ast.Node, into map[*types.Const]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if c, ok := info.Uses[id].(*types.Const); ok {
					into[c] = true
				}
			}
			return true
		})
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "HTTPStatus" && fd.Recv == nil && fd.Body != nil {
				haveHTTPStatus = true
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if cc, ok := n.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							collect(e, inSwitch)
						}
					}
					return true
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name == "ErrorCodes" && i < len(vs.Values) {
					haveRegistry = true
					collect(vs.Values[i], inRegistry)
				}
			}
			return true
		})
	}

	if !haveHTTPStatus {
		p.Reportf(codeTypePos.Pos(), "ErrorCode type has no HTTPStatus mapping function; every wire code needs a deterministic HTTP status")
		return
	}
	for _, c := range consts {
		if !inSwitch[c.obj] {
			p.Reportf(c.id.Pos(), "ErrorCode constant %s has no case in HTTPStatus; unmapped codes collapse to a default status on the wire",
				c.id.Name)
		}
		if haveRegistry && !inRegistry[c.obj] {
			p.Reportf(c.id.Pos(), "ErrorCode constant %s is missing from the ErrorCodes registry; round-trip tests cannot cover it",
				c.id.Name)
		}
	}
}

// checkBareResponses bans http.Error and fmt.Fprint* writing straight to
// an http.ResponseWriter in serve packages — every handler error path
// goes through the typed envelope.
func checkBareResponses(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "net/http", "Error") {
				p.Reportf(call.Pos(), "http.Error bypasses the typed api.Error envelope; use the envelope writer so clients always get a code")
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
				if tv, ok := info.Types[call.Args[0]]; ok && isNamedType(tv.Type, "net/http", "ResponseWriter") {
					p.Reportf(call.Pos(), "fmt.%s writes a bare body to an http.ResponseWriter; handler output goes through the typed envelope",
						fn.Name())
				}
			}
			return true
		})
	}
}
