package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// FiberStats evaluates a Tucker model on pre-simulated fibers and returns
// the per-fiber squared error and squared reference mass — the sufficient
// statistics for both the point estimate and bootstrap resampling.
func FiberStats(model TuckerModel, fibers []Fiber) (errSq, refSq []float64, err error) {
	if len(fibers) == 0 {
		return nil, nil, fmt.Errorf("eval: no fibers")
	}
	t := len(fibers[0].Truth)
	errSq = make([]float64, len(fibers))
	refSq = make([]float64, len(fibers))
	workers := runtime.NumCPU()
	if workers > len(fibers) {
		workers = len(fibers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(fibers); i += workers {
				fiber := model.TimeFiber(fibers[i].ParamIdx, t)
				var e, r float64
				for tt := 0; tt < t; tt++ {
					d := fiber[tt] - fibers[i].Truth[tt]
					e += d * d
					r += fibers[i].Truth[tt] * fibers[i].Truth[tt]
				}
				errSq[i] = e
				refSq[i] = r
			}
		}(w)
	}
	wg.Wait()
	return errSq, refSq, nil
}

// AccuracyCI is a point estimate with a bootstrap percentile interval.
type AccuracyCI struct {
	Accuracy float64
	// Lo and Hi bound the central 95% of the bootstrap distribution.
	Lo, Hi float64
	// Resamples is the number of bootstrap replicates drawn.
	Resamples int
}

// EstimateAccuracyCI computes the sampled-fiber accuracy estimate together
// with a 95% bootstrap percentile interval (resampling fibers with
// replacement). The interval quantifies the sampling error introduced by
// estimating the metric from a fiber subset — the exact metric on the full
// space has no such error.
func EstimateAccuracyCI(model TuckerModel, fibers []Fiber, resamples int, rng *rand.Rand) (AccuracyCI, error) {
	if resamples < 2 {
		return AccuracyCI{}, fmt.Errorf("eval: need at least 2 bootstrap resamples, got %d", resamples)
	}
	errSq, refSq, err := FiberStats(model, fibers)
	if err != nil {
		return AccuracyCI{}, err
	}
	accOf := func(es, rs []float64, pick []int) (float64, bool) {
		var e, r float64
		if pick == nil {
			for i := range es {
				e += es[i]
				r += rs[i]
			}
		} else {
			for _, i := range pick {
				e += es[i]
				r += rs[i]
			}
		}
		if r == 0 {
			return 0, false
		}
		return 1 - math.Sqrt(e/r), true
	}
	point, ok := accOf(errSq, refSq, nil)
	if !ok {
		return AccuracyCI{}, fmt.Errorf("eval: sampled reference fibers are all zero")
	}
	n := len(fibers)
	boots := make([]float64, 0, resamples)
	pick := make([]int, n)
	for b := 0; b < resamples; b++ {
		for i := range pick {
			pick[i] = rng.Intn(n)
		}
		if acc, ok := accOf(errSq, refSq, pick); ok {
			boots = append(boots, acc)
		}
	}
	if len(boots) < 2 {
		return AccuracyCI{}, fmt.Errorf("eval: bootstrap produced no valid resamples")
	}
	sort.Float64s(boots)
	lo := boots[int(0.025*float64(len(boots)))]
	hiIdx := int(0.975 * float64(len(boots)))
	if hiIdx >= len(boots) {
		hiIdx = len(boots) - 1
	}
	return AccuracyCI{Accuracy: point, Lo: lo, Hi: boots[hiIdx], Resamples: len(boots)}, nil
}
