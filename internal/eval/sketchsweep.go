package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"text/tabwriter"
	"time"

	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tucker"
)

// SketchRow is one KeepFrac arm of the sketch accuracy-vs-speedup sweep.
type SketchRow struct {
	// KeepFrac is the expected fraction of cells the sketch retains
	// (1 = exact, no sketching).
	KeepFrac float64
	// Kept and InputNNZ are the sketch's retained and source cell counts
	// (Kept == InputNNZ on the exact arm).
	Kept, InputNNZ int
	// Accuracy is the paper metric of the sketched decomposition's
	// reconstruction against the full ground truth; DeltaVsExact is the
	// exact arm's accuracy minus this one (the price of the sketch).
	Accuracy     float64
	DeltaVsExact float64
	// DecompTime is the wall-clock of the sketch-plus-decomposition;
	// Speedup is the exact arm's DecompTime over this one.
	DecompTime time.Duration
	Speedup    float64
}

// SketchSweep measures the randomized sketch fast path's accuracy-vs-
// speedup trade-off: the PF-partitioned ensembles are generated and
// JE-stitched once, then the join is decomposed by SketchedHOSVD at each
// KeepFrac and scored against the full ground truth. Every arm follows
// the transient-tensor protocol of BenchmarkSketchedHOSVD — it receives
// a fresh plan-less view of the join, so the exact arm pays kernel-plan
// compilation on the full nnz exactly as a pipeline decomposition does,
// which is the cost the sketch arms avoid by compiling on the
// KeepFrac-sized sketch. Default fractions are {1, 0.5, 0.25, 0.1,
// 0.05, 0.02}; an exact baseline is added when 1 is absent.
func SketchSweep(base Config, fracs []float64) ([]SketchRow, error) {
	if len(fracs) == 0 {
		fracs = []float64{1, 0.5, 0.25, 0.1, 0.05, 0.02}
	}
	cfg := base
	if cfg.Res == 0 {
		cfg = DefaultConfig("double-pendulum")
	}
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	truth := space.GroundTruth()
	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	pcfg.PivotFrac = cfg.PivotFrac
	pcfg.FreeFrac = cfg.FreeFrac
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	join := stitch.Join(part)

	record := func(frac float64) (SketchRow, error) {
		// PlanlessView: a pipeline decomposition always consumes a freshly
		// stitched, plan-less join, so every arm pays compilation honestly.
		start := time.Now()
		dec, stats, err := tucker.SketchedHOSVD(join.PlanlessView(), ranks, tucker.SketchOptions{
			KeepFrac: frac,
			Seed:     cfg.Seed,
		})
		elapsed := time.Since(start)
		if err != nil {
			return SketchRow{}, fmt.Errorf("sketch sweep keep=%g: %w", frac, err)
		}
		return SketchRow{
			KeepFrac:   frac,
			Kept:       stats.Kept,
			InputNNZ:   stats.InputNNZ,
			Accuracy:   Accuracy(dec.Reconstruct(), truth),
			DecompTime: elapsed,
		}, nil
	}

	// Untimed exact warmup so the first timed arm is not charged for cold
	// caches.
	if _, err := record(1); err != nil {
		return nil, err
	}

	rows := make([]SketchRow, 0, len(fracs))
	exact := SketchRow{}
	haveExact := false
	for _, frac := range fracs {
		row, err := record(frac)
		if err != nil {
			return nil, err
		}
		if frac == 1 && !haveExact {
			exact, haveExact = row, true
		}
		rows = append(rows, row)
	}
	if !haveExact {
		row, err := record(1)
		if err != nil {
			return nil, err
		}
		exact = row
	}
	for i := range rows {
		rows[i].DeltaVsExact = exact.Accuracy - rows[i].Accuracy
		if rows[i].DecompTime > 0 {
			rows[i].Speedup = float64(exact.DecompTime) / float64(rows[i].DecompTime)
		}
	}
	return rows, nil
}

// RenderSketchSweep prints the accuracy-vs-speedup report.
func RenderSketchSweep(w io.Writer, rows []SketchRow) {
	fmt.Fprintln(w, "SKETCH SWEEP: accuracy vs speedup of the randomized sketch fast path (join HOSVD)")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Keep\tJoin cells\tAccuracy\tvs exact\tDecomp\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d/%d\t%s\t%+.3f\t%v\t%.2fx\n",
			r.KeepFrac*100, r.Kept, r.InputNNZ, fmtAcc(r.Accuracy),
			-r.DeltaVsExact, r.DecompTime.Round(time.Millisecond), r.Speedup)
	}
	tw.Flush()
}

// ExportSketchSweepCSV writes sketch-sweep rows as flat CSV for external
// plotting tools.
func ExportSketchSweepCSV(w io.Writer, rows []SketchRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"keep_frac", "kept", "input_nnz", "accuracy",
		"acc_delta_vs_exact", "decomp_ms", "speedup",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		row := []string{
			strconv.FormatFloat(r.KeepFrac, 'g', -1, 64),
			strconv.Itoa(r.Kept),
			strconv.Itoa(r.InputNNZ),
			strconv.FormatFloat(r.Accuracy, 'g', -1, 64),
			strconv.FormatFloat(r.DeltaVsExact, 'g', -1, 64),
			strconv.FormatFloat(float64(r.DecompTime.Microseconds())/1000, 'g', -1, 64),
			strconv.FormatFloat(r.Speedup, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
