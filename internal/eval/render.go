package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// fmtAcc formats an accuracy the way the paper's tables do: fixed-point
// for values that round to ≥ 0.01, scientific notation for the tiny
// accuracies of the conventional schemes.
func fmtAcc(a float64) string {
	if a >= 0.005 || a <= -0.005 {
		return fmt.Sprintf("%.2f", a)
	}
	return fmt.Sprintf("%.0E", a)
}

// fmtDur renders a duration in milliseconds (the paper reports seconds;
// at our scaled resolutions decompositions run in milliseconds).
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// schemeHeader is the shared six-column header.
const schemeHeader = "AVG\tCONCAT\tSELECT\tRandom\tGrid\tSlice"

// writeSchemeCells writes the six scheme columns of one comparison using
// the provided cell formatter.
func writeSchemeCells(w io.Writer, cmp *Comparison, cell func(SchemeResult) string) {
	for i, s := range AllSchemes() {
		r, ok := cmp.Get(s)
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		if !ok {
			fmt.Fprint(w, "-")
			continue
		}
		fmt.Fprint(w, cell(r))
	}
}

// RenderTable2 prints the Table II analogue: accuracy and decomposition
// time per (resolution, rank) for the double pendulum.
func RenderTable2(w io.Writer, cmps []*Comparison) {
	fmt.Fprintln(w, "TABLE II(a): Accuracy for Double Pendulum System")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Res.\tRank\t%s\n", schemeHeader)
	for _, cmp := range cmps {
		fmt.Fprintf(tw, "%d\t%d\t", cmp.Config.Res, cmp.Config.Rank)
		writeSchemeCells(tw, cmp, func(r SchemeResult) string { return fmtAcc(r.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Fprintln(w)
	fmt.Fprintln(w, "TABLE II(b): Decomposition Time for Double Pendulum System (ms)")
	tw = tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Res.\tRank\t%s\n", schemeHeader)
	for _, cmp := range cmps {
		fmt.Fprintf(tw, "%d\t%d\t", cmp.Config.Res, cmp.Config.Rank)
		writeSchemeCells(tw, cmp, func(r SchemeResult) string { return fmtDur(r.DecompTime) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTable3 prints the Table III analogue: D-M2TD phase times per
// worker count.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "TABLE III: D-M2TD phase time split by server count (ms)")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Servers\tPhase1\tPhase2\tPhase3\tTotal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			r.Workers, fmtDur(r.Phase1), fmtDur(r.Phase2), fmtDur(r.Phase3), fmtDur(r.Total()))
	}
	tw.Flush()
}

// RenderTable4 prints the Table IV analogue: per-system accuracy and
// decomposition time.
func RenderTable4(w io.Writer, cmps []*Comparison) {
	fmt.Fprintln(w, "TABLE IV(a): Accuracy for different dynamic systems")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\t%s\n", schemeHeader)
	for _, cmp := range cmps {
		fmt.Fprintf(tw, "%s\t", cmp.Config.System)
		writeSchemeCells(tw, cmp, func(r SchemeResult) string { return fmtAcc(r.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Fprintln(w)
	fmt.Fprintln(w, "TABLE IV(b): Decomposition time for different dynamic systems (ms)")
	tw = tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\t%s\n", schemeHeader)
	for _, cmp := range cmps {
		fmt.Fprintf(tw, "%s\t", cmp.Config.System)
		writeSchemeCells(tw, cmp, func(r SchemeResult) string { return fmtDur(r.DecompTime) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTable5 prints the Table V analogue: reduced budgets with join vs
// zero-join stitching.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "TABLE V: Accuracy at reduced budgets, join vs zero-join")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Budget\tStitch\t%s\n", schemeHeader)
	for _, r := range rows {
		stitchName := "join"
		if r.ZeroJoin {
			stitchName = "zero-join"
		}
		fmt.Fprintf(tw, "%.0f%%\t%s\t", r.BudgetFrac*100, stitchName)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtAcc(sr.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// renderFracTable prints a Tables VI/VII-style density sweep.
func renderFracTable(w io.Writer, title, label string, rows []FracRow) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\n", label, schemeHeader)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t", r.Frac*100)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtAcc(sr.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTable6 prints the Table VI analogue: the pivot-density (P) sweep.
func RenderTable6(w io.Writer, rows []FracRow) {
	renderFracTable(w, "TABLE VI: Accuracy for different pivot densities (P)", "P", rows)
}

// RenderTable7 prints the Table VII analogue: the sub-ensemble-density (E)
// sweep.
func RenderTable7(w io.Writer, rows []FracRow) {
	renderFracTable(w, "TABLE VII: Accuracy for different sub-ensemble densities (E)", "E", rows)
}

// RenderTable8 prints the Table VIII analogue: the pivot-parameter sweep.
func RenderTable8(w io.Writer, rows []PivotRow) {
	fmt.Fprintln(w, "TABLE VIII(a): Accuracy for different pivots")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Pivot\t%s\n", schemeHeader)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t", r.PivotName)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtAcc(sr.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Fprintln(w)
	fmt.Fprintln(w, "TABLE VIII(b): Decomposition time for different pivots (ms)")
	tw = tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Pivot\t%s\n", schemeHeader)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t", r.PivotName)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtDur(sr.DecompTime) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
