package eval

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// testConfig returns a small, fast experiment cell.
func testConfig(system string) Config {
	cfg := DefaultConfig(system)
	cfg.Res = 6
	cfg.TimeSamples = 5
	cfg.Rank = 2
	return cfg
}

func TestAccuracyMetric(t *testing.T) {
	y := tensor.DenseFromSlice(tensor.Shape{2}, []float64{3, 4})
	if got := Accuracy(y.Clone(), y); math.Abs(got-1) > 1e-14 {
		t.Fatalf("perfect reconstruction accuracy = %v, want 1", got)
	}
	zero := tensor.NewDense(tensor.Shape{2})
	if got := Accuracy(zero, y); math.Abs(got) > 1e-14 {
		t.Fatalf("zero reconstruction accuracy = %v, want 0", got)
	}
	// Worse than zero: accuracy goes negative.
	worse := tensor.DenseFromSlice(tensor.Shape{2}, []float64{-3, -4})
	if got := Accuracy(worse, y); got >= 0 {
		t.Fatalf("anti-reconstruction accuracy = %v, want negative", got)
	}
}

func TestSpaceForCachesAndValidates(t *testing.T) {
	a, err := SpaceFor("double-pendulum", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpaceFor("double-pendulum", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SpaceFor did not cache")
	}
	if _, err := SpaceFor("no-such-system", 4, 3); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestM2TDMethodMapping(t *testing.T) {
	if M2TDMethod(SchemeAVG) == "" || M2TDMethod(SchemeCONCAT) == "" || M2TDMethod(SchemeSELECT) == "" {
		t.Fatal("M2TD schemes must map to methods")
	}
	if M2TDMethod(SchemeRandom) != "" || M2TDMethod(SchemeGrid) != "" {
		t.Fatal("conventional schemes must map to empty method")
	}
}

func TestRunComparisonStructure(t *testing.T) {
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 6 {
		t.Fatalf("%d results, want 6", len(cmp.Results))
	}
	for _, s := range AllSchemes() {
		r, ok := cmp.Get(s)
		if !ok {
			t.Fatalf("missing scheme %s", s)
		}
		if r.NumSims <= 0 || r.EnsembleNNZ <= 0 {
			t.Fatalf("%s: empty budget accounting %+v", s, r)
		}
		if math.IsNaN(r.Accuracy) {
			t.Fatalf("%s: NaN accuracy", s)
		}
	}
	if _, ok := cmp.Get(Scheme("nope")); ok {
		t.Fatal("Get returned a result for an unknown scheme")
	}
}

func TestRunComparisonEqualBudgets(t *testing.T) {
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	m2td, _ := cmp.Get(SchemeSELECT)
	random, _ := cmp.Get(SchemeRandom)
	slice, _ := cmp.Get(SchemeSlice)
	if random.NumSims != m2td.NumSims || slice.NumSims != m2td.NumSims {
		t.Fatalf("budgets differ: m2td=%d random=%d slice=%d", m2td.NumSims, random.NumSims, slice.NumSims)
	}
	grid, _ := cmp.Get(SchemeGrid)
	if grid.NumSims > m2td.NumSims {
		t.Fatalf("grid exceeded budget: %d > %d", grid.NumSims, m2td.NumSims)
	}
}

func TestRunComparisonHeadlineShape(t *testing.T) {
	// The paper's core claim at every configuration: each M2TD variant
	// beats every conventional scheme by a wide margin.
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	worstM2TD := math.Inf(1)
	bestConv := math.Inf(-1)
	for _, s := range []Scheme{SchemeAVG, SchemeCONCAT, SchemeSELECT} {
		r, _ := cmp.Get(s)
		if r.Accuracy < worstM2TD {
			worstM2TD = r.Accuracy
		}
	}
	for _, s := range []Scheme{SchemeRandom, SchemeGrid, SchemeSlice} {
		r, _ := cmp.Get(s)
		if r.Accuracy > bestConv {
			bestConv = r.Accuracy
		}
	}
	if worstM2TD <= bestConv {
		t.Fatalf("M2TD (worst %v) did not beat conventional (best %v)", worstM2TD, bestConv)
	}
}

func TestRunComparisonUnknownSystem(t *testing.T) {
	cfg := testConfig("double-pendulum")
	cfg.System = "bogus"
	if _, err := RunComparison(cfg); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestTable3SmallRun(t *testing.T) {
	rows, err := Table3(testConfig("double-pendulum"), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Total() <= 0 {
			t.Fatalf("workers=%d: no recorded time", r.Workers)
		}
	}
}

func TestTable5RowsIncludeZeroJoin(t *testing.T) {
	rows, err := Table5(testConfig("double-pendulum"), []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want join + zero-join", len(rows))
	}
	if rows[0].ZeroJoin || !rows[1].ZeroJoin {
		t.Fatalf("row stitch flags: %v, %v", rows[0].ZeroJoin, rows[1].ZeroJoin)
	}
}

func TestTable8PivotSweepSmall(t *testing.T) {
	rows, err := Table8(testConfig("double-pendulum"), []int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].PivotName != "t" || rows[1].PivotName != "phi1" {
		t.Fatalf("pivot names: %q, %q", rows[0].PivotName, rows[1].PivotName)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderTable2(&b, []*Comparison{cmp})
	if !strings.Contains(b.String(), "TABLE II") || !strings.Contains(b.String(), "SELECT") {
		t.Fatalf("Table II render missing content:\n%s", b.String())
	}
	b.Reset()
	RenderTable4(&b, []*Comparison{cmp})
	if !strings.Contains(b.String(), "double-pendulum") {
		t.Fatal("Table IV render missing system name")
	}
	b.Reset()
	RenderTable3(&b, []Table3Row{{Workers: 2, Phase1: 1e6, Phase2: 2e6, Phase3: 3e6}})
	if !strings.Contains(b.String(), "Servers") {
		t.Fatal("Table III render missing header")
	}
	b.Reset()
	RenderTable5(&b, []Table5Row{{BudgetFrac: 0.1, ZeroJoin: true, Comparison: cmp}})
	if !strings.Contains(b.String(), "zero-join") {
		t.Fatal("Table V render missing stitch column")
	}
	b.Reset()
	RenderTable6(&b, []FracRow{{Frac: 0.5, Comparison: cmp}})
	RenderTable7(&b, []FracRow{{Frac: 0.5, Comparison: cmp}})
	if !strings.Contains(b.String(), "TABLE VI") || !strings.Contains(b.String(), "TABLE VII") {
		t.Fatal("Tables VI/VII renders missing titles")
	}
	b.Reset()
	RenderTable8(&b, []PivotRow{{Pivot: 4, PivotName: "t", Comparison: cmp}})
	if !strings.Contains(b.String(), "Pivot") {
		t.Fatal("Table VIII render missing header")
	}
}

func TestFmtAcc(t *testing.T) {
	if got := fmtAcc(0.57); got != "0.57" {
		t.Fatalf("fmtAcc(0.57) = %q", got)
	}
	if got := fmtAcc(2e-4); got != "2E-04" {
		t.Fatalf("fmtAcc(2e-4) = %q", got)
	}
	if got := fmtAcc(-0.02); got != "-0.02" {
		t.Fatalf("fmtAcc(-0.02) = %q", got)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := testConfig("double-pendulum")
	cfg.FreeFrac = 0.6 // introduce sampling randomness
	sweep, err := RunSeeds(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Comparisons) != 3 {
		t.Fatalf("%d comparisons", len(sweep.Comparisons))
	}
	for _, s := range AllSchemes() {
		sum, ok := sweep.Accuracy[s]
		if !ok {
			t.Fatalf("missing summary for %s", s)
		}
		if sum.N != 3 {
			t.Fatalf("%s: N = %d", s, sum.N)
		}
	}
	var b strings.Builder
	RenderSeedSweep(&b, sweep)
	if !strings.Contains(b.String(), "seeds") {
		t.Fatal("seed sweep render missing header")
	}
}

func TestRunSeedsRequiresSeeds(t *testing.T) {
	if _, err := RunSeeds(testConfig("double-pendulum"), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestUnionBaselineIsWeak(t *testing.T) {
	// The paper's Section I-C argument: unioning the two sub-ensembles
	// into one high-order tensor leaves the density too low — M2TD's
	// join-based stitching must beat it decisively.
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	union, err := UnionResult(part, cfg.Rank)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Decompose(part, core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(space.Order(), cfg.Rank)})
	if err != nil {
		t.Fatal(err)
	}
	m2tdAcc := Accuracy(res.Reconstruct(), space.GroundTruth())
	if union.Accuracy >= m2tdAcc {
		t.Fatalf("union accuracy %v >= M2TD %v", union.Accuracy, m2tdAcc)
	}
	if union.EnsembleNNZ >= res.Join.NNZ() {
		t.Fatalf("union NNZ %d >= join NNZ %d", union.EnsembleNNZ, res.Join.NNZ())
	}
}

func TestUnionTensorAveragesOverlap(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	u := UnionTensor(part)
	// No duplicate coordinates may remain.
	seen := map[int]bool{}
	u.Each(func(idx []int, v float64) {
		lin := u.Shape.LinearIndex(idx)
		if seen[lin] {
			t.Fatalf("duplicate union cell at %v", idx)
		}
		seen[lin] = true
	})
	if u.NNZ() == 0 {
		t.Fatal("empty union tensor")
	}
}

func TestExportComparisonsCSV(t *testing.T) {
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ExportComparisonsCSV(&b, []*Comparison{cmp}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("CSV has %d lines, want header + 6 scheme rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "system,res,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.Contains(b.String(), "M2TD-SELECT") {
		t.Fatal("CSV missing scheme rows")
	}
}

func TestExportComparisonsJSON(t *testing.T) {
	cmp, err := RunComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ExportComparisonsJSON(&b, []*Comparison{cmp}); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("%d JSON cells", len(decoded))
	}
	results, ok := decoded[0]["results"].([]interface{})
	if !ok || len(results) != 6 {
		t.Fatalf("JSON results malformed: %v", decoded[0]["results"])
	}
}

func TestExportTable3CSV(t *testing.T) {
	var b strings.Builder
	rows := []Table3Row{{Workers: 2, Phase1: 1e6, Phase2: 2e6, Phase3: 3e6}}
	if err := ExportTable3CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "workers,") || !strings.Contains(b.String(), "2,1.000,2.000,3.000,6.000") {
		t.Fatalf("Table3 CSV = %q", b.String())
	}
}

func TestAddNoisePerturbs(t *testing.T) {
	sp := tensor.NewSparse(tensor.Shape{4})
	for i := 0; i < 4; i++ {
		sp.Append([]int{i}, 1)
	}
	before := append([]float64(nil), sp.Vals...)
	AddNoise(sp, 0.5, rand.New(rand.NewSource(1)))
	changed := false
	for i, v := range sp.Vals {
		if v != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("AddNoise changed nothing")
	}
	// No-ops: zero fraction, empty tensor, all-zero tensor.
	AddNoise(sp, 0, rand.New(rand.NewSource(2)))
	empty := tensor.NewSparse(tensor.Shape{2})
	AddNoise(empty, 1, rand.New(rand.NewSource(3)))
	zeros := tensor.NewSparse(tensor.Shape{2})
	zeros.Append([]int{0}, 0)
	AddNoise(zeros, 1, rand.New(rand.NewSource(4)))
	if zeros.Vals[0] != 0 {
		t.Fatal("all-zero tensor should stay zero")
	}
}

func TestNoiseSweepDegradesGracefully(t *testing.T) {
	rows, err := NoiseSweep(testConfig("double-pendulum"), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	clean, _ := rows[0].Comparison.Get(SchemeSELECT)
	noisy, _ := rows[1].Comparison.Get(SchemeSELECT)
	// Noise must not improve accuracy beyond numerical jitter, and M2TD
	// must still beat conventional under noise.
	if noisy.Accuracy > clean.Accuracy+0.05 {
		t.Fatalf("noise improved accuracy: %v -> %v", clean.Accuracy, noisy.Accuracy)
	}
	noisyRandom, _ := rows[1].Comparison.Get(SchemeRandom)
	if noisy.Accuracy <= noisyRandom.Accuracy {
		t.Fatalf("M2TD under noise %v not better than Random %v", noisy.Accuracy, noisyRandom.Accuracy)
	}
	var b strings.Builder
	RenderNoiseSweep(&b, rows)
	if !strings.Contains(b.String(), "NOISE") {
		t.Fatal("noise render missing title")
	}
}

func TestTable1Summary(t *testing.T) {
	rows, err := Table1([]string{"double-pendulum"}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.FullSpaceCells != 5*5*5*5*5 {
		t.Fatalf("full cells = %d", r.FullSpaceCells)
	}
	if r.Budget != 2*25 {
		t.Fatalf("budget = %d, want 50", r.Budget)
	}
	if r.Density <= 0 || r.Density > 1 {
		t.Fatalf("density = %v", r.Density)
	}
	var b strings.Builder
	RenderTable1(&b, rows)
	if !strings.Contains(b.String(), "TABLE I") {
		t.Fatal("Table I render missing title")
	}
}

func TestFig6DensityBoost(t *testing.T) {
	rows, err := Fig6(testConfig("double-pendulum"), []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The core claim: stitching boosts effective density well beyond
		// raw sampling, and zero-join is at least as dense as join.
		if r.JoinBoostFactor <= 1 {
			t.Fatalf("E=%v: join boost %v <= 1", r.FreeFrac, r.JoinBoostFactor)
		}
		if r.ZeroJoinDensity < r.JoinDensity {
			t.Fatalf("E=%v: zero-join density below join", r.FreeFrac)
		}
		if r.UnionDensity > r.RawDensity*1.01 {
			t.Fatalf("E=%v: union density %v unexpectedly above raw %v", r.FreeFrac, r.UnionDensity, r.RawDensity)
		}
	}
	// The boost factor grows as E drops for zero-join relative to join.
	if rows[1].ZeroBoostFactor <= rows[1].JoinBoostFactor {
		t.Fatal("zero-join boost should exceed join boost at reduced E")
	}
	var b strings.Builder
	RenderFig6(&b, rows)
	if !strings.Contains(b.String(), "FIGURE 6") {
		t.Fatal("Fig6 render missing title")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int]string{
		100:     "100B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTimeFiberMatchesFullReconstruction(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Decompose(part, core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(space.Order(), cfg.Rank)})
	if err != nil {
		t.Fatal(err)
	}
	model := TuckerModel{Core: res.Core, Factors: res.Factors}
	full := res.Reconstruct()
	idx := []int{1, 2, 3, 0}
	fiber := model.TimeFiber(idx, space.TimeSamples)
	for tt := 0; tt < space.TimeSamples; tt++ {
		want := full.At(1, 2, 3, 0, tt)
		if math.Abs(fiber[tt]-want) > 1e-9 {
			t.Fatalf("fiber[%d] = %v, full reconstruction %v", tt, fiber[tt], want)
		}
	}
}

func TestEstimateAccuracyConsistentWithExact(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Decompose(part, core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(space.Order(), cfg.Rank)})
	if err != nil {
		t.Fatal(err)
	}
	model := TuckerModel{Core: res.Core, Factors: res.Factors}
	exact := Accuracy(res.Reconstruct(), space.GroundTruth())

	// Sampling every simulation must reproduce the exact metric.
	all, err := EstimateAccuracy(space, model, space.TotalSims(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all-exact) > 1e-9 {
		t.Fatalf("full-sample estimate %v != exact %v", all, exact)
	}
	// A partial sample lands near the exact value.
	est, err := EstimateAccuracy(space, model, space.TotalSims()/2, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.15 {
		t.Fatalf("half-sample estimate %v far from exact %v", est, exact)
	}
}

func TestEstimateAccuracyValidation(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateAccuracy(space, TuckerModel{}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero sample count accepted")
	}
	if _, err := EstimateAccuracy(space, TuckerModel{}, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestRunComparisonEstimatedMatchesExactAtFullSampling(t *testing.T) {
	cfg := testConfig("double-pendulum")
	exact, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	space, _ := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	est, err := RunComparisonEstimated(cfg, space.TotalSims())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchemes() {
		e, _ := exact.Get(s)
		g, _ := est.Get(s)
		if math.Abs(e.Accuracy-g.Accuracy) > 1e-9 {
			t.Fatalf("%s: estimated %v != exact %v at full sampling", s, g.Accuracy, e.Accuracy)
		}
	}
}

func TestRunComparisonEstimatedHeadlineShape(t *testing.T) {
	cfg := testConfig("double-pendulum")
	cmp, err := RunComparisonEstimated(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := cmp.Get(SchemeSELECT)
	rnd, _ := cmp.Get(SchemeRandom)
	if sel.Accuracy <= rnd.Accuracy {
		t.Fatalf("estimated SELECT %v not above Random %v", sel.Accuracy, rnd.Accuracy)
	}
	if _, err := RunComparisonEstimated(cfg, 0); err == nil {
		t.Fatal("zero sample count accepted")
	}
}

func TestSampleFibersDistinct(t *testing.T) {
	space, _ := SpaceFor("double-pendulum", 5, 4)
	fibers := SampleFibers(space, 30, rand.New(rand.NewSource(1)))
	if len(fibers) != 30 {
		t.Fatalf("%d fibers", len(fibers))
	}
	seen := map[int]bool{}
	for _, f := range fibers {
		if len(f.Truth) != space.TimeSamples {
			t.Fatalf("fiber truth length %d", len(f.Truth))
		}
		key := 0
		for _, i := range f.ParamIdx {
			key = key*space.Res + i
		}
		if seen[key] {
			t.Fatal("duplicate fiber")
		}
		seen[key] = true
	}
	// Oversampling clamps to the space.
	all := SampleFibers(space, 1<<20, rand.New(rand.NewSource(2)))
	if len(all) != space.TotalSims() {
		t.Fatalf("clamped to %d fibers, want %d", len(all), space.TotalSims())
	}
}

func TestTables2467SmallRuns(t *testing.T) {
	base := testConfig("double-pendulum")
	cmps, err := Table2(base, []int{5}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 1 || cmps[0].Config.Res != 5 {
		t.Fatalf("Table2 rows: %d", len(cmps))
	}
	t4, err := Table4(base, []string{"lorenz"})
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 1 || t4[0].Config.System != "lorenz" {
		t.Fatalf("Table4 rows: %+v", t4)
	}
	t6, err := Table6(base, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) != 1 || t6[0].Frac != 0.5 {
		t.Fatalf("Table6 rows: %+v", t6)
	}
	t7, err := Table7(base, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(t7) != 1 {
		t.Fatalf("Table7 rows: %d", len(t7))
	}
	// Error propagation from an unknown system.
	bad := base
	bad.System = "bogus"
	if _, err := Table4(bad, []string{"bogus"}); err == nil {
		t.Fatal("Table4 with bogus system accepted")
	}
}

func TestDefaultPivotAndPairs(t *testing.T) {
	space, err := SpaceFor("double-pendulum", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if DefaultPivot(space) != 4 {
		t.Fatalf("DefaultPivot = %d", DefaultPivot(space))
	}
	if PairsFor("double-pendulum") == nil {
		t.Fatal("double pendulum should have pairs")
	}
	if PairsFor("lorenz") != nil {
		t.Fatal("lorenz should have no pairs")
	}
}

func TestEstimateAccuracyCI(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Decompose(part, core.Options{Method: core.SELECT, Ranks: tucker.UniformRanks(space.Order(), cfg.Rank)})
	if err != nil {
		t.Fatal(err)
	}
	model := TuckerModel{Core: res.Core, Factors: res.Factors}
	fibers := SampleFibers(space, 200, rand.New(rand.NewSource(21)))
	ci, err := EstimateAccuracyCI(model, fibers, 300, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Accuracy || ci.Hi < ci.Accuracy {
		t.Fatalf("CI [%v, %v] does not contain point estimate %v", ci.Lo, ci.Hi, ci.Accuracy)
	}
	if ci.Hi <= ci.Lo {
		t.Fatalf("degenerate CI [%v, %v]", ci.Lo, ci.Hi)
	}
	// The exact metric should land inside or near the interval.
	exact := Accuracy(res.Reconstruct(), space.GroundTruth())
	margin := (ci.Hi - ci.Lo) // allow one extra interval width
	if exact < ci.Lo-margin || exact > ci.Hi+margin {
		t.Fatalf("exact accuracy %v far outside CI [%v, %v]", exact, ci.Lo, ci.Hi)
	}
	// Validation paths.
	if _, err := EstimateAccuracyCI(model, fibers, 1, rand.New(rand.NewSource(23))); err == nil {
		t.Fatal("too-few resamples accepted")
	}
	if _, err := EstimateAccuracyCI(model, nil, 10, rand.New(rand.NewSource(24))); err == nil {
		t.Fatal("empty fibers accepted")
	}
}

func TestFiberStatsConsistentWithEstimate(t *testing.T) {
	cfg := testConfig("double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(25)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Decompose(part, core.Options{Method: core.AVG, Ranks: tucker.UniformRanks(space.Order(), cfg.Rank)})
	if err != nil {
		t.Fatal(err)
	}
	model := TuckerModel{Core: res.Core, Factors: res.Factors}
	fibers := SampleFibers(space, 50, rand.New(rand.NewSource(26)))
	errSq, refSq, err := FiberStats(model, fibers)
	if err != nil {
		t.Fatal(err)
	}
	var e, r float64
	for i := range errSq {
		e += errSq[i]
		r += refSq[i]
	}
	want, err := EstimateFromFibers(model, fibers)
	if err != nil {
		t.Fatal(err)
	}
	got := 1 - math.Sqrt(e/r)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FiberStats-derived accuracy %v != EstimateFromFibers %v", got, want)
	}
}

func TestRankSweep(t *testing.T) {
	rows, err := RankSweep(testConfig("double-pendulum"), []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Rank != 2 || rows[1].Rank != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	var b strings.Builder
	RenderRankSweep(&b, rows)
	if !strings.Contains(b.String(), "RANK SWEEP") || !strings.Contains(b.String(), "margin") {
		t.Fatal("rank sweep render missing content")
	}
}

func TestExtendedComparison(t *testing.T) {
	cmp, err := ExtendedComparison(testConfig("double-pendulum"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 8 {
		t.Fatalf("%d results, want 8", len(cmp.Results))
	}
	lhs, ok := cmp.Get(SchemeLHS)
	if !ok {
		t.Fatal("missing LHS row")
	}
	union, ok := cmp.Get(SchemeUnion)
	if !ok {
		t.Fatal("missing Union row")
	}
	sel, _ := cmp.Get(SchemeSELECT)
	if lhs.Accuracy >= sel.Accuracy {
		t.Fatalf("LHS %v >= SELECT %v", lhs.Accuracy, sel.Accuracy)
	}
	if union.Accuracy >= sel.Accuracy {
		t.Fatalf("Union %v >= SELECT %v", union.Accuracy, sel.Accuracy)
	}
	if lhs.NumSims > sel.NumSims {
		t.Fatal("LHS exceeded the shared budget")
	}
	var b strings.Builder
	RenderExtended(&b, []*Comparison{cmp})
	if !strings.Contains(b.String(), "LHS") || !strings.Contains(b.String(), "Union") {
		t.Fatal("extended render missing columns")
	}
}

func TestSelectPivotRanksCandidates(t *testing.T) {
	scores, err := SelectPivot("double-pendulum", 5, 2, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("%d scores, want 5", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].Accuracy > scores[i-1].Accuracy+1e-12 {
			t.Fatal("scores not sorted best-first")
		}
	}
	names := map[string]bool{}
	for _, s := range scores {
		if s.NumSims <= 0 {
			t.Fatalf("pivot %s: no simulations recorded", s.PivotName)
		}
		names[s.PivotName] = true
	}
	for _, want := range []string{"phi1", "phi2", "m1", "m2", "t"} {
		if !names[want] {
			t.Fatalf("missing pivot %s", want)
		}
	}
	if _, err := SelectPivot("double-pendulum", 1, 2, 10, 1); err == nil {
		t.Fatal("tiny pilot resolution accepted")
	}
	if _, err := SelectPivot("bogus", 5, 2, 10, 1); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestSelectPivotDeterministic(t *testing.T) {
	a, err := SelectPivot("lorenz", 5, 2, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectPivot("lorenz", 5, 2, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Pivot != b[i].Pivot || a[i].Accuracy != b[i].Accuracy {
			t.Fatal("pivot selection not deterministic")
		}
	}
}
