package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tucker"
)

// Fiber is one sampled ground-truth time fiber: a parameter combination
// and the simulated cell values at every timestamp.
type Fiber struct {
	ParamIdx []int
	Truth    []float64
}

// SampleFibers simulates n distinct uniformly sampled parameter
// combinations and returns their ground-truth time fibers. Sharing one
// fiber sample across every scheme of a comparison removes the sampling
// noise from scheme-to-scheme accuracy differences.
func SampleFibers(space *ensemble.Space, n int, rng *rand.Rand) []Fiber {
	shape := space.Shape()
	nParams := space.NumParams()
	total := 1
	for m := 0; m < nParams; m++ {
		total *= shape[m]
	}
	if n > total {
		n = total
	}
	seen := make(map[int]bool, n)
	fibers := make([]Fiber, 0, n)
	for len(fibers) < n {
		lin := rng.Intn(total)
		if seen[lin] {
			continue
		}
		seen[lin] = true
		idx := make([]int, nParams)
		rem := lin
		for m := nParams - 1; m >= 0; m-- {
			idx[m] = rem % shape[m]
			rem /= shape[m]
		}
		fibers = append(fibers, Fiber{ParamIdx: idx})
	}
	// Simulate in parallel.
	workers := runtime.NumCPU()
	if workers > len(fibers) {
		workers = len(fibers)
	}
	space.Reference()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(fibers); i += workers {
				fibers[i].Truth = space.SimCells(fibers[i].ParamIdx)
			}
		}(w)
	}
	wg.Wait()
	return fibers
}

// EstimateFromFibers evaluates a Tucker model on pre-simulated fibers and
// returns the estimated accuracy.
func EstimateFromFibers(model TuckerModel, fibers []Fiber) (float64, error) {
	if len(fibers) == 0 {
		return 0, fmt.Errorf("eval: no fibers")
	}
	t := len(fibers[0].Truth)
	type partial struct{ errSq, refSq float64 }
	partials := make([]partial, len(fibers))
	workers := runtime.NumCPU()
	if workers > len(fibers) {
		workers = len(fibers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(fibers); i += workers {
				fiber := model.TimeFiber(fibers[i].ParamIdx, t)
				var e, r float64
				for tt := 0; tt < t; tt++ {
					d := fiber[tt] - fibers[i].Truth[tt]
					e += d * d
					r += fibers[i].Truth[tt] * fibers[i].Truth[tt]
				}
				partials[i] = partial{errSq: e, refSq: r}
			}
		}(w)
	}
	wg.Wait()
	var errSq, refSq float64
	for _, p := range partials {
		errSq += p.errSq
		refSq += p.refSq
	}
	if refSq == 0 {
		return 0, fmt.Errorf("eval: sampled reference fibers are all zero")
	}
	return 1 - math.Sqrt(errSq/refSq), nil
}

// RunComparisonEstimated is RunComparison for resolutions where the exact
// pipeline cannot run: M2TD variants use the factored (join-free) core
// recovery and all schemes are scored by shared sampled-fiber accuracy
// estimation. The estimate is a consistent estimator of the exact metric
// and every scheme sees the same fibers, so orderings are directly
// comparable.
func RunComparisonEstimated(cfg Config, sampleSims int) (*Comparison, error) {
	if sampleSims < 1 {
		return nil, fmt.Errorf("eval: sampleSims must be positive")
	}
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)

	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	pcfg.PivotFrac = cfg.PivotFrac
	pcfg.FreeFrac = cfg.FreeFrac
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if cfg.NoiseFrac > 0 {
		noiseRng := rand.New(rand.NewSource(cfg.Seed + 7))
		AddNoise(part.Sub1.Tensor, cfg.NoiseFrac, noiseRng)
		AddNoise(part.Sub2.Tensor, cfg.NoiseFrac, noiseRng)
	}
	budget := part.NumSims

	fibers := SampleFibers(space, sampleSims, rand.New(rand.NewSource(cfg.Seed+100)))

	cmp := &Comparison{Config: cfg}
	for _, method := range core.Methods() {
		res, err := core.DecomposeFactored(part, core.Options{Method: method, Ranks: ranks, ZeroJoin: cfg.ZeroJoin})
		if err != nil {
			return nil, err
		}
		acc, err := EstimateFromFibers(TuckerModel{Core: res.Core, Factors: res.Factors}, fibers)
		if err != nil {
			return nil, err
		}
		cmp.Results = append(cmp.Results, SchemeResult{
			Scheme:     Scheme(method),
			Accuracy:   acc,
			DecompTime: res.SubDecompTime + res.StitchTime + res.CoreTime,
			NumSims:    budget,
			// Effective join size (never materialised).
			EnsembleNNZ: len(part.PivotConfigs) * len(part.Free1Configs) * len(part.Free2Configs),
		})
	}

	conventional := []struct {
		scheme Scheme
		sample func() []ensemble.Sim
	}{
		{SchemeRandom, func() []ensemble.Sim {
			return ensemble.RandomSample(space, budget, rand.New(rand.NewSource(cfg.Seed+1)))
		}},
		{SchemeGrid, func() []ensemble.Sim {
			return ensemble.GridSample(space, budget)
		}},
		{SchemeSlice, func() []ensemble.Sim {
			return ensemble.SliceSample(space, budget, rand.New(rand.NewSource(cfg.Seed+2)))
		}},
	}
	for _, c := range conventional {
		sims := c.sample()
		se := ensemble.Encode(space, sims)
		if cfg.NoiseFrac > 0 {
			AddNoise(se.Tensor, cfg.NoiseFrac, rand.New(rand.NewSource(cfg.Seed+8)))
		}
		start := time.Now()
		dec := tucker.HOSVD(se.Tensor, ranks)
		elapsed := time.Since(start)
		acc, err := EstimateFromFibers(TuckerModel{Core: dec.Core, Factors: dec.Factors}, fibers)
		if err != nil {
			return nil, err
		}
		cmp.Results = append(cmp.Results, SchemeResult{
			Scheme:      c.scheme,
			Accuracy:    acc,
			DecompTime:  elapsed,
			NumSims:     len(sims),
			EnsembleNNZ: se.Tensor.NNZ(),
		})
	}
	return cmp, nil
}
