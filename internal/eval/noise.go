package eval

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"repro/internal/tensor"
)

// AddNoise perturbs every stored cell with zero-mean Gaussian noise whose
// standard deviation is frac times the tensor's RMS cell value, in place.
// Models measurement / stochastic-realisation uncertainty on simulation
// outputs.
func AddNoise(sp *tensor.Sparse, frac float64, rng *rand.Rand) {
	if frac <= 0 || sp.NNZ() == 0 {
		return
	}
	var sumSq float64
	for _, v := range sp.Vals {
		sumSq += v * v
	}
	rms := sumSq / float64(sp.NNZ())
	if rms == 0 {
		return
	}
	sigma := frac * math.Sqrt(rms)
	for i := range sp.Vals {
		//lint:allow quarantine -- in-place perturbation preserves finiteness (sigma and NormFloat64 are finite); InvalidatePlans is called below
		sp.Vals[i] += sigma * rng.NormFloat64()
	}
	// Vals were mutated directly: drop any compiled kernel plans so the
	// next ModeGram/TTM recompiles against the perturbed values.
	sp.InvalidatePlans()
}

// NoiseRow is one noise level of the robustness sweep.
type NoiseRow struct {
	// NoiseFrac is the noise standard deviation as a fraction of the RMS
	// cell value.
	NoiseFrac  float64
	Comparison *Comparison
}

// NoiseSweep measures accuracy for every scheme as multiplicative cell
// noise grows — a robustness ablation beyond the paper's noise-free
// evaluation. Noise is injected into the sub-ensembles (for M2TD schemes)
// and the sampled ensemble (for conventional schemes) after simulation,
// before decomposition.
func NoiseSweep(base Config, fracs []float64) ([]NoiseRow, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.05, 0.2, 0.5}
	}
	var rows []NoiseRow
	for _, frac := range fracs {
		cfg := base
		cfg.NoiseFrac = frac
		cmp, err := RunComparison(cfg)
		if err != nil {
			return nil, fmt.Errorf("noise sweep frac=%v: %w", frac, err)
		}
		rows = append(rows, NoiseRow{NoiseFrac: frac, Comparison: cmp})
	}
	return rows, nil
}

// RenderNoiseSweep prints the robustness sweep in the shared table layout.
func RenderNoiseSweep(w io.Writer, rows []NoiseRow) {
	fmt.Fprintln(w, "NOISE SWEEP: Accuracy under multiplicative cell noise")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Noise\t%s\n", schemeHeader)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t", r.NoiseFrac*100)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtAcc(sr.Accuracy) })
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
