package eval

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/partition"
	"repro/internal/stitch"
)

// Table1Row summarises one configuration of the experiment space — the
// reproduction's analogue of the paper's Table I (key system parameters
// and their value ranges), extended with the measured storage footprint of
// the sampled ensembles.
type Table1Row struct {
	System      string
	Res         int
	TimeSamples int
	// FullSpaceCells is the size of the complete simulation-space tensor.
	FullSpaceCells int
	// Budget is the partition-stitch simulation budget at P = E = 100%.
	Budget int
	// EnsembleCells is the number of stored cells across both
	// sub-ensembles; Density is EnsembleCells over FullSpaceCells.
	EnsembleCells int
	Density       float64
	// StorageBytes approximates the COO storage of the sub-ensembles
	// (order+1 machine words per cell).
	StorageBytes int
}

// Table1 builds the configuration summary for the given systems and
// resolutions (defaults: all three paper systems at the scaled default).
func Table1(systems []string, resolutions []int) ([]Table1Row, error) {
	if len(systems) == 0 {
		systems = []string{"double-pendulum", "triple-pendulum", "lorenz"}
	}
	if len(resolutions) == 0 {
		resolutions = []int{DefaultRes}
	}
	var rows []Table1Row
	for _, sysName := range systems {
		for _, res := range resolutions {
			space, err := SpaceFor(sysName, res, res)
			if err != nil {
				return nil, err
			}
			pcfg := partition.DefaultConfig(space.Order(), space.TimeMode(), PairsFor(sysName))
			part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(DefaultSeed)))
			if err != nil {
				return nil, err
			}
			cells := part.Sub1.Tensor.NNZ() + part.Sub2.Tensor.NNZ()
			full := space.Shape().NumElements()
			rows = append(rows, Table1Row{
				System:         sysName,
				Res:            res,
				TimeSamples:    res,
				FullSpaceCells: full,
				Budget:         part.NumSims,
				EnsembleCells:  cells,
				Density:        float64(cells) / float64(full),
				StorageBytes:   cells * (space.Order() + 1) * 8,
			})
		}
	}
	return rows, nil
}

// RenderTable1 prints the configuration summary.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "TABLE I: Key system parameters (scaled; see DESIGN.md)")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "System\tRes\tT\tFull cells\tBudget\tEns. cells\tDensity\tStorage")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.2e\t%s\n",
			r.System, r.Res, r.TimeSamples, r.FullSpaceCells, r.Budget,
			r.EnsembleCells, r.Density, fmtBytes(r.StorageBytes))
	}
	tw.Flush()
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Fig6Row quantifies the density-boosting argument of the paper's
// Figure 6 for one sub-ensemble density E: the raw density of the
// conventional ensemble, the union density, and the effective densities
// after join and zero-join stitching.
type Fig6Row struct {
	FreeFrac         float64
	RawDensity       float64
	UnionDensity     float64
	JoinDensity      float64
	ZeroJoinDensity  float64
	JoinBoostFactor  float64 // join density / raw density
	ZeroBoostFactor  float64 // zero-join density / raw density
	SimulationBudget int
}

// Fig6 reproduces Figure 6 numerically: for each sub-ensemble density it
// generates the PF-partition, stitches both ways, and reports cell
// densities relative to conventional sampling at the same budget.
func Fig6(base Config, freeFracs []float64) ([]Fig6Row, error) {
	if len(freeFracs) == 0 {
		freeFracs = []float64{1.0, 0.5, 0.25}
	}
	cfg := base
	if cfg.Res == 0 {
		cfg = DefaultConfig("double-pendulum")
	}
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	full := float64(space.Shape().NumElements())
	var rows []Fig6Row
	for _, frac := range freeFracs {
		pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
		pcfg.FreeFrac = frac
		part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		// Conventional sampling with the same budget yields one trajectory
		// (time fiber) per simulation.
		raw := float64(part.NumSims*space.TimeSamples) / full
		union := float64(UnionTensor(part).NNZ()) / full
		join := float64(stitch.Join(part).NNZ()) / full
		zero := float64(stitch.ZeroJoin(part).NNZ()) / full
		rows = append(rows, Fig6Row{
			FreeFrac:         frac,
			RawDensity:       raw,
			UnionDensity:     union,
			JoinDensity:      join,
			ZeroJoinDensity:  zero,
			JoinBoostFactor:  join / raw,
			ZeroBoostFactor:  zero / raw,
			SimulationBudget: part.NumSims,
		})
	}
	return rows, nil
}

// RenderFig6 prints the density-boost report.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "FIGURE 6: Effective density of PF-partitioning + JE-stitching")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "E\tBudget\tRaw\tUnion\tJoin\tZero-join\tJoin boost\tZero boost")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%.2e\t%.2e\t%.2e\t%.2e\t%.1fx\t%.1fx\n",
			r.FreeFrac*100, r.SimulationBudget, r.RawDensity, r.UnionDensity,
			r.JoinDensity, r.ZeroJoinDensity, r.JoinBoostFactor, r.ZeroBoostFactor)
	}
	tw.Flush()
}
