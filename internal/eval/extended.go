package eval

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tucker"
)

// SchemeLHS and SchemeUnion are the extra baselines of the extended
// comparison: Latin hypercube sampling (experiment-design literature) and
// the paper's naive union alternative (Section I-C).
const (
	SchemeLHS   Scheme = "LHS"
	SchemeUnion Scheme = "Union"
)

// ExtendedComparison augments the paper's six-scheme comparison with the
// LHS and Union baselines, at the same simulation budget. LHS probes
// whether smarter space-filling alone closes the gap (it does not);
// Union quantifies the paper's argument for stitching over pooling.
func ExtendedComparison(cfg Config) (*Comparison, error) {
	cmp, err := RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	truth := space.GroundTruth()
	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)
	sel, _ := cmp.Get(SchemeSELECT)
	budget := sel.NumSims

	// LHS at the shared budget.
	sims := ensemble.LatinHypercubeSample(space, budget, rand.New(rand.NewSource(cfg.Seed+3)))
	se := ensemble.Encode(space, sims)
	if cfg.NoiseFrac > 0 {
		AddNoise(se.Tensor, cfg.NoiseFrac, rand.New(rand.NewSource(cfg.Seed+9)))
	}
	start := time.Now()
	dec := tucker.HOSVD(se.Tensor, ranks)
	elapsed := time.Since(start)
	cmp.Results = append(cmp.Results, SchemeResult{
		Scheme:      SchemeLHS,
		Accuracy:    Accuracy(dec.Reconstruct(), truth),
		DecompTime:  elapsed,
		NumSims:     len(sims),
		EnsembleNNZ: se.Tensor.NNZ(),
	})

	// Union of the PF-partitioned sub-ensembles (regenerated with the same
	// seed, so it matches the M2TD rows' inputs).
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	pcfg.PivotFrac = cfg.PivotFrac
	pcfg.FreeFrac = cfg.FreeFrac
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	union, err := UnionResult(part, cfg.Rank)
	if err != nil {
		return nil, err
	}
	cmp.Results = append(cmp.Results, union)
	return cmp, nil
}

// RenderExtended prints the eight-column extended comparison.
func RenderExtended(w io.Writer, cmps []*Comparison) {
	fmt.Fprintln(w, "EXTENDED BASELINES: Accuracy including LHS and Union")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Res.\tRank\t%s\tLHS\tUnion\n", schemeHeader)
	extended := append(AllSchemes(), SchemeLHS, SchemeUnion)
	for _, cmp := range cmps {
		fmt.Fprintf(tw, "%d\t%d", cmp.Config.Res, cmp.Config.Rank)
		for _, s := range extended {
			r, ok := cmp.Get(s)
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%s", fmtAcc(r.Accuracy))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
