package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// RankRow is one target-rank row of the rank sweep.
type RankRow struct {
	Rank       int
	Comparison *Comparison
}

// RankSweep measures accuracy for every scheme across target
// decomposition ranks — the quantitative version of the paper's claim
// that M2TD-SELECT's advantage over -AVG/-CONCAT "gets higher as we
// target higher ranking decompositions" (Section VI-C and Table II's rank
// rows). Default ranks are {2, 4, 6, 8}.
func RankSweep(base Config, ranks []int) ([]RankRow, error) {
	if len(ranks) == 0 {
		ranks = []int{2, 4, 6, 8}
	}
	cfg := base
	if cfg.Res == 0 {
		cfg = DefaultConfig("double-pendulum")
	}
	var rows []RankRow
	for _, r := range ranks {
		c := cfg
		c.Rank = r
		cmp, err := RunComparison(c)
		if err != nil {
			return nil, fmt.Errorf("rank sweep r=%d: %w", r, err)
		}
		rows = append(rows, RankRow{Rank: r, Comparison: cmp})
	}
	return rows, nil
}

// RenderRankSweep prints the rank sweep with a SELECT-margin column
// (SELECT accuracy minus the best of AVG/CONCAT).
func RenderRankSweep(w io.Writer, rows []RankRow) {
	fmt.Fprintln(w, "RANK SWEEP: Accuracy by target decomposition rank")
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Rank\t%s\tSELECT margin\n", schemeHeader)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t", r.Rank)
		writeSchemeCells(tw, r.Comparison, func(sr SchemeResult) string { return fmtAcc(sr.Accuracy) })
		sel, _ := r.Comparison.Get(SchemeSELECT)
		avg, _ := r.Comparison.Get(SchemeAVG)
		cc, _ := r.Comparison.Get(SchemeCONCAT)
		best := avg.Accuracy
		if cc.Accuracy > best {
			best = cc.Accuracy
		}
		fmt.Fprintf(tw, "\t%+.3f\n", sel.Accuracy-best)
	}
	tw.Flush()
}
