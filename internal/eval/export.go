package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ExportComparisonsCSV writes comparisons as flat CSV rows (one row per
// scheme per experiment cell) for external plotting tools.
func ExportComparisonsCSV(w io.Writer, cmps []*Comparison) error {
	cw := csv.NewWriter(w)
	header := []string{
		"system", "res", "time_samples", "rank", "pivot",
		"pivot_frac", "free_frac", "zero_join", "seed",
		"scheme", "accuracy", "decomp_ms", "num_sims", "ensemble_nnz",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, cmp := range cmps {
		c := cmp.Config
		for _, r := range cmp.Results {
			row := []string{
				c.System,
				strconv.Itoa(c.Res),
				strconv.Itoa(c.TimeSamples),
				strconv.Itoa(c.Rank),
				strconv.Itoa(c.Pivot),
				strconv.FormatFloat(c.PivotFrac, 'g', -1, 64),
				strconv.FormatFloat(c.FreeFrac, 'g', -1, 64),
				strconv.FormatBool(c.ZeroJoin),
				strconv.FormatInt(c.Seed, 10),
				string(r.Scheme),
				strconv.FormatFloat(r.Accuracy, 'g', -1, 64),
				strconv.FormatFloat(float64(r.DecompTime.Microseconds())/1000, 'g', -1, 64),
				strconv.Itoa(r.NumSims),
				strconv.Itoa(r.EnsembleNNZ),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonComparison is the JSON shape of one experiment cell.
type jsonComparison struct {
	Config  Config           `json:"config"`
	Results []jsonSchemeCell `json:"results"`
}

type jsonSchemeCell struct {
	Scheme      string  `json:"scheme"`
	Accuracy    float64 `json:"accuracy"`
	DecompMs    float64 `json:"decompMs"`
	NumSims     int     `json:"numSims"`
	EnsembleNNZ int     `json:"ensembleNnz"`
}

// ExportComparisonsJSON writes comparisons as a JSON array.
func ExportComparisonsJSON(w io.Writer, cmps []*Comparison) error {
	out := make([]jsonComparison, 0, len(cmps))
	for _, cmp := range cmps {
		jc := jsonComparison{Config: cmp.Config}
		for _, r := range cmp.Results {
			jc.Results = append(jc.Results, jsonSchemeCell{
				Scheme:      string(r.Scheme),
				Accuracy:    r.Accuracy,
				DecompMs:    float64(r.DecompTime.Microseconds()) / 1000,
				NumSims:     r.NumSims,
				EnsembleNNZ: r.EnsembleNNZ,
			})
		}
		out = append(out, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ExportTable3CSV writes D-M2TD phase rows as CSV.
func ExportTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workers", "phase1_ms", "phase2_ms", "phase3_ms", "total_ms"}); err != nil {
		return err
	}
	ms := func(d int64) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	for _, r := range rows {
		row := []string{
			strconv.Itoa(r.Workers),
			ms(int64(r.Phase1)),
			ms(int64(r.Phase2)),
			ms(int64(r.Phase3)),
			ms(int64(r.Total())),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
