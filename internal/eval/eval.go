// Package eval contains the evaluation harness: the paper's accuracy
// metric, runners for each experiment (Tables II–VIII of Section VII),
// and text renderers that print the same rows the paper reports.
//
// The harness runs at configurable resolutions. Defaults are scaled down
// from the paper's 60–80 per mode (whose full tensors would need tens of
// GB) to 12–20 per mode, preserving mode count, pivot structure, density
// ratios and rank-to-resolution proportions; see DESIGN.md for the
// substitution argument.
package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Accuracy implements the paper's metric (Section VII-D):
//
//	accuracy(X̃, Y) = 1 − ‖X̃ − Y‖F / ‖Y‖F
//
// where X̃ is the reconstruction after sampling and decomposition and Y is
// the tensor over the full simulation space.
func Accuracy(recon, truth *tensor.Dense) float64 {
	return 1 - recon.Sub(truth).Norm()/truth.Norm()
}

// Scheme is one evaluated ensemble-construction scheme.
type Scheme string

// The six schemes compared throughout Section VII.
const (
	SchemeAVG    Scheme = "M2TD-AVG"
	SchemeCONCAT Scheme = "M2TD-CONCAT"
	SchemeSELECT Scheme = "M2TD-SELECT"
	SchemeRandom Scheme = "Random"
	SchemeGrid   Scheme = "Grid"
	SchemeSlice  Scheme = "Slice"
)

// AllSchemes lists the schemes in the paper's column order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeAVG, SchemeCONCAT, SchemeSELECT, SchemeRandom, SchemeGrid, SchemeSlice}
}

// M2TDMethod maps an M2TD scheme to its fusion method, or "" for
// conventional schemes.
func M2TDMethod(s Scheme) core.Method {
	switch s {
	case SchemeAVG:
		return core.AVG
	case SchemeCONCAT:
		return core.CONCAT
	case SchemeSELECT:
		return core.SELECT
	}
	return ""
}

// Config describes one experiment cell.
type Config struct {
	// System names the dynamical system ("double-pendulum",
	// "triple-pendulum", "lorenz").
	System string
	// Res is the per-parameter grid resolution; TimeSamples the time-mode
	// size.
	Res, TimeSamples int
	// Rank is the uniform per-mode target decomposition rank.
	Rank int
	// Pivot is the pivot mode for PF-partitioning (the time mode by
	// default; see DefaultPivot).
	Pivot int
	// PivotFrac and FreeFrac are the paper's P and E density knobs.
	PivotFrac, FreeFrac float64
	// ZeroJoin selects zero-join JE-stitching for M2TD schemes.
	ZeroJoin bool
	// NoiseFrac, when positive, perturbs every simulated cell with
	// zero-mean Gaussian noise of standard deviation NoiseFrac × the RMS
	// cell value before decomposition (robustness ablation).
	NoiseFrac float64
	// EstimateSims, when positive, switches the comparison to the
	// paper-scale pipeline: factored (join-free) core recovery and
	// shared sampled-fiber accuracy estimation with this many fibers.
	// Required beyond resolution ≈24, where the exact metric and the
	// materialised join tensor stop fitting in memory.
	EstimateSims int
	// Seed drives all sampling randomness.
	Seed int64
}

// DefaultPivot is the time mode of the 5-mode ensembles, the paper's
// default pivot parameter.
func DefaultPivot(space *ensemble.Space) int { return space.TimeMode() }

// PairsFor returns the parameter pairs that PF-partitioning must keep in
// one sub-system for the named system. The double pendulum pairs each
// pendulum's angle with its mass (Table VIII's footnote); the other
// systems have no such constraint.
func PairsFor(system string) [][2]int {
	if system == "double-pendulum" {
		return [][2]int{{0, 2}, {1, 3}}
	}
	return nil
}

// spaceCache shares ensemble spaces (and therefore their cached ground
// truths and reference trajectories) across experiments in one process.
var spaceCache sync.Map

// SpaceFor returns the cached Space for a system/resolution combination.
func SpaceFor(system string, res, timeSamples int) (*ensemble.Space, error) {
	key := fmt.Sprintf("%s/%d/%d", system, res, timeSamples)
	if v, ok := spaceCache.Load(key); ok {
		return v.(*ensemble.Space), nil
	}
	sys, err := dynsys.ByName(system)
	if err != nil {
		return nil, err
	}
	space := ensemble.NewSpace(sys, res, timeSamples)
	actual, _ := spaceCache.LoadOrStore(key, space)
	return actual.(*ensemble.Space), nil
}

// SchemeResult is the outcome of one scheme on one experiment cell.
type SchemeResult struct {
	Scheme Scheme
	// Accuracy is the paper's reconstruction accuracy against the full
	// ground-truth tensor.
	Accuracy float64
	// DecompTime covers decomposition only (for M2TD: sub-decompositions,
	// stitching and core recovery), excluding simulation time, matching
	// the paper's "decomposition time" columns.
	DecompTime time.Duration
	// NumSims is the simulation budget the scheme consumed.
	NumSims int
	// EnsembleNNZ is the stored-cell count of the decomposed tensor (the
	// join tensor for M2TD schemes).
	EnsembleNNZ int
}

// Comparison is one experiment cell evaluated under every scheme with a
// shared simulation budget.
type Comparison struct {
	Config  Config
	Results []SchemeResult
}

// Get returns the result for a scheme.
func (c *Comparison) Get(s Scheme) (SchemeResult, bool) {
	for _, r := range c.Results {
		if r.Scheme == s {
			return r, true
		}
	}
	return SchemeResult{}, false
}

// RunComparison evaluates all six schemes on one experiment cell. The
// PF-partitioned sub-ensembles are generated once and shared by the three
// M2TD variants; the conventional schemes receive the same number of
// simulations (the paper's equal-budget comparison).
func RunComparison(cfg Config) (*Comparison, error) {
	if cfg.EstimateSims > 0 {
		return RunComparisonEstimated(cfg, cfg.EstimateSims)
	}
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	truth := space.GroundTruth()
	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)

	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	pcfg.PivotFrac = cfg.PivotFrac
	pcfg.FreeFrac = cfg.FreeFrac
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if cfg.NoiseFrac > 0 {
		noiseRng := rand.New(rand.NewSource(cfg.Seed + 7))
		AddNoise(part.Sub1.Tensor, cfg.NoiseFrac, noiseRng)
		AddNoise(part.Sub2.Tensor, cfg.NoiseFrac, noiseRng)
	}
	budget := part.NumSims

	cmp := &Comparison{Config: cfg}
	for _, method := range core.Methods() {
		res, err := core.Decompose(part, core.Options{Method: method, Ranks: ranks, ZeroJoin: cfg.ZeroJoin})
		if err != nil {
			return nil, err
		}
		cmp.Results = append(cmp.Results, SchemeResult{
			Scheme:      Scheme(method),
			Accuracy:    Accuracy(res.Reconstruct(), truth),
			DecompTime:  res.SubDecompTime + res.StitchTime + res.CoreTime,
			NumSims:     budget,
			EnsembleNNZ: res.Join.NNZ(),
		})
	}

	conventional := []struct {
		scheme Scheme
		sample func() []ensemble.Sim
	}{
		{SchemeRandom, func() []ensemble.Sim {
			return ensemble.RandomSample(space, budget, rand.New(rand.NewSource(cfg.Seed+1)))
		}},
		{SchemeGrid, func() []ensemble.Sim {
			return ensemble.GridSample(space, budget)
		}},
		{SchemeSlice, func() []ensemble.Sim {
			return ensemble.SliceSample(space, budget, rand.New(rand.NewSource(cfg.Seed+2)))
		}},
	}
	for _, c := range conventional {
		sims := c.sample()
		se := ensemble.Encode(space, sims)
		if cfg.NoiseFrac > 0 {
			AddNoise(se.Tensor, cfg.NoiseFrac, rand.New(rand.NewSource(cfg.Seed+8)))
		}
		start := time.Now()
		dec := tucker.HOSVD(se.Tensor, ranks)
		elapsed := time.Since(start)
		recon := dec.Reconstruct()
		cmp.Results = append(cmp.Results, SchemeResult{
			Scheme:      c.scheme,
			Accuracy:    Accuracy(recon, truth),
			DecompTime:  elapsed,
			NumSims:     len(sims),
			EnsembleNNZ: se.Tensor.NNZ(),
		})
	}
	return cmp, nil
}
