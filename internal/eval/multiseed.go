package eval

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/stats"
)

// SeedSweep aggregates one experiment cell across multiple sampling
// seeds, giving variance-aware accuracy summaries per scheme. The paper
// reports point estimates; the sweep quantifies how sensitive each scheme
// is to the random sampling of sub-ensembles.
type SeedSweep struct {
	Config Config
	Seeds  []int64
	// Accuracy maps each scheme to its accuracy summary across seeds.
	Accuracy map[Scheme]stats.Summary
	// Comparisons holds the raw per-seed results, in seed order.
	Comparisons []*Comparison
}

// RunSeeds evaluates the configuration once per seed and aggregates.
func RunSeeds(cfg Config, seeds []int64) (*SeedSweep, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: RunSeeds requires at least one seed")
	}
	sweep := &SeedSweep{Config: cfg, Seeds: seeds, Accuracy: make(map[Scheme]stats.Summary)}
	acc := make(map[Scheme][]float64)
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		cmp, err := RunComparison(c)
		if err != nil {
			return nil, fmt.Errorf("eval: seed %d: %w", seed, err)
		}
		sweep.Comparisons = append(sweep.Comparisons, cmp)
		for _, r := range cmp.Results {
			acc[r.Scheme] = append(acc[r.Scheme], r.Accuracy)
		}
	}
	for scheme, xs := range acc {
		sweep.Accuracy[scheme] = stats.Summarize(xs)
	}
	return sweep, nil
}

// RenderSeedSweep prints per-scheme accuracy mean ± std across seeds.
func RenderSeedSweep(w io.Writer, sweep *SeedSweep) {
	fmt.Fprintf(w, "Accuracy across %d seeds (%s, res %d, rank %d)\n",
		len(sweep.Seeds), sweep.Config.System, sweep.Config.Res, sweep.Config.Rank)
	tw := tabwriter.NewWriter(w, 6, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scheme\tMean\tStd\tMin\tMax")
	for _, s := range AllSchemes() {
		sum, ok := sweep.Accuracy[s]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2g\t%s\t%s\n",
			s, fmtAcc(sum.Mean), sum.Std, fmtAcc(sum.Min), fmtAcc(sum.Max))
	}
	tw.Flush()
}
