package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/tucker"
)

// PivotScore is one candidate pivot's pilot-run outcome.
type PivotScore struct {
	Pivot     int
	PivotName string
	// Accuracy is the estimated accuracy of a coarse pilot pipeline using
	// this pivot.
	Accuracy float64
	// NumSims is the pilot's simulation cost.
	NumSims int
}

// SelectPivot ranks the candidate pivot modes by running a coarse pilot
// pipeline (low resolution, shared estimation fibers) for each and
// returns the scores sorted best-first.
//
// Table VIII shows pivot choice shifts M2TD's accuracy modestly but
// matters; the paper leaves the choice to the user. This heuristic
// operationalises it: a pilot at a fraction of the real resolution costs
// a few hundred simulations and transfers, because the relative pivot
// ordering is driven by which parameter interactions the PF-partition
// separates — a property of the system, not the resolution.
func SelectPivot(system string, pilotRes, rank int, sampleSims int, seed int64) ([]PivotScore, error) {
	if pilotRes < 2 {
		return nil, fmt.Errorf("eval: pilot resolution %d too small", pilotRes)
	}
	space, err := SpaceFor(system, pilotRes, pilotRes)
	if err != nil {
		return nil, err
	}
	fibers := SampleFibers(space, sampleSims, rand.New(rand.NewSource(seed+200)))
	ranks := tucker.UniformRanks(space.Order(), rank)

	var scores []PivotScore
	for pivot := 0; pivot < space.Order(); pivot++ {
		pcfg := partition.DefaultConfig(space.Order(), pivot, PairsFor(system))
		part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, fmt.Errorf("eval: pivot %d pilot: %w", pivot, err)
		}
		res, err := core.DecomposeFactored(part, core.Options{Method: core.SELECT, Ranks: ranks})
		if err != nil {
			return nil, fmt.Errorf("eval: pivot %d pilot: %w", pivot, err)
		}
		acc, err := EstimateFromFibers(TuckerModel{Core: res.Core, Factors: res.Factors}, fibers)
		if err != nil {
			return nil, fmt.Errorf("eval: pivot %d pilot: %w", pivot, err)
		}
		scores = append(scores, PivotScore{
			Pivot:     pivot,
			PivotName: space.ModeName(pivot),
			Accuracy:  acc,
			NumSims:   part.NumSims,
		})
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].Accuracy > scores[b].Accuracy })
	return scores, nil
}

// RenderPivotScores prints the pilot ranking.
func RenderPivotScores(w io.Writer, system string, scores []PivotScore) {
	fmt.Fprintf(w, "PIVOT SELECTION: pilot ranking for %s\n", system)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Rank\tPivot\tPilot accuracy\tPilot sims")
	for i, s := range scores {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\n", i+1, s.PivotName, fmtAcc(s.Accuracy), s.NumSims)
	}
	tw.Flush()
}
