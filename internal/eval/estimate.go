package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/ensemble"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// TuckerModel is anything that exposes a Tucker decomposition — both
// core.Result and tucker.Decomposition satisfy it structurally via
// adapters below.
type TuckerModel struct {
	Core    *tensor.Dense
	Factors []*mat.Matrix
}

// EstimateAccuracy estimates the paper's accuracy metric without ever
// materialising the ground-truth tensor: it samples sampleSims parameter
// combinations uniformly, simulates only those (one time fiber each), and
// evaluates the Tucker model on the same fibers. Sampling fibers uniformly
// makes both ‖X̃−Y‖² and ‖Y‖² estimates proportional to their true values
// with the same constant, so the ratio — and hence the accuracy — is a
// consistent estimator.
//
// This removes the memory gate that forces scaled-down resolutions: the
// exact metric needs the res⁴·T ground-truth tensor (13+ GB at the
// paper's resolution 70), the estimate needs O(sampleSims·T) values.
func EstimateAccuracy(space *ensemble.Space, model TuckerModel, sampleSims int, rng *rand.Rand) (float64, error) {
	if sampleSims < 1 {
		return 0, fmt.Errorf("eval: sampleSims must be positive, got %d", sampleSims)
	}
	shape := space.Shape()
	if !model.coreShapeMatches(shape) {
		return 0, fmt.Errorf("eval: model factors do not match space shape %v", shape)
	}
	nParams := space.NumParams()
	t := space.TimeSamples

	total := 1
	for m := 0; m < nParams; m++ {
		total *= shape[m]
	}
	if sampleSims > total {
		sampleSims = total
	}
	// Distinct uniform parameter combinations.
	seen := make(map[int]bool, sampleSims)
	sims := make([][]int, 0, sampleSims)
	for len(sims) < sampleSims {
		lin := rng.Intn(total)
		if seen[lin] {
			continue
		}
		seen[lin] = true
		idx := make([]int, nParams)
		rem := lin
		for m := nParams - 1; m >= 0; m-- {
			idx[m] = rem % shape[m]
			rem /= shape[m]
		}
		sims = append(sims, idx)
	}

	type partial struct{ errSq, refSq float64 }
	partials := make([]partial, len(sims))
	workers := runtime.NumCPU()
	if workers > len(sims) {
		workers = len(sims)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sims); i += workers {
				truth := space.SimCells(sims[i])
				fiber := model.TimeFiber(sims[i], t)
				var e, r float64
				for tt := 0; tt < t; tt++ {
					d := fiber[tt] - truth[tt]
					e += d * d
					r += truth[tt] * truth[tt]
				}
				partials[i] = partial{errSq: e, refSq: r}
			}
		}(w)
	}
	wg.Wait()

	var errSq, refSq float64
	for _, p := range partials {
		errSq += p.errSq
		refSq += p.refSq
	}
	if refSq == 0 {
		return 0, fmt.Errorf("eval: sampled reference fibers are all zero")
	}
	return 1 - math.Sqrt(errSq/refSq), nil
}

// TimeFiber evaluates the Tucker model on the time fiber of one parameter
// combination: out[t] = Σ_r G[r]·Π U(m)(i_m, r_m)·U(T)(t, r_T).
// Implemented as a chain of mode products with 1-row matrices, leaving a
// length-T vector.
func (m TuckerModel) TimeFiber(paramIdx []int, timeSamples int) []float64 {
	order := len(m.Factors)
	cur := m.Core
	// Contract every parameter mode with the corresponding factor row.
	for mode := 0; mode < order-1; mode++ {
		row := mat.FromSlice(1, m.Factors[mode].Cols, append([]float64(nil), m.Factors[mode].Row(paramIdx[mode])...))
		cur = tensor.TTM(cur, mode, row)
	}
	// Expand the time mode through its full factor.
	cur = tensor.TTM(cur, order-1, m.Factors[order-1])
	out := make([]float64, timeSamples)
	copy(out, cur.Data)
	return out
}

// coreShapeMatches verifies factor row counts against the space shape.
func (m TuckerModel) coreShapeMatches(shape tensor.Shape) bool {
	if len(m.Factors) != shape.Order() {
		return false
	}
	for mode, f := range m.Factors {
		if f.Rows != shape[mode] {
			return false
		}
	}
	return true
}
