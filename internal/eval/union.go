package eval

import (
	"time"

	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// UnionTensor maps both PF-partitioned sub-ensembles back into a single
// sparse tensor over the original mode space, with each sub-system's
// fixed modes at their default indices — the paper's naive "union the two
// ensembles into one 5-mode tensor" alternative (Section I-C), which it
// argues leaves the overall density too low for accuracy gains.
// Cells sampled by both sub-systems (the shared pivot/default
// coordinates) are averaged.
func UnionTensor(p *partition.Result) *tensor.Sparse {
	space := p.Space
	u := tensor.NewSparse(space.Shape())
	def := space.DefaultIndex()
	defTime := space.TimeSamples / 2
	full := make([]int, space.Order())
	add := func(sub *partition.SubEnsemble) {
		sub.Tensor.Each(func(idx []int, v float64) {
			for m := 0; m < space.NumParams(); m++ {
				full[m] = def
			}
			full[space.TimeMode()] = defTime
			for i, m := range sub.Modes {
				full[m] = idx[i]
			}
			u.Append(full, v)
		})
	}
	add(p.Sub1)
	add(p.Sub2)
	u.Dedup(tensor.MeanDuplicates)
	return u
}

// UnionResult evaluates the union alternative: HOSVD of the unioned
// tensor, with the same budget accounting as the partition it came from.
func UnionResult(p *partition.Result, rank int) (SchemeResult, error) {
	truth := p.Space.GroundTruth()
	ranks := tucker.UniformRanks(p.Space.Order(), rank)
	u := UnionTensor(p)
	start := time.Now()
	dec := tucker.HOSVD(u, ranks)
	elapsed := time.Since(start)
	return SchemeResult{
		Scheme:      Scheme("Union"),
		Accuracy:    Accuracy(dec.Reconstruct(), truth),
		DecompTime:  elapsed,
		NumSims:     p.NumSims,
		EnsembleNNZ: u.NNZ(),
	}, nil
}
