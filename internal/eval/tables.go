package eval

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/partition"
	"repro/internal/tucker"
)

// Defaults shared by the experiments, scaled from the paper's setting
// (resolution 70, rank 10, pivot = t, P = E = 100%); see DESIGN.md.
const (
	// DefaultRes replaces the paper's resolution 70.
	DefaultRes = 16
	// DefaultTime is the time-mode size (the paper used the parameter
	// resolution on every mode).
	DefaultTime = 16
	// DefaultRank replaces the paper's rank 10, preserving rank/resolution.
	DefaultRank = 4
	// DefaultSeed drives all sampling randomness.
	DefaultSeed = 1
)

// DefaultConfig returns the baseline experiment cell for a system: the
// scaled analogue of (resolution 70, rank 10, pivot = t, P = E = 100%).
func DefaultConfig(system string) Config {
	return Config{
		System:      system,
		Res:         DefaultRes,
		TimeSamples: DefaultTime,
		Rank:        DefaultRank,
		Pivot:       4, // time mode of the 5-mode ensembles
		PivotFrac:   1,
		FreeFrac:    1,
		Seed:        DefaultSeed,
	}
}

// baseOrDefault fills a zero-valued base config with the defaults for the
// given system; a non-zero base is used as-is (with the system overridden),
// letting callers shrink or grow every table's scale.
func baseOrDefault(base Config, system string) Config {
	if base.Res == 0 {
		return DefaultConfig(system)
	}
	base.System = system
	return base
}

// Table2 reproduces Table II: accuracy and decomposition time for the
// double pendulum across parameter resolutions and target ranks, under all
// six schemes. The paper's resolutions {60, 70, 80} and ranks {5, 10, 20}
// scale to the given slices (defaults {12, 16, 20} and {2, 4, 6}).
func Table2(base Config, resolutions, ranks []int) ([]*Comparison, error) {
	if len(resolutions) == 0 {
		resolutions = []int{12, 16, 20}
	}
	if len(ranks) == 0 {
		ranks = []int{2, 4, 6}
	}
	var out []*Comparison
	for _, res := range resolutions {
		for _, rank := range ranks {
			cfg := baseOrDefault(base, "double-pendulum")
			cfg.Res = res
			cfg.TimeSamples = res
			cfg.Rank = rank
			cmp, err := RunComparison(cfg)
			if err != nil {
				return nil, fmt.Errorf("table2 res=%d rank=%d: %w", res, rank, err)
			}
			out = append(out, cmp)
		}
	}
	return out, nil
}

// Table3Row is one server-count row of Table III: the wall-clock split of
// D-M2TD across its three phases.
type Table3Row struct {
	Workers int
	Phase1  time.Duration
	Phase2  time.Duration
	Phase3  time.Duration
}

// Total returns the end-to-end distributed decomposition time.
func (r Table3Row) Total() time.Duration { return r.Phase1 + r.Phase2 + r.Phase3 }

// Table3 reproduces Table III: D-M2TD phase times for the double pendulum
// at the default configuration, for each worker ("server") count.
func Table3(base Config, workerCounts []int) ([]Table3Row, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8, 16}
	}
	cfg := baseOrDefault(base, "double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	pcfg := partition.DefaultConfig(space.Order(), cfg.Pivot, PairsFor(cfg.System))
	part, err := partition.Generate(space, pcfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	ranks := tucker.UniformRanks(space.Order(), cfg.Rank)
	var rows []Table3Row
	for _, w := range workerCounts {
		res, err := dist.Decompose(part, dist.Options{
			Options: core.Options{Method: core.SELECT, Ranks: ranks},
			Workers: w,
		})
		if err != nil {
			return nil, fmt.Errorf("table3 workers=%d: %w", w, err)
		}
		rows = append(rows, Table3Row{
			Workers: w,
			Phase1:  res.Phase1.Total(),
			Phase2:  res.Phase2.Total(),
			Phase3:  res.Phase3.Total(),
		})
	}
	return rows, nil
}

// Table4 reproduces Table IV: the six-scheme comparison on the other two
// dynamical systems (triple pendulum and Lorenz) at the default
// configuration.
func Table4(base Config, systems []string) ([]*Comparison, error) {
	if len(systems) == 0 {
		systems = []string{"triple-pendulum", "lorenz"}
	}
	var out []*Comparison
	for _, sys := range systems {
		cmp, err := RunComparison(baseOrDefault(base, sys))
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", sys, err)
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Table5Row is one budget row of Table V.
type Table5Row struct {
	// BudgetFrac is the fraction of the full sub-ensemble budget
	// (the paper reduced it to 1/10).
	BudgetFrac float64
	// ZeroJoin reports whether zero-join stitching was used.
	ZeroJoin   bool
	Comparison *Comparison
}

// Table5 reproduces Table V: reduced simulation budgets with join vs
// zero-join stitching. budgetFracs defaults to the paper's {1.0, 0.1}.
func Table5(base Config, budgetFracs []float64) ([]Table5Row, error) {
	if len(budgetFracs) == 0 {
		budgetFracs = []float64{1.0, 0.1}
	}
	var rows []Table5Row
	for _, frac := range budgetFracs {
		for _, zero := range []bool{false, true} {
			if frac >= 1 && zero {
				// Zero-join is identical to join at full density.
				continue
			}
			cfg := baseOrDefault(base, "double-pendulum")
			cfg.FreeFrac = frac
			cfg.ZeroJoin = zero
			cmp, err := RunComparison(cfg)
			if err != nil {
				return nil, fmt.Errorf("table5 frac=%v zero=%v: %w", frac, zero, err)
			}
			rows = append(rows, Table5Row{BudgetFrac: frac, ZeroJoin: zero, Comparison: cmp})
		}
	}
	return rows, nil
}

// FracRow is one density row of Tables VI and VII.
type FracRow struct {
	Frac       float64
	Comparison *Comparison
}

// Table6 reproduces Table VI: reduced pivot densities P (default
// {1.0, 0.5, 0.25}) at full sub-ensemble density.
func Table6(base Config, pivotFracs []float64) ([]FracRow, error) {
	if len(pivotFracs) == 0 {
		pivotFracs = []float64{1.0, 0.5, 0.25}
	}
	var rows []FracRow
	for _, frac := range pivotFracs {
		cfg := baseOrDefault(base, "double-pendulum")
		cfg.PivotFrac = frac
		cmp, err := RunComparison(cfg)
		if err != nil {
			return nil, fmt.Errorf("table6 P=%v: %w", frac, err)
		}
		rows = append(rows, FracRow{Frac: frac, Comparison: cmp})
	}
	return rows, nil
}

// Table7 reproduces Table VII: reduced sub-ensemble densities E (default
// {1.0, 0.5, 0.25}) at full pivot density.
func Table7(base Config, freeFracs []float64) ([]FracRow, error) {
	if len(freeFracs) == 0 {
		freeFracs = []float64{1.0, 0.5, 0.25}
	}
	var rows []FracRow
	for _, frac := range freeFracs {
		cfg := baseOrDefault(base, "double-pendulum")
		cfg.FreeFrac = frac
		cmp, err := RunComparison(cfg)
		if err != nil {
			return nil, fmt.Errorf("table7 E=%v: %w", frac, err)
		}
		rows = append(rows, FracRow{Frac: frac, Comparison: cmp})
	}
	return rows, nil
}

// PivotRow is one pivot-choice row of Table VIII.
type PivotRow struct {
	Pivot      int
	PivotName  string
	Comparison *Comparison
}

// Table8 reproduces Table VIII: the pivot parameter sweep over all five
// modes of the double-pendulum ensemble (t, φ₁, φ₂, m₁, m₂), with
// sub-systems keeping each pendulum's free parameters together.
func Table8(base Config, pivots []int) ([]PivotRow, error) {
	cfg := baseOrDefault(base, "double-pendulum")
	space, err := SpaceFor(cfg.System, cfg.Res, cfg.TimeSamples)
	if err != nil {
		return nil, err
	}
	if len(pivots) == 0 {
		// Paper order: t first, then the parameters.
		pivots = []int{4, 0, 1, 2, 3}
	}
	var rows []PivotRow
	for _, pivot := range pivots {
		c := cfg
		c.Pivot = pivot
		cmp, err := RunComparison(c)
		if err != nil {
			return nil, fmt.Errorf("table8 pivot=%d: %w", pivot, err)
		}
		rows = append(rows, PivotRow{Pivot: pivot, PivotName: space.ModeName(pivot), Comparison: cmp})
	}
	return rows, nil
}
