package increment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

// partial generates a reduced-density partition to leave room for growth.
func partial(t *testing.T, freeFrac float64, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = freeFrac
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGramsMatchBatchAfterAbsorb(t *testing.T) {
	p := partial(t, 1, 170)
	tr := New(p)
	for sub, st := range map[int]*partition.SubEnsemble{1: p.Sub1, 2: p.Sub2} {
		for n := 0; n < st.Tensor.Order(); n++ {
			got, err := tr.Gram(sub, n)
			if err != nil {
				t.Fatal(err)
			}
			want := tensor.ModeGram(st.Tensor, n)
			if !got.Equal(want, 1e-9) {
				t.Fatalf("sub %d mode %d: incremental Gram differs from batch", sub, n)
			}
		}
	}
}

func TestGramsStayExactUnderAppends(t *testing.T) {
	p := partial(t, 0.5, 171)
	tr := New(p)
	// Append synthetic cells at unused coordinates.
	shape := p.Sub1.Tensor.Shape
	rng := rand.New(rand.NewSource(172))
	for i := 0; i < 25; i++ {
		idx := []int{rng.Intn(shape[0]), rng.Intn(shape[1]), rng.Intn(shape[2])}
		if err := tr.AppendCell(1, idx, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 3; n++ {
		got, err := tr.Gram(1, n)
		if err != nil {
			t.Fatal(err)
		}
		want := tensor.ModeGram(tr.sub1.tensor, n)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("mode %d: Gram drifted after appends", n)
		}
	}
}

func TestDecomposeMatchesBatchM2TD(t *testing.T) {
	p := partial(t, 1, 173)
	tr := New(p)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range core.Methods() {
		inc, err := tr.Decompose(core.Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		batch, err := core.Decompose(p, core.Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if inc.Join.NNZ() != batch.Join.NNZ() {
			t.Fatalf("%s: join sizes differ", m)
		}
		if !inc.Core.Equal(batch.Core, 1e-8) {
			t.Fatalf("%s: incremental core differs from batch", m)
		}
		for mode := range inc.Factors {
			if !inc.Factors[mode].Equal(batch.Factors[mode], 1e-8) {
				t.Fatalf("%s: factor %d differs from batch", m, mode)
			}
		}
	}
}

func TestGrowthImprovesAccuracy(t *testing.T) {
	// Streaming scenario: start from a 30% sub-ensemble, grow to full
	// density, and verify the refreshed decomposition improves.
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = 0.3
	pPartial, err := partition.Generate(space, cfg, rand.New(rand.NewSource(174)))
	if err != nil {
		t.Fatal(err)
	}
	cfgFull := cfg
	cfgFull.FreeFrac = 1
	pFull, err := partition.Generate(space, cfgFull, rand.New(rand.NewSource(174)))
	if err != nil {
		t.Fatal(err)
	}

	tr := New(pPartial)
	ranks := tucker.UniformRanks(5, 2)
	before, err := tr.Decompose(core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}

	// Stream in all full-density cells the partial ensemble is missing.
	have := map[int]bool{}
	tr.sub1.tensor.Each(func(idx []int, v float64) {
		have[tr.sub1.tensor.Shape.LinearIndex(idx)] = true
	})
	pFull.Sub1.Tensor.Each(func(idx []int, v float64) {
		if !have[pFull.Sub1.Tensor.Shape.LinearIndex(idx)] {
			if err := tr.AppendCell(1, idx, v); err != nil {
				t.Fatal(err)
			}
		}
	})
	have = map[int]bool{}
	tr.sub2.tensor.Each(func(idx []int, v float64) {
		have[tr.sub2.tensor.Shape.LinearIndex(idx)] = true
	})
	pFull.Sub2.Tensor.Each(func(idx []int, v float64) {
		if !have[pFull.Sub2.Tensor.Shape.LinearIndex(idx)] {
			if err := tr.AppendCell(2, idx, v); err != nil {
				t.Fatal(err)
			}
		}
	})

	after, err := tr.Decompose(core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	y := space.GroundTruth()
	errBefore := before.Reconstruct().Sub(y).Norm() / y.Norm()
	errAfter := after.Reconstruct().Sub(y).Norm() / y.Norm()
	if errAfter >= errBefore {
		t.Fatalf("growth did not improve accuracy: %v -> %v", errBefore, errAfter)
	}
	// And the grown tracker matches the batch full-density result.
	batch, err := core.Decompose(pFull, core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Core.Equal(batch.Core, 1e-8) {
		t.Fatal("grown tracker core differs from batch full-density core")
	}
}

func TestAppendCellValidation(t *testing.T) {
	p := partial(t, 1, 175)
	tr := New(p)
	if err := tr.AppendCell(3, []int{0, 0, 0}, 1); err == nil {
		t.Fatal("invalid sub-ensemble accepted")
	}
	if _, err := tr.Gram(0, 0); err == nil {
		t.Fatal("invalid sub-ensemble accepted by Gram")
	}
	if _, err := tr.Gram(1, 99); err == nil {
		t.Fatal("invalid mode accepted by Gram")
	}
	if _, err := tr.Decompose(core.Options{Method: "nope", Ranks: tucker.UniformRanks(5, 2)}); err == nil {
		t.Fatal("invalid method accepted")
	}
	if _, err := tr.Decompose(core.Options{Method: core.AVG, Ranks: []int{1}}); err == nil {
		t.Fatal("invalid ranks accepted")
	}
}

func TestCellCountsAndAppends(t *testing.T) {
	p := partial(t, 1, 176)
	tr := New(p)
	c1, c2 := tr.CellCounts()
	if c1 != p.Sub1.Tensor.NNZ() || c2 != p.Sub2.Tensor.NNZ() {
		t.Fatalf("CellCounts = %d, %d", c1, c2)
	}
	if tr.Appends() != c1+c2 {
		t.Fatalf("Appends = %d, want %d", tr.Appends(), c1+c2)
	}
}

func TestRemoveCellInvertsAppend(t *testing.T) {
	p := partial(t, 0.5, 177)
	tr := New(p)
	// Snapshot Grams.
	before := make([]*mat.Matrix, 3)
	for n := range before {
		g, err := tr.Gram(1, n)
		if err != nil {
			t.Fatal(err)
		}
		before[n] = g
	}
	c1Before, _ := tr.CellCounts()

	idx := []int{0, 1, 2}
	if err := tr.AppendCell(1, idx, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveCell(1, idx); err != nil {
		t.Fatal(err)
	}
	c1After, _ := tr.CellCounts()
	if c1After != c1Before {
		t.Fatalf("cell count %d != %d after append+remove", c1After, c1Before)
	}
	for n := range before {
		g, err := tr.Gram(1, n)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(before[n], 1e-9) {
			t.Fatalf("mode %d Gram not restored after retraction", n)
		}
	}
	// And the Grams still match a batch recomputation.
	for n := 0; n < 3; n++ {
		g, _ := tr.Gram(1, n)
		want := tensor.ModeGram(tr.sub1.tensor, n)
		if !g.Equal(want, 1e-9) {
			t.Fatalf("mode %d Gram drifted from batch after retraction", n)
		}
	}
}

func TestRemoveCellErrors(t *testing.T) {
	p := partial(t, 0.5, 178)
	tr := New(p)
	if err := tr.RemoveCell(3, []int{0, 0, 0}); err == nil {
		t.Fatal("invalid sub accepted")
	}
	// Coordinates certainly absent (removing twice).
	idx := []int{1, 1, 1}
	if err := tr.AppendCell(1, idx, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveCell(1, idx); err != nil {
		t.Fatal(err)
	}
	// A second removal may still hit a seed cell at the same coordinates;
	// drain until the error surfaces, bounded by the original cell count.
	for i := 0; i < 10000; i++ {
		if err := tr.RemoveCell(1, idx); err != nil {
			return // expected eventually
		}
	}
	t.Fatal("RemoveCell never reported a missing cell")
}

func TestRemoveThenDecomposeMatchesBatch(t *testing.T) {
	p := partial(t, 1, 179)
	tr := New(p)
	// Append a spurious cell, retract it: decomposition must equal batch.
	idx := []int{2, 0, 1}
	if err := tr.AppendCell(2, idx, 42); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveCell(2, idx); err != nil {
		t.Fatal(err)
	}
	ranks := tucker.UniformRanks(5, 2)
	inc, err := tr.Decompose(core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.Decompose(p, core.Options{Method: core.SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Core.Equal(batch.Core, 1e-8) {
		t.Fatal("decomposition differs from batch after retraction")
	}
}
