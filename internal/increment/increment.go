// Package increment provides streaming maintenance of an M2TD
// decomposition while a simulation ensemble grows — the natural extension
// of the paper's pipeline to incrementally allocated simulation budgets
// (its related-work Section II-A's "single-run replication", where
// simulations are added one at a time and the analysis is refreshed after
// each).
//
// The key observation is that every factor matrix in M2TD derives from a
// mode-n matricization Gram matrix X(n)·X(n)ᵀ, and appending one cell to a
// sub-tensor perturbs each mode's Gram by cross-terms with only the cells
// sharing that cell's matricization column. The tracker therefore keeps
// per-mode column indexes and applies exact O(column-size) Gram updates
// per appended cell; factors are re-extracted from the maintained Grams
// only when a decomposition is requested. Retraction (RemoveCell) applies
// the exact inverse updates, so faulty simulations can be withdrawn. Core
// recovery still requires the join tensor (the dominant cost in the
// paper's measurements too) and is performed on demand.
package increment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// colEntry is one stored cell of a matricization column.
type colEntry struct {
	row int
	val float64
}

// subState tracks one sub-ensemble's cells, per-mode Grams, and per-mode
// column indexes.
type subState struct {
	modes   []int
	tensor  *tensor.Sparse
	grams   []*mat.Matrix
	columns []map[int][]colEntry // per mode: matricization column → cells
}

// Tracker incrementally maintains the state needed for M2TD
// decompositions of a growing PF-partitioned ensemble.
type Tracker struct {
	space *ensemble.Space
	cfg   partition.Config
	sub1  *subState
	sub2  *subState
	// appends counts cells added since construction (including absorbed
	// initial cells).
	appends int
}

// New creates a tracker from an existing PF-partitioned result, absorbing
// its current sub-ensembles through the incremental path.
func New(p *partition.Result) *Tracker {
	t := &Tracker{space: p.Space, cfg: p.Config}
	t.sub1 = newSubState(p.Sub1)
	t.sub2 = newSubState(p.Sub2)
	t.appends = t.sub1.tensor.NNZ() + t.sub2.tensor.NNZ()
	return t
}

func newSubState(sub *partition.SubEnsemble) *subState {
	order := sub.Tensor.Order()
	st := &subState{
		modes:   append([]int(nil), sub.Modes...),
		tensor:  tensor.NewSparse(sub.Tensor.Shape),
		grams:   make([]*mat.Matrix, order),
		columns: make([]map[int][]colEntry, order),
	}
	for n := 0; n < order; n++ {
		st.grams[n] = mat.New(sub.Tensor.Shape[n], sub.Tensor.Shape[n])
		st.columns[n] = make(map[int][]colEntry)
	}
	// Absorb existing cells via the incremental path so the invariant
	// grams[n] == ModeGram(tensor, n) holds by construction.
	sub.Tensor.Each(func(idx []int, v float64) {
		st.append(idx, v)
	})
	return st
}

// append adds one cell and updates every mode's Gram with the exact
// cross-terms.
func (st *subState) append(idx []int, v float64) {
	shape := st.tensor.Shape
	for n := range st.grams {
		row := idx[n]
		col := shape.MatricizeColumn(n, idx)
		g := st.grams[n]
		for _, e := range st.columns[n][col] {
			g.Set(row, e.row, g.At(row, e.row)+v*e.val)
			g.Set(e.row, row, g.At(e.row, row)+v*e.val)
		}
		g.Set(row, row, g.At(row, row)+v*v)
		st.columns[n][col] = append(st.columns[n][col], colEntry{row: row, val: v})
	}
	st.tensor.Append(idx, v)
}

// AppendCell adds one simulation cell to sub-ensemble 1 or 2 (index in
// the sub-tensor's own mode order, pivots first). The per-mode Grams are
// updated incrementally.
func (t *Tracker) AppendCell(sub int, idx []int, v float64) error {
	st, err := t.state(sub)
	if err != nil {
		return err
	}
	st.append(idx, v)
	t.appends++
	return nil
}

// CellCounts returns the current cell counts of the two sub-ensembles.
func (t *Tracker) CellCounts() (int, int) {
	return t.sub1.tensor.NNZ(), t.sub2.tensor.NNZ()
}

// Appends returns the total number of cells absorbed and appended.
func (t *Tracker) Appends() int { return t.appends }

// Gram returns a copy of the maintained Gram matrix for one sub-ensemble
// mode (sub ∈ {1,2}); exposed for verification and analysis.
func (t *Tracker) Gram(sub, mode int) (*mat.Matrix, error) {
	st, err := t.state(sub)
	if err != nil {
		return nil, err
	}
	if mode < 0 || mode >= len(st.grams) {
		return nil, fmt.Errorf("increment: mode %d out of range", mode)
	}
	return st.grams[mode].Clone(), nil
}

func (t *Tracker) state(sub int) (*subState, error) {
	switch sub {
	case 1:
		return t.sub1, nil
	case 2:
		return t.sub2, nil
	}
	return nil, fmt.Errorf("increment: sub-ensemble %d (want 1 or 2)", sub)
}

// snapshot packages the current cells as a partition.Result for stitching.
func (t *Tracker) snapshot() *partition.Result {
	k := len(t.cfg.Pivots)
	return &partition.Result{
		Space:  t.space,
		Config: t.cfg,
		Sub1: &partition.SubEnsemble{
			Modes:     t.sub1.modes,
			NumPivots: k,
			Tensor:    t.sub1.tensor,
		},
		Sub2: &partition.SubEnsemble{
			Modes:     t.sub2.modes,
			NumPivots: k,
			Tensor:    t.sub2.tensor,
		},
	}
}

// Decompose produces the current M2TD decomposition: pivot factors are
// fused from the incrementally maintained Grams (no cell re-scan), free
// factors come from the owning sub-ensemble's Grams, and the core is
// recovered through a fresh JE-stitch of the current cells.
func (t *Tracker) Decompose(opts core.Options) (*core.Result, error) {
	switch opts.Method {
	case core.AVG, core.CONCAT, core.SELECT:
	default:
		return nil, fmt.Errorf("increment: unknown M2TD method %q", opts.Method)
	}
	order := t.space.Order()
	if len(opts.Ranks) != order {
		return nil, fmt.Errorf("increment: %d ranks for order-%d space", len(opts.Ranks), order)
	}
	if opts.Sketch.KeepFrac != 0 {
		// The tracker maintains exact Grams over every arrived cell; a
		// sketch of them cannot be maintained incrementally.
		return nil, fmt.Errorf("increment: sketching is not supported by the incremental tracker")
	}
	ranks := tucker.ClipRanks(t.space.Shape(), opts.Ranks)
	k := len(t.cfg.Pivots)

	factors := make([]*mat.Matrix, order)
	for i, m := range t.cfg.Pivots {
		r := ranks[m]
		switch opts.Method {
		case core.AVG:
			u1 := mat.LeadingEigenvectors(t.sub1.grams[i], r)
			u2 := mat.LeadingEigenvectors(t.sub2.grams[i], r)
			factors[m] = mat.Average(u1, u2)
		case core.CONCAT:
			factors[m] = mat.LeadingEigenvectors(mat.Add(t.sub1.grams[i], t.sub2.grams[i]), r)
		case core.SELECT:
			u1 := mat.LeadingEigenvectors(t.sub1.grams[i], r)
			u2 := mat.LeadingEigenvectors(t.sub2.grams[i], r)
			factors[m] = core.RowSelect(u1, u2)
		}
	}
	for i, m := range t.cfg.Free1 {
		factors[m] = mat.LeadingEigenvectors(t.sub1.grams[k+i], ranks[m])
	}
	for i, m := range t.cfg.Free2 {
		factors[m] = mat.LeadingEigenvectors(t.sub2.grams[k+i], ranks[m])
	}

	p := t.snapshot()
	var j *tensor.Sparse
	if opts.ZeroJoin {
		j = stitch.ZeroJoin(p)
	} else {
		j = stitch.Join(p)
	}
	coreT := tucker.CoreFromFactors(j, factors)
	return &core.Result{Factors: factors, Core: coreT, Join: j}, nil
}

// RemoveCell retracts one previously appended cell — e.g. a simulation
// later found faulty — applying the exact inverse Gram updates. The cell
// is matched by coordinates; when duplicates exist at the same
// coordinates, the most recently appended one is removed. Returns an
// error if no cell exists at idx.
func (t *Tracker) RemoveCell(sub int, idx []int) error {
	st, err := t.state(sub)
	if err != nil {
		return err
	}
	return st.remove(idx)
}

// remove deletes the most recent cell at idx and downdates every mode's
// Gram matrix.
func (st *subState) remove(idx []int) error {
	shape := st.tensor.Shape
	order := st.tensor.Order()
	// Locate the most recent COO entry with these coordinates.
	pos := -1
	for e := st.tensor.NNZ() - 1; e >= 0; e-- {
		cand, _ := st.tensor.Entry(e)
		match := true
		for k := range idx {
			if cand[k] != idx[k] {
				match = false
				break
			}
		}
		if match {
			pos = e
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("increment: no cell at %v", idx)
	}
	_, v := st.tensor.Entry(pos)

	// Downdate Grams: remove this cell from each mode's column list first,
	// then subtract the cross terms against the remaining cells.
	for n := range st.grams {
		row := idx[n]
		col := shape.MatricizeColumn(n, idx)
		entries := st.columns[n][col]
		// Remove the most recent matching column entry.
		rm := -1
		for i := len(entries) - 1; i >= 0; i-- {
			//lint:allow floatcmp -- intentional exact match: entries store v bit-exactly at insertion, and equality identifies the entry to remove
			if entries[i].row == row && entries[i].val == v {
				rm = i
				break
			}
		}
		if rm < 0 {
			return fmt.Errorf("increment: internal inconsistency removing %v (mode %d)", idx, n)
		}
		entries = append(entries[:rm], entries[rm+1:]...)
		if len(entries) == 0 {
			delete(st.columns[n], col)
		} else {
			st.columns[n][col] = entries
		}
		g := st.grams[n]
		for _, e := range entries {
			g.Set(row, e.row, g.At(row, e.row)-v*e.val)
			g.Set(e.row, row, g.At(e.row, row)-v*e.val)
		}
		g.Set(row, row, g.At(row, row)-v*v)
	}

	// Remove the COO entry. Idx/Vals are mutated directly, so compiled
	// kernel plans must be dropped explicitly.
	//lint:allow quarantine -- compaction shifts existing (already quarantined) entries left; no new values enter the tensor
	copy(st.tensor.Idx[pos*order:], st.tensor.Idx[(pos+1)*order:])
	//lint:allow quarantine -- truncation after compaction; InvalidatePlans is called below
	st.tensor.Idx = st.tensor.Idx[:len(st.tensor.Idx)-order]
	//lint:allow quarantine -- compaction shifts existing (already quarantined) entries left; no new values enter the tensor
	copy(st.tensor.Vals[pos:], st.tensor.Vals[pos+1:])
	//lint:allow quarantine -- truncation after compaction; InvalidatePlans is called below
	st.tensor.Vals = st.tensor.Vals[:len(st.tensor.Vals)-1]
	st.tensor.InvalidatePlans()
	return nil
}
