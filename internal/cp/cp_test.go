package cp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// rankOneSparse builds a dense-as-sparse rank-1 tensor λ·a∘b∘c.
func rankOneSparse(shape tensor.Shape, vecs [][]float64, scale float64) *tensor.Sparse {
	d := tensor.NewDense(shape)
	idx := make([]int, len(shape))
	for lin := range d.Data {
		shape.MultiIndex(lin, idx)
		v := scale
		for n, vec := range vecs {
			v *= vec[idx[n]]
		}
		d.Data[lin] = v
	}
	return d.ToSparse(0)
}

func TestALSRecoversRankOne(t *testing.T) {
	shape := tensor.Shape{4, 5, 3}
	vecs := [][]float64{
		{1, 2, 3, 4},
		{0.5, 1, 1.5, 2, 2.5},
		{2, 1, 0.5},
	}
	x := rankOneSparse(shape, vecs, 1)
	dec, err := ALS(x, Options{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fit < 1-1e-8 {
		t.Fatalf("rank-1 fit = %v, want ~1", dec.Fit)
	}
	if err := dec.RelativeError(x.ToDense()); err > 1e-8 {
		t.Fatalf("rank-1 reconstruction error = %v", err)
	}
}

func TestALSRecoversRankTwo(t *testing.T) {
	// Sum of two well-separated rank-1 terms.
	shape := tensor.Shape{5, 4, 4}
	a := rankOneSparse(shape, [][]float64{
		{1, 0, 0, 1, 0}, {1, 1, 0, 0}, {0, 1, 1, 0},
	}, 3).ToDense()
	b := rankOneSparse(shape, [][]float64{
		{0, 1, 1, 0, 1}, {0, 0, 1, 1}, {1, 0, 0, 1},
	}, 2).ToDense()
	x := a.Add(b).ToSparse(0)
	dec, err := ALS(x, Options{Rank: 2, MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fit < 0.999 {
		t.Fatalf("rank-2 fit = %v", dec.Fit)
	}
}

func TestALSFitImprovesWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	shape := tensor.Shape{5, 5, 5}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		d.Data[i] = rng.Float64()
	}
	x := d.ToSparse(0)
	prev := math.Inf(-1)
	for _, r := range []int{1, 3, 5} {
		dec, err := ALS(x, Options{Rank: r, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Fit < prev-0.02 {
			t.Fatalf("fit degraded with rank: %v -> %v at rank %d", prev, dec.Fit, r)
		}
		prev = dec.Fit
	}
}

func TestALSLambdaSortedAndFactorsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	shape := tensor.Shape{4, 4, 4}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	dec, err := ALS(d.ToSparse(0), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dec.Lambda); i++ {
		if dec.Lambda[i] > dec.Lambda[i-1]+1e-12 {
			t.Fatalf("lambda not sorted: %v", dec.Lambda)
		}
	}
	for n, f := range dec.Factors {
		for c := 0; c < f.Cols; c++ {
			norm := mat.ColNorm(f, c)
			if math.Abs(norm-1) > 1e-9 && norm != 0 {
				t.Fatalf("factor %d column %d norm %v", n, c, norm)
			}
		}
	}
}

func TestALSInvalidOptions(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{2, 2})
	if _, err := ALS(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	one := tensor.NewSparse(tensor.Shape{3})
	if _, err := ALS(one, Options{Rank: 1}); err == nil {
		t.Fatal("order-1 tensor accepted")
	}
}

func TestALSEmptyTensor(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{3, 3})
	dec, err := ALS(x, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fit != 1 {
		t.Fatalf("empty tensor fit = %v, want 1", dec.Fit)
	}
}

func TestALSDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	shape := tensor.Shape{4, 3, 3}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		d.Data[i] = rng.Float64()
	}
	x := d.ToSparse(0)
	a, _ := ALS(x, Options{Rank: 2, Seed: 9})
	b, _ := ALS(x, Options{Rank: 2, Seed: 9})
	if a.Fit != b.Fit {
		t.Fatal("same seed, different fits")
	}
}

func TestMTTKRPMatchesDense(t *testing.T) {
	// MTTKRP via sparse coordinates must equal X(n)·(⊙_{k≠n} U(k))
	// computed densely. For a 3-mode tensor and mode 0, the Khatri–Rao
	// ordering must match the matricization column convention (first
	// non-n mode varies fastest), i.e. KhatriRao(U3, U2)... our
	// matricization has mode 1 fastest, so columns pair as U(2) ⊙ U(1)
	// with row index i1 + i2·I1 — build it accordingly.
	rng := rand.New(rand.NewSource(133))
	shape := tensor.Shape{3, 4, 2}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	x := d.ToSparse(0)
	r := 3
	factors := []*mat.Matrix{
		mat.Random(rng, 3, r),
		mat.Random(rng, 4, r),
		mat.Random(rng, 2, r),
	}
	got := MTTKRP(x, factors, 0)

	// Dense reference: X(0) has columns indexed by i1 + i2·I1; the row of
	// the Khatri-Rao factor for that column is U1(i1,:)*U2(i2,:), which is
	// KhatriRao(U2, U1) at row i2*I1 + i1.
	x0 := tensor.Matricize(d, 0)
	kr := mat.KhatriRao(factors[2], factors[1]) // row = i2·I1? verify below
	want := mat.New(3, r)
	for i := 0; i < 3; i++ {
		for col := 0; col < x0.Cols; col++ {
			v := x0.At(i, col)
			if v == 0 {
				continue
			}
			i1 := col % 4
			i2 := col / 4
			krRow := kr.Row(i2*4 + i1)
			for c := 0; c < r; c++ {
				want.Set(i, c, want.At(i, c)+v*krRow[c])
			}
		}
	}
	if !got.Equal(want, 1e-10) {
		t.Fatal("MTTKRP disagrees with dense Khatri-Rao reference")
	}
}

func TestKhatriRaoShapeAndValues(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b := mat.FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	kr := mat.KhatriRao(a, b)
	if kr.Rows != 6 || kr.Cols != 2 {
		t.Fatalf("KhatriRao dims %d×%d", kr.Rows, kr.Cols)
	}
	// Row (i=1, j=2) = a.Row(1) * b.Row(2) element-wise = (27, 40).
	row := kr.Row(1*3 + 2)
	if row[0] != 27 || row[1] != 40 {
		t.Fatalf("KhatriRao row = %v", row)
	}
}

func TestPseudoInverseSym(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	a := mat.RandomSPD(rng, 5)
	pinv := mat.PseudoInverseSym(a, 1e-12)
	if !mat.Mul(a, pinv).Equal(mat.Identity(5), 1e-8) {
		t.Fatal("pinv of SPD matrix is not its inverse")
	}
	// Singular case: pinv satisfies a·pinv·a = a.
	sing := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	p := mat.PseudoInverseSym(sing, 1e-12)
	if !mat.Mul(mat.Mul(sing, p), sing).Equal(sing, 1e-9) {
		t.Fatal("a·pinv·a != a for singular symmetric matrix")
	}
}

func TestPseudoInverseGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	a := mat.Random(rng, 5, 3)
	p := mat.PseudoInverse(a, 1e-12)
	if p.Rows != 3 || p.Cols != 5 {
		t.Fatalf("pinv dims %d×%d", p.Rows, p.Cols)
	}
	if !mat.Mul(mat.Mul(a, p), a).Equal(a, 1e-8) {
		t.Fatal("a·pinv·a != a")
	}
	if !mat.Mul(mat.Mul(p, a), p).Equal(p, 1e-8) {
		t.Fatal("pinv·a·pinv != pinv")
	}
}
