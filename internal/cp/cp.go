// Package cp implements the CP (CANDECOMP/PARAFAC) decomposition by
// alternating least squares. CP is the other classic tensor decomposition
// the paper builds on (its reference [11]); this implementation provides a
// rank-R baseline for analysing ensemble tensors alongside the Tucker/
// HOSVD pipeline, and exercises the Khatri–Rao kernels in internal/mat.
//
// A rank-R CP decomposition expresses an N-mode tensor as a sum of R
// rank-one terms:
//
//	X ≈ Σ_r λ_r · u¹_r ∘ u²_r ∘ … ∘ uᴺ_r
//
// with factor matrices U(n) (Iₙ × R, unit-norm columns) and weights λ.
// ALS cycles over modes, solving each factor in closed form:
//
//	U(n) ← MTTKRP(X, U, n) · pinv(⊛_{k≠n} U(k)ᵀU(k))
//
// where MTTKRP is the matricized-tensor-times-Khatri-Rao product,
// evaluated directly on sparse coordinates.
package cp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Decomposition is a rank-R CP decomposition.
type Decomposition struct {
	// Factors holds one Iₙ×R factor matrix per mode with unit-norm
	// columns.
	Factors []*mat.Matrix
	// Lambda holds the R component weights, sorted in decreasing order.
	Lambda []float64
	// Iterations is the number of ALS sweeps executed.
	Iterations int
	// Fit is the final model fit 1 − ‖X−X̂‖F/‖X‖F.
	Fit float64
}

// Options configures ALS.
type Options struct {
	// Rank is the number of rank-one components (required).
	Rank int
	// MaxIterations bounds the ALS sweeps (default 50).
	MaxIterations int
	// Tolerance stops iteration when the fit improves by less than this
	// amount between sweeps (default 1e-6).
	Tolerance float64
	// Seed drives the random initialisation (default 1).
	Seed int64
}

func (o Options) normalize() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ALS decomposes a sparse tensor by CP alternating least squares.
func ALS(x *tensor.Sparse, opts Options) (*Decomposition, error) {
	opts = opts.normalize()
	if opts.Rank < 1 {
		return nil, fmt.Errorf("cp: rank must be positive, got %d", opts.Rank)
	}
	order := x.Order()
	if order < 2 {
		return nil, fmt.Errorf("cp: tensor order %d < 2", order)
	}
	r := opts.Rank
	rng := rand.New(rand.NewSource(opts.Seed))

	// Random init with unit-norm columns.
	factors := make([]*mat.Matrix, order)
	for n := 0; n < order; n++ {
		f := mat.New(x.Shape[n], r)
		for i := range f.Data {
			f.Data[i] = rng.Float64()
		}
		normalizeColumns(f, nil)
		factors[n] = f
	}
	lambda := make([]float64, r)

	xNorm := x.Norm()
	if xNorm == 0 {
		return &Decomposition{Factors: factors, Lambda: lambda, Fit: 1}, nil
	}

	// Cache factor Grams U(k)ᵀU(k).
	grams := make([]*mat.Matrix, order)
	for n := 0; n < order; n++ {
		grams[n] = mat.MulTransA(factors[n], factors[n])
	}

	prevFit := math.Inf(-1)
	iter := 0
	for ; iter < opts.MaxIterations; iter++ {
		for n := 0; n < order; n++ {
			m := MTTKRP(x, factors, n)
			// V = Hadamard of all other Grams.
			v := onesMatrix(r)
			for k := 0; k < order; k++ {
				if k != n {
					v = mat.Hadamard(v, grams[k])
				}
			}
			f := mat.Mul(m, mat.PseudoInverseSym(v, 1e-12))
			normalizeColumns(f, lambda)
			factors[n] = f
			grams[n] = mat.MulTransA(f, f)
		}
		fit := fitOf(x, factors, lambda, xNorm)
		if math.Abs(fit-prevFit) < opts.Tolerance {
			prevFit = fit
			iter++
			break
		}
		prevFit = fit
	}
	dec := &Decomposition{Factors: factors, Lambda: lambda, Iterations: iter, Fit: prevFit}
	dec.sortComponents()
	return dec, nil
}

// MTTKRP computes the matricized-tensor-times-Khatri-Rao product for mode
// n directly from sparse coordinates:
//
//	M(i, r) = Σ_{cells with idxₙ = i} v · Π_{k≠n} U(k)(idx_k, r).
func MTTKRP(x *tensor.Sparse, factors []*mat.Matrix, n int) *mat.Matrix {
	r := factors[0].Cols
	out := mat.New(x.Shape[n], r)
	prod := make([]float64, r)
	x.Each(func(idx []int, v float64) {
		for c := range prod {
			prod[c] = v
		}
		for k, f := range factors {
			if k == n {
				continue
			}
			row := f.Row(idx[k])
			for c := range prod {
				prod[c] *= row[c]
			}
		}
		orow := out.Row(idx[n])
		for c := range prod {
			orow[c] += prod[c]
		}
	})
	return out
}

// Reconstruct materialises the CP model densely.
func (d *Decomposition) Reconstruct() *tensor.Dense {
	order := len(d.Factors)
	shape := make(tensor.Shape, order)
	for n, f := range d.Factors {
		shape[n] = f.Rows
	}
	out := tensor.NewDense(shape)
	idx := make([]int, order)
	for lin := range out.Data {
		shape.MultiIndex(lin, idx)
		var s float64
		for r, l := range d.Lambda {
			term := l
			for n, f := range d.Factors {
				term *= f.At(idx[n], r)
			}
			s += term
		}
		//lint:allow quarantine -- kernel write into a freshly allocated reconstruction; factor entries come from quarantined inputs
		out.Data[lin] = s
	}
	return out
}

// RelativeError returns ‖X̂ − ref‖F/‖ref‖F against a dense reference.
func (d *Decomposition) RelativeError(ref *tensor.Dense) float64 {
	return d.Reconstruct().Sub(ref).Norm() / ref.Norm()
}

// fitOf computes 1 − ‖X−X̂‖/‖X‖ without materialising X̂, using
// ‖X−X̂‖² = ‖X‖² − 2⟨X,X̂⟩ + ‖X̂‖².
func fitOf(x *tensor.Sparse, factors []*mat.Matrix, lambda []float64, xNorm float64) float64 {
	r := len(lambda)
	// ‖X̂‖² = λᵀ (⊛ₖ U(k)ᵀU(k)) λ.
	g := onesMatrix(r)
	for _, f := range factors {
		g = mat.Hadamard(g, mat.MulTransA(f, f))
	}
	var modelSq float64
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			modelSq += lambda[i] * lambda[j] * g.At(i, j)
		}
	}
	// ⟨X, X̂⟩ over nonzeros.
	var inner float64
	prod := make([]float64, r)
	x.Each(func(idx []int, v float64) {
		for c := range prod {
			prod[c] = lambda[c]
		}
		for n, f := range factors {
			row := f.Row(idx[n])
			for c := range prod {
				prod[c] *= row[c]
			}
		}
		for _, p := range prod {
			inner += v * p
		}
	})
	residSq := xNorm*xNorm - 2*inner + modelSq
	if residSq < 0 {
		residSq = 0
	}
	return 1 - math.Sqrt(residSq)/xNorm
}

// normalizeColumns scales each column to unit norm; when lambda is
// non-nil the norms are stored there (zero-norm columns keep λ = 0).
func normalizeColumns(f *mat.Matrix, lambda []float64) {
	for c := 0; c < f.Cols; c++ {
		norm := mat.ColNorm(f, c)
		if lambda != nil {
			lambda[c] = norm
		}
		if norm == 0 {
			continue
		}
		for i := 0; i < f.Rows; i++ {
			f.Set(i, c, f.At(i, c)/norm)
		}
	}
}

// sortComponents orders components by decreasing weight.
func (d *Decomposition) sortComponents() {
	r := len(d.Lambda)
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < r; i++ {
		best := i
		for j := i + 1; j < r; j++ {
			if d.Lambda[idx[j]] > d.Lambda[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	newLambda := make([]float64, r)
	newFactors := make([]*mat.Matrix, len(d.Factors))
	for n, f := range d.Factors {
		nf := mat.New(f.Rows, f.Cols)
		for newC, oldC := range idx {
			for i := 0; i < f.Rows; i++ {
				nf.Set(i, newC, f.At(i, oldC))
			}
		}
		newFactors[n] = nf
	}
	for newC, oldC := range idx {
		newLambda[newC] = d.Lambda[oldC]
	}
	d.Lambda = newLambda
	d.Factors = newFactors
}

// onesMatrix returns an r×r matrix of ones (the Hadamard identity).
func onesMatrix(r int) *mat.Matrix {
	m := mat.New(r, r)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}
