package cp

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func benchTensor(b *testing.B) *tensor.Sparse {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	shape := tensor.Shape{16, 16, 16}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		if rng.Float64() < 0.2 {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d.ToSparse(0)
}

func BenchmarkMTTKRP(b *testing.B) {
	x := benchTensor(b)
	rng := rand.New(rand.NewSource(2))
	factors := []*mat.Matrix{
		mat.Random(rng, 16, 5),
		mat.Random(rng, 16, 5),
		mat.Random(rng, 16, 5),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MTTKRP(x, factors, 0)
	}
}

func BenchmarkALS(b *testing.B) {
	x := benchTensor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ALS(x, Options{Rank: 5, MaxIterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
