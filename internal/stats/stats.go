// Package stats provides the summary statistics used to aggregate
// experiment results across random seeds: mean, standard deviation, and
// normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean. It panics on an empty sample.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// StdDev returns the sample standard deviation (0 for samples of size 1).
// It panics on an empty sample.
func StdDev(xs []float64) float64 { return Summarize(xs).Std }

// CI95 returns the normal-approximation 95% confidence interval for the
// mean (±1.96·σ/√n).
func (s Summary) CI95() (lo, hi float64) {
	if s.N == 0 {
		return math.NaN(), math.NaN()
	}
	half := 1.96 * s.Std / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half
}

// String renders "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.Std, s.N)
}

// GeoMean returns the geometric mean of strictly positive observations;
// it returns NaN when any observation is non-positive. Used for
// speedup-style ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
