package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean=%.0f median=%.1f min=%.0f max=%.0f\n", s.Mean, s.Median, s.Min, s.Max)
	// Output: mean=5 median=4.5 min=2 max=9
}

func ExampleGeoMean() {
	fmt.Println(stats.GeoMean([]float64{1, 4}))
	// Output: 2
}
