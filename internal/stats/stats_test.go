package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample std with n−1: sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Summarize did not panic")
		}
	}()
	Summarize(nil)
}

func TestMedianOdd(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Fatalf("odd median = %v", m)
	}
}

func TestMeanStdHelpers(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Mean(xs) != 2 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(StdDev(xs)-1) > 1e-12 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{10, 10, 10, 10})
	lo, hi := s.CI95()
	if lo != 10 || hi != 10 {
		t.Fatalf("zero-variance CI = [%v, %v]", lo, hi)
	}
	s = Summary{N: 100, Mean: 0, Std: 1}
	lo, hi = s.CI95()
	if math.Abs(lo+0.196) > 1e-12 || math.Abs(hi-0.196) > 1e-12 {
		t.Fatalf("CI = [%v, %v], want ±0.196", lo, hi)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean of non-positive sample should be NaN")
	}
}

func TestStringFormat(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: the mean lies within [min, max] and the CI contains the mean.
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		lo, hi := s.CI95()
		return lo <= s.Mean+1e-12 && hi >= s.Mean-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(160))}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize is invariant under permutation.
func TestPermutationInvarianceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		a := Summarize(xs)
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := Summarize(shuffled)
		return math.Abs(a.Mean-b.Mean) < 1e-12 && math.Abs(a.Std-b.Std) < 1e-12 && a.Median == b.Median
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(161))}); err != nil {
		t.Error(err)
	}
}
