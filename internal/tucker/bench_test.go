package tucker

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func benchTensor(b *testing.B) *tensor.Sparse {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	shape := tensor.Shape{16, 16, 16, 16}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		if rng.Float64() < 0.1 {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d.ToSparse(0)
}

func BenchmarkHOSVD(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOSVD(x, ranks)
	}
}

func BenchmarkHOOI(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOOI(x, ranks, HOOIOptions{MaxIterations: 3})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	x := benchTensor(b)
	d := HOSVD(x, UniformRanks(4, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reconstruct()
	}
}
